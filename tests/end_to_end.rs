//! Cross-crate integration: the full POC lifecycle on a generated
//! instance — topology → traffic → auction → leases → fabric → simulation
//! → settlement — with the system-level invariants the paper's design
//! rests on.

use public_option_core::core::entity::EntityId;
use public_option_core::core::poc::{Poc, PocConfig};
use public_option_core::core::settlement::Account;
use public_option_core::flow::Constraint;
use public_option_core::netsim::sim::{SimConfig, Simulator};
use public_option_core::topology::zoo::{attach_external_isps, ExternalIspConfig};
use public_option_core::topology::{CostModel, RouterId, ZooConfig, ZooGenerator};
use public_option_core::traffic::{TrafficModel, TrafficScenario};

fn build_poc(constraint: Constraint) -> (Poc, public_option_core::traffic::TrafficMatrix) {
    let mut topo = ZooGenerator::new(ZooConfig::small()).generate();
    attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
    let tm = TrafficScenario {
        model: TrafficModel::Gravity { jitter_sigma: 0.2 },
        seed: 99,
        total_gbps: 2000.0,
        cap_gbps: Some(150.0),
    }
    .generate(&topo);
    let config = PocConfig { constraint, ..PocConfig::default() };
    (Poc::new(topo, config), tm)
}

#[test]
fn full_lifecycle_invariants() {
    let (mut poc, tm) = build_poc(Constraint::BaseLoad);

    // Auction round.
    let outcome = poc.run_auction_round(&tm).expect("feasible");
    let n_links = outcome.selected.len();
    assert!(n_links > 0);
    for s in &outcome.settlements {
        assert!(s.payment >= s.bid_cost - 1e-9, "VCG never pays below bid: {s:?}");
    }
    let selected = outcome.selected.clone();

    // Leases cover exactly the selected BP links; payments due equal VCG.
    let leased = poc.leases().active_links(poc.topo().n_links(), 0);
    let virtual_selected: usize =
        poc.topo().virtual_links().iter().filter(|&&l| selected.contains(l)).count();
    assert_eq!(leased.len() + virtual_selected, n_links);
    let due: f64 = poc.leases().payments_due(0).iter().map(|(_, p)| p).sum();
    let vcg: f64 = poc.last_outcome().unwrap().settlements.iter().map(|s| s.payment).sum();
    assert!((due - vcg).abs() < 1e-6);

    // Fabric reaches every router pair.
    assert!(poc.fabric().unwrap().fully_connected(), "selected set must connect all routers");

    // Members, simulation, settlement.
    let lmp_a = poc.attach_lmp("it-a", RouterId(0)).unwrap();
    let lmp_b = poc.attach_lmp("it-b", RouterId::from_index(poc.topo().n_routers() - 1)).unwrap();
    let mut sim =
        Simulator::new(poc.topo(), &selected, SimConfig { horizon: 6.0, ..Default::default() })
            .expect("valid sim config");
    sim.add_traffic_matrix_routed(&tm, |r| {
        Some(if r.index().is_multiple_of(2) { lmp_a } else { lmp_b })
    })
    .expect("selected fabric carries the matrix");
    let report = sim.run();
    assert!(
        report.overall_availability() > 0.999,
        "TE placement on the auction-sized fabric must deliver: {}",
        report.overall_availability()
    );

    let bill = poc.billing_cycle(&report.usage_by_owner).expect("billing");
    assert!(bill.total_outlay > 0.0);
    assert!(bill.poc_net.abs() < 1e-6, "nonprofit break-even");
    assert!(poc.ledger().conservation_error().abs() < 1e-9, "double-entry conservation");

    // Every BP with selected links got paid through the ledger.
    for s in poc.last_outcome().unwrap().settlements.clone() {
        if s.payment > 0.0 {
            let name = format!("bp:{}", poc.topo().bps[s.bp.index()].name);
            let entity = poc.registry().by_name(&name).unwrap().id;
            let balance = poc.ledger().balance(Account::Entity(entity));
            assert!(
                (balance - s.payment).abs() < 1e-6,
                "{name} balance {balance} vs payment {}",
                s.payment
            );
        }
    }
}

#[test]
fn lease_recall_triggers_reauction_flag_and_reround() {
    let (mut poc, tm) = build_poc(Constraint::BaseLoad);
    poc.run_auction_round(&tm).expect("feasible");
    let lease = poc.leases().leases()[0].clone();
    // The paper's overbuy-then-recall story: the BP pulls a link back.
    assert!(!poc.leases().reauction_needed());
    let mut leases = poc.leases().clone();
    leases.recall(lease.bp, lease.link, 0, 1);
    assert!(leases.reauction_needed());
    // A fresh round clears the flag and reinstalls a working fabric.
    poc.run_auction_round(&tm).expect("re-auction feasible");
    assert!(poc.fabric().unwrap().fully_connected());
}

#[test]
fn stricter_constraints_never_cheaper() {
    let (mut poc1, tm) = build_poc(Constraint::BaseLoad);
    let c1_cost = poc1.run_auction_round(&tm).expect("feasible").total_cost;
    let (mut poc2, _) = build_poc(Constraint::SinglePathFailure { sample_every: 2 });
    let c2_cost = poc2.run_auction_round(&tm).expect("feasible").total_cost;
    let (mut poc3, _) = build_poc(Constraint::AllPairsBackup);
    let c3_cost = poc3.run_auction_round(&tm).expect("feasible").total_cost;
    assert!(
        c2_cost >= c1_cost * 0.98,
        "resilience must not be materially cheaper: C2 {c2_cost} vs C1 {c1_cost}"
    );
    assert!(
        c3_cost >= c1_cost * 0.98,
        "resilience must not be materially cheaper: C3 {c3_cost} vs C1 {c1_cost}"
    );
}

#[test]
fn multi_period_billing_accumulates() {
    let (mut poc, tm) = build_poc(Constraint::BaseLoad);
    poc.run_auction_round(&tm).expect("feasible");
    let lmp = poc.attach_lmp("solo", RouterId(0)).unwrap();
    let mut total_charged = 0.0;
    for period in 0..3u32 {
        let bill = poc.billing_cycle(&[(lmp, 10.0 + period as f64)]).unwrap();
        assert_eq!(bill.period, period);
        total_charged += bill.charges[0].1;
    }
    assert_eq!(poc.period(), 3);
    let balance = poc.ledger().balance(Account::Entity(lmp));
    assert!((balance + total_charged).abs() < 1e-6, "LMP owes the sum of its bills");
}

#[test]
fn usage_attribution_to_entity_kind() {
    // Hosted CSP usage rides its LMP's authorization.
    let (mut poc, tm) = build_poc(Constraint::BaseLoad);
    poc.run_auction_round(&tm).expect("feasible");
    let lmp = poc.attach_lmp("host", RouterId(0)).unwrap();
    let csp = poc.attach_hosted_csp("tenant", lmp).unwrap();
    let bill = poc.billing_cycle(&[(lmp, 5.0), (csp, 15.0)]).unwrap();
    assert_eq!(bill.charges.len(), 2);
    let csp_charge = bill.charges.iter().find(|(e, _)| *e == csp).unwrap().1;
    let lmp_charge = bill.charges.iter().find(|(e, _)| *e == lmp).unwrap().1;
    assert!((csp_charge / lmp_charge - 3.0).abs() < 1e-9, "usage-proportional");
}

#[test]
fn unknown_usage_entity_rejected_without_state_change() {
    let (mut poc, tm) = build_poc(Constraint::BaseLoad);
    poc.run_auction_round(&tm).expect("feasible");
    let before = poc.period();
    assert!(poc.billing_cycle(&[(EntityId(4242), 1.0)]).is_err());
    assert_eq!(poc.period(), before, "failed billing must not advance the period");
}

#[test]
fn diurnal_workload_revenue_cycle() {
    use public_option_core::netsim::workload::{generate_onoff, WorkloadConfig};

    let (mut poc, tm) = build_poc(Constraint::BaseLoad);
    poc.run_auction_round(&tm).expect("feasible");
    let selected = poc.last_outcome().unwrap().selected.clone();
    let lmp = poc.attach_lmp("metro", RouterId(0)).unwrap();

    // A day of on/off flows, all attributed to the one LMP.
    let cfg = WorkloadConfig { n_flows: 150, ..Default::default() };
    let flows = generate_onoff(poc.topo(), &cfg);
    let mut sim = Simulator::new(
        poc.topo(),
        &selected,
        SimConfig { horizon: cfg.horizon, ..Default::default() },
    )
    .expect("valid sim config");
    for mut f in flows {
        f.owner = Some(lmp);
        sim.add_flow(f).expect("generated flows are valid");
    }
    let report = sim.run();
    assert!(report.overall_availability() > 0.5, "most bursty traffic delivered");
    assert_eq!(report.usage_by_owner.len(), 1);

    // Hot links exist and utilization is sane.
    let hottest = report.hottest_links(3);
    assert_eq!(hottest.len(), 3);
    assert!(hottest[0].1 >= hottest[2].1);
    for (l, _) in &hottest {
        let u = report.mean_utilization(poc.topo(), *l);
        assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
    }

    // Settlement from the simulated usage; the break-even invariant holds
    // for bursty workloads exactly as for static matrices.
    let bill = poc.billing_cycle(&report.usage_by_owner).expect("billing");
    assert!(bill.poc_net.abs() < 1e-6);
    assert!(bill.charges[0].1 > 0.0);

    // The member's statement shows the charge.
    let statement =
        poc.ledger().statement(public_option_core::core::settlement::Account::Entity(lmp));
    assert!(statement.contains("transit"), "{statement}");
    assert!(statement.contains("debit"), "{statement}");
}

/// The tentpole loop, in process: auction → leases → *packets* → money.
/// Delivered bytes from the packet engine are the billing input, and the
/// ledger's double-entry invariants hold on packet-metered usage exactly
/// as they do on flow-level usage.
#[test]
fn packet_engine_usage_settles_through_ledger() {
    use public_option_core::netsim::engine::{Engine, EngineConfig, SourceKind};
    use public_option_core::traffic::UserFlowModel;

    let (mut poc, tm) = build_poc(Constraint::BaseLoad);
    poc.run_auction_round(&tm).expect("feasible");
    let selected = poc.last_outcome().unwrap().selected.clone();
    let lmp_a = poc.attach_lmp("pk-a", RouterId(0)).unwrap();
    let lmp_b = poc.attach_lmp("pk-b", RouterId::from_index(poc.topo().n_routers() - 1)).unwrap();

    let cfg = EngineConfig { horizon_ns: 10_000_000, ..Default::default() };
    let mut eng = Engine::new(poc.topo(), &selected, cfg).expect("valid engine config");
    eng.add_traffic_matrix(&tm, &UserFlowModel::default(), SourceKind::Persistent, |src| {
        (Some(if src.index().is_multiple_of(2) { lmp_a } else { lmp_b }), "tm".to_string())
    })
    .expect("matrix routable on the leased fabric");
    assert!(eng.n_user_flows() > 100_000, "paper-scale aggregation");
    let report = eng.run();
    assert!(report.packets_delivered > 0, "{report:?}");
    assert_eq!(report.usage_by_owner.len(), 2, "both LMPs metered");
    let metered: f64 = report.usage_by_owner.iter().map(|&(_, g)| g).sum();
    assert!(metered > 0.0);

    // Delivered bytes are the billing input; break-even and conservation
    // hold on the packet-metered period.
    let bill = poc.billing_cycle(&report.usage_by_owner).expect("billing");
    assert!((bill.total_usage_gbps - metered).abs() < 1e-9, "bill reflects the meter");
    assert!(bill.poc_net.abs() < 1e-6, "nonprofit break-even");
    assert!(poc.ledger().conservation_error().abs() < 1e-9);
    for &(owner, gbps) in &report.usage_by_owner {
        let balance = poc.ledger().balance(Account::Entity(owner));
        assert!(balance < 0.0, "metered member owes transit: {owner:?} {gbps} → {balance}");
    }
}

/// The same loop over the wire: engine usage flows through `ReportUsage`
/// into a running control-plane server, and `RunBilling` debits exactly
/// the reported amounts.
#[test]
fn packet_engine_usage_settles_over_the_wire() {
    use public_option_core::ctrlplane::{AttachRole, PocClient, PocServer};
    use public_option_core::netsim::engine::{Engine, EngineConfig, SourceKind};
    use public_option_core::traffic::UserFlowModel;

    let (server_poc, tm) = build_poc(Constraint::BaseLoad);
    let (server, handle) = PocServer::bind("127.0.0.1:0", server_poc, tm.clone()).unwrap();
    let join = std::thread::spawn(move || server.run());
    let mut client = PocClient::connect(handle.local_addr).unwrap();

    let a = client.attach("wire-a", AttachRole::Lmp { router: RouterId(0) }).unwrap();
    let b = client.attach("wire-b", AttachRole::Lmp { router: RouterId(1) }).unwrap();
    client.run_auction().unwrap();

    // Mirror the deterministic round locally to learn the leased links,
    // then meter packets on that fabric.
    let (mut mirror, _) = build_poc(Constraint::BaseLoad);
    mirror.run_auction_round(&tm).expect("feasible");
    let selected = mirror.last_outcome().unwrap().selected.clone();
    let cfg = EngineConfig { horizon_ns: 5_000_000, ..Default::default() };
    let mut eng = Engine::new(mirror.topo(), &selected, cfg).unwrap();
    eng.add_traffic_matrix(&tm, &UserFlowModel::default(), SourceKind::Persistent, |src| {
        (Some(if src.index().is_multiple_of(2) { a } else { b }), "tm".to_string())
    })
    .unwrap();
    let report = eng.run();
    assert_eq!(report.usage_by_owner.len(), 2);

    client.report_usage_batch(&report.usage_by_owner).unwrap();
    let bill = client.run_billing().unwrap();
    let metered: f64 = report.usage_by_owner.iter().map(|&(_, g)| g).sum();
    assert!(bill.total_outlay > 0.0);
    assert!(bill.poc_net.abs() < 1e-6, "nonprofit break-even over the wire");
    let charged: f64 = bill.charges.iter().map(|(_, c)| c).sum();
    assert!((charged - bill.total_outlay).abs() < 1e-6, "usage pays the outlay");
    // Charges split usage-proportionally across the two reporters.
    let ca = bill.charges.iter().find(|(e, _)| *e == a).unwrap().1;
    let cb = bill.charges.iter().find(|(e, _)| *e == b).unwrap().1;
    let ua = report.usage_by_owner.iter().find(|(e, _)| *e == a).unwrap().1;
    let ub = report.usage_by_owner.iter().find(|(e, _)| *e == b).unwrap().1;
    assert!((ca / cb - ua / ub).abs() < 1e-6, "usage-proportional split");
    assert!(metered > 0.0);
    // And the members' server-side balances reflect the debit.
    assert!(client.balance(a).unwrap() < 0.0);
    assert!(client.balance(b).unwrap() < 0.0);

    handle.shutdown();
    join.join().unwrap();
}

/// Determinism across the facade: the same seed and inputs produce a
/// byte-identical serialized packet report.
#[test]
fn packet_engine_deterministic_through_facade() {
    use public_option_core::netsim::engine::{Engine, EngineConfig, SourceKind};
    use public_option_core::traffic::UserFlowModel;

    let (mut poc, tm) = build_poc(Constraint::BaseLoad);
    poc.run_auction_round(&tm).expect("feasible");
    let selected = poc.last_outcome().unwrap().selected.clone();
    let run = || {
        let cfg = EngineConfig { horizon_ns: 5_000_000, seed: 7, ..Default::default() };
        let mut eng = Engine::new(poc.topo(), &selected, cfg).unwrap();
        eng.add_traffic_matrix(&tm, &UserFlowModel::default(), SourceKind::Persistent, |src| {
            (Some(EntityId(src.0 % 3)), format!("class-{}", src.0 % 2))
        })
        .unwrap();
        serde_json::to_string(&eng.run()).unwrap()
    };
    assert_eq!(run(), run(), "same seed, same inputs, byte-identical report");
}

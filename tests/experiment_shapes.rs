//! The paper's qualitative claims as executable assertions — the "shape"
//! checks EXPERIMENTS.md records. If any of these fails, the reproduction
//! no longer reproduces.

use public_option_core::auction::{run_auction, GreedySelector, Market, Selector};
use public_option_core::econ::demand::{Exponential, Logistic, ParetoTail};
use public_option_core::econ::fees::{bargaining_equilibrium, monopoly_price, unilateral_fee};
use public_option_core::econ::lemma::{is_strictly_increasing, price_response_curve};
use public_option_core::econ::welfare::social_welfare;
use public_option_core::econ::{Demand, Economy};
use public_option_core::flow::{Constraint, FeasibilityOracle};
use public_option_core::netsim::drill::{run_drill, DrillSpec};
use public_option_core::topology::zoo::{attach_external_isps, ExternalIspConfig};
use public_option_core::topology::{
    CostModel, PocTopology, TopologyStats, ZooConfig, ZooGenerator,
};
use public_option_core::traffic::{TrafficMatrix, TrafficModel, TrafficScenario};

fn small_instance() -> (PocTopology, TrafficMatrix) {
    let mut topo = ZooGenerator::new(ZooConfig::small()).generate();
    // Attach the external ISPs at every router so pivot runs stay feasible
    // even under maximal withholding (the paper's A(OL − L_α) assumption).
    let isp = ExternalIspConfig { attach_points: 64, ..Default::default() };
    attach_external_isps(&mut topo, &isp, &CostModel::default());
    let tm = TrafficScenario {
        model: TrafficModel::Gravity { jitter_sigma: 0.2 },
        seed: 17,
        total_gbps: 2500.0,
        cap_gbps: Some(150.0),
    }
    .generate(&topo);
    (topo, tm)
}

/// E-T1: §3.3's in-text instance statistics.
#[test]
fn shape_t1_instance_statistics() {
    let topo = ZooGenerator::new(ZooConfig::paper()).generate();
    let stats = TopologyStats::compute(&topo);
    assert_eq!(stats.n_bps, 20);
    assert!((4200..=5200).contains(&stats.n_bp_links), "≈4674, got {}", stats.n_bp_links);
    let (min, max) = stats.share_range();
    assert!(min >= 0.015 && max <= 0.14, "shares ~2%–12%, got {min:.3}–{max:.3}");
}

/// E-F2: PoB margins exist, vary across BPs, and never go negative.
#[test]
fn shape_f2_pob_margins() {
    let (topo, tm) = small_instance();
    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(8);
    let out = run_auction(&market, &tm, Constraint::BaseLoad, &selector).expect("feasible");
    let pobs = out.top_pob(5);
    assert!(pobs.len() >= 3, "need several BPs in SL");
    for (bp, pob) in &pobs {
        assert!(*pob >= -1e-9, "{bp} has negative PoB {pob}");
        assert!(pob.is_finite());
    }
    // "High variation in the PoB" — the spread must be non-trivial.
    let max = pobs.iter().map(|(_, p)| *p).fold(f64::MIN, f64::max);
    let min = pobs.iter().map(|(_, p)| *p).fold(f64::MAX, f64::min);
    assert!(max - min > 0.01, "margins suspiciously uniform: {pobs:?}");
}

/// E-L1: Lemma 1 across demand families.
#[test]
fn shape_l1_price_monotonicity() {
    let families: Vec<Box<dyn Demand>> = vec![
        Box::new(Exponential::new(0.07)),
        Box::new(Exponential::new(0.4)),
        Box::new(ParetoTail::new(3.0, 1.8)),
        Box::new(ParetoTail::new(12.0, 4.0)),
        Box::new(Logistic::new(18.0, 5.0)),
    ];
    for d in &families {
        let curve = price_response_curve(d.as_ref(), 15.0, 31);
        assert!(is_strictly_increasing(&curve, 1e-6), "p*(t) not increasing");
    }
}

/// E-W1: welfare ordering NN ≥ NBS ≥ unilateral, strict where fees bind.
#[test]
fn shape_w1_welfare_ordering() {
    let economy = Economy::example();
    let [nn, uni, nbs] = economy.compare_regimes();
    assert!(nn.total_welfare() >= nbs.total_welfare() - 1e-9);
    assert!(nbs.total_welfare() >= uni.total_welfare() - 1e-9);
    assert!(nn.total_welfare() > uni.total_welfare(), "fees must strictly hurt welfare");
    assert_eq!(nn.total_fees(), 0.0);
    // Per-CSP: social welfare decreases as the fee rises (Lemma 1 + §4.3).
    for (a, b) in nn.per_csp.iter().zip(&uni.per_csp) {
        assert!(b.social_welfare <= a.social_welfare + 1e-9, "{}", a.csp);
    }
}

/// E-B1: incumbent advantage — NBS fee decreasing in churn; bargained fee
/// below the unilateral fee whenever churn bites.
#[test]
fn shape_b1_incumbent_advantage() {
    let economy = Economy::example();
    for s in 0..economy.csps.len() {
        let fees = economy.per_lmp_nbs_fees(s);
        // LMPs are ordered incumbent-first with ascending churn in the
        // example; fees must not increase along that order whenever access
        // prices are comparable. Check against churn directly instead:
        // higher churn × price ⇒ lower fee, pairwise within the CSP.
        for i in 0..fees.len() {
            for j in 0..fees.len() {
                let (ri, ci) = (fees[i].1, economy.lmps[i].access_price);
                let (rj, cj) = (fees[j].1, economy.lmps[j].access_price);
                if ri * ci > rj * cj {
                    assert!(
                        fees[i].2 <= fees[j].2 + 1e-9,
                        "CSP {s}: churn-threat ordering violated"
                    );
                }
            }
        }
    }
    // Bargaining vs unilateral for a churn-exposed CSP.
    let d = Exponential::new(0.1);
    let (t_uni, _) = unilateral_fee(&d);
    let eq = bargaining_equilibrium(&d, 3.0);
    assert!(eq.fee < t_uni);
}

/// E-EQ: the renegotiation fixed point converges and satisfies its own
/// equation.
#[test]
fn shape_eq_fixed_point() {
    for d in [Exponential::new(0.1), Exponential::new(0.3)] {
        for avg_rc in [0.0, 1.0, 5.0] {
            let out = bargaining_equilibrium(&d, avg_rc);
            assert!(out.converged);
            let fixed = ((monopoly_price(&d, out.fee) - avg_rc) / 2.0).max(0.0);
            assert!(
                (fixed - out.fee).abs() < 1e-6,
                "t* = {} but (p*(t*) − rc)/2 = {fixed}",
                out.fee
            );
        }
    }
    // Welfare at the equilibrium price is below NN welfare when fees > 0.
    let d = Exponential::new(0.1);
    let eq = bargaining_equilibrium(&d, 2.0);
    assert!(eq.fee > 0.0);
    assert!(social_welfare(&d, eq.price) < social_welfare(&d, monopoly_price(&d, 0.0)));
}

/// E-R1: drills — the resilient selections must not be materially less
/// available than base, and availability stays high on redundant fabrics.
#[test]
fn shape_r1_resilience() {
    let (topo, tm) = small_instance();
    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(8);
    let spec = DrillSpec { n_failures: 4, outage_hours: 1.0, gap_hours: 0.5 };
    let mut availabilities = Vec::new();
    for c in [Constraint::BaseLoad, Constraint::AllPairsBackup] {
        let oracle = FeasibilityOracle::new(&topo, &tm, c);
        let sel = selector.select(&market, &oracle, market.offered()).expect("feasible");
        let drill = run_drill(&topo, &sel.links, &tm, &spec).expect("routable");
        availabilities.push(drill.availability);
    }
    assert!(
        availabilities[1] >= availabilities[0] - 0.05,
        "resilient selection materially worse under failures: {availabilities:?}"
    );
    assert!(availabilities[1] > 0.8, "resilient fabric should absorb most failures");
}

/// E-C1 bound: even under full withholding every payment stays finite.
#[test]
fn shape_c1_collusion_bounded() {
    use public_option_core::auction::collusion::withholding_experiment;
    let (topo, tm) = small_instance();
    let mut market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(8);
    let report = withholding_experiment(&mut market, &tm, Constraint::BaseLoad, &selector)
        .expect("feasible with full virtual coverage");
    for d in &report.deltas {
        assert!(d.payment_after.is_finite());
    }
    assert!(report.total_gain() >= -1e-6, "coalition cannot lose by withholding");
}

//! Property-based tests over the core data structures and mechanisms.
//!
//! The headline property is VCG strategy-proofness (§3.3): with an exact
//! optimizer, no BP can profit by misreporting its costs. The rest pin the
//! substrate invariants everything is built on: set algebra, capacity
//! respect in routing, max-min feasibility, and the econ model's
//! monotonicities.

use proptest::prelude::*;
use public_option_core::auction::{run_auction, BpBid, ExhaustiveSelector, Market};
use public_option_core::econ::demand::{Exponential, ParetoTail};
use public_option_core::econ::fees::{monopoly_price, nbs_fee};
use public_option_core::econ::welfare::{consumer_surplus, social_welfare};
use public_option_core::flow::{route_tm, Constraint, LinkSet};
use public_option_core::topology::builder::two_bp_square;
use public_option_core::topology::{BpId, LinkId, RouterId};
use public_option_core::traffic::TrafficMatrix;

// ---------- LinkSet algebra ------------------------------------------------

fn arb_linkset(universe: usize) -> impl Strategy<Value = LinkSet> {
    prop::collection::vec(0..universe, 0..universe)
        .prop_map(move |ids| LinkSet::from_links(universe, ids.into_iter().map(LinkId::from_index)))
}

proptest! {
    #[test]
    fn linkset_union_is_commutative_and_idempotent(
        a in arb_linkset(100),
        b in arb_linkset(100),
    ) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a.clone());
    }

    #[test]
    fn linkset_difference_disjoint_from_subtrahend(
        a in arb_linkset(100),
        b in arb_linkset(100),
    ) {
        let d = a.difference(&b);
        prop_assert!(d.intersection(&b).is_empty());
        prop_assert!(d.is_subset_of(&a));
        // |A| = |A\B| + |A∩B|.
        prop_assert_eq!(d.len() + a.intersection(&b).len(), a.len());
    }

    #[test]
    fn linkset_demorgan_via_universe(
        a in arb_linkset(64),
        b in arb_linkset(64),
    ) {
        let full = LinkSet::full(64);
        let not = |s: &LinkSet| full.difference(s);
        // ¬(A ∪ B) = ¬A ∩ ¬B.
        prop_assert_eq!(not(&a.union(&b)), not(&a).intersection(&not(&b)));
    }

    #[test]
    fn linkset_iter_matches_contains(a in arb_linkset(100)) {
        let members: Vec<LinkId> = a.iter().collect();
        prop_assert_eq!(members.len(), a.len());
        for l in &members {
            prop_assert!(a.contains(*l));
        }
        // Ascending order.
        for w in members.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }
}

// ---------- Traffic matrices ------------------------------------------------

proptest! {
    #[test]
    fn tm_scale_to_total_is_exact(
        demands in prop::collection::vec((0u32..5, 0u32..5, 0.1f64..100.0), 1..20),
        target in 1.0f64..10_000.0,
    ) {
        let mut tm = TrafficMatrix::zero(5);
        let mut any = false;
        for (a, b, d) in demands {
            if a != b {
                tm.set(RouterId(a), RouterId(b), d);
                any = true;
            }
        }
        prop_assume!(any);
        tm.scale_to_total(target);
        prop_assert!((tm.total() - target).abs() < 1e-6 * target.max(1.0));
    }

    #[test]
    fn tm_cap_bounds_every_demand(
        demands in prop::collection::vec((0u32..4, 0u32..4, 0.1f64..500.0), 1..12),
        cap in 1.0f64..100.0,
    ) {
        let mut tm = TrafficMatrix::zero(4);
        for (a, b, d) in demands {
            if a != b {
                tm.set(RouterId(a), RouterId(b), d);
            }
        }
        tm.cap_demands(cap);
        prop_assert!(tm.max_demand() <= cap + 1e-12);
    }
}

// ---------- Routing respects capacity ----------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn routing_never_overcommits(
        demands in prop::collection::vec((0u32..4, 0u32..4, 1.0f64..60.0), 1..8),
    ) {
        let topo = two_bp_square();
        let mut tm = TrafficMatrix::zero(topo.n_routers());
        for (a, b, d) in demands {
            if a != b {
                let cur = tm.demand(RouterId(a), RouterId(b));
                tm.set(RouterId(a), RouterId(b), cur + d);
            }
        }
        let all = LinkSet::full(topo.n_links());
        if let Ok(routing) = route_tm(&topo, &all, &tm) {
            for (i, link) in topo.links.iter().enumerate() {
                prop_assert!(routing.load_fwd[i] <= link.capacity_gbps + 1e-6);
                prop_assert!(routing.load_rev[i] <= link.capacity_gbps + 1e-6);
            }
            // Every demand fully placed.
            for flow in &routing.flows {
                let placed: f64 = flow.paths.iter().map(|(_, g)| g).sum();
                prop_assert!((placed - flow.demand_gbps).abs() < 1e-6);
            }
        }
    }
}

// ---------- VCG: payments and strategy-proofness -----------------------------

/// Build the fixture market with the given true costs declared at a
/// per-BP misreport factor (1.0 = truthful).
fn fixture_market(
    topo: &public_option_core::topology::PocTopology,
    true_costs: &[f64; 6],
    factors: [f64; 2],
) -> Market<'static> {
    // Leak the topology: proptest closures need 'static and the fixture is
    // tiny. (Test-only; bounded by the number of proptest cases.)
    let topo: &'static _ = Box::leak(Box::new(topo.clone()));
    let bids = (0..2u32)
        .map(|bp| {
            BpBid::truthful_additive(
                BpId(bp),
                topo.links_of_bp(BpId(bp))
                    .into_iter()
                    .map(|l| (l, true_costs[l.index()] * factors[bp as usize])),
            )
        })
        .collect();
    Market::new(topo, bids, 3.0).expect("fixture bids are valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn vcg_payment_at_least_declared_bid(
        costs in prop::array::uniform6(100.0f64..5000.0),
        d1 in 1.0f64..40.0,
        d2 in 1.0f64..40.0,
    ) {
        let topo = two_bp_square();
        let market = fixture_market(&topo, &costs, [1.0, 1.0]);
        let mut tm = TrafficMatrix::zero(topo.n_routers());
        tm.set(RouterId(0), RouterId(1), d1);
        tm.set(RouterId(1), RouterId(2), d2);
        if let Ok(out) = run_auction(&market, &tm, Constraint::BaseLoad, &ExhaustiveSelector) {
            for s in &out.settlements {
                prop_assert!(s.payment >= s.bid_cost - 1e-9, "{:?}", s);
                prop_assert!(s.raw_pivot >= -1e-9, "exact optimizer ⇒ pivot ≥ 0: {:?}", s);
            }
        }
    }

    /// Strategy-proofness: truthful declaration maximizes a BP's utility
    /// (payment − true cost of its selected links) against any uniform
    /// misreport, holding the other BP truthful. Exact optimizer required.
    #[test]
    fn vcg_truthful_dominates_misreports(
        costs in prop::array::uniform6(100.0f64..5000.0),
        factor in prop::sample::select(vec![0.5f64, 0.8, 1.25, 2.0, 4.0]),
        d1 in 1.0f64..40.0,
        d2 in 1.0f64..40.0,
        liar in 0u32..2,
    ) {
        let topo = two_bp_square();
        let mut tm = TrafficMatrix::zero(topo.n_routers());
        tm.set(RouterId(0), RouterId(1), d1);
        tm.set(RouterId(1), RouterId(2), d2);

        let utility = |factors: [f64; 2]| -> Option<f64> {
            let market = fixture_market(&topo, &costs, factors);
            let out = run_auction(&market, &tm, Constraint::BaseLoad, &ExhaustiveSelector).ok()?;
            let s = out.settlement(BpId(liar))?;
            // True cost of the links actually selected from the liar.
            let true_cost: f64 = out
                .selected
                .iter()
                .filter(|l| topo.link(*l).owner == public_option_core::topology::LinkOwner::Bp(BpId(liar)))
                .map(|l| costs[l.index()])
                .sum();
            Some(s.payment - true_cost)
        };

        let mut truthful = [1.0, 1.0];
        let mut misreport = [1.0, 1.0];
        misreport[liar as usize] = factor;
        truthful[liar as usize] = 1.0;
        if let (Some(u_truth), Some(u_lie)) = (utility(truthful), utility(misreport)) {
            prop_assert!(
                u_truth >= u_lie - 1e-6,
                "misreport ×{} profits BP{}: {} vs truthful {}",
                factor, liar, u_lie, u_truth
            );
        }
    }

    /// Parallel pivot scheduling is an implementation detail: sequential
    /// and parallel runs must produce bit-identical outcomes — same
    /// selected set, and settlements equal down to the f64 bit patterns.
    #[test]
    fn vcg_pivot_modes_agree(
        costs in prop::array::uniform6(100.0f64..5000.0),
        d1 in 1.0f64..40.0,
        d2 in 1.0f64..40.0,
        exact in 0u32..2,
    ) {
        use public_option_core::auction::{run_auction_with, GreedySelector, PivotMode, Selector};
        let topo = two_bp_square();
        let market = fixture_market(&topo, &costs, [1.0, 1.0]);
        let mut tm = TrafficMatrix::zero(topo.n_routers());
        tm.set(RouterId(0), RouterId(1), d1);
        tm.set(RouterId(1), RouterId(2), d2);
        let selector: Box<dyn Selector> = if exact == 1 {
            Box::new(ExhaustiveSelector)
        } else {
            Box::new(GreedySelector::default())
        };
        let seq = run_auction_with(&market, &tm, Constraint::BaseLoad, &*selector, PivotMode::Sequential);
        let par = run_auction_with(&market, &tm, Constraint::BaseLoad, &*selector, PivotMode::Parallel);
        match (seq, par) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.selected, &b.selected);
                prop_assert_eq!(a.total_cost.to_bits(), b.total_cost.to_bits());
                prop_assert_eq!(a.settlements.len(), b.settlements.len());
                for (x, y) in a.settlements.iter().zip(&b.settlements) {
                    prop_assert_eq!(x.bp, y.bp);
                    prop_assert_eq!(x.n_selected_links, y.n_selected_links);
                    prop_assert_eq!(x.bid_cost.to_bits(), y.bid_cost.to_bits());
                    prop_assert_eq!(x.raw_pivot.to_bits(), y.raw_pivot.to_bits());
                    prop_assert_eq!(x.payment.to_bits(), y.payment.to_bits());
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "modes disagree: {a:?} vs {b:?}"),
        }
    }
}

// ---------- Warm-started pivot oracle -----------------------------------------

/// Rigorously verify a routing claimed as a feasibility witness for the
/// active set `links`: every demand fully placed, only active links used,
/// and per-(link, direction) loads within capacity.
fn assert_genuine_witness(
    topo: &public_option_core::topology::PocTopology,
    links: &LinkSet,
    tm: &TrafficMatrix,
    routing: &public_option_core::flow::Routing,
) {
    use public_option_core::flow::graph::Dir;
    use public_option_core::flow::CapacityGraph;
    let demands: Vec<_> = tm.iter_demands().collect();
    assert_eq!(routing.flows.len(), demands.len(), "flow per demand");
    let g = CapacityGraph::new(topo, links);
    let mut load_fwd = vec![0.0f64; topo.n_links()];
    let mut load_rev = vec![0.0f64; topo.n_links()];
    for f in &routing.flows {
        let placed: f64 = f.paths.iter().map(|(_, amt)| amt).sum();
        assert!((placed - f.demand_gbps).abs() < 1e-6, "demand not fully placed");
        for (path, amt) in &f.paths {
            assert!(path.iter().all(|&l| links.contains(l)), "inactive link used");
            for (&l, &d) in path.iter().zip(&g.path_dirs(f.src, path)) {
                match d {
                    Dir::Fwd => load_fwd[l.index()] += amt,
                    Dir::Rev => load_rev[l.index()] += amt,
                }
            }
        }
    }
    for (i, link) in topo.links.iter().enumerate() {
        assert!(load_fwd[i] <= link.capacity_gbps + 1e-6, "over capacity fwd on link {i}");
        assert!(load_rev[i] <= link.capacity_gbps + 1e-6, "over capacity rev on link {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Warm-pivot equivalence at every constraint level: over random
    /// pivot-shaped probe sequences (a BP withdrawal followed by link
    /// removals), the warm oracle's verdict must equal the from-scratch
    /// oracle's. The single documented escape hatch is a warm accept where
    /// the cold heuristic failed to pack — legal only because the warm
    /// accept carries a routing witness, which this test re-verifies
    /// rigorously (demands placed, active links only, capacities
    /// respected). Accepted sets must also yield such a witness from
    /// `route`.
    #[test]
    fn warm_pivot_verdicts_equivalent_to_cold(
        removals in prop::collection::vec(prop::collection::vec(0usize..12, 0..4), 1..6),
        withdrawn_bp in 0u32..2,
        sample_every in 1usize..3,
    ) {
        use public_option_core::flow::{AcceptabilityOracle, FeasibilityOracle, WarmOracle};
        let topo = two_bp_square();
        let mut tm = TrafficMatrix::zero(topo.n_routers());
        tm.set(RouterId(0), RouterId(1), 10.0);
        tm.set(RouterId(1), RouterId(2), 5.0);
        let full = LinkSet::full(topo.n_links());
        for constraint in Constraint::paper_suite(sample_every) {
            let cold = FeasibilityOracle::new(&topo, &tm, constraint);
            let warm = WarmOracle::new(&topo, &tm, constraint);
            if let Some(seed) = cold.route(&full) {
                warm.seed(seed);
            }
            // The probe walk: withdraw one BP (the Clarke-pivot shape),
            // then keep removing random links — each prefix is a probe,
            // exercising the witness chain across accepts and rejects.
            let mut probe = full.clone();
            for l in topo.links_of_bp(BpId(withdrawn_bp)) {
                probe.remove(l);
            }
            let mut probes = vec![probe.clone()];
            for batch in &removals {
                for &l in batch {
                    if l < topo.n_links() {
                        probe.remove(LinkId::from_index(l));
                    }
                }
                probes.push(probe.clone());
            }
            for p in &probes {
                let wv = warm.acceptable(p);
                let cv = cold.acceptable(p);
                if wv != cv {
                    prop_assert!(
                        wv && !cv,
                        "warm may only be more complete than cold ({})",
                        constraint.label()
                    );
                }
                if wv {
                    let routing = warm.evaluate(p).expect("warm accept carries a witness");
                    assert_genuine_witness(&topo, p, &tm, &routing);
                }
            }
        }
    }
}

/// `FeasibilityCache` cross-instance regression: a cache bound to one
/// `(topology, traffic matrix, constraint)` instance must refuse to serve
/// any other, with the typed mismatch naming both fingerprints.
#[test]
fn regression_feasibility_cache_rejects_cross_instance_reuse() {
    use public_option_core::flow::{instance_fingerprint, FeasibilityCache, FeasibilityOracle};
    let topo = two_bp_square();
    let mut tm = TrafficMatrix::zero(topo.n_routers());
    tm.set(RouterId(0), RouterId(1), 10.0);
    let cache = FeasibilityCache::new();
    assert!(FeasibilityOracle::with_cache(&topo, &tm, Constraint::BaseLoad, &cache).is_ok());
    // Same instance again: the binding is idempotent.
    assert!(FeasibilityOracle::with_cache(&topo, &tm, Constraint::BaseLoad, &cache).is_ok());
    // Same topology and matrix under another constraint: refused.
    let err = match FeasibilityOracle::with_cache(&topo, &tm, Constraint::AllPairsBackup, &cache) {
        Ok(_) => panic!("cross-constraint reuse must be refused"),
        Err(e) => e,
    };
    assert_eq!(err.bound, instance_fingerprint(&topo, &tm, Constraint::BaseLoad));
    assert_eq!(err.offered, instance_fingerprint(&topo, &tm, Constraint::AllPairsBackup));
    // A different traffic matrix: refused as well.
    let mut tm2 = tm.clone();
    tm2.set(RouterId(1), RouterId(2), 1.0);
    assert!(FeasibilityOracle::with_cache(&topo, &tm2, Constraint::BaseLoad, &cache).is_err());
}

// ---------- Econ monotonicities ----------------------------------------------

proptest! {
    #[test]
    fn monopoly_price_above_fee_and_increasing(
        lambda in 0.02f64..1.0,
        t1 in 0.0f64..20.0,
        dt in 0.1f64..10.0,
    ) {
        let d = Exponential::new(lambda);
        let p1 = monopoly_price(&d, t1);
        let p2 = monopoly_price(&d, t1 + dt);
        prop_assert!(p1 >= t1 - 1e-9);
        prop_assert!(p2 > p1 - 1e-6, "p*({}) = {p2} < p*({t1}) = {p1}", t1 + dt);
    }

    #[test]
    fn welfare_monotone_decreasing_in_price(
        sigma in 1.0f64..20.0,
        k in 1.5f64..5.0,
        p in 0.0f64..30.0,
        dp in 0.1f64..10.0,
    ) {
        let d = ParetoTail::new(sigma, k);
        prop_assert!(social_welfare(&d, p + dp) <= social_welfare(&d, p) + 1e-9);
        prop_assert!(consumer_surplus(&d, p + dp) <= consumer_surplus(&d, p) + 1e-9);
    }

    #[test]
    fn nbs_fee_monotone_in_inputs(
        p in 0.0f64..100.0,
        r in 0.0f64..1.0,
        c in 0.0f64..100.0,
        dr in 0.0f64..0.5,
    ) {
        let r2 = (r + dr).min(1.0);
        prop_assert!(nbs_fee(p, r2, c) <= nbs_fee(p, r, c) + 1e-12);
        // And exactly the closed form.
        prop_assert!((nbs_fee(p, r, c) - (p - r * c) / 2.0).abs() < 1e-12);
    }
}

// ---------- K-shortest paths -------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn kpaths_ranked_distinct_loopless(
        seed in 0u64..1000,
        k in 1usize..6,
    ) {
        use public_option_core::flow::k_shortest_paths;
        use public_option_core::topology::{ZooConfig, ZooGenerator};
        let topo = ZooGenerator::new(ZooConfig::small().with_seed(seed)).generate();
        prop_assume!(topo.n_routers() >= 2);
        let all = LinkSet::full(topo.n_links());
        let src = RouterId(0);
        let dst = RouterId::from_index(topo.n_routers() - 1);
        let paths = k_shortest_paths(&topo, &all, src, dst, k);
        prop_assert!(paths.len() <= k);
        for w in paths.windows(2) {
            prop_assert!(w[0].km <= w[1].km + 1e-9, "not ranked");
            prop_assert_ne!(&w[0].links, &w[1].links, "duplicate path");
        }
        for p in &paths {
            // Consistent metric.
            let km: f64 = p.links.iter().map(|&l| topo.link(l).distance_km).sum();
            prop_assert!((km - p.km).abs() < 1e-9);
            // Walkable from src and loopless.
            let mut at = src;
            let mut visited = vec![at];
            for &l in &p.links {
                at = topo.link(l).other_end(at).expect("path incident");
                prop_assert!(!visited.contains(&at), "loop at {at}");
                visited.push(at);
            }
            prop_assert_eq!(at, dst);
        }
    }
}

// ---------- Max-min fairness ---------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn max_min_rates_feasible_and_demand_bounded(
        demands in prop::collection::vec((0u32..4, 0u32..4, 1.0f64..120.0), 1..10),
    ) {
        use public_option_core::netsim::fairness::{max_min_rates, AllocFlow};
        use public_option_core::flow::CapacityGraph;
        let topo = two_bp_square();
        let all = LinkSet::full(topo.n_links());
        let g = CapacityGraph::new(&topo, &all);
        // Route each demand on its shortest path; build alloc flows.
        let mut flows = Vec::new();
        for (a, b, d) in demands {
            if a == b {
                continue;
            }
            let (src, dst) = (RouterId(a), RouterId(b));
            let Some(path) = g.shortest_path(
                src,
                dst,
                |l, _| topo.link(l).distance_km,
                |_, _| true,
            ) else { continue };
            let dirs = g.path_dirs(src, &path);
            flows.push(AllocFlow {
                hops: path.into_iter().zip(dirs).collect(),
                demand_gbps: d,
            });
        }
        prop_assume!(!flows.is_empty());
        let rates = max_min_rates(&topo, &flows, None);
        prop_assert_eq!(rates.len(), flows.len());
        // Rates bounded by demand.
        for (r, f) in rates.iter().zip(&flows) {
            prop_assert!(*r >= -1e-9 && *r <= f.demand_gbps + 1e-6);
        }
        // Per-(link, dir) totals bounded by capacity.
        let mut load_fwd = vec![0.0f64; topo.n_links()];
        let mut load_rev = vec![0.0f64; topo.n_links()];
        for (r, f) in rates.iter().zip(&flows) {
            for &(l, d) in &f.hops {
                match d {
                    public_option_core::flow::graph::Dir::Fwd => load_fwd[l.index()] += r,
                    public_option_core::flow::graph::Dir::Rev => load_rev[l.index()] += r,
                }
            }
        }
        for (i, link) in topo.links.iter().enumerate() {
            prop_assert!(load_fwd[i] <= link.capacity_gbps + 1e-6);
            prop_assert!(load_rev[i] <= link.capacity_gbps + 1e-6);
        }
        // Pareto efficiency light: every unsatisfied flow crosses some
        // saturated (link, dir).
        for (r, f) in rates.iter().zip(&flows) {
            if *r < f.demand_gbps - 1e-6 {
                let bottlenecked = f.hops.iter().any(|&(l, d)| {
                    let cap = topo.link(l).capacity_gbps;
                    match d {
                        public_option_core::flow::graph::Dir::Fwd => {
                            load_fwd[l.index()] >= cap - 1e-6
                        }
                        public_option_core::flow::graph::Dir::Rev => {
                            load_rev[l.index()] >= cap - 1e-6
                        }
                    }
                });
                prop_assert!(bottlenecked, "unsatisfied flow with headroom everywhere");
            }
        }
    }
}

// ---------- Serde round trips ---------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn topology_survives_json_round_trip(seed in 0u64..200) {
        use public_option_core::topology::{PocTopology, ZooConfig, ZooGenerator};
        let topo = ZooGenerator::new(ZooConfig::small().with_seed(seed)).generate();
        let json = serde_json::to_string(&topo).expect("serialize");
        let back: PocTopology = serde_json::from_str(&json).expect("deserialize");
        back.validate().expect("valid after round trip");
        prop_assert_eq!(back.n_links(), topo.n_links());
        prop_assert_eq!(back.n_routers(), topo.n_routers());
        for (a, b) in topo.links.iter().zip(&back.links) {
            prop_assert_eq!(a.owner, b.owner);
            prop_assert!((a.true_monthly_cost - b.true_monthly_cost).abs() < 1e-12);
        }
    }

    #[test]
    fn traffic_matrix_survives_json_round_trip(
        demands in prop::collection::vec((0u32..5, 0u32..5, 0.1f64..50.0), 0..12),
    ) {
        let mut tm = TrafficMatrix::zero(5);
        for (a, b, d) in demands {
            if a != b {
                tm.set(RouterId(a), RouterId(b), d);
            }
        }
        let json = serde_json::to_string(&tm).expect("serialize");
        let back: TrafficMatrix = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(back, tm);
    }
}

// ---------- Pinned regression cases ------------------------------------------
//
// Shrunken inputs from historical proptest failures (recorded in
// proptests.proptest-regressions). The in-tree proptest harness does not
// replay that file, so the cases are pinned here explicitly.

/// `kpaths_ranked_distinct_loopless` shrank to `seed = 116`.
#[test]
fn regression_kpaths_seed_116() {
    use public_option_core::flow::k_shortest_paths;
    use public_option_core::topology::{ZooConfig, ZooGenerator};
    let topo = ZooGenerator::new(ZooConfig::small().with_seed(116)).generate();
    assert!(topo.n_routers() >= 2);
    let all = LinkSet::full(topo.n_links());
    let src = RouterId(0);
    let dst = RouterId::from_index(topo.n_routers() - 1);
    for k in 1..6 {
        let paths = k_shortest_paths(&topo, &all, src, dst, k);
        assert!(paths.len() <= k);
        for w in paths.windows(2) {
            assert!(w[0].km <= w[1].km + 1e-9, "not ranked");
            assert_ne!(&w[0].links, &w[1].links, "duplicate path");
        }
        for p in &paths {
            let km: f64 = p.links.iter().map(|&l| topo.link(l).distance_km).sum();
            assert!((km - p.km).abs() < 1e-9);
            let mut at = src;
            let mut visited = vec![at];
            for &l in &p.links {
                at = topo.link(l).other_end(at).expect("path incident");
                assert!(!visited.contains(&at), "loop at {at} (k = {k})");
                visited.push(at);
            }
            assert_eq!(at, dst);
        }
    }
}

/// `routing_never_overcommits` shrank to
/// `demands = [(1, 0, 48.917595338008844)]`.
#[test]
fn regression_routing_single_demand() {
    let topo = two_bp_square();
    let mut tm = TrafficMatrix::zero(topo.n_routers());
    tm.set(RouterId(1), RouterId(0), 48.917595338008844);
    let all = LinkSet::full(topo.n_links());
    if let Ok(routing) = route_tm(&topo, &all, &tm) {
        for (i, link) in topo.links.iter().enumerate() {
            assert!(routing.load_fwd[i] <= link.capacity_gbps + 1e-6);
            assert!(routing.load_rev[i] <= link.capacity_gbps + 1e-6);
        }
        for flow in &routing.flows {
            let placed: f64 = flow.paths.iter().map(|(_, g)| g).sum();
            assert!(
                (placed - flow.demand_gbps).abs() < 1e-6,
                "demand not fully placed: {placed} of {}",
                flow.demand_gbps
            );
        }
    }
}

//! §3.1 network services: anycast, multicast, posted-price QoS — plus a
//! diurnal on/off workload on the leased fabric.
//!
//! "The POC could support multicast and anycast delivery mechanisms ...
//! the presence of a neutral and nonprofit core might provide a place
//! where such technologies could be tried out without worry about
//! proprietary advantages for one ISP over another."
//!
//! Run with: `cargo run --release --example edge_services`

use public_option_core::core::fabric::ForwardingState;
use public_option_core::core::services::{AnycastGroup, MulticastTree, QosCatalog, QosTier};
use public_option_core::flow::LinkSet;
use public_option_core::netsim::sim::{SimConfig, Simulator};
use public_option_core::netsim::workload::{generate_onoff, WorkloadConfig};
use public_option_core::topology::zoo::{attach_external_isps, ExternalIspConfig};
use public_option_core::topology::{CostModel, RouterId, ZooConfig, ZooGenerator};

fn main() {
    let mut topo = ZooGenerator::new(ZooConfig::small()).generate();
    attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
    let all = LinkSet::full(topo.n_links());
    let fabric = ForwardingState::install(&topo, &all);
    let n = topo.n_routers();
    println!("fabric installed over {} links, {} routers\n", topo.n_links(), n);

    // --- Anycast ---------------------------------------------------------
    println!("=== Anycast: nearest-replica resolution ===");
    let replicas: Vec<RouterId> =
        vec![RouterId(0), RouterId::from_index(n / 2), RouterId::from_index(n - 1)];
    let group = AnycastGroup::new("cdn-frontend", replicas.clone());
    println!("replicas at {:?}", replicas);
    for client_idx in [1usize, n / 2 + 1, n - 2] {
        let client = RouterId::from_index(client_idx);
        match group.resolve(&topo, &fabric, client).expect("fabric tables are sound") {
            Some((replica, path)) => {
                let km: f64 = path.iter().map(|&l| topo.link(l).distance_km).sum();
                println!("  client {client} → replica {replica} ({} hops, {km:.0} km)", path.len());
            }
            None => println!("  client {client}: unreachable"),
        }
    }

    // --- Multicast --------------------------------------------------------
    println!("\n=== Multicast: distribution-tree savings ===");
    let source = RouterId(0);
    let subscribers: Vec<RouterId> = (1..n).map(RouterId::from_index).collect();
    let tree =
        MulticastTree::build(&fabric, source, &subscribers).expect("fabric tables are sound");
    let rate = 5.0;
    let mc = tree.bandwidth_gbps(rate);
    let uc = tree.unicast_bandwidth_gbps(&fabric, rate).expect("fabric tables are sound");
    println!(
        "source {source} → {} subscribers at {rate} Gbps:\n  multicast tree: {} links, {mc:.0} Gbps fabric load\n  unicast copies: {uc:.0} Gbps fabric load\n  saving: {:.0}%",
        subscribers.len(),
        tree.links.len(),
        100.0 * (1.0 - mc / uc)
    );
    assert!(tree.unreachable.is_empty());

    // --- QoS at posted prices ----------------------------------------------
    println!("\n=== QoS catalog (posted prices — open to every member) ===");
    let mut catalog = QosCatalog::new();
    catalog.publish(QosTier { name: "gold".into(), priority: 10, price_per_gbps: 12.0 });
    catalog.publish(QosTier { name: "silver".into(), priority: 5, price_per_gbps: 5.0 });
    for tier in catalog.tiers() {
        println!("  {}: priority +{}, ${}/Gbps/mo", tier.name, tier.priority, tier.price_per_gbps);
    }
    let a = catalog.purchase("gold", 10.0).expect("posted");
    let b = catalog.purchase("gold", 10.0).expect("posted");
    assert_eq!(a, b);
    println!(
        "  identical purchases price identically (${:.0}) — no favoritism possible",
        a.monthly_charge
    );

    // --- Diurnal on/off workload -------------------------------------------
    println!("\n=== 24h diurnal on/off workload on the fabric ===");
    let cfg = WorkloadConfig { n_flows: 300, ..Default::default() };
    let flows = generate_onoff(&topo, &cfg);
    let mut sim = Simulator::new(&topo, &all, SimConfig { horizon: 24.0, ..Default::default() })
        .expect("valid sim config");
    let n_flows = flows.len();
    for f in flows {
        sim.add_flow(f).expect("generated flows are valid");
    }
    let report = sim.run();
    println!(
        "{} flows over 24h: availability {:.2}%, offered {:.0} Gb·h, delivered {:.0} Gb·h",
        n_flows,
        report.overall_availability() * 100.0,
        report.per_flow.iter().map(|f| f.offered_gbh).sum::<f64>(),
        report.per_flow.iter().map(|f| f.delivered_gbh).sum::<f64>()
    );
}

//! Collusion probe (experiment E-C1): the §3.3 link-withholding analysis.
//!
//! "If the BPs can guess in advance what the set SL is, they can decide to
//! not offer any links not in this set ... they could potentially all
//! gain" — but the external-ISP virtual links bound the damage. This
//! example runs the auction honestly, lets the full coalition withhold
//! every non-selected link, re-runs, and reports who gained what.
//!
//! Run with: `cargo run --release --example collusion_probe`

use public_option_core::auction::collusion::withholding_experiment;
use public_option_core::auction::{GreedySelector, Market, Selector};
use public_option_core::flow::{Constraint, FeasibilityOracle, LinkSet};
use public_option_core::topology::zoo::{attach_external_isps, ExternalIspConfig};
use public_option_core::topology::{CostModel, ZooConfig, ZooGenerator};
use public_option_core::traffic::{TrafficModel, TrafficScenario};

fn main() {
    let mut topo = ZooGenerator::new(ZooConfig::small()).generate();
    // Full virtual coverage: the external ISPs attach at every router, so
    // the contract fallback bounds every pivot run even under maximal
    // withholding (the paper's assumption that A(OL − L_α) stays nonempty).
    let isp_cfg = ExternalIspConfig { n_isps: 2, attach_points: 64, ..Default::default() };
    attach_external_isps(&mut topo, &isp_cfg, &CostModel::default());
    let tm = TrafficScenario {
        model: TrafficModel::Gravity { jitter_sigma: 0.2 },
        seed: 3,
        total_gbps: 2500.0,
        cap_gbps: Some(150.0),
    }
    .generate(&topo);

    let mut market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(24);
    let report = withholding_experiment(&mut market, &tm, Constraint::BaseLoad, &selector)
        .expect("auction feasible with and without withholding");

    println!(
        "baseline:  |SL| = {}, C(SL) = ${:.0}",
        report.baseline.selected.len(),
        report.baseline.total_cost
    );
    println!(
        "colluded:  |SL| = {}, C(SL) = ${:.0}   (selected set unchanged: {})",
        report.colluded.selected.len(),
        report.colluded.total_cost,
        report.baseline.selected == report.colluded.selected
    );

    println!("\n{:<8}{:>16}{:>16}{:>12}", "BP", "payment before", "payment after", "gain");
    let mut total_before = 0.0;
    for d in &report.deltas {
        if d.payment_before > 0.0 || d.payment_after > 0.0 {
            println!(
                "{:<8}{:>16.0}{:>16.0}{:>12.0}",
                d.bp.to_string(),
                d.payment_before,
                d.payment_after,
                d.gain()
            );
        }
        total_before += d.payment_before;
    }
    let gain = report.total_gain();
    println!(
        "\ncoalition gain: ${:.0} ({:+.1}% of baseline payments)",
        gain,
        100.0 * gain / total_before.max(1.0)
    );

    // The paper's bound (§3.3): with every BP withholding, pivot
    // alternatives are the contract-priced virtual links, so no payment can
    // exceed what an all-virtual solution would cost the POC.
    let oracle = FeasibilityOracle::new(market.topo(), &tm, Constraint::BaseLoad);
    let virtual_only = LinkSet::from_links(market.topo().n_links(), market.topo().virtual_links());
    match GreedySelector::with_prune_budget(24).select(&market, &oracle, &virtual_only) {
        Some(fallback) => {
            // Per-BP Clarke bound: P_α = C_α(SL_α) + C(SL_−α) − C(SL) and
            // C(SL_−α) ≤ C(virtual-only), so every payment is capped at
            // bid + (virtual fallback − C(SL)).
            let mut worst_slack: f64 = f64::INFINITY;
            let mut all_hold = true;
            for s in &report.colluded.settlements {
                if s.payment <= 0.0 {
                    continue;
                }
                let cap = s.bid_cost + (fallback.cost - report.colluded.total_cost);
                worst_slack = worst_slack.min(cap - s.payment);
                // Small tolerance: the heuristic pivot can wobble slightly.
                if s.payment > cap * 1.02 {
                    all_hold = false;
                }
            }
            println!(
                "per-BP Clarke bound P_α ≤ C_α + (C_virt − C(SL)) with C_virt = ${:.0}: {} \
                 (tightest slack ${:.0})",
                fallback.cost,
                if all_hold { "holds for every BP" } else { "VIOLATED" },
                worst_slack
            );
        }
        None => println!("(virtual-only fallback infeasible on this instance)"),
    }
    println!(
        "the gain is finite because withdrawn alternatives are replaced in the \
         pivot runs by contract-priced virtual links — the paper's bound on \
         collusion damage (§3.3)."
    );
}

//! Figure 2 reproduction (experiment E-F2): payment-over-bid margins of
//! the five largest BPs under the three feasibility constraints.
//!
//! Paper setup (§3.3): TopologyZoo-derived network merged into 20 BPs,
//! POC routers at ≥4-BP colocation points, 4674 logical links, synthetic
//! traffic matrix; Constraint #1 = handle the load, #2 = under any single
//! path failure, #3 = with a path down between each pair.
//!
//! Run with: `cargo run --release --example fig2_auction`
//! (`--quick` on the small instance for a fast sanity pass.)

use public_option_core::auction::{run_auction, GreedySelector, Market};
use public_option_core::flow::Constraint;
use public_option_core::topology::zoo::{attach_external_isps, ExternalIspConfig};
use public_option_core::topology::{CostModel, TopologyStats, ZooConfig, ZooGenerator};
use public_option_core::traffic::TrafficScenario;
use std::time::Instant;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (zoo_cfg, total_gbps, stride) =
        if quick { (ZooConfig::small(), 2000.0, 8) } else { (ZooConfig::paper(), 24000.0, 32) };

    let mut topo = ZooGenerator::new(zoo_cfg).generate();
    attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
    let stats = TopologyStats::compute(&topo);
    let (min_share, max_share) = stats.share_range();
    println!(
        "instance: {} BPs, {} logical links (paper: 20 / 4674), shares {:.1}%–{:.1}% (paper: ~2%–12%)",
        stats.n_bps,
        stats.n_bp_links,
        min_share * 100.0,
        max_share * 100.0
    );

    let tm = TrafficScenario { total_gbps, ..TrafficScenario::paper_default() }.generate(&topo);
    println!("traffic: {} flows, {:.0} Gbps offered\n", tm.n_flows(), tm.total());

    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(16);
    let constraints = [
        Constraint::BaseLoad,
        Constraint::SinglePathFailure { sample_every: stride },
        Constraint::AllPairsBackup,
    ];

    // Collect PoB per (constraint, BP) for the five largest BPs — the
    // series Figure 2 plots.
    let mut table: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for c in constraints {
        let t0 = Instant::now();
        match run_auction(&market, &tm, c, &selector) {
            Ok(out) => {
                println!(
                    "constraint {}: |SL| = {}, C(SL) = ${:.0}/mo  ({:.1?})",
                    c.label(),
                    out.selected.len(),
                    out.total_cost,
                    t0.elapsed()
                );
                let series =
                    out.top_pob(5).into_iter().map(|(bp, pob)| (bp.to_string(), pob)).collect();
                table.push((c.label().to_string(), series));
            }
            Err(e) => {
                println!("constraint {} infeasible: {e}", c.label());
            }
        }
    }

    // Figure 2: grouped bars, one group per BP, one bar per constraint.
    println!("\n=== Figure 2: payment-over-bid margins, five largest BPs ===");
    print!("{:<10}", "BP");
    for (label, _) in &table {
        print!("{label:>12}");
    }
    println!();
    if let Some((_, first)) = table.first() {
        for (i, (bp, _)) in first.iter().enumerate() {
            print!("{bp:<10}");
            for (_, series) in &table {
                match series.get(i) {
                    Some((_, pob)) => print!("{pob:>12.4}"),
                    None => print!("{:>12}", "-"),
                }
            }
            println!();
        }
    }
    println!(
        "\npaper shape: margins in a low band (0–0.2) with high cross-BP and \
         cross-constraint variation — \"a good reason for the POC to use an \
         open algorithm\" (§3.3)."
    );
}

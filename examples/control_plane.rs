//! Control-plane demo: the POC controller serving real TCP clients.
//!
//! Spins up the controller on an ephemeral port, then drives it from
//! three clients: two LMPs attaching (concurrently, on their own threads)
//! and reporting usage, and an operator running the auction round and
//! billing cycle.
//!
//! Run with: `cargo run --release --example control_plane`

use public_option_core::core::poc::{Poc, PocConfig};
use public_option_core::ctrlplane::{AttachRole, PocClient, PocServer};
use public_option_core::topology::zoo::{attach_external_isps, ExternalIspConfig};
use public_option_core::topology::{CostModel, RouterId, ZooConfig, ZooGenerator};
use public_option_core::traffic::{TrafficModel, TrafficScenario};

fn main() {
    // Controller state: a small synthetic POC.
    let mut topo = ZooGenerator::new(ZooConfig::small()).generate();
    attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
    let tm = TrafficScenario {
        model: TrafficModel::Gravity { jitter_sigma: 0.2 },
        seed: 5,
        total_gbps: 1500.0,
        cap_gbps: Some(150.0),
    }
    .generate(&topo);
    let n_routers = topo.n_routers();
    let poc = Poc::new(topo, PocConfig::default());

    let (server, handle) = PocServer::bind("127.0.0.1:0", poc, tm).expect("bind controller");
    let addr = handle.local_addr;
    println!("POC controller listening on {addr}");
    let server_thread = std::thread::spawn(move || server.run());

    // Two LMPs attach concurrently.
    let lmp_thread_a = std::thread::spawn(move || {
        let mut c = PocClient::connect(addr).expect("connect");
        c.ping().expect("ping");
        let id = c.attach("lmp-alpha", AttachRole::Lmp { router: RouterId(0) }).expect("attach");
        println!("lmp-alpha attached as {id}");
        (c, id)
    });
    let lmp_thread_b = std::thread::spawn(move || {
        let mut c = PocClient::connect(addr).expect("connect");
        let id = c
            .attach("lmp-beta", AttachRole::Lmp { router: RouterId::from_index(n_routers - 1) })
            .expect("attach");
        println!("lmp-beta attached as {id}");
        (c, id)
    });
    let (mut client_a, lmp_a) = lmp_thread_a.join().expect("thread");
    let (mut client_b, lmp_b) = lmp_thread_b.join().expect("thread");

    // Operator runs the auction round.
    let mut operator = PocClient::connect(addr).expect("connect");
    let outcome = operator.run_auction().expect("auction");
    println!(
        "auction done: {} links leased, C(SL) = ${:.0}, VCG payments ${:.0}",
        outcome.n_selected_links, outcome.total_cost, outcome.total_payments
    );

    // Members see the installed fabric.
    let path = client_a.path(lmp_a, lmp_b).expect("query");
    println!("fabric path lmp-alpha → lmp-beta: {} hops", path.map(|p| p.len()).unwrap_or(0));

    // Usage reports, then billing.
    client_a.report_usage(lmp_a, 120.0).expect("usage");
    client_b.report_usage(lmp_b, 80.0).expect("usage");
    let bill = operator.run_billing().expect("billing");
    println!(
        "billing period {}: outlay ${:.0}, unit price ${:.2}/Gbps, POC net ${:+.4}",
        bill.period, bill.total_outlay, bill.unit_price, bill.poc_net
    );
    for (entity, charge) in &bill.charges {
        println!("  {entity} owes ${charge:.0}");
    }
    let bal = client_a.balance(lmp_a).expect("balance");
    println!("lmp-alpha ledger balance: ${bal:.0}");

    handle.shutdown();
    let _ = server_thread.join();
    println!("controller stopped cleanly.");
}

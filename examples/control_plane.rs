//! Control-plane demo: the POC controller serving real TCP clients.
//!
//! Spins up the async controller on an ephemeral port, then drives it from
//! three concurrent clients: two LMPs attaching and reporting usage and an
//! operator running the auction round and billing cycle.
//!
//! Run with: `cargo run --release --example control_plane`

use public_option_core::core::poc::{Poc, PocConfig};
use public_option_core::ctrlplane::{AttachRole, PocClient, PocServer};
use public_option_core::topology::zoo::{attach_external_isps, ExternalIspConfig};
use public_option_core::topology::{CostModel, RouterId, ZooConfig, ZooGenerator};
use public_option_core::traffic::{TrafficModel, TrafficScenario};

#[tokio::main(flavor = "multi_thread", worker_threads = 2)]
async fn main() {
    // Controller state: a small synthetic POC.
    let mut topo = ZooGenerator::new(ZooConfig::small()).generate();
    attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
    let tm = TrafficScenario {
        model: TrafficModel::Gravity { jitter_sigma: 0.2 },
        seed: 5,
        total_gbps: 1500.0,
        cap_gbps: Some(150.0),
    }
    .generate(&topo);
    let n_routers = topo.n_routers();
    let poc = Poc::new(topo, PocConfig::default());

    let (server, handle) = PocServer::bind("127.0.0.1:0", poc, tm)
        .await
        .expect("bind controller");
    let addr = handle.local_addr;
    println!("POC controller listening on {addr}");
    let server_task = tokio::spawn(server.run());

    // Two LMPs attach concurrently.
    let lmp_task_a = tokio::spawn(async move {
        let mut c = PocClient::connect(addr).await.expect("connect");
        c.ping().await.expect("ping");
        let id = c
            .attach("lmp-alpha", AttachRole::Lmp { router: RouterId(0) })
            .await
            .expect("attach");
        println!("lmp-alpha attached as {id}");
        (c, id)
    });
    let lmp_task_b = tokio::spawn(async move {
        let mut c = PocClient::connect(addr).await.expect("connect");
        let id = c
            .attach(
                "lmp-beta",
                AttachRole::Lmp { router: RouterId::from_index(n_routers - 1) },
            )
            .await
            .expect("attach");
        println!("lmp-beta attached as {id}");
        (c, id)
    });
    let (mut client_a, lmp_a) = lmp_task_a.await.expect("task");
    let (mut client_b, lmp_b) = lmp_task_b.await.expect("task");

    // Operator runs the auction round.
    let mut operator = PocClient::connect(addr).await.expect("connect");
    let outcome = operator.run_auction().await.expect("auction");
    println!(
        "auction done: {} links leased, C(SL) = ${:.0}, VCG payments ${:.0}",
        outcome.n_selected_links, outcome.total_cost, outcome.total_payments
    );

    // Members see the installed fabric.
    let path = client_a.path(lmp_a, lmp_b).await.expect("query");
    println!(
        "fabric path lmp-alpha → lmp-beta: {} hops",
        path.map(|p| p.len()).unwrap_or(0)
    );

    // Usage reports, then billing.
    client_a.report_usage(lmp_a, 120.0).await.expect("usage");
    client_b.report_usage(lmp_b, 80.0).await.expect("usage");
    let bill = operator.run_billing().await.expect("billing");
    println!(
        "billing period {}: outlay ${:.0}, unit price ${:.2}/Gbps, POC net ${:+.4}",
        bill.period, bill.total_outlay, bill.unit_price, bill.poc_net
    );
    for (entity, charge) in &bill.charges {
        println!("  {entity} owes ${charge:.0}");
    }
    let bal = client_a.balance(lmp_a).await.expect("balance");
    println!("lmp-alpha ledger balance: ${bal:.0}");

    handle.shutdown();
    let _ = server_task.await;
    println!("controller stopped cleanly.");
}

//! Section 4 reproduction (experiments E-W1, E-B1, E-L1, E-EQ): the
//! economics of network neutrality.
//!
//! Prints, for a representative economy of incumbent/entrant CSPs and
//! LMPs:
//!   1. Lemma 1: the price response p*(t) rising with the termination fee;
//!   2. the welfare comparison NN vs UR-bargaining vs UR-unilateral;
//!   3. the §4.5 incumbent advantage: per-LMP Nash-bargained fees;
//!   4. entry deterrence: the innovation cost of the fee regime (E-I1);
//!   5. the §4.5 renegotiation fixed points (E-EQ).
//!
//! Run with: `cargo run --release --example neutrality_welfare`

use public_option_core::econ::entry::{deterrence_band, max_viable_entry_cost};
use public_option_core::econ::lemma::{is_strictly_increasing, price_response_curve};
use public_option_core::econ::{bargaining_equilibrium, Demand, Economy, Exponential, Regime};

fn main() {
    // --- 1. Lemma 1 (E-L1) ---------------------------------------------
    println!("=== Lemma 1: p*(t) is strictly increasing ===");
    let demand = Exponential::new(0.1);
    let curve = price_response_curve(&demand, 20.0, 6);
    print!("t:      ");
    for (t, _) in &curve {
        print!("{t:>8.2}");
    }
    print!("\np*(t):  ");
    for (_, p) in &curve {
        print!("{p:>8.2}");
    }
    println!(
        "\nstrictly increasing: {} (exponential demand, slope 1 — closed form p* = t + 1/λ)\n",
        is_strictly_increasing(&curve, 1e-6)
    );

    // --- 2. Regime comparison (E-W1) ------------------------------------
    println!("=== Social welfare by regime (per unit consumer mass) ===");
    let economy = Economy::example();
    let reports = economy.compare_regimes();
    println!("{:<28}{:>10}{:>10}{:>10}{:>10}", "regime", "welfare", "consumer", "fees", "prices");
    for r in &reports {
        let avg_price = r.per_csp.iter().map(|c| c.price).sum::<f64>() / r.per_csp.len() as f64;
        println!(
            "{:<28}{:>10.2}{:>10.2}{:>10.2}{:>10.2}",
            r.regime.label(),
            r.total_welfare(),
            r.total_consumer_surplus(),
            r.total_fees(),
            avg_price
        );
    }
    let [nn, uni, nbs] = &reports;
    println!(
        "\nordering W_NN ≥ W_NBS ≥ W_unilateral: {} — \"termination fees strictly \
         decrease social welfare\" (§4.4)\n",
        nn.total_welfare() >= nbs.total_welfare() - 1e-9
            && nbs.total_welfare() >= uni.total_welfare() - 1e-9
    );

    // --- 3. Incumbent advantage (E-B1) -----------------------------------
    println!("=== Nash-bargained fees per LMP (t = (p − r·c)/2, §4.5) ===");
    for (s, csp) in economy.csps.iter().enumerate() {
        println!("{}:", csp.name);
        for (lmp, r, fee) in economy.per_lmp_nbs_fees(s) {
            println!("  {lmp:<24} churn r = {r:>5.2}  fee = {fee:>7.2}");
        }
    }
    println!(
        "\nincumbent LMPs (low churn) extract the highest fees; incumbent CSPs \
         (high churn threat) pay the least — the §4.5 competitive distortion."
    );

    // --- 4. Entry deterrence (E-I1): the innovation cost of fees ---------
    println!("\n=== Entry deterrence: max viable entry cost by regime ===");
    println!("{:>8}{:>12}{:>12}{:>16}", "⟨rc⟩", "K_max(NN)", "K_max(UR)", "deterred band");
    for avg_rc in [0.2, 1.0, 3.0] {
        let (k_ur, k_nn) = deterrence_band(&demand, avg_rc);
        println!("{avg_rc:>8.1}{k_nn:>12.3}{k_ur:>12.3}{:>16.3}", k_nn - k_ur);
    }
    let k_uni = max_viable_entry_cost(&demand, 0.0, Regime::UnilateralFees);
    println!(
        "under unilateral fees viability drops to K ≤ {k_uni:.3} — every innovation \
         with entry cost inside the band is foreclosed by the fee regime.\n"
    );

    // --- 5. Renegotiation fixed point (E-EQ) ----------------------------
    println!("\n=== Renegotiation fixed point t* = (p*(t*) − ⟨rc⟩)/2 ===");
    for avg_rc in [0.0, 2.0, 6.0, 12.0] {
        let out = bargaining_equilibrium(&demand, avg_rc);
        println!(
            "⟨rc⟩ = {avg_rc:>5.1}: t* = {:>6.2}, p* = {:>6.2}, converged in {} iters \
             (demand at p*: {:.3})",
            out.fee,
            out.price,
            out.iterations,
            demand.d(out.price)
        );
    }
}

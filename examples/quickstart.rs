//! Quickstart: stand up a small POC end-to-end.
//!
//! Builds a synthetic topology with external-ISP fallback, runs a VCG
//! bandwidth auction, attaches LMPs and a directly-connected CSP, simulates
//! a day of traffic on the leased fabric, and settles the books — checking
//! the §3.2 invariant that the nonprofit POC breaks even.
//!
//! Run with: `cargo run --release --example quickstart`

use public_option_core::core::entity::EntityId;
use public_option_core::core::poc::{Poc, PocConfig};
use public_option_core::netsim::sim::{SimConfig, Simulator};
use public_option_core::topology::zoo::{attach_external_isps, ExternalIspConfig};
use public_option_core::topology::{CostModel, RouterId, ZooConfig, ZooGenerator};
use public_option_core::traffic::{TrafficModel, TrafficScenario};

fn main() {
    // 1. A small synthetic WAN: ~6 BPs over 24 cities, plus one external
    //    ISP bounding the auction with contract-priced virtual links.
    let mut topo = ZooGenerator::new(ZooConfig::small()).generate();
    attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
    println!(
        "topology: {} routers, {} logical links ({} virtual)",
        topo.n_routers(),
        topo.n_links(),
        topo.virtual_links().len()
    );

    // 2. The POC's upper-bound traffic estimate.
    let scenario = TrafficScenario {
        model: TrafficModel::Gravity { jitter_sigma: 0.2 },
        seed: 7,
        total_gbps: 2000.0,
        cap_gbps: Some(150.0),
    };
    let tm = scenario.generate(&topo);
    println!("traffic matrix: {} flows, {:.0} Gbps total", tm.n_flows(), tm.total());

    // 3. Stand up the POC and run an auction round.
    let mut poc = Poc::new(topo, PocConfig::default());
    let outcome = poc.run_auction_round(&tm).expect("auction feasible");
    let payments: f64 = outcome.settlements.iter().map(|s| s.payment).sum();
    println!(
        "auction: leased {} links, C(SL) = ${:.0}/mo, VCG payments = ${:.0}/mo",
        outcome.selected.len(),
        outcome.total_cost,
        payments
    );
    for (bp, pob) in outcome.top_pob(5) {
        println!("  {bp}: payment-over-bid margin {:.3}", pob);
    }

    // 4. Members attach (LMPs sign the neutrality ToS on attach).
    let lmp_names = ["metro-west", "metro-east", "rural-coop"];
    let mut lmps: Vec<EntityId> = Vec::new();
    for (i, name) in lmp_names.iter().enumerate() {
        let router = RouterId::from_index(i % poc.topo().n_routers());
        lmps.push(poc.attach_lmp(name, router).expect("attach"));
    }
    let csp_router = RouterId::from_index(poc.topo().n_routers() - 1);
    let csp = poc.attach_direct_csp("big-video", csp_router).expect("attach");
    println!("attached {} LMPs and 1 direct CSP", lmps.len());

    // 5. A day of traffic on the leased fabric.
    let selected = poc.last_outcome().expect("ran").selected.clone();
    let mut sim =
        Simulator::new(poc.topo(), &selected, SimConfig { horizon: 24.0, ..Default::default() })
            .expect("valid sim config");
    let owners: Vec<EntityId> = lmps.iter().copied().chain([csp]).collect();
    sim.add_traffic_matrix_routed(&tm, |router| {
        // Round-robin attribution for the demo.
        Some(owners[router.index() % owners.len()])
    })
    .expect("leased fabric carries the estimate");
    let report = sim.run();
    println!(
        "simulated 24h: availability {:.4}, usage by {} members",
        report.overall_availability(),
        report.usage_by_owner.len()
    );

    // 6. Settle: members pay usage-proportional transit, BPs get their VCG
    //    payments, and the POC nets zero.
    let bill = poc.billing_cycle(&report.usage_by_owner).expect("billing");
    println!(
        "billing period {}: outlay ${:.0}, unit price ${:.2}/Gbps, POC net ${:+.6}",
        bill.period, bill.total_outlay, bill.unit_price, bill.poc_net
    );
    assert!(bill.poc_net.abs() < 1e-6, "nonprofit break-even violated");
    assert!(poc.ledger().conservation_error().abs() < 1e-9);
    println!("ledger conserves; POC breaks even. ✓");
}

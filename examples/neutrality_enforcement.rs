//! Neutrality enforcement (experiment E-N1): the §3.4 peering conditions
//! in action — both halves.
//!
//! Control plane: LMP policies are reviewed against the ToS engine, which
//! distinguishes posted-price QoS (allowed) from discrimination
//! (conditions i–iii). Data plane: a cheating LMP that silently throttles
//! a CSP leaves an observable goodput signature the auditor detects.
//!
//! Run with: `cargo run --release --example neutrality_enforcement`

use public_option_core::core::poc::{Poc, PocConfig};
use public_option_core::core::tos::{PolicyAction, PolicyBasis, PolicyMatch, TrafficPolicy};
use public_option_core::flow::LinkSet;
use public_option_core::netsim::discrim::{detect_throttling, ThrottleSpec};
use public_option_core::netsim::sim::{FlowSpec, IngressThrottle, SimConfig, Simulator};
use public_option_core::topology::builder::two_bp_square;
use public_option_core::topology::zoo::{attach_external_isps, ExternalIspConfig};
use public_option_core::topology::{CostModel, RouterId};

fn main() {
    let mut topo = two_bp_square();
    attach_external_isps(
        &mut topo,
        &ExternalIspConfig { n_isps: 1, attach_points: 4, ..Default::default() },
        &CostModel::default(),
    );
    let mut poc = Poc::new(topo, PocConfig::default());
    let lmp = poc.attach_lmp("metro-lmp", RouterId(1)).expect("attach");
    let csp = poc.attach_hosted_csp("stream-co", lmp).expect("attach");

    // --- Control plane: declared policies -------------------------------
    println!("=== ToS review of declared policies (§3.4 conditions i–iii) ===");
    let policies = [
        (
            "block stream-co unless it pays (termination-fee coercion)",
            TrafficPolicy {
                lmp,
                matches: PolicyMatch { source: Some(csp), ..PolicyMatch::any() },
                action: PolicyAction::Block,
                basis: PolicyBasis::Commercial,
            },
        ),
        (
            "throttle all video ingress",
            TrafficPolicy {
                lmp,
                matches: PolicyMatch { application: Some("video".into()), ..PolicyMatch::any() },
                action: PolicyAction::Prioritize(-10),
                basis: PolicyBasis::Commercial,
            },
        ),
        (
            "CDN cache only for our own content arm",
            TrafficPolicy {
                lmp,
                matches: PolicyMatch { source: Some(csp), ..PolicyMatch::any() },
                action: PolicyAction::ProvideEnhancement { service: "cdn".into() },
                basis: PolicyBasis::Commercial,
            },
        ),
        (
            "let only Netflix install enhancement boxes",
            TrafficPolicy {
                lmp,
                matches: PolicyMatch { source: Some(csp), ..PolicyMatch::any() },
                action: PolicyAction::AllowThirdPartyEnhancement { provider: "netflix".into() },
                basis: PolicyBasis::Commercial,
            },
        ),
        (
            "gold QoS tier at a posted price, open to all",
            TrafficPolicy {
                lmp,
                matches: PolicyMatch { application: Some("voip".into()), ..PolicyMatch::any() },
                action: PolicyAction::Prioritize(5),
                basis: PolicyBasis::PostedPrice { price: 9.99, openly_offered: true },
            },
        ),
        (
            "block a DDoS source (security)",
            TrafficPolicy {
                lmp,
                matches: PolicyMatch { source: Some(csp), ..PolicyMatch::any() },
                action: PolicyAction::Block,
                basis: PolicyBasis::Security,
            },
        ),
    ];
    for (label, policy) in &policies {
        let verdict = poc.review_policy(policy);
        println!("  {label}\n    → {verdict:?}");
    }
    println!("\nrecorded violations: {}", poc.violations().len());

    // --- Data plane: undeclared cheating --------------------------------
    println!("\n=== Observable throttling (auditor's view) ===");
    let topo = poc.topo();
    let all = LinkSet::full(topo.n_links());
    for (scenario, factor) in [("honest LMP", 1.0), ("cheating LMP", 0.4)] {
        let mut sim = Simulator::new(
            topo,
            &all,
            SimConfig {
                horizon: 1.0,
                outages: vec![],
                throttles: if factor < 1.0 {
                    vec![IngressThrottle { tag: "suspect".into(), factor }]
                } else {
                    vec![]
                },
            },
        )
        .expect("valid sim config");
        sim.add_flow(FlowSpec::persistent(RouterId(0), RouterId(1), 30.0, 1.0, "suspect"))
            .expect("valid flow");
        sim.add_flow(FlowSpec::persistent(RouterId(2), RouterId(1), 30.0, 1.0, "control"))
            .expect("valid flow");
        let report = sim.run();
        let finding = detect_throttling(&report, &ThrottleSpec::default()).expect("both classes");
        println!(
            "  {scenario}: suspect/control goodput ratio {:.2} → {}",
            finding.ratio,
            if finding.throttled { "FLAGGED (ToS breach)" } else { "clean" }
        );
    }
}

//! Failure drill (experiment E-R1): do the auction's resilience
//! constraints actually buy survivability?
//!
//! Selects link sets under Constraints #1/#2/#3, then runs the same
//! failure drill against each — the busiest links failing one after
//! another while the full traffic matrix keeps flowing. Sets selected
//! under stricter constraints should deliver more of the offered traffic.
//!
//! Run with: `cargo run --release --example failure_drill`

use public_option_core::auction::{GreedySelector, Market, Selector};
use public_option_core::flow::{Constraint, FeasibilityOracle};
use public_option_core::netsim::drill::{run_drill, DrillSpec};
use public_option_core::topology::zoo::{attach_external_isps, ExternalIspConfig};
use public_option_core::topology::{CostModel, ZooConfig, ZooGenerator};
use public_option_core::traffic::{TrafficModel, TrafficScenario};

fn main() {
    let mut topo = ZooGenerator::new(ZooConfig::small()).generate();
    attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
    let tm = TrafficScenario {
        model: TrafficModel::Gravity { jitter_sigma: 0.2 },
        seed: 11,
        total_gbps: 3000.0,
        cap_gbps: Some(150.0),
    }
    .generate(&topo);
    println!(
        "instance: {} routers, {} links, {:.0} Gbps offered\n",
        topo.n_routers(),
        topo.n_links(),
        tm.total()
    );

    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(24);
    let spec = DrillSpec { n_failures: 8, outage_hours: 1.0, gap_hours: 0.5 };

    println!(
        "{:<14}{:>8}{:>14}{:>16}{:>12}",
        "constraint", "|SL|", "cost $/mo", "availability", "reroutes"
    );
    for c in [
        Constraint::BaseLoad,
        Constraint::SinglePathFailure { sample_every: 1 },
        Constraint::AllPairsBackup,
    ] {
        let oracle = FeasibilityOracle::new(&topo, &tm, c);
        let Some(sel) = selector.select(&market, &oracle, market.offered()) else {
            println!("{:<14} infeasible", c.label());
            continue;
        };
        let drill = run_drill(&topo, &sel.links, &tm, &spec).expect("drill routable");
        println!(
            "{:<14}{:>8}{:>14.0}{:>15.2}%{:>12}",
            c.label(),
            sel.links.len(),
            sel.cost,
            drill.availability * 100.0,
            drill.total_reroutes
        );
    }
    println!(
        "\nexpected shape: availability (and cost) rise with constraint \
         stringency — resilience is what the extra lease spend buys."
    );
}

//! Quick probe: how much does tighter optimization (best-of-two selectors)
//! shrink payment-over-bid margins vs the routing-greedy alone?
//!
//! Results go to stderr as structured `poc-obs` events (one per arm).

use poc_auction::{run_auction, CompositeSelector, GreedySelector, Market, Selector};
use poc_flow::Constraint;
use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
use poc_topology::{CostModel, ZooConfig, ZooGenerator};
use poc_traffic::TrafficScenario;

fn main() {
    poc_obs::log_to_stderr();
    let mut topo = ZooGenerator::new(ZooConfig::small()).generate();
    attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
    let tm =
        TrafficScenario { total_gbps: 2500.0, ..TrafficScenario::paper_default() }.generate(&topo);
    let market = Market::truthful(&topo, 3.0);
    let arms: Vec<(&str, Box<dyn Selector>)> = vec![
        ("routing-greedy", Box::new(GreedySelector::with_prune_budget(16))),
        ("composite", Box::new(CompositeSelector::standard(16))),
    ];
    for (label, sel) in arms {
        match run_auction(&market, &tm, Constraint::BaseLoad, sel.as_ref()) {
            Ok(out) => {
                let pobs: Vec<f64> = out.settlements.iter().filter_map(|s| s.pob()).collect();
                let mean = pobs.iter().sum::<f64>() / pobs.len().max(1) as f64;
                poc_obs::event!(
                    "probe.arm",
                    selector = label,
                    total_cost = out.total_cost,
                    selected = out.selected.len(),
                    mean_pob = mean,
                    max_pob = pobs.iter().copied().fold(f64::MIN, f64::max),
                );
            }
            Err(e) => {
                poc_obs::event!("probe.arm_failed", selector = label, error = e.to_string());
            }
        }
    }
}

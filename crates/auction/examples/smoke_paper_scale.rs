//! Paper-scale smoke test: one VCG round per constraint with timing.
//! (Development tool; the polished reproduction is `examples/fig2_auction.rs`
//! at the workspace root.)
//!
//! Progress goes to stderr as structured `poc-obs` events, so stdout stays
//! clean and the lines can be grepped/parsed like any other run log.

use poc_auction::{run_auction, GreedySelector, Market};
use poc_flow::Constraint;
use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
use poc_topology::{CostModel, ZooConfig, ZooGenerator};
use poc_traffic::TrafficScenario;
use std::time::Instant;

fn main() {
    poc_obs::log_to_stderr();
    let t0 = Instant::now();
    let mut topo = ZooGenerator::new(ZooConfig::paper()).generate();
    attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
    let tm = TrafficScenario::paper_default().generate(&topo);
    poc_obs::event!(
        "smoke.generated",
        gen_ms = t0.elapsed().as_secs_f64() * 1e3,
        links = topo.n_links(),
        routers = topo.n_routers(),
        tm_total = tm.total(),
    );

    let market = Market::truthful(&topo, 3.0);
    let sel = GreedySelector::with_prune_budget(16);
    for c in [
        Constraint::BaseLoad,
        Constraint::SinglePathFailure { sample_every: 32 },
        Constraint::AllPairsBackup,
    ] {
        let t1 = Instant::now();
        match run_auction(&market, &tm, c, &sel) {
            Ok(out) => {
                poc_obs::event!(
                    "smoke.round",
                    constraint = c.label(),
                    round_ms = t1.elapsed().as_secs_f64() * 1e3,
                    selected = out.selected.len(),
                    total_cost = out.total_cost,
                );
                for (bp, pob) in out.top_pob(5) {
                    poc_obs::event!("smoke.top_pob", bp = format!("{bp}"), pob = pob);
                }
            }
            Err(e) => {
                poc_obs::event!(
                    "smoke.round_failed",
                    constraint = c.label(),
                    error = e.to_string(),
                );
            }
        }
    }
}

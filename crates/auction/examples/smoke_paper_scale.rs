//! Paper-scale smoke test: one VCG round per constraint with timing.
//! (Development tool; the polished reproduction is `examples/fig2_auction.rs`
//! at the workspace root.)

use poc_auction::{run_auction, GreedySelector, Market};
use poc_flow::Constraint;
use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
use poc_topology::{CostModel, ZooConfig, ZooGenerator};
use poc_traffic::TrafficScenario;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    let mut topo = ZooGenerator::new(ZooConfig::paper()).generate();
    attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
    let tm = TrafficScenario::paper_default().generate(&topo);
    println!(
        "gen: {:?} links={} routers={} tm_total={}",
        t0.elapsed(),
        topo.n_links(),
        topo.n_routers(),
        tm.total()
    );

    let market = Market::truthful(&topo, 3.0);
    let sel = GreedySelector::with_prune_budget(16);
    for c in [
        Constraint::BaseLoad,
        Constraint::SinglePathFailure { sample_every: 32 },
        Constraint::AllPairsBackup,
    ] {
        let t1 = Instant::now();
        match run_auction(&market, &tm, c, &sel) {
            Ok(out) => {
                println!(
                    "{} done in {:?}: |SL|={} C(SL)={:.0}",
                    c.label(),
                    t1.elapsed(),
                    out.selected.len(),
                    out.total_cost
                );
                for (bp, pob) in out.top_pob(5) {
                    println!("  {bp} PoB={pob:.4}");
                }
            }
            Err(e) => println!("{} failed: {e}", c.label()),
        }
    }
}

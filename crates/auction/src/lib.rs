//! The POC's strategy-proof bandwidth auction (paper §3.3).
//!
//! Each Bandwidth Provider α offers a set of links `L_α` with a minimal
//! acceptable price for each subset (`C_α : 2^{L_α} → $`, non-additive
//! pricing allowed). External ISPs contribute contract-priced *virtual
//! links* `VL`. Over the offered set `OL = VL ∪ ⋃_α L_α` the POC picks the
//! cheapest subset that satisfies its feasibility constraints,
//!
//! ```text
//! SL = argmin C(L)  where  L ∈ A(OL),
//! ```
//!
//! and pays each BP by the Clarke pivot rule,
//!
//! ```text
//! P_α = C_α(SL_α) + ( C(SL_−α) − C(SL) ),
//! ```
//!
//! where `SL_−α` re-runs the selection with α's links withdrawn. The pivot
//! term makes truthful cost revelation a dominant strategy (for an exact
//! optimizer) and Figure 2 reports the resulting *payment-over-bid* margins
//! `PoB = (P_α − C_α(SL_α)) / C_α(SL_α)`.
//!
//! Module map: [`bids`] the bid language, [`market`] the offered-link
//! market, [`select`] cheapest-acceptable-set optimizers (greedy+prune for
//! paper scale, exhaustive for tests), [`vcg`] payments and outcomes,
//! [`collusion`] the §3.3 link-withholding experiments.

pub mod bids;
pub mod collusion;
pub mod market;
pub mod select;
pub mod vcg;

pub use bids::{BpBid, SubsetPricing};
pub use market::{Market, MarketError};
pub use select::{
    CompositeSelector, ExhaustiveSelector, ForwardGreedySelector, GreedySelector, SelectionResult,
    Selector,
};
pub use vcg::{
    run_auction, run_auction_opts, run_auction_with, AuctionOutcome, BpSettlement, PivotMode,
    PivotOracle, RoundOptions,
};

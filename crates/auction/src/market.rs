//! The offered-link market: `OL = VL ∪ ⋃_α L_α` with its cost function.
//!
//! A [`Market`] assembles the BP bids and the virtual-link contract prices
//! over a topology, exposes the total declared cost
//! `C(L) = Σ_α C_α(L ∩ L_α) + C_v(L ∩ VL)`, and can withdraw a BP
//! (`OL − L_α`) for the Clarke pivot computation.

use crate::bids::BpBid;
use poc_flow::LinkSet;
use poc_topology::{BpId, LinkId, LinkOwner, PocTopology};
use std::collections::BTreeMap;

/// Errors assembling or mutating a market from bids.
#[derive(Clone, Debug, PartialEq)]
pub enum MarketError {
    /// A bid's pricing failed its internal sanity checks.
    InvalidPricing { bp: BpId, reason: String },
    /// A bid came from a BP that owns no links in the topology.
    UnknownBp(BpId),
    /// A bid covers more or fewer links than the BP actually offers.
    CoverageMismatch { bp: BpId },
}

impl std::fmt::Display for MarketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MarketError::InvalidPricing { bp, reason } => {
                write!(f, "invalid pricing in bid of {bp}: {reason}")
            }
            MarketError::UnknownBp(bp) => write!(f, "bid from {bp} which owns no links"),
            MarketError::CoverageMismatch { bp } => {
                write!(f, "bid of {bp} must cover exactly its offered links")
            }
        }
    }
}

impl std::error::Error for MarketError {}

/// The auction market over a topology.
pub struct Market<'t> {
    topo: &'t PocTopology,
    bids: BTreeMap<BpId, BpBid>,
    /// Per-BP offered links (universe-sized bitsets).
    bp_links: BTreeMap<BpId, LinkSet>,
    /// Virtual links and their contract prices.
    virtual_links: LinkSet,
    virtual_prices: BTreeMap<LinkId, f64>,
    /// All offered links.
    offered: LinkSet,
}

impl<'t> Market<'t> {
    /// Assemble a market from bids. Every BP-owned link in the topology
    /// must be covered by its owner's bid pricing; virtual links are priced
    /// at `premium × true_monthly_cost` — their contract price is fixed
    /// outside the auction (paper: "dictated by the long-term contract").
    ///
    /// Rejects bids with invalid pricing, bids from BPs that own no
    /// links, and bids covering only part of the BP's offered links.
    pub fn new(
        topo: &'t PocTopology,
        bids: Vec<BpBid>,
        virtual_price_factor: f64,
    ) -> Result<Self, MarketError> {
        assert!(virtual_price_factor > 0.0, "virtual price factor must be positive");
        let n = topo.n_links();
        let mut bp_links: BTreeMap<BpId, LinkSet> = BTreeMap::new();
        let mut virtual_links = LinkSet::empty(n);
        let mut virtual_prices = BTreeMap::new();
        for link in &topo.links {
            match link.owner {
                LinkOwner::Bp(bp) => {
                    bp_links.entry(bp).or_insert_with(|| LinkSet::empty(n)).insert(link.id);
                }
                LinkOwner::Virtual(_) => {
                    virtual_links.insert(link.id);
                    virtual_prices.insert(link.id, link.true_monthly_cost * virtual_price_factor);
                }
            }
        }
        let mut bid_map = BTreeMap::new();
        for bid in bids {
            bid.pricing
                .validate()
                .map_err(|reason| MarketError::InvalidPricing { bp: bid.bp, reason })?;
            let owned = bp_links.get(&bid.bp).ok_or(MarketError::UnknownBp(bid.bp))?;
            let covered = LinkSet::from_links(n, bid.pricing.covered_links());
            if covered != *owned {
                return Err(MarketError::CoverageMismatch { bp: bid.bp });
            }
            bid_map.insert(bid.bp, bid);
        }
        // BPs without a bid do not participate: their links are withdrawn.
        let mut offered = virtual_links.clone();
        for (bp, links) in &bp_links {
            if bid_map.contains_key(bp) {
                offered = offered.union(links);
            }
        }
        bp_links.retain(|bp, _| bid_map.contains_key(bp));
        Ok(Self { topo, bids: bid_map, bp_links, virtual_links, virtual_prices, offered })
    }

    /// Market where every BP bids truthfully (additive at true cost) —
    /// the baseline configuration for Figure 2. BPs with nothing to offer
    /// (possible under sparse internal wiring) simply do not participate.
    pub fn truthful(topo: &'t PocTopology, virtual_price_factor: f64) -> Self {
        let bids = topo
            .bps
            .iter()
            .filter_map(|bp| {
                let links = topo.links_of_bp(bp.id);
                if links.is_empty() {
                    return None;
                }
                Some(BpBid::truthful_additive(
                    bp.id,
                    links.into_iter().map(|l| (l, topo.link(l).true_monthly_cost)),
                ))
            })
            .collect();
        // Truthful bids cover exactly the owned links at finite true
        // costs, so assembly cannot fail.
        Self::new(topo, bids, virtual_price_factor)
            .expect("truthful bids are valid by construction")
    }

    pub fn topo(&self) -> &'t PocTopology {
        self.topo
    }

    /// All offered links `OL`.
    pub fn offered(&self) -> &LinkSet {
        &self.offered
    }

    /// Offered links of one BP (`L_α`), if it participates.
    pub fn links_of(&self, bp: BpId) -> Option<&LinkSet> {
        self.bp_links.get(&bp)
    }

    /// Participating BPs in ascending id order.
    pub fn participants(&self) -> Vec<BpId> {
        self.bids.keys().copied().collect()
    }

    /// `OL − L_α` for the pivot computation.
    pub fn offered_without(&self, bp: BpId) -> LinkSet {
        match self.bp_links.get(&bp) {
            Some(ls) => self.offered.difference(ls),
            None => self.offered.clone(),
        }
    }

    /// `C_α(L ∩ L_α)`: one BP's declared price for its share of `links`.
    pub fn bp_cost(&self, bp: BpId, links: &LinkSet) -> f64 {
        match (self.bids.get(&bp), self.bp_links.get(&bp)) {
            (Some(bid), Some(owned)) => bid.pricing.price(&links.intersection(owned)),
            _ => 0.0,
        }
    }

    /// Contract cost of the virtual links within `links`.
    pub fn virtual_cost(&self, links: &LinkSet) -> f64 {
        links.intersection(&self.virtual_links).iter().map(|l| self.virtual_prices[&l]).sum()
    }

    /// Total declared cost `C(L)`.
    pub fn total_cost(&self, links: &LinkSet) -> f64 {
        let bp_sum: f64 = self.bids.keys().map(|&bp| self.bp_cost(bp, links)).sum();
        bp_sum + self.virtual_cost(links)
    }

    /// Standalone price signal for one offered link (greedy selection's
    /// marginal-cost proxy): bid unit price for BP links, contract price
    /// for virtual links, infinity for links not offered.
    pub fn unit_price(&self, l: LinkId) -> f64 {
        if !self.offered.contains(l) {
            return f64::INFINITY;
        }
        match self.topo.link(l).owner {
            LinkOwner::Bp(bp) => self.bids[&bp].pricing.unit_price(l),
            LinkOwner::Virtual(_) => self.virtual_prices[&l],
        }
    }

    /// Replace one BP's bid, returning the previous one. Used by the
    /// strategy-proofness and collusion experiments.
    pub fn swap_bid(&mut self, bid: BpBid) -> Result<Option<BpBid>, MarketError> {
        if !self.bp_links.contains_key(&bid.bp) {
            return Err(MarketError::UnknownBp(bid.bp));
        }
        bid.pricing
            .validate()
            .map_err(|reason| MarketError::InvalidPricing { bp: bid.bp, reason })?;
        Ok(self.bids.insert(bid.bp, bid))
    }

    /// Restrict a BP's offer to `keep ⊆ L_α` (link withholding, §3.3's
    /// collusion discussion). The bid's pricing is preserved for remaining
    /// links; withheld links leave `OL`.
    pub fn withhold_links(&mut self, bp: BpId, withheld: &LinkSet) {
        let Some(owned) = self.bp_links.get_mut(&bp) else {
            return;
        };
        owned.subtract(withheld);
        self.offered.subtract(withheld);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bids::SubsetPricing;
    use poc_topology::builder::two_bp_square;

    #[test]
    fn truthful_market_prices_match_true_costs() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let all = LinkSet::full(t.n_links());
        let want: f64 = t.links.iter().map(|l| l.true_monthly_cost).sum();
        assert!((m.total_cost(&all) - want).abs() < 1e-9);
        assert_eq!(m.participants(), vec![BpId(0), BpId(1)]);
    }

    #[test]
    fn offered_without_removes_exactly_bp_links() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let without = m.offered_without(BpId(0));
        assert_eq!(without.len(), 3);
        for l in t.links_of_bp(BpId(0)) {
            assert!(!without.contains(l));
        }
        for l in t.links_of_bp(BpId(1)) {
            assert!(without.contains(l));
        }
    }

    #[test]
    fn bp_cost_only_counts_own_share() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let all = LinkSet::full(t.n_links());
        let bp0: f64 = t.links_of_bp(BpId(0)).iter().map(|&l| t.link(l).true_monthly_cost).sum();
        assert!((m.bp_cost(BpId(0), &all) - bp0).abs() < 1e-9);
        assert_eq!(m.bp_cost(BpId(7), &all), 0.0, "unknown BP costs nothing");
    }

    #[test]
    fn non_participating_bp_links_not_offered() {
        let t = two_bp_square();
        // Only BP1 bids.
        let bids = vec![BpBid::truthful_additive(
            BpId(1),
            t.links_of_bp(BpId(1)).into_iter().map(|l| (l, t.link(l).true_monthly_cost)),
        )];
        let m = Market::new(&t, bids, 3.0).unwrap();
        assert_eq!(m.offered().len(), 3);
        assert!(m.links_of(BpId(0)).is_none());
    }

    #[test]
    fn withholding_shrinks_offer() {
        let t = two_bp_square();
        let mut m = Market::truthful(&t, 3.0);
        let withheld = LinkSet::from_links(t.n_links(), [t.links_of_bp(BpId(0))[0]]);
        m.withhold_links(BpId(0), &withheld);
        assert_eq!(m.offered().len(), 5);
        assert_eq!(m.links_of(BpId(0)).unwrap().len(), 2);
    }

    #[test]
    fn partial_bid_coverage_rejected() {
        let t = two_bp_square();
        let links = t.links_of_bp(BpId(0));
        let bids = vec![BpBid {
            bp: BpId(0),
            pricing: SubsetPricing::Additive { per_link: [(links[0], 1.0)].into() },
        }];
        assert_eq!(
            Market::new(&t, bids, 3.0).err().unwrap(),
            MarketError::CoverageMismatch { bp: BpId(0) }
        );
    }

    #[test]
    fn bid_from_unknown_bp_rejected() {
        let t = two_bp_square();
        let bids = vec![BpBid {
            bp: BpId(9),
            pricing: SubsetPricing::Additive { per_link: [(LinkId(0), 1.0)].into() },
        }];
        assert_eq!(Market::new(&t, bids, 3.0).err().unwrap(), MarketError::UnknownBp(BpId(9)));
    }

    #[test]
    fn invalid_pricing_rejected() {
        let t = two_bp_square();
        let bids = vec![BpBid::truthful_additive(
            BpId(0),
            t.links_of_bp(BpId(0)).into_iter().map(|l| (l, -1.0)),
        )];
        match Market::new(&t, bids, 3.0).err().unwrap() {
            MarketError::InvalidPricing { bp, .. } => assert_eq!(bp, BpId(0)),
            other => panic!("expected InvalidPricing, got {other:?}"),
        }
        // Same guard on the swap path, plus the unknown-participant case.
        let mut m = Market::truthful(&t, 3.0);
        let bad = BpBid::truthful_additive(BpId(0), [(LinkId(0), f64::NAN)]);
        assert!(matches!(m.swap_bid(bad), Err(MarketError::InvalidPricing { .. })));
        let stranger = BpBid::truthful_additive(BpId(9), [(LinkId(0), 1.0)]);
        assert_eq!(m.swap_bid(stranger).unwrap_err(), MarketError::UnknownBp(BpId(9)));
    }

    #[test]
    fn swap_bid_changes_cost() {
        let t = two_bp_square();
        let mut m = Market::truthful(&t, 3.0);
        let all = LinkSet::full(t.n_links());
        let before = m.total_cost(&all);
        let inflated = BpBid::truthful_additive(
            BpId(0),
            t.links_of_bp(BpId(0)).into_iter().map(|l| (l, t.link(l).true_monthly_cost * 2.0)),
        );
        m.swap_bid(inflated).unwrap();
        let after = m.total_cost(&all);
        assert!(after > before);
    }

    #[test]
    fn unit_price_infinite_for_unoffered() {
        let t = two_bp_square();
        let mut m = Market::truthful(&t, 3.0);
        let l0 = t.links_of_bp(BpId(0))[0];
        assert!(m.unit_price(l0).is_finite());
        m.withhold_links(BpId(0), &LinkSet::from_links(t.n_links(), [l0]));
        assert_eq!(m.unit_price(l0), f64::INFINITY);
    }
}

#[cfg(test)]
mod sparse_offer_tests {
    use super::*;
    use poc_topology::zoo::{InternalStyle, ZooConfig, ZooGenerator};

    /// Ring-wired BPs can end up with no offerable links (hop bound);
    /// the truthful market must simply exclude them.
    #[test]
    fn truthful_market_skips_empty_bps() {
        let cfg = ZooConfig { internal_style: InternalStyle::Ring, ..ZooConfig::small() };
        let topo = ZooGenerator::new(cfg).generate();
        let m = Market::truthful(&topo, 3.0);
        for bp in m.participants() {
            assert!(
                !m.links_of(bp).expect("participant").is_empty(),
                "{bp} participates with no links"
            );
        }
        // Offered set matches the union of participant links exactly.
        let total: usize = m.participants().iter().map(|&b| m.links_of(b).unwrap().len()).sum();
        let virtuals = topo.virtual_links().len();
        assert_eq!(m.offered().len(), total + virtuals);
    }
}

//! Cheapest-acceptable-set optimizers: `SL = argmin C(L), L ∈ A(OL)`.
//!
//! Finding the cheapest link subset that carries a traffic matrix is
//! NP-hard (it generalizes fixed-charge network design), and the paper does
//! not prescribe an algorithm. Two selectors are provided:
//!
//! * [`GreedySelector`] — paper-scale heuristic: demands are routed
//!   largest-first over the *offered* graph with edge weights equal to a
//!   link's declared standalone price the first time it is used and ≈0
//!   afterwards (so routing naturally re-uses already-leased links); for
//!   the resilience constraints a second, primary-path-avoiding backup
//!   routing augments the set; finally a bounded reverse-prune pass drops
//!   expensive links while the set stays acceptable and cheaper.
//! * [`ExhaustiveSelector`] — exact enumeration for small instances; the
//!   ground truth for selector tests and for the strategy-proofness
//!   property tests (VCG truthfulness is only exact under exact
//!   optimization).
//!
//! Both selectors are deterministic, which matters: the paper stresses the
//! POC must "use an open algorithm so that it cannot be accused of
//! favoritism", and VCG payments difference two selection runs.

use crate::market::Market;
use poc_flow::graph::{CapacityGraph, Dir};
use poc_flow::{AcceptabilityOracle, Constraint, LinkSet, Routing};
use poc_topology::{LinkId, RouterId};
use std::collections::HashSet;

/// A selected link set with its declared cost and (for the greedy path)
/// the base routing that witnessed feasibility.
#[derive(Clone, Debug)]
pub struct SelectionResult {
    pub links: LinkSet,
    pub cost: f64,
}

/// A cheapest-acceptable-subset optimizer.
///
/// `Send + Sync` is a supertrait so one selector instance can drive the
/// auction's Clarke-pivot re-selections from parallel threads (see
/// [`crate::vcg::PivotMode`]). Selectors are stateless between calls, so
/// the bound is free for all the implementations here.
pub trait Selector: Send + Sync {
    /// Pick the cheapest subset of `available` acceptable to `oracle`,
    /// priced by `market`. Returns `None` when no subset of `available` is
    /// acceptable.
    fn select(
        &self,
        market: &Market<'_>,
        oracle: &dyn AcceptabilityOracle,
        available: &LinkSet,
    ) -> Option<SelectionResult>;
}

/// Paper-scale greedy heuristic. See module docs.
#[derive(Clone, Debug)]
pub struct GreedySelector {
    /// Maximum number of tentative link removals in the prune pass.
    pub prune_budget: usize,
    /// Distance tie-break weight, $ per km; small relative to any price.
    pub epsilon_per_km: f64,
    /// Maximum splits per demand in the selection routing.
    pub max_splits: usize,
    /// Maximum targeted-augmentation rounds for the resilience constraints
    /// (each round fixes one failing scenario reported by the oracle).
    pub max_augment_rounds: usize,
}

impl Default for GreedySelector {
    fn default() -> Self {
        Self { prune_budget: 48, epsilon_per_km: 1e-4, max_splits: 16, max_augment_rounds: 64 }
    }
}

impl GreedySelector {
    pub fn with_prune_budget(budget: usize) -> Self {
        Self { prune_budget: budget, ..Self::default() }
    }

    /// Cost-aware routing of all demands over `available`, marking the
    /// links of every chosen path as selected. Returns the selected set and
    /// each flow's primary path, or `None` if some demand cannot be placed.
    fn route_selecting(
        &self,
        market: &Market<'_>,
        oracle: &dyn AcceptabilityOracle,
        available: &LinkSet,
        vetoes: Option<&[HashSet<LinkId>]>,
        selected: &mut LinkSet,
    ) -> Option<Vec<(RouterId, RouterId, Vec<LinkId>)>> {
        let topo = oracle.topo();
        let mut g = CapacityGraph::new(topo, available);
        let mut demands: Vec<(RouterId, RouterId, f64)> = oracle.tm().iter_demands().collect();
        demands.sort_by(|a, b| b.2.total_cmp(&a.2));

        let mut primaries = Vec::with_capacity(demands.len());
        for (fi, (src, dst, demand)) in demands.into_iter().enumerate() {
            let veto_ok = |l: LinkId| match vetoes {
                Some(v) => !v[fi].contains(&l),
                None => true,
            };
            let primary =
                self.select_demand(market, topo, &mut g, selected, &veto_ok, src, dst, demand)?;
            primaries.push((src, dst, primary));
        }
        Some(primaries)
    }

    /// Route one demand cost-aware over `g`, marking every used link as
    /// selected. The shared kernel of [`Self::route_selecting`] and its
    /// warm variant; returns the flow's primary (largest-share) path.
    #[allow(clippy::too_many_arguments)]
    fn select_demand(
        &self,
        market: &Market<'_>,
        topo: &poc_topology::PocTopology,
        g: &mut CapacityGraph,
        selected: &mut LinkSet,
        veto_ok: &dyn Fn(LinkId) -> bool,
        src: RouterId,
        dst: RouterId,
        demand: f64,
    ) -> Option<Vec<LinkId>> {
        let mut remaining = demand;
        let mut best_path: Option<(Vec<LinkId>, f64)> = None;
        let mut splits = 0;
        while remaining > 1e-9 {
            let want = remaining;
            let weight = |l: LinkId, _dir: Dir| {
                let base = if selected.contains(l) { 0.0 } else { market.unit_price(l) };
                base + self.epsilon_per_km * topo.link(l).distance_km
            };
            let path = g
                .shortest_path(src, dst, weight, |l, dir| {
                    veto_ok(l) && g.residual(l, dir) >= want - 1e-9
                })
                .or_else(|| {
                    g.shortest_path(src, dst, weight, |l, dir| {
                        veto_ok(l) && g.residual(l, dir) > 1e-9
                    })
                })?;
            let dirs = g.path_dirs(src, &path);
            let bottleneck = path
                .iter()
                .zip(&dirs)
                .map(|(&l, &d)| g.residual(l, d))
                .fold(f64::INFINITY, f64::min);
            let amount = remaining.min(bottleneck);
            if amount <= 1e-9 {
                return None;
            }
            for (&l, &d) in path.iter().zip(&dirs) {
                g.consume(l, d, amount);
                selected.insert(l);
            }
            remaining -= amount;
            splits += 1;
            match &best_path {
                Some((_, a)) if *a >= amount => {}
                _ => best_path = Some((path, amount)),
            }
            if splits > self.max_splits && remaining > 1e-9 {
                return None;
            }
        }
        best_path.map(|(p, _)| p)
    }

    /// Warm-started phase 1: instead of cost-aware-routing the entire
    /// matrix, reuse every witness flow whose paths are still active in
    /// `available` (pre-consuming their capacity and marking their links
    /// selected) and route only the invalidated flows with the normal
    /// cost-aware kernel. Returns `None` — and the caller falls back to
    /// the full [`Self::route_selecting`] — when the witness does not
    /// match this instance's demands or an invalidated flow cannot be
    /// placed on the residual capacities.
    fn route_selecting_warm(
        &self,
        market: &Market<'_>,
        oracle: &dyn AcceptabilityOracle,
        available: &LinkSet,
        witness: &Routing,
        selected: &mut LinkSet,
    ) -> Option<Vec<(RouterId, RouterId, Vec<LinkId>)>> {
        let topo = oracle.topo();
        // The witness must cover exactly this instance's demand list (same
        // largest-first order the cold phase routes in). A witness from a
        // different matrix cannot seed this selection.
        let mut demands: Vec<(RouterId, RouterId, f64)> = oracle.tm().iter_demands().collect();
        demands.sort_by(|a, b| b.2.total_cmp(&a.2));
        if witness.flows.len() != demands.len() {
            return None;
        }
        for (f, &(src, dst, demand)) in witness.flows.iter().zip(&demands) {
            if f.src != src || f.dst != dst || (f.demand_gbps - demand).abs() > 1e-9 {
                return None;
            }
        }

        let mut g = CapacityGraph::new(topo, available);
        let alive: Vec<bool> = witness
            .flows
            .iter()
            .map(|f| f.paths.iter().all(|(path, _)| path.iter().all(|&l| available.contains(l))))
            .collect();
        // Survivors keep their witness paths: consume their capacity first
        // (they were simultaneously feasible, so this cannot over-commit)
        // and lease every link they ride.
        for (f, &ok) in witness.flows.iter().zip(&alive) {
            if !ok {
                continue;
            }
            for (path, amount) in &f.paths {
                let dirs = g.path_dirs(f.src, path);
                for (&l, &d) in path.iter().zip(&dirs) {
                    g.consume(l, d, *amount);
                    selected.insert(l);
                }
            }
        }
        // Invalidated flows are re-routed with the cost-aware kernel, in
        // the same largest-first order the cold phase uses.
        let mut primaries = Vec::with_capacity(witness.flows.len());
        for (f, &ok) in witness.flows.iter().zip(&alive) {
            let primary = if ok {
                let mut best: Option<(&Vec<LinkId>, f64)> = None;
                for (path, amount) in &f.paths {
                    match &best {
                        Some((_, a)) if *a >= *amount => {}
                        _ => best = Some((path, *amount)),
                    }
                }
                best.expect("witness flow has at least one path").0.clone()
            } else {
                self.select_demand(
                    market,
                    topo,
                    &mut g,
                    selected,
                    &|_| true,
                    f.src,
                    f.dst,
                    f.demand_gbps,
                )?
            };
            primaries.push((f.src, f.dst, primary));
        }
        Some(primaries)
    }

    /// Provision extra capacity between a failing pair: route
    /// `boost × demand(pair)` (both directions, at least one capacity
    /// quantum) over the offered graph while avoiding the pair's current
    /// shortest path inside `selected`, with cost-aware weights. Returns
    /// whether any new link entered `selected`.
    fn augment_pair(
        &self,
        market: &Market<'_>,
        oracle: &dyn AcceptabilityOracle,
        available: &LinkSet,
        pair: (RouterId, RouterId),
        boost: f64,
        selected: &mut LinkSet,
    ) -> bool {
        let topo = oracle.topo();
        let (p, q) = pair;
        let demand = oracle.tm().demand(p, q) + oracle.tm().demand(q, p);
        let want = (demand * boost).max(1.0);

        // The pair's primary corridor to avoid: its distance-shortest path
        // within the currently selected links.
        let sel_graph = CapacityGraph::new(topo, selected);
        let primary: HashSet<LinkId> = sel_graph
            .shortest_path(p, q, |l, _| topo.link(l).distance_km, |_, _| true)
            .map(|path| path.into_iter().collect())
            .unwrap_or_default();

        let g = CapacityGraph::new(topo, available);
        let weight = |l: LinkId, _dir: Dir| {
            let base = if selected.contains(l) { 0.0 } else { market.unit_price(l) };
            base + self.epsilon_per_km * topo.link(l).distance_km
        };
        // Attempt 1: cheapest disjoint path with a big-enough single link
        // capacity; may ride existing selected links.
        let path1 = g
            .shortest_path(p, q, weight, |l, _| {
                !primary.contains(&l) && topo.link(l).capacity_gbps >= want
            })
            .or_else(|| g.shortest_path(p, q, weight, |l, _| !primary.contains(&l)));
        let path1_grows =
            path1.as_ref().is_some_and(|path| path.iter().any(|l| !selected.contains(*l)));
        // Attempt 2 (only needed when attempt 1 re-uses only already-
        // selected capacity, which verification just proved insufficient):
        // lease a genuinely new corridor built from unselected links only.
        let path2 = if path1_grows {
            None
        } else {
            g.shortest_path(p, q, weight, |l, _| {
                !primary.contains(&l) && !selected.contains(l) && topo.link(l).capacity_gbps >= want
            })
            .or_else(|| {
                g.shortest_path(p, q, weight, |l, _| !primary.contains(&l) && !selected.contains(l))
            })
        };
        let adopted = if path1_grows { path1 } else { path2 };
        let Some(path) = adopted else { return false };
        let mut grew = false;
        for l in path {
            if !selected.contains(l) {
                selected.insert(l);
                grew = true;
            }
        }
        grew
    }

    /// Reverse prune: try dropping the most expensive selected links while
    /// the set stays acceptable *and* strictly cheaper.
    fn prune(
        &self,
        market: &Market<'_>,
        oracle: &dyn AcceptabilityOracle,
        links: LinkSet,
    ) -> LinkSet {
        prune_links(market, oracle, links, self.prune_budget)
    }
}

/// Reverse prune shared by the selectors: try dropping the most expensive
/// links (up to `budget` attempts) while the set stays acceptable and
/// strictly cheaper.
fn prune_links(
    market: &Market<'_>,
    oracle: &dyn AcceptabilityOracle,
    mut links: LinkSet,
    budget: usize,
) -> LinkSet {
    let mut by_price: Vec<(f64, LinkId)> =
        links.iter().map(|l| (market.unit_price(l), l)).collect();
    by_price.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut cur_cost = market.total_cost(&links);
    for (_, l) in by_price.into_iter().take(budget) {
        let mut candidate = links.clone();
        candidate.remove(l);
        let new_cost = market.total_cost(&candidate);
        if new_cost < cur_cost - 1e-9 && oracle.acceptable(&candidate) {
            links = candidate;
            cur_cost = new_cost;
        }
    }
    links
}

/// Forward-greedy selector (ablation arm): links are ranked by declared
/// price per Gbit/s of capacity; a binary search finds the shortest
/// acceptable rank-prefix, which is then reverse-pruned. Cheap-capacity
/// first is a natural alternative construction to the routing-driven
/// [`GreedySelector`]; its weakness — it buys capacity without knowing
/// where demand actually flows — is exactly what the ablation measures.
#[derive(Clone, Debug)]
pub struct ForwardGreedySelector {
    pub prune_budget: usize,
}

impl Default for ForwardGreedySelector {
    fn default() -> Self {
        Self { prune_budget: 48 }
    }
}

impl Selector for ForwardGreedySelector {
    fn select(
        &self,
        market: &Market<'_>,
        oracle: &dyn AcceptabilityOracle,
        available: &LinkSet,
    ) -> Option<SelectionResult> {
        if !oracle.acceptable(available) {
            return None;
        }
        let topo = oracle.topo();
        let mut order: Vec<LinkId> = available.iter().collect();
        order.sort_by(|&a, &b| {
            let pa = market.unit_price(a) / topo.link(a).capacity_gbps;
            let pb = market.unit_price(b) / topo.link(b).capacity_gbps;
            pa.total_cmp(&pb).then(a.cmp(&b))
        });
        let prefix =
            |k: usize| LinkSet::from_links(available.universe(), order[..k].iter().copied());
        // Binary search the smallest acceptable prefix. Acceptability is
        // not strictly monotone under the heuristic oracle, so the result
        // is verified (and the full set is the fallback bound).
        let (mut lo, mut hi) = (1usize, order.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if oracle.acceptable(&prefix(mid)) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let mut selected = prefix(hi);
        if !oracle.acceptable(&selected) {
            selected = available.clone();
        }
        let links = prune_links(market, oracle, selected, self.prune_budget);
        let cost = market.total_cost(&links);
        Some(SelectionResult { links, cost })
    }
}

impl Selector for GreedySelector {
    fn select(
        &self,
        market: &Market<'_>,
        oracle: &dyn AcceptabilityOracle,
        available: &LinkSet,
    ) -> Option<SelectionResult> {
        let mut selected = LinkSet::empty(available.universe());

        // Phase 1: cost-aware base routing. An oracle holding a routing
        // witness (a warm pivot) seeds it: surviving flows keep their
        // paths and only the invalidated ones are re-routed. Any warm
        // mismatch falls back to routing the full matrix from scratch.
        let mut primaries = None;
        if let Some(w) = oracle.witness() {
            primaries = self.route_selecting_warm(market, oracle, available, &w, &mut selected);
            match primaries {
                Some(_) => poc_obs::counter!("auction.select.warm_start").inc(),
                None => selected = LinkSet::empty(available.universe()),
            }
        }
        let primaries = match primaries {
            Some(p) => p,
            None => self.route_selecting(market, oracle, available, None, &mut selected)?,
        };

        // Phase 2: blanket backup provisioning for the resilience
        // constraints — route every flow again avoiding its own primary
        // path on fresh capacity, a cheap first approximation of the
        // backup capacity both failure constraints need.
        if !matches!(oracle.constraint(), Constraint::BaseLoad) {
            let vetoes: Vec<HashSet<LinkId>> =
                primaries.iter().map(|(_, _, p)| p.iter().copied().collect()).collect();
            // Backup routing failure is not fatal by itself; the oracle
            // verification below decides.
            let _ = self.route_selecting(market, oracle, available, Some(&vetoes), &mut selected);
        }

        // Phase 3: verify against the real oracle and repair failing
        // scenarios in batches: every verification round reports the pairs
        // whose failure cannot be absorbed; extra capacity is provisioned
        // between each (avoiding its primary corridor) and the set is
        // re-checked. Pairs that keep failing get exponentially more
        // backup capacity.
        let mut rounds = 0;
        let mut fail_counts: std::collections::HashMap<(RouterId, RouterId), u32> =
            std::collections::HashMap::new();
        let debug = std::env::var_os("POC_SELECT_DEBUG").is_some();
        loop {
            let failures = oracle.failing_scenarios(&selected, 1024);
            if debug {
                eprintln!(
                    "[select] round {rounds}: {} failing scenarios, |SL|={} {:?}",
                    failures.len(),
                    selected.len(),
                    failures.first(),
                );
            }
            if failures.is_empty() {
                break;
            }
            rounds += 1;
            let mut grew_any = false;
            if rounds <= self.max_augment_rounds {
                for (pair, _) in failures {
                    let n = fail_counts.entry(pair).or_insert(0);
                    *n += 1;
                    let boost = f64::powi(2.0, (*n - 1).min(6) as i32);
                    if self.augment_pair(market, oracle, available, pair, boost, &mut selected) {
                        grew_any = true;
                    }
                }
            }
            if rounds > self.max_augment_rounds || !grew_any {
                // Last resort: everything offered, if that is acceptable;
                // otherwise the instance is infeasible under the oracle.
                if oracle.acceptable(available) {
                    selected = available.clone();
                    break;
                }
                return None;
            }
        }

        // Phase 4: prune.
        let links = self.prune(market, oracle, selected);
        let cost = market.total_cost(&links);
        Some(SelectionResult { links, cost })
    }
}

/// Exact enumeration over all subsets of `available`.
///
/// # Panics
/// Panics if `available` has more than [`ExhaustiveSelector::MAX_LINKS`]
/// links (the enumeration is exponential).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExhaustiveSelector;

impl ExhaustiveSelector {
    pub const MAX_LINKS: usize = 18;
}

impl Selector for ExhaustiveSelector {
    fn select(
        &self,
        market: &Market<'_>,
        oracle: &dyn AcceptabilityOracle,
        available: &LinkSet,
    ) -> Option<SelectionResult> {
        let links: Vec<LinkId> = available.iter().collect();
        assert!(
            links.len() <= Self::MAX_LINKS,
            "exhaustive selection over {} links is infeasible",
            links.len()
        );
        let mut best: Option<SelectionResult> = None;
        for mask in 0u32..(1u32 << links.len()) {
            let subset = LinkSet::from_links(
                available.universe(),
                links.iter().enumerate().filter(|(i, _)| mask >> i & 1 == 1).map(|(_, &l)| l),
            );
            let cost = market.total_cost(&subset);
            if !cost.is_finite() {
                continue;
            }
            if let Some(b) = &best {
                if cost >= b.cost - 1e-12 {
                    continue; // can't strictly improve; keeps first-found on ties
                }
            }
            if oracle.acceptable(&subset) {
                best = Some(SelectionResult { links: subset, cost });
            }
        }
        best
    }
}

/// Convenience: the base routing witnessing a selection's feasibility.
pub fn witness_routing(oracle: &dyn AcceptabilityOracle, sel: &SelectionResult) -> Option<Routing> {
    oracle.route(&sel.links)
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_flow::FeasibilityOracle;
    use poc_topology::builder::two_bp_square;
    use poc_topology::BpId;
    use poc_traffic::TrafficMatrix;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    fn light_tm(n: usize) -> TrafficMatrix {
        let mut tm = TrafficMatrix::zero(n);
        tm.set(r(0), r(1), 10.0);
        tm.set(r(2), r(3), 5.0);
        tm
    }

    #[test]
    fn greedy_matches_exhaustive_on_fixture_baseload() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let tm = light_tm(t.n_routers());
        let oracle = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        let greedy = GreedySelector::default().select(&m, &oracle, m.offered()).expect("feasible");
        let exact = ExhaustiveSelector.select(&m, &oracle, m.offered()).expect("feasible");
        assert!(
            greedy.cost <= exact.cost * 1.25 + 1e-9,
            "greedy {} vs exact {}",
            greedy.cost,
            exact.cost
        );
        assert!(oracle.acceptable(&greedy.links));
        assert!(oracle.acceptable(&exact.links));
        assert!(exact.cost <= greedy.cost + 1e-9, "exact is optimal");
    }

    #[test]
    fn resilient_selection_costs_at_least_base() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let tm = light_tm(t.n_routers());
        let sel = |c: Constraint| {
            let oracle = FeasibilityOracle::new(&t, &tm, c);
            GreedySelector::default().select(&m, &oracle, m.offered()).unwrap()
        };
        let c1 = sel(Constraint::BaseLoad);
        let c2 = sel(Constraint::SinglePathFailure { sample_every: 1 });
        let c3 = sel(Constraint::AllPairsBackup);
        assert!(c2.cost >= c1.cost - 1e-9, "c2 {} >= c1 {}", c2.cost, c1.cost);
        assert!(c3.cost >= c1.cost - 1e-9, "c3 {} >= c1 {}", c3.cost, c1.cost);
    }

    #[test]
    fn selection_is_deterministic() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let tm = light_tm(t.n_routers());
        let oracle = FeasibilityOracle::new(&t, &tm, Constraint::AllPairsBackup);
        let a = GreedySelector::default().select(&m, &oracle, m.offered()).unwrap();
        let b = GreedySelector::default().select(&m, &oracle, m.offered()).unwrap();
        assert_eq!(a.links, b.links);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn infeasible_demand_returns_none() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(3), 500.0); // cut toward r3 is 120
        let oracle = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        assert!(GreedySelector::default().select(&m, &oracle, m.offered()).is_none());
        assert!(ExhaustiveSelector.select(&m, &oracle, m.offered()).is_none());
    }

    #[test]
    fn restricted_availability_is_respected() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let tm = light_tm(t.n_routers());
        let oracle = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        let without_bp0 = m.offered_without(BpId(0));
        let sel = GreedySelector::default()
            .select(&m, &oracle, &without_bp0)
            .expect("BP1 alone connects everything");
        assert!(sel.links.is_subset_of(&without_bp0));
        for l in t.links_of_bp(BpId(0)) {
            assert!(!sel.links.contains(l));
        }
    }

    #[test]
    fn prune_never_increases_cost() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let tm = light_tm(t.n_routers());
        let oracle = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        let full = m.offered().clone();
        let pruned = GreedySelector::default().prune(&m, &oracle, full.clone());
        assert!(market_cost(&m, &pruned) <= market_cost(&m, &full) + 1e-9);
        assert!(oracle.acceptable(&pruned));
    }

    fn market_cost(m: &Market<'_>, l: &LinkSet) -> f64 {
        m.total_cost(l)
    }

    #[test]
    fn exhaustive_prefers_cheaper_feasible_subset() {
        // On the fixture with a tiny demand, the optimum is a single cheap
        // link covering each demand pair (r0-r1 and r2-r3 paths).
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let tm = light_tm(t.n_routers());
        let oracle = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        let exact = ExhaustiveSelector.select(&m, &oracle, m.offered()).unwrap();
        // Optimal: links covering r0→r1 and r2→r3. Cheapest combination in
        // the fixture: r1-r2 ($2600) + r0-r2 ($2900) serves r0-r1 via r2?
        // That's 5500 vs direct r0-r1 ($4000) + r2-r3 ($3100) = 7100, vs
        // r0-r2+r1-r2 covers r0→r1 (2 hops) and then r2→r3 needs 3100.
        // Just assert optimality against a spot candidate:
        let spot =
            LinkSet::from_links(t.n_links(), [poc_topology::LinkId(0), poc_topology::LinkId(4)]);
        if oracle.acceptable(&spot) {
            assert!(exact.cost <= m.total_cost(&spot) + 1e-9);
        }
    }
}

#[cfg(test)]
mod forward_greedy_tests {
    use super::*;
    use poc_flow::FeasibilityOracle;
    use poc_topology::builder::two_bp_square;
    use poc_traffic::TrafficMatrix;

    fn fixture() -> (poc_topology::PocTopology, TrafficMatrix) {
        let t = two_bp_square();
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(RouterId(0), RouterId(1), 10.0);
        tm.set(RouterId(2), RouterId(3), 5.0);
        (t, tm)
    }

    #[test]
    fn forward_greedy_finds_acceptable_set() {
        let (t, tm) = fixture();
        let m = Market::truthful(&t, 3.0);
        let oracle = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        let sel =
            ForwardGreedySelector::default().select(&m, &oracle, m.offered()).expect("feasible");
        assert!(oracle.acceptable(&sel.links));
        // Never worse than the exact optimum by more than pruning slack on
        // this enumerable fixture.
        let exact = ExhaustiveSelector.select(&m, &oracle, m.offered()).unwrap();
        assert!(sel.cost >= exact.cost - 1e-9);
    }

    #[test]
    fn forward_greedy_deterministic_and_respects_availability() {
        let (t, tm) = fixture();
        let m = Market::truthful(&t, 3.0);
        let oracle = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        let a = ForwardGreedySelector::default().select(&m, &oracle, m.offered()).unwrap();
        let b = ForwardGreedySelector::default().select(&m, &oracle, m.offered()).unwrap();
        assert_eq!(a.links, b.links);
        assert!(a.links.is_subset_of(m.offered()));
    }

    #[test]
    fn forward_greedy_infeasible_returns_none() {
        let (t, _) = fixture();
        let m = Market::truthful(&t, 3.0);
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(RouterId(0), RouterId(3), 10_000.0);
        let oracle = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        assert!(ForwardGreedySelector::default().select(&m, &oracle, m.offered()).is_none());
    }

    #[test]
    fn forward_greedy_usable_in_vcg() {
        // The full VCG round accepts any Selector implementation.
        let (t, mut tm) = fixture();
        tm.set(RouterId(1), RouterId(2), 4.0);
        tm.set(RouterId(2), RouterId(3), 0.0);
        tm.set(RouterId(0), RouterId(1), 8.0);
        let m = Market::truthful(&t, 3.0);
        let out = crate::vcg::run_auction(
            &m,
            &tm,
            Constraint::BaseLoad,
            &ForwardGreedySelector::default(),
        )
        .expect("feasible");
        for s in &out.settlements {
            assert!(s.payment >= s.bid_cost - 1e-9);
        }
    }
}

/// Best-of composite: runs several selectors and keeps the cheapest
/// acceptable result. Still deterministic (selector order breaks ties), so
/// VCG payments remain internally consistent; the price is one full
/// selection run per member. Tighter optimization directly shrinks
/// payment-over-bid margins — Figure 2's magnitudes are sensitive to
/// exactly this knob (see EXPERIMENTS.md).
pub struct CompositeSelector {
    selectors: Vec<Box<dyn Selector>>,
}

impl CompositeSelector {
    pub fn new(selectors: Vec<Box<dyn Selector>>) -> Self {
        assert!(!selectors.is_empty(), "need at least one selector");
        Self { selectors }
    }

    /// The recommended pairing: routing-driven greedy plus forward-greedy,
    /// both with the given prune budget.
    pub fn standard(prune_budget: usize) -> Self {
        Self::new(vec![
            Box::new(GreedySelector::with_prune_budget(prune_budget)),
            Box::new(ForwardGreedySelector { prune_budget }),
        ])
    }
}

impl Selector for CompositeSelector {
    fn select(
        &self,
        market: &Market<'_>,
        oracle: &dyn AcceptabilityOracle,
        available: &LinkSet,
    ) -> Option<SelectionResult> {
        let mut best: Option<SelectionResult> = None;
        for s in &self.selectors {
            if let Some(candidate) = s.select(market, oracle, available) {
                let better = match &best {
                    None => true,
                    Some(b) => candidate.cost < b.cost - 1e-9,
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod composite_tests {
    use super::*;
    use poc_flow::FeasibilityOracle;
    use poc_topology::builder::two_bp_square;
    use poc_traffic::TrafficMatrix;

    #[test]
    fn composite_never_worse_than_either_arm() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(RouterId(0), RouterId(1), 10.0);
        tm.set(RouterId(2), RouterId(3), 5.0);
        let oracle = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        let a = GreedySelector::default().select(&m, &oracle, m.offered()).unwrap();
        let b = ForwardGreedySelector::default().select(&m, &oracle, m.offered()).unwrap();
        let c = CompositeSelector::standard(48).select(&m, &oracle, m.offered()).unwrap();
        assert!(c.cost <= a.cost + 1e-9);
        assert!(c.cost <= b.cost + 1e-9);
        assert!(oracle.acceptable(&c.links));
    }

    #[test]
    fn composite_none_when_all_arms_fail() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(RouterId(0), RouterId(3), 10_000.0);
        let oracle = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        assert!(CompositeSelector::standard(8).select(&m, &oracle, m.offered()).is_none());
    }
}

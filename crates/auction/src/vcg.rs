//! VCG (Clarke-pivot) payments and the auction outcome (paper §3.3).
//!
//! After selecting `SL`, each participating BP α is paid
//!
//! ```text
//! P_α = C_α(SL_α) + ( C(SL_−α) − C(SL) )
//! ```
//!
//! where `SL_−α` is the selection when α withdraws. Figure 2 plots the
//! payment-over-bid margin `PoB_α = (P_α − C_α(SL_α)) / C_α(SL_α)` for the
//! five largest BPs under the three constraints.
//!
//! With an exact optimizer the pivot term `C(SL_−α) − C(SL)` is always
//! ≥ 0; with the paper-scale heuristic it can come out slightly negative
//! (the heuristic may find a marginally better set on the smaller offer).
//! Payments clamp the pivot at zero — a BP is never paid below its bid —
//! and the raw pivot is retained in [`BpSettlement::raw_pivot`] for
//! diagnostics.

use crate::market::Market;
use crate::select::{SelectionResult, Selector};
use poc_flow::{
    Constraint, FeasibilityCache, FeasibilityOracle, LinkSet, Routing, WarmConfig, WarmOracle,
};
use poc_topology::BpId;
use poc_traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};

/// How the per-BP Clarke-pivot re-selections are scheduled.
///
/// The pivot runs are independent of each other (each re-selects over
/// `OL − L_α` with fixed inputs), so they parallelize without changing
/// results: both modes produce bit-identical settlements, asserted by the
/// `vcg_pivot_modes_agree` property test. Cold feasibility verdicts are
/// memoized in a [`FeasibilityCache`] shared across the pivot runs in
/// either mode; warm pivots ([`PivotOracle::Warm`]) keep per-pivot state
/// instead, seeded identically in both modes, so parity still holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub enum PivotMode {
    /// One pivot at a time, ascending BP id.
    Sequential,
    /// One thread per participating BP (scoped threads).
    #[default]
    Parallel,
}

/// Which acceptability oracle the per-BP pivot re-selections use.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum PivotOracle {
    /// From-scratch [`FeasibilityOracle`] sharing the round's verdict
    /// cache. Every probe re-routes the full traffic matrix.
    Cold,
    /// Per-pivot [`WarmOracle`] seeded with the round's accepted routing:
    /// probes re-route only the flows the candidate set invalidated,
    /// falling back to a cold evaluation when more than
    /// `max_invalid_frac` of them are hit (see
    /// [`poc_flow::WarmConfig::max_invalid_frac`]). Warm accepts carry a
    /// genuine routing witness, so verdicts may only be *more* complete
    /// than cold ones, never less sound; each pivot's oracle is private
    /// and deterministically seeded, keeping sequential and parallel
    /// modes bit-identical.
    Warm { max_invalid_frac: f64 },
}

impl Default for PivotOracle {
    fn default() -> Self {
        PivotOracle::Warm { max_invalid_frac: WarmConfig::default().max_invalid_frac }
    }
}

/// Scheduling and oracle options for one auction round.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct RoundOptions {
    pub mode: PivotMode,
    pub pivot_oracle: PivotOracle,
}

/// One BP's auction settlement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BpSettlement {
    pub bp: BpId,
    /// Links of this BP inside `SL` (`SL_α`).
    pub n_selected_links: usize,
    /// `C_α(SL_α)`: the BP's declared price for its selected links.
    pub bid_cost: f64,
    /// `C(SL_−α) − C(SL)` before clamping.
    pub raw_pivot: f64,
    /// The payment `P_α` (pivot clamped at 0).
    pub payment: f64,
}

impl BpSettlement {
    /// Payment-over-bid margin: `(P_α − C_α) / C_α`. `None` when the BP had
    /// no selected links (no bid cost to normalize by).
    pub fn pob(&self) -> Option<f64> {
        (self.bid_cost > 0.0).then(|| (self.payment - self.bid_cost) / self.bid_cost)
    }
}

/// A complete auction round result. Serializable so the control plane
/// can checkpoint the last outcome into its recovery snapshots.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AuctionOutcome {
    pub constraint: Constraint,
    /// The selected set `SL`.
    pub selected: LinkSet,
    /// `C(SL)` under the declared bids.
    pub total_cost: f64,
    /// Per-BP settlements, ascending BP id.
    pub settlements: Vec<BpSettlement>,
}

impl AuctionOutcome {
    /// Total POC outlay: Σ payments + virtual-link contract cost.
    pub fn total_outlay(&self, market: &Market<'_>) -> f64 {
        let payments: f64 = self.settlements.iter().map(|s| s.payment).sum();
        payments + market.virtual_cost(&self.selected)
    }

    /// Settlement of one BP.
    pub fn settlement(&self, bp: BpId) -> Option<&BpSettlement> {
        self.settlements.iter().find(|s| s.bp == bp)
    }

    /// `(bp, PoB)` for the `n` BPs with the largest bid cost in `SL`
    /// (Figure 2 orders the five largest by size).
    pub fn top_pob(&self, n: usize) -> Vec<(BpId, f64)> {
        let mut by_size: Vec<&BpSettlement> =
            self.settlements.iter().filter(|s| s.bid_cost > 0.0).collect();
        by_size.sort_by(|a, b| b.bid_cost.total_cmp(&a.bid_cost).then(a.bp.cmp(&b.bp)));
        by_size.into_iter().take(n).map(|s| (s.bp, s.pob().expect("bid > 0"))).collect()
    }
}

/// Errors from an auction round.
#[derive(Clone, Debug, PartialEq)]
pub enum AuctionError {
    /// No subset of the offered links is acceptable: `A(OL)` is empty.
    Infeasible,
    /// `A(OL − L_α)` is empty for the given BP — the paper assumes the
    /// constraints can be met even if any one BP stays out.
    PivotInfeasible(BpId),
}

impl std::fmt::Display for AuctionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuctionError::Infeasible => write!(f, "no acceptable link set exists (A(OL) empty)"),
            AuctionError::PivotInfeasible(bp) => {
                write!(f, "constraints unmeetable without {bp} (A(OL - L_a) empty)")
            }
        }
    }
}

impl std::error::Error for AuctionError {}

/// Run one auction round: select `SL`, then compute every BP's Clarke
/// payment by re-selecting with that BP withdrawn. Pivot runs execute in
/// parallel with warm-started oracles (the defaults of [`RoundOptions`]);
/// use [`run_auction_with`] to pick the scheduling or
/// [`run_auction_opts`] for full control.
pub fn run_auction(
    market: &Market<'_>,
    tm: &TrafficMatrix,
    constraint: Constraint,
    selector: &dyn Selector,
) -> Result<AuctionOutcome, AuctionError> {
    run_auction_opts(market, tm, constraint, selector, RoundOptions::default())
}

/// As [`run_auction`], with explicit pivot scheduling (warm pivots).
pub fn run_auction_with(
    market: &Market<'_>,
    tm: &TrafficMatrix,
    constraint: Constraint,
    selector: &dyn Selector,
    mode: PivotMode,
) -> Result<AuctionOutcome, AuctionError> {
    run_auction_opts(market, tm, constraint, selector, RoundOptions { mode, ..Default::default() })
}

/// As [`run_auction`], with explicit scheduling and pivot-oracle choice.
///
/// Metrics (global `poc-obs` registry): round wall time lands in the
/// `auction.round.sequential` / `auction.round.parallel` histogram for
/// the chosen mode, each pivot re-selection in `auction.pivot`; a
/// successful round bumps `auction.round.count` and refreshes the
/// `auction.pob.mean` gauge, a failed one bumps
/// `auction.round.infeasible`. Warm pivots additionally feed the
/// `flow.warm.reused_flows` / `flow.warm.rerouted_flows` /
/// `flow.warm.fallbacks` counters. Instrumentation is lock-free on the
/// pivot threads (pre-resolved atomic handles).
pub fn run_auction_opts(
    market: &Market<'_>,
    tm: &TrafficMatrix,
    constraint: Constraint,
    selector: &dyn Selector,
    opts: RoundOptions,
) -> Result<AuctionOutcome, AuctionError> {
    let _round = match opts.mode {
        PivotMode::Sequential => poc_obs::span!("auction.round.sequential"),
        PivotMode::Parallel => poc_obs::span!("auction.round.parallel"),
    };
    let result = run_round(market, tm, constraint, selector, opts);
    match &result {
        Ok(outcome) => {
            poc_obs::counter!("auction.round.count").inc();
            let pobs: Vec<f64> = outcome.settlements.iter().filter_map(|s| s.pob()).collect();
            if !pobs.is_empty() {
                let mean = pobs.iter().sum::<f64>() / pobs.len() as f64;
                poc_obs::gauge!("auction.pob.mean").set(mean);
            }
        }
        Err(_) => poc_obs::counter!("auction.round.infeasible").inc(),
    }
    result
}

/// The uninstrumented round body of [`run_auction_opts`].
fn run_round(
    market: &Market<'_>,
    tm: &TrafficMatrix,
    constraint: Constraint,
    selector: &dyn Selector,
    opts: RoundOptions,
) -> Result<AuctionOutcome, AuctionError> {
    // One feasibility cache for the whole round: the initial selection and
    // every cold re-selection probe heavily overlapping link sets. (Warm
    // pivot oracles never touch it — their verdicts depend on per-pivot
    // witness state and must not leak into a cache assumed pure.)
    let cache = FeasibilityCache::new();
    let oracle = FeasibilityOracle::with_cache(market.topo(), tm, constraint, &cache)
        .expect("a fresh cache has no prior instance binding");
    let sl: SelectionResult =
        selector.select(market, &oracle, market.offered()).ok_or(AuctionError::Infeasible)?;

    // Warm pivots start from the round's accepted routing: one extra full
    // evaluation of SL buys every pivot its reuse baseline. If SL somehow
    // fails to re-route (the selector accepted it, so it should not),
    // pivots simply start unseeded and answer their first probe cold.
    let pivot_seed: Option<Routing> = match opts.pivot_oracle {
        PivotOracle::Warm { .. } => oracle.route(&sl.links),
        PivotOracle::Cold => None,
    };

    // Settle trivial BPs inline; queue a pivot job per BP with links in SL.
    let mut settlements: Vec<Option<BpSettlement>> = Vec::new();
    let mut jobs: Vec<(usize, BpId, usize, f64)> = Vec::new();
    for bp in market.participants() {
        let owned = market.links_of(bp).expect("participant owns links");
        let sl_alpha = sl.links.intersection(owned);
        let bid_cost = market.bp_cost(bp, &sl.links);

        // A BP with no links in SL has marginal value 0 and is paid 0 —
        // skip the expensive pivot run.
        if sl_alpha.is_empty() {
            settlements.push(Some(BpSettlement {
                bp,
                n_selected_links: 0,
                bid_cost: 0.0,
                raw_pivot: 0.0,
                payment: 0.0,
            }));
        } else {
            jobs.push((settlements.len(), bp, sl_alpha.len(), bid_cost));
            settlements.push(None);
        }
    }

    let run_pivot = |bp: BpId, n_selected_links: usize, bid_cost: f64| {
        let _pivot = poc_obs::span!("auction.pivot", bp = bp.0);
        let without = market.offered_without(bp);
        let sl_minus = match opts.pivot_oracle {
            PivotOracle::Cold => selector.select(market, &oracle, &without),
            PivotOracle::Warm { max_invalid_frac } => {
                // A private oracle per pivot: identical seeding in both
                // modes keeps sequential/parallel bit-identical.
                let warm = WarmOracle::with_config(
                    market.topo(),
                    tm,
                    constraint,
                    WarmConfig { max_invalid_frac },
                );
                if let Some(seed) = &pivot_seed {
                    warm.seed(seed.clone());
                }
                selector.select(market, &warm, &without)
            }
        }
        .ok_or(AuctionError::PivotInfeasible(bp))?;
        let raw_pivot = sl_minus.cost - sl.cost;
        let payment = bid_cost + raw_pivot.max(0.0);
        Ok(BpSettlement { bp, n_selected_links, bid_cost, raw_pivot, payment })
    };

    let results: Vec<(usize, Result<BpSettlement, AuctionError>)> = match opts.mode {
        PivotMode::Sequential => {
            jobs.iter().map(|&(slot, bp, n, cost)| (slot, run_pivot(bp, n, cost))).collect()
        }
        PivotMode::Parallel => std::thread::scope(|scope| {
            // Capture the round's trace context before fanning out:
            // each pivot thread adopts it, so pivot spans parent to the
            // round span across the thread boundary (a spawned thread
            // starts with no context of its own).
            let ctx = poc_obs::TraceCtx::current();
            let handles: Vec<_> = jobs
                .iter()
                .map(|&(slot, bp, n, cost)| {
                    let run_pivot = &run_pivot;
                    (
                        slot,
                        scope.spawn(move || {
                            let _trace = ctx.as_ref().map(poc_obs::TraceCtx::adopt);
                            run_pivot(bp, n, cost)
                        }),
                    )
                })
                .collect();
            handles
                .into_iter()
                .map(|(slot, h)| (slot, h.join().expect("pivot thread panicked")))
                .collect()
        }),
    };

    // Surface errors in ascending BP order so both modes report the same
    // failure (parallel runs all pivots; sequential stops at the first —
    // the first is what both agree on).
    for (slot, result) in results {
        settlements[slot] = Some(result?);
    }

    Ok(AuctionOutcome {
        constraint,
        selected: sl.links,
        total_cost: sl.cost,
        settlements: settlements.into_iter().map(|s| s.expect("every slot settled")).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::{ExhaustiveSelector, GreedySelector};
    use poc_topology::builder::two_bp_square;
    use poc_topology::RouterId;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    /// Demand confined to r0/r1/r2, which both BPs can serve end-to-end
    /// (BP1 routes among them via r3), so every pivot run `OL − L_α` stays
    /// feasible without virtual links.
    fn tm(t: &poc_topology::PocTopology) -> TrafficMatrix {
        let mut m = TrafficMatrix::zero(t.n_routers());
        m.set(r(0), r(1), 10.0);
        m.set(r(1), r(2), 5.0);
        m
    }

    #[test]
    fn payments_never_below_bid() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let tm = tm(&t);
        let out = run_auction(&m, &tm, Constraint::BaseLoad, &ExhaustiveSelector).unwrap();
        for s in &out.settlements {
            assert!(s.payment >= s.bid_cost - 1e-9, "{s:?}");
            if let Some(pob) = s.pob() {
                assert!(pob >= -1e-9);
            }
        }
    }

    #[test]
    fn pivot_nonnegative_under_exact_selection() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let tm = tm(&t);
        let out = run_auction(&m, &tm, Constraint::BaseLoad, &ExhaustiveSelector).unwrap();
        for s in &out.settlements {
            assert!(s.raw_pivot >= -1e-9, "exact optimizer: pivot >= 0, got {s:?}");
        }
    }

    #[test]
    fn monopoly_links_earn_positive_margin() {
        // BP1 is the only provider reaching r3, so withdrawing it must be
        // infeasible... unless virtual links exist. Without virtual links,
        // the pivot run fails — the documented paper assumption.
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let mut demand = TrafficMatrix::zero(t.n_routers());
        demand.set(r(0), r(3), 5.0); // only BP1 reaches r3
        let err = run_auction(&m, &demand, Constraint::BaseLoad, &ExhaustiveSelector).unwrap_err();
        assert_eq!(err, AuctionError::PivotInfeasible(poc_topology::BpId(1)));
    }

    #[test]
    fn virtual_links_bound_the_monopoly() {
        use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
        use poc_topology::CostModel;
        let mut t = two_bp_square();
        attach_external_isps(
            &mut t,
            &ExternalIspConfig { n_isps: 1, attach_points: 4, ..Default::default() },
            &CostModel::default(),
        );
        let m = Market::truthful(&t, 3.0);
        let mut demand = tm(&t);
        demand.set(r(0), r(3), 5.0); // r3 reachable only via BP1 or virtual
        let out =
            run_auction(&m, &demand, Constraint::BaseLoad, &GreedySelector::default()).unwrap();
        // Now the pivot exists for both BPs; BP1's margin is bounded by the
        // (expensive) virtual alternative rather than infinite.
        let s1 = out.settlement(poc_topology::BpId(1)).unwrap();
        assert!(s1.payment.is_finite());
        if s1.bid_cost > 0.0 {
            assert!(s1.pob().unwrap() >= 0.0);
        }
    }

    #[test]
    fn unused_bp_paid_nothing() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        // Demand only between r0 and r1: BP0's cheap direct links suffice;
        // exhaustive selection will not lease BP1.
        let mut demand = TrafficMatrix::zero(t.n_routers());
        demand.set(r(0), r(1), 10.0);
        let out = run_auction(&m, &demand, Constraint::BaseLoad, &ExhaustiveSelector).unwrap();
        let s1 = out.settlement(poc_topology::BpId(1)).unwrap();
        assert_eq!(s1.n_selected_links, 0);
        assert_eq!(s1.payment, 0.0);
        assert_eq!(s1.pob(), None);
    }

    #[test]
    fn top_pob_orders_by_bid_size() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let tm = tm(&t);
        // Use virtual links so it completes.
        use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
        use poc_topology::CostModel;
        let mut t2 = t.clone();
        attach_external_isps(
            &mut t2,
            &ExternalIspConfig { n_isps: 1, attach_points: 4, ..Default::default() },
            &CostModel::default(),
        );
        let m2 = Market::truthful(&t2, 3.0);
        let out = run_auction(&m2, &tm, Constraint::BaseLoad, &GreedySelector::default()).unwrap();
        let top = out.top_pob(5);
        assert!(!top.is_empty());
        drop(m);
    }

    #[test]
    fn rounds_record_wall_time_and_pob_metrics() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let tm = tm(&t);
        let before = poc_obs::global().snapshot();
        for mode in [PivotMode::Sequential, PivotMode::Parallel] {
            run_auction_with(&m, &tm, Constraint::BaseLoad, &ExhaustiveSelector, mode).unwrap();
        }
        let after = poc_obs::global().snapshot();
        // Counters and histograms are global and monotone, so assert on
        // deltas (other tests may run concurrently).
        let hist_delta = |name: &str| {
            after.histogram(name).map_or(0, |h| h.count)
                - before.histogram(name).map_or(0, |h| h.count)
        };
        assert!(hist_delta("auction.round.sequential") >= 1);
        assert!(hist_delta("auction.round.parallel") >= 1);
        assert!(hist_delta("auction.pivot") >= 2, "both BPs pivot in each round");
        assert!(
            after.counter("auction.round.count").unwrap_or(0)
                - before.counter("auction.round.count").unwrap_or(0)
                >= 2
        );
        // Both BPs carry demand on this fixture, so the mean-PoB gauge was
        // refreshed with a finite value.
        assert!(after.gauge("auction.pob.mean").unwrap().is_finite());
    }

    #[test]
    fn infeasible_market_reports_error() {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let mut demand = TrafficMatrix::zero(t.n_routers());
        demand.set(r(0), r(3), 10_000.0);
        let err = run_auction(&m, &demand, Constraint::BaseLoad, &ExhaustiveSelector).unwrap_err();
        assert_eq!(err, AuctionError::Infeasible);
    }
}

//! Link-withholding (collusion) experiments — paper §3.3's discussion.
//!
//! VCG is vulnerable to collusion: if BPs can guess the selected set `SL`
//! in advance, a BP β can withhold its *unselected* links (`L_β − SL`).
//! That cannot shrink `C(SL_−α)` for other BPs — and can grow it — so it
//! weakly raises everyone else's payments while leaving β's own payment
//! unchanged. The external-ISP virtual links cap the damage: `C(SL_−α)`
//! never exceeds the cost of falling back to contract-priced capacity.
//!
//! [`withholding_experiment`] measures exactly this: payments before and
//! after every non-`SL` link is withdrawn.

use crate::market::Market;
use crate::select::Selector;
use crate::vcg::{run_auction, AuctionError, AuctionOutcome};
use poc_flow::{Constraint, LinkSet};
use poc_topology::BpId;
use poc_traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};

/// Per-BP payment change caused by coordinated withholding.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WithholdingDelta {
    pub bp: BpId,
    pub payment_before: f64,
    pub payment_after: f64,
}

impl WithholdingDelta {
    pub fn gain(&self) -> f64 {
        self.payment_after - self.payment_before
    }
}

/// Result of the withholding experiment.
#[derive(Clone, Debug)]
pub struct WithholdingReport {
    pub baseline: AuctionOutcome,
    pub colluded: AuctionOutcome,
    pub deltas: Vec<WithholdingDelta>,
}

impl WithholdingReport {
    /// Total extra outlay extracted by the coalition.
    pub fn total_gain(&self) -> f64 {
        self.deltas.iter().map(|d| d.gain()).sum()
    }
}

/// Run the coordinated-withholding scenario: run the auction once, then
/// have *every* BP withdraw its links outside `SL` (the coalition knows the
/// outcome) and re-run.
///
/// The rebuilt market keeps each BP's original pricing on its remaining
/// links, mirroring the paper's observation that withdrawing non-`SL` links
/// "does not change SL nor P_β".
pub fn withholding_experiment(
    market: &mut Market<'_>,
    tm: &TrafficMatrix,
    constraint: Constraint,
    selector: &dyn Selector,
) -> Result<WithholdingReport, AuctionError> {
    let baseline = run_auction(market, tm, constraint, selector)?;

    // Coalition move: withhold everything outside SL.
    for bp in market.participants() {
        let owned = market.links_of(bp).expect("participant").clone();
        let keep = owned.intersection(&baseline.selected);
        let withheld: LinkSet = owned.difference(&keep);
        if !withheld.is_empty() {
            market.withhold_links(bp, &withheld);
        }
    }

    let colluded = run_auction(market, tm, constraint, selector)?;
    let deltas = baseline
        .settlements
        .iter()
        .map(|before| {
            let after = colluded.settlement(before.bp).map(|s| s.payment).unwrap_or(0.0);
            WithholdingDelta { bp: before.bp, payment_before: before.payment, payment_after: after }
        })
        .collect();

    Ok(WithholdingReport { baseline, colluded, deltas })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::GreedySelector;
    use poc_topology::builder::two_bp_square;
    use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
    use poc_topology::{CostModel, RouterId};

    fn fixture() -> poc_topology::PocTopology {
        let mut t = two_bp_square();
        attach_external_isps(
            &mut t,
            &ExternalIspConfig { n_isps: 1, attach_points: 4, ..Default::default() },
            &CostModel::default(),
        );
        t
    }

    #[test]
    fn withholding_never_reduces_other_payments() {
        let t = fixture();
        let mut m = Market::truthful(&t, 3.0);
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(RouterId(0), RouterId(1), 10.0);
        tm.set(RouterId(0), RouterId(3), 5.0);
        let report =
            withholding_experiment(&mut m, &tm, Constraint::BaseLoad, &GreedySelector::default())
                .unwrap();
        // The paper's claim is weak monotonicity of the coalition's gain;
        // the heuristic can wobble slightly, so allow epsilon.
        assert!(report.total_gain() >= -1e-6, "coalition lost money: {}", report.total_gain());
        // Selected set itself should be unchanged: withheld links were not
        // in SL.
        assert_eq!(report.baseline.selected, report.colluded.selected);
    }

    #[test]
    fn withholding_gain_bounded_by_virtual_fallback() {
        let t = fixture();
        let mut m = Market::truthful(&t, 3.0);
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(RouterId(0), RouterId(1), 10.0);
        let report =
            withholding_experiment(&mut m, &tm, Constraint::BaseLoad, &GreedySelector::default())
                .unwrap();
        // Payments after collusion stay finite and below the cost of an
        // all-virtual solution (the contract fallback bounds the damage).
        let virtual_everything: f64 = {
            let vls = LinkSet::from_links(t.n_links(), t.virtual_links());
            m.virtual_cost(&vls)
        };
        for d in &report.deltas {
            assert!(d.payment_after.is_finite());
            assert!(d.payment_after <= virtual_everything + report.baseline.total_cost);
        }
    }
}

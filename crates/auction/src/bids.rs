//! The bid language: per-BP subset pricing `C_α`.
//!
//! The paper allows each BP to map every subset of its offered links to a
//! minimal acceptable price ("this allows the BP to offer discounts for
//! multiple links, or other non-additive variations in pricing"), with
//! unoffered subsets priced at infinity. A literal powerset map is
//! exponential, so three concrete forms are supported:
//!
//! * [`SubsetPricing::Additive`] — price of a subset is the sum of per-link
//!   prices (the baseline, and one arm of the bid-language ablation);
//! * [`SubsetPricing::VolumeDiscount`] — additive prices times a
//!   non-increasing multiplier keyed by how many links are leased: the
//!   practical non-additive form;
//! * [`SubsetPricing::Explicit`] — a literal subset→price table for small
//!   instances and for property tests of strategy-proofness.

use poc_flow::LinkSet;
use poc_topology::{BpId, LinkId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// `C_α`: a BP's minimal acceptable price for each subset of its links.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SubsetPricing {
    /// `C(S) = Σ_{l ∈ S} price[l]`.
    Additive { per_link: BTreeMap<LinkId, f64> },
    /// `C(S) = mult(|S|) · Σ_{l ∈ S} price[l]`, with `schedule` a list of
    /// `(min_links, multiplier)` thresholds, multiplier non-increasing in
    /// `min_links` (bulk discount). The applicable multiplier is that of
    /// the largest threshold ≤ |S|; below the first threshold it is 1.
    VolumeDiscount { per_link: BTreeMap<LinkId, f64>, schedule: Vec<(usize, f64)> },
    /// A literal table. Subsets absent from the table are priced at
    /// infinity (the paper's "not offered"). The empty set is always free.
    Explicit { subsets: Vec<(Vec<LinkId>, f64)> },
}

impl SubsetPricing {
    /// Price of `subset`. `subset` must only contain this BP's links; the
    /// caller ([`crate::market::Market`]) guarantees that by intersecting
    /// with `L_α` first.
    pub fn price(&self, subset: &LinkSet) -> f64 {
        if subset.is_empty() {
            return 0.0;
        }
        match self {
            SubsetPricing::Additive { per_link } => sum_prices(per_link, subset),
            SubsetPricing::VolumeDiscount { per_link, schedule } => {
                let base = sum_prices(per_link, subset);
                base * multiplier_for(schedule, subset.len())
            }
            SubsetPricing::Explicit { subsets } => {
                let want: Vec<LinkId> = subset.iter().collect();
                subsets
                    .iter()
                    .find(|(links, _)| {
                        let mut sorted = links.clone();
                        sorted.sort();
                        sorted == want
                    })
                    .map(|(_, p)| *p)
                    .unwrap_or(f64::INFINITY)
            }
        }
    }

    /// The links this pricing covers.
    pub fn covered_links(&self) -> Vec<LinkId> {
        match self {
            SubsetPricing::Additive { per_link }
            | SubsetPricing::VolumeDiscount { per_link, .. } => per_link.keys().copied().collect(),
            SubsetPricing::Explicit { subsets } => {
                let mut all: Vec<LinkId> =
                    subsets.iter().flat_map(|(ls, _)| ls.iter().copied()).collect();
                all.sort();
                all.dedup();
                all
            }
        }
    }

    /// Standalone (singleton-subset) price of one link: the per-link price
    /// for the additive forms; for explicit tables, the singleton's table
    /// price. Used by the greedy selector as the marginal-cost signal.
    pub fn unit_price(&self, l: LinkId) -> f64 {
        match self {
            SubsetPricing::Additive { per_link }
            | SubsetPricing::VolumeDiscount { per_link, .. } => {
                per_link.get(&l).copied().unwrap_or(f64::INFINITY)
            }
            SubsetPricing::Explicit { subsets } => subsets
                .iter()
                .find(|(ls, _)| ls.len() == 1 && ls[0] == l)
                .map(|(_, p)| *p)
                .unwrap_or(f64::INFINITY),
        }
    }

    /// Internal sanity checks: finite non-negative prices and a
    /// non-increasing discount schedule.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            SubsetPricing::Additive { per_link } => validate_prices(per_link),
            SubsetPricing::VolumeDiscount { per_link, schedule } => {
                validate_prices(per_link)?;
                let mut prev_thresh = 0usize;
                let mut prev_mult = 1.0f64;
                for &(thresh, mult) in schedule {
                    if thresh <= prev_thresh && prev_thresh != 0 {
                        return Err("discount thresholds must increase".into());
                    }
                    if !(mult.is_finite() && mult > 0.0 && mult <= prev_mult) {
                        return Err("discount multipliers must be non-increasing in (0,1]".into());
                    }
                    prev_thresh = thresh;
                    prev_mult = mult;
                }
                Ok(())
            }
            SubsetPricing::Explicit { subsets } => {
                for (links, p) in subsets {
                    if links.is_empty() {
                        return Err("explicit table must not price the empty set".into());
                    }
                    if !(p.is_finite() && *p >= 0.0) {
                        return Err("explicit prices must be finite and non-negative".into());
                    }
                }
                Ok(())
            }
        }
    }
}

fn sum_prices(per_link: &BTreeMap<LinkId, f64>, subset: &LinkSet) -> f64 {
    subset.iter().map(|l| per_link.get(&l).copied().unwrap_or(f64::INFINITY)).sum()
}

fn multiplier_for(schedule: &[(usize, f64)], n: usize) -> f64 {
    schedule.iter().filter(|&&(thresh, _)| n >= thresh).map(|&(_, m)| m).fold(1.0, f64::min)
}

/// One BP's complete bid: its identity, its offered links, and its pricing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BpBid {
    pub bp: BpId,
    pub pricing: SubsetPricing,
}

impl BpBid {
    /// Truthful bid: additive pricing at the links' true monthly costs.
    pub fn truthful_additive(bp: BpId, links: impl IntoIterator<Item = (LinkId, f64)>) -> Self {
        Self { bp, pricing: SubsetPricing::Additive { per_link: links.into_iter().collect() } }
    }

    /// Truthful bid with a bulk-discount schedule over true costs.
    pub fn truthful_discounted(
        bp: BpId,
        links: impl IntoIterator<Item = (LinkId, f64)>,
        schedule: Vec<(usize, f64)>,
    ) -> Self {
        Self {
            bp,
            pricing: SubsetPricing::VolumeDiscount {
                per_link: links.into_iter().collect(),
                schedule,
            },
        }
    }

    /// A copy of this bid with every price scaled by `factor` (used in the
    /// strategy-proofness experiments to model misreporting).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor.is_finite() && factor > 0.0, "scale factor must be positive");
        let pricing = match &self.pricing {
            SubsetPricing::Additive { per_link } => SubsetPricing::Additive {
                per_link: per_link.iter().map(|(&l, &p)| (l, p * factor)).collect(),
            },
            SubsetPricing::VolumeDiscount { per_link, schedule } => SubsetPricing::VolumeDiscount {
                per_link: per_link.iter().map(|(&l, &p)| (l, p * factor)).collect(),
                schedule: schedule.clone(),
            },
            SubsetPricing::Explicit { subsets } => SubsetPricing::Explicit {
                subsets: subsets.iter().map(|(ls, p)| (ls.clone(), p * factor)).collect(),
            },
        };
        Self { bp: self.bp, pricing }
    }
}

fn validate_prices(per_link: &BTreeMap<LinkId, f64>) -> Result<(), String> {
    for (l, p) in per_link {
        if !(p.is_finite() && *p >= 0.0) {
            return Err(format!("link {l} has invalid price {p}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    fn set(universe: usize, links: &[u32]) -> LinkSet {
        LinkSet::from_links(universe, links.iter().map(|&i| l(i)))
    }

    #[test]
    fn additive_prices_sum() {
        let p =
            SubsetPricing::Additive { per_link: [(l(0), 10.0), (l(1), 20.0), (l(2), 30.0)].into() };
        assert_eq!(p.price(&set(3, &[0, 2])), 40.0);
        assert_eq!(p.price(&set(3, &[])), 0.0);
        assert_eq!(p.unit_price(l(1)), 20.0);
        assert_eq!(p.unit_price(l(9)), f64::INFINITY);
    }

    #[test]
    fn volume_discount_applies_largest_threshold() {
        let p = SubsetPricing::VolumeDiscount {
            per_link: [(l(0), 10.0), (l(1), 10.0), (l(2), 10.0)].into(),
            schedule: vec![(2, 0.9), (3, 0.8)],
        };
        assert_eq!(p.price(&set(3, &[0])), 10.0);
        assert_eq!(p.price(&set(3, &[0, 1])), 18.0);
        assert_eq!(p.price(&set(3, &[0, 1, 2])), 24.0);
        p.validate().unwrap();
    }

    #[test]
    fn discount_makes_pricing_subadditive() {
        let p = SubsetPricing::VolumeDiscount {
            per_link: [(l(0), 10.0), (l(1), 14.0)].into(),
            schedule: vec![(2, 0.85)],
        };
        let both = p.price(&set(2, &[0, 1]));
        let split = p.price(&set(2, &[0])) + p.price(&set(2, &[1]));
        assert!(both < split);
    }

    #[test]
    fn explicit_table_unlisted_is_infinite() {
        let p =
            SubsetPricing::Explicit { subsets: vec![(vec![l(0)], 5.0), (vec![l(0), l(1)], 8.0)] };
        assert_eq!(p.price(&set(2, &[0])), 5.0);
        assert_eq!(p.price(&set(2, &[0, 1])), 8.0);
        assert_eq!(p.price(&set(2, &[1])), f64::INFINITY);
        assert_eq!(p.price(&set(2, &[])), 0.0, "empty set always free");
    }

    #[test]
    fn validate_rejects_increasing_discounts() {
        let bad = SubsetPricing::VolumeDiscount {
            per_link: [(l(0), 1.0)].into(),
            schedule: vec![(2, 0.8), (3, 0.9)],
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_negative_price() {
        let bad = SubsetPricing::Additive { per_link: [(l(0), -1.0)].into() };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn scaled_bid_multiplies_prices() {
        let bid = BpBid::truthful_additive(BpId(0), [(l(0), 10.0), (l(1), 20.0)]);
        let inflated = bid.scaled(1.5);
        assert_eq!(inflated.pricing.price(&set(2, &[0, 1])), 45.0);
    }

    #[test]
    fn covered_links_sorted_unique() {
        let p =
            SubsetPricing::Explicit { subsets: vec![(vec![l(2), l(0)], 1.0), (vec![l(0)], 0.5)] };
        assert_eq!(p.covered_links(), vec![l(0), l(2)]);
    }
}

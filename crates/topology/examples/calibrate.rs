use poc_topology::{TopologyStats, ZooConfig, ZooGenerator};
fn main() {
    let t = ZooGenerator::new(ZooConfig::paper()).generate();
    let s = TopologyStats::compute(&t);
    println!("{}", s.render_table());
    let (min, max) = s.share_range();
    println!(
        "links={} routers={} share range {:.1}%..{:.1}%",
        s.n_bp_links,
        s.n_routers,
        min * 100.0,
        max * 100.0
    );
}

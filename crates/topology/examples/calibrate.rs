//! Calibration check for the paper-scale synthetic topology.
//!
//! The rendered table (the deliverable) stays on stdout; the summary
//! line goes to stderr as a structured `poc-obs` event.

use poc_topology::{TopologyStats, ZooConfig, ZooGenerator};

fn main() {
    poc_obs::log_to_stderr();
    let t = ZooGenerator::new(ZooConfig::paper()).generate();
    let s = TopologyStats::compute(&t);
    println!("{}", s.render_table());
    let (min, max) = s.share_range();
    poc_obs::event!(
        "calibrate.summary",
        links = s.n_bp_links,
        routers = s.n_routers,
        share_min_pct = min * 100.0,
        share_max_pct = max * 100.0,
    );
}

//! Strongly-typed identifiers for topology entities.
//!
//! Every entity in the topology (cities/PoPs, POC routers, bandwidth
//! providers, logical links) is referred to by a small copyable newtype over
//! `u32`. Using distinct types prevents the classic off-by-one-index-space
//! bug where, say, a router index is used to look up a link.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u32);

        impl $name {
            /// Raw index, usable directly into the owning `Vec`.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a raw `usize` index.
            ///
            /// # Panics
            /// Panics if `i` does not fit in `u32`.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                Self(u32::try_from(i).expect("id index overflows u32"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// A city / point-of-presence location in the physical plane.
    PopId,
    "pop"
);
id_type!(
    /// A POC router. Routers live at a subset of cities where enough BPs
    /// are colocated (paper: four or more).
    RouterId,
    "r"
);
id_type!(
    /// A bandwidth provider — an entity leasing logical links to the POC.
    BpId,
    "bp"
);
id_type!(
    /// A logical link between two POC routers, offered for lease.
    LinkId,
    "l"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(PopId(3).to_string(), "pop3");
        assert_eq!(RouterId(0).to_string(), "r0");
        assert_eq!(BpId(19).to_string(), "bp19");
        assert_eq!(LinkId(4673).to_string(), "l4673");
    }

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 57, 4674] {
            assert_eq!(LinkId::from_index(i).index(), i);
        }
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(RouterId(1) < RouterId(2));
        assert_eq!(BpId(7), BpId::from(7u32));
    }
}

//! WAN topology substrate for the Public Option for the Core (POC).
//!
//! The paper ("A Public Option for the Core", SIGCOMM 2020, §3.3) evaluates
//! its bandwidth auction on a network derived from TopologyZoo: small
//! networks are merged into 20 Bandwidth Providers (BPs), POC routers are
//! placed wherever four or more BPs are closely colocated, and each BP
//! offers *logical links* (which may traverse several physical links)
//! between POC routers. The resulting instance has 4674 logical links, with
//! individual BPs contributing between roughly 2% and 12% of them.
//!
//! TopologyZoo itself is an external dataset, so this crate provides a
//! deterministic synthetic generator ([`zoo`]) that reproduces the *derived*
//! artifact the auction actually consumes — the router set, logical links,
//! BP ownership shares, capacities, and lease costs — with the same summary
//! statistics. Everything downstream (feasibility, auction, simulation) is
//! agnostic to whether the topology came from the generator or was built by
//! hand via [`builder::TopologyBuilder`].

pub mod builder;
pub mod cost;
pub mod geo;
pub mod ids;
pub mod model;
pub mod stats;
pub mod zoo;

pub use builder::TopologyBuilder;
pub use cost::CostModel;
pub use geo::Point;
pub use ids::{BpId, LinkId, PopId, RouterId};
pub use model::{BpNetwork, City, Fnv1a, LinkOwner, LogicalLink, PocRouter, PocTopology};
pub use stats::TopologyStats;
pub use zoo::{ZooConfig, ZooGenerator};

//! Minimal planar geometry used by the synthetic topology generator.
//!
//! Cities are placed on a 2D plane whose unit is kilometres; link lease
//! costs and propagation delays are derived from Euclidean distances. A
//! plane (rather than a sphere) keeps the generator simple while preserving
//! the only property the system cares about: a metric on PoP locations.

use serde::{Deserialize, Serialize};

/// A point on the synthetic plane, in kilometres.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to `other`, in kilometres.
    pub fn distance(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx.hypot(dy)
    }

    /// Midpoint between `self` and `other`.
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }
}

/// One-way propagation delay in milliseconds for a straight fibre run of
/// `distance_km`, using the usual 2/3-of-c speed of light in glass.
pub fn propagation_delay_ms(distance_km: f64) -> f64 {
    const KM_PER_MS: f64 = 200.0; // ~2e8 m/s
    distance_km / KM_PER_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn midpoint_bisects() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -6.0);
        let m = a.midpoint(b);
        assert_eq!(m.x, 5.0);
        assert_eq!(m.y, -3.0);
        assert!((a.distance(m) - b.distance(m)).abs() < 1e-12);
    }

    #[test]
    fn propagation_delay_scales_linearly() {
        assert!((propagation_delay_ms(200.0) - 1.0).abs() < 1e-12);
        assert!((propagation_delay_ms(4000.0) - 20.0).abs() < 1e-12);
    }
}

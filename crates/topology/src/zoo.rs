//! Synthetic TopologyZoo-like instance generator.
//!
//! The paper (§3.3) derives its auction instance from TopologyZoo by
//! (1) merging small networks into 20 BPs, (2) placing POC routers at
//! locations where ≥4 BPs are closely colocated, and (3) treating each
//! BP-internal path between POC-router locations as an offered *logical
//! link* — 4674 of them, with each BP contributing roughly 2%–12%.
//!
//! This module regenerates that derived artifact synthetically and
//! deterministically (seeded): cities are scattered on a plane, each BP
//! covers a geographically contiguous, heavy-tail-sized subset of cities
//! with an internal MST-plus-shortcuts physical network, POC routers appear
//! at colocation sites, and logical links are enumerated from bounded-hop
//! internal paths. [`ZooConfig::paper`] is tuned so the defaults land on
//! the paper's summary statistics.

use crate::cost::CostModel;
use crate::geo::Point;
use crate::ids::{BpId, LinkId, PopId, RouterId};
use crate::model::{BpNetwork, City, LinkOwner, LogicalLink, PocRouter, PocTopology};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};

/// How each BP's internal physical network is wired.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum InternalStyle {
    /// Euclidean MST plus ~n/2 shortcut chords (default; degree ≈ 2.5,
    /// the TopologyZoo-typical shape).
    MstPlusShortcuts,
    /// A geographic ring (cities ordered by angle around the BP's
    /// centroid) — SONET-era carrier topology, degree 2 everywhere.
    Ring,
    /// Hub-and-spoke from the BP's highest-weight city, plus a ring over
    /// the hub's three nearest neighbours for minimal redundancy.
    HubAndSpoke,
}

/// Generator parameters. All randomness flows from `seed`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ZooConfig {
    pub seed: u64,
    /// Number of candidate PoP cities on the plane.
    pub n_cities: usize,
    /// Side of the square plane, km.
    pub plane_km: f64,
    /// Number of bandwidth providers after merging (paper: 20).
    pub n_bps: usize,
    /// A city hosts a POC router when at least this many BPs are present
    /// (paper: 4).
    pub colocation_threshold: usize,
    /// Fraction of cities covered by the smallest / largest BP.
    pub coverage_min: f64,
    pub coverage_max: f64,
    /// Skew of the BP size distribution (1 = linear ramp, >1 = heavier tail
    /// of small BPs).
    pub coverage_gamma: f64,
    /// A BP offers a logical link between two of its POC-router cities only
    /// if its internal path between them has at most this many hops.
    pub max_logical_hops: u32,
    /// Probability that an eligible router pair is actually offered
    /// (models BPs not productizing every internal path).
    pub pair_offer_prob: f64,
    /// Capacity menu in Gbit/s with selection weights.
    pub capacity_menu: Vec<(f64, f64)>,
    /// Physical-route detour factor over straight-line city distance.
    pub fibre_detour: f64,
    /// Cost model and BP heterogeneity.
    pub cost: CostModel,
    /// BP efficiency multipliers are drawn uniformly from this range.
    pub efficiency_range: (f64, f64),
    /// Per-link idiosyncratic cost noise, uniform multiplicative range.
    pub noise_range: (f64, f64),
    /// BP internal-network wiring style.
    pub internal_style: InternalStyle,
}

impl ZooConfig {
    /// Defaults tuned to reproduce the paper's instance statistics:
    /// 20 BPs, ≈4674 logical links, per-BP shares ≈2%–12%.
    pub fn paper() -> Self {
        Self {
            seed: 0x9e3779b97f4a7c15,
            n_cities: 72,
            plane_km: 5000.0,
            n_bps: 20,
            colocation_threshold: 4,
            coverage_min: 0.25,
            coverage_max: 0.78,
            coverage_gamma: 2.0,
            max_logical_hops: 6,
            pair_offer_prob: 0.80,
            capacity_menu: vec![(10.0, 0.45), (40.0, 0.35), (100.0, 0.20)],
            fibre_detour: 1.25,
            cost: CostModel::default(),
            efficiency_range: (0.82, 1.22),
            noise_range: (0.85, 1.18),
            internal_style: InternalStyle::MstPlusShortcuts,
        }
    }

    /// A small instance for unit tests and quick examples: a handful of
    /// routers, a few hundred links.
    pub fn small() -> Self {
        Self { n_cities: 24, n_bps: 6, coverage_min: 0.3, coverage_max: 0.8, ..Self::paper() }
    }

    /// The ROADMAP's past-paper-scale point: ~100 BPs offering well over
    /// 10k logical links. The colocation threshold rises with BP density
    /// so the router count — and with it the traffic matrix every oracle
    /// probe must route — stays moderate while the *market* (BPs × links)
    /// is several times the paper's.
    pub fn scale() -> Self {
        Self {
            n_cities: 150,
            plane_km: 6000.0,
            n_bps: 100,
            colocation_threshold: 24,
            coverage_min: 0.10,
            coverage_max: 0.45,
            ..Self::paper()
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// External-ISP attachment parameters for virtual links (paper §3.3: the
/// external ISPs attach at multiple points and provide contract-priced
/// virtual links between those points, bounding the auction).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExternalIspConfig {
    /// Number of external ISPs to attach.
    pub n_isps: usize,
    /// Attachment routers per ISP (full mesh of virtual links among them).
    pub attach_points: usize,
    /// Virtual-link capacity, Gbit/s.
    pub capacity_gbps: f64,
    /// Contract price premium over the nominal cost model (virtual links
    /// are the expensive fallback; >1).
    pub price_premium: f64,
}

impl Default for ExternalIspConfig {
    fn default() -> Self {
        Self { n_isps: 2, attach_points: 6, capacity_gbps: 400.0, price_premium: 3.0 }
    }
}

/// The generator. Construct with a config, call [`ZooGenerator::generate`].
pub struct ZooGenerator {
    cfg: ZooConfig,
}

impl ZooGenerator {
    pub fn new(cfg: ZooConfig) -> Self {
        assert!(cfg.n_cities >= 4, "need at least 4 cities");
        assert!(cfg.n_bps >= 1, "need at least one BP");
        assert!(
            (0.0..=1.0).contains(&cfg.coverage_min)
                && cfg.coverage_min <= cfg.coverage_max
                && cfg.coverage_max <= 1.0,
            "coverage fractions must satisfy 0 <= min <= max <= 1"
        );
        assert!((0.0..=1.0).contains(&cfg.pair_offer_prob), "pair_offer_prob must be in [0,1]");
        assert!(!cfg.capacity_menu.is_empty(), "capacity menu must be non-empty");
        Self { cfg }
    }

    /// Generate the full instance (without external ISPs; see
    /// [`attach_external_isps`]).
    pub fn generate(&self) -> PocTopology {
        let mut rng = ChaCha8Rng::seed_from_u64(self.cfg.seed);
        let cities = self.place_cities(&mut rng);
        let bps = self.build_bps(&cities, &mut rng);
        let routers = place_routers(&cities, &bps, self.cfg.colocation_threshold);
        let links = self.offer_links(&cities, &bps, &routers, &mut rng);
        let topo = PocTopology { cities, bps, routers, links };
        debug_assert!(topo.validate().is_ok());
        topo
    }

    fn place_cities(&self, rng: &mut ChaCha8Rng) -> Vec<City> {
        let n = self.cfg.n_cities;
        let side = self.cfg.plane_km;
        let min_sep = side / (n as f64).sqrt() / 2.0;
        let mut placed: Vec<Point> = Vec::with_capacity(n);
        while placed.len() < n {
            let p = Point::new(rng.gen_range(0.0..side), rng.gen_range(0.0..side));
            if placed.iter().all(|q| q.distance(p) >= min_sep) {
                placed.push(p);
            }
        }
        placed
            .into_iter()
            .enumerate()
            .map(|(i, pos)| {
                // Log-normal-ish population weight: exp(N(0, 0.8)).
                let z: f64 = sample_std_normal(rng);
                City {
                    id: PopId::from_index(i),
                    name: format!("city{i:02}"),
                    pos,
                    weight: (0.8 * z).exp(),
                }
            })
            .collect()
    }

    fn build_bps(&self, cities: &[City], rng: &mut ChaCha8Rng) -> Vec<BpNetwork> {
        let n_bps = self.cfg.n_bps;
        (0..n_bps)
            .map(|b| {
                // Heavy-tailed size ramp: BP 0 is largest.
                let t = if n_bps == 1 { 0.0 } else { b as f64 / (n_bps - 1) as f64 };
                let cov = self.cfg.coverage_max
                    - (self.cfg.coverage_max - self.cfg.coverage_min)
                        * t.powf(1.0 / self.cfg.coverage_gamma);
                let size = ((cov * cities.len() as f64).round() as usize).clamp(2, cities.len());
                let members = grow_region(cities, size, rng);
                let edges = match self.cfg.internal_style {
                    InternalStyle::MstPlusShortcuts => internal_network(cities, &members, rng),
                    InternalStyle::Ring => ring_network(cities, &members),
                    InternalStyle::HubAndSpoke => hub_network(cities, &members),
                };
                BpNetwork {
                    id: BpId::from_index(b),
                    name: format!("BP-{b:02}"),
                    cities: members,
                    edges,
                }
            })
            .collect()
    }

    fn offer_links(
        &self,
        cities: &[City],
        bps: &[BpNetwork],
        routers: &[PocRouter],
        rng: &mut ChaCha8Rng,
    ) -> Vec<LogicalLink> {
        let router_at_city: HashMap<PopId, RouterId> =
            routers.iter().map(|r| (r.city, r.id)).collect();
        let mut links = Vec::new();
        let (eff_lo, eff_hi) = self.cfg.efficiency_range;
        let (noise_lo, noise_hi) = self.cfg.noise_range;
        let cap_total: f64 = self.cfg.capacity_menu.iter().map(|(_, w)| w).sum();

        for bp in bps {
            let efficiency = rng.gen_range(eff_lo..=eff_hi);
            // POC-router cities this BP is present in.
            let bp_router_cities: Vec<PopId> =
                bp.cities.iter().copied().filter(|c| router_at_city.contains_key(c)).collect();
            // All-pairs bounded-hop internal paths among those cities.
            let paths = internal_paths(cities, bp, &bp_router_cities);
            for ((ca, cb), (dist_km, hops)) in paths {
                if hops > self.cfg.max_logical_hops {
                    continue;
                }
                if !rng.gen_bool(self.cfg.pair_offer_prob) {
                    continue;
                }
                let (ra, rb) = (router_at_city[&ca], router_at_city[&cb]);
                let (a, b) = if ra < rb { (ra, rb) } else { (rb, ra) };
                let capacity = pick_weighted(&self.cfg.capacity_menu, cap_total, rng);
                let distance_km = dist_km * self.cfg.fibre_detour;
                let noise = rng.gen_range(noise_lo..=noise_hi);
                let cost = self.cfg.cost.monthly_cost(capacity, distance_km, efficiency, noise);
                links.push(LogicalLink {
                    id: LinkId::from_index(links.len()),
                    owner: LinkOwner::Bp(bp.id),
                    a,
                    b,
                    capacity_gbps: capacity,
                    distance_km,
                    hop_count: hops,
                    true_monthly_cost: cost,
                });
            }
        }
        links
    }
}

/// Attach `cfg.n_isps` external ISPs to an existing topology, appending one
/// full mesh of virtual links per ISP among its attachment routers.
/// Attachment points are chosen as the highest-weight router cities, offset
/// per ISP so different ISPs attach at overlapping-but-distinct sets.
pub fn attach_external_isps(
    topo: &mut PocTopology,
    cfg: &ExternalIspConfig,
    cost_model: &CostModel,
) {
    assert!(cfg.attach_points >= 2, "an ISP needs at least two attachment points");
    assert!(cfg.price_premium >= 1.0, "virtual links are the expensive fallback");
    // Routers sorted by descending city weight (stable across runs).
    let mut by_weight: Vec<RouterId> = topo.routers.iter().map(|r| r.id).collect();
    by_weight.sort_by(|x, y| {
        let wx = topo.city(topo.router(*x).city).weight;
        let wy = topo.city(topo.router(*y).city).weight;
        wy.partial_cmp(&wx).unwrap().then(x.cmp(y))
    });
    for isp in 0..cfg.n_isps {
        // Rotate the weight-ordered list per ISP so different ISPs attach
        // at overlapping-but-distinct router sets.
        let n_attach = cfg.attach_points.min(by_weight.len());
        let attach: Vec<RouterId> =
            (0..n_attach).map(|k| by_weight[(isp + k) % by_weight.len()]).collect();
        for i in 0..attach.len() {
            for j in (i + 1)..attach.len() {
                let (a, b) = if attach[i] < attach[j] {
                    (attach[i], attach[j])
                } else {
                    (attach[j], attach[i])
                };
                let distance_km = topo.router_distance(a, b) * 1.4; // ISPs detour more
                let cost = cost_model.monthly_cost(
                    cfg.capacity_gbps,
                    distance_km.max(1.0),
                    cfg.price_premium,
                    1.0,
                );
                let id = LinkId::from_index(topo.links.len());
                topo.links.push(LogicalLink {
                    id,
                    owner: LinkOwner::Virtual(isp as u32),
                    a,
                    b,
                    capacity_gbps: cfg.capacity_gbps,
                    distance_km,
                    hop_count: 1,
                    true_monthly_cost: cost,
                });
            }
        }
    }
    debug_assert!(topo.validate().is_ok());
}

/// Place POC routers at every city where at least `threshold` BPs have a PoP.
fn place_routers(cities: &[City], bps: &[BpNetwork], threshold: usize) -> Vec<PocRouter> {
    let mut routers = Vec::new();
    for c in cities {
        let colocated: Vec<BpId> =
            bps.iter().filter(|b| b.present_in(c.id)).map(|b| b.id).collect();
        if colocated.len() >= threshold {
            routers.push(PocRouter {
                id: RouterId::from_index(routers.len()),
                city: c.id,
                colocated_bps: colocated,
            });
        }
    }
    routers
}

/// Grow a geographically contiguous region of `size` cities: pick a seed
/// weighted by city weight, then repeatedly add the unclaimed city nearest
/// to the region's centroid-ish frontier (with mild randomization).
fn grow_region(cities: &[City], size: usize, rng: &mut ChaCha8Rng) -> Vec<PopId> {
    let total_w: f64 = cities.iter().map(|c| c.weight).sum();
    let mut pick = rng.gen_range(0.0..total_w);
    let mut seed = cities[0].id;
    for c in cities {
        if pick < c.weight {
            seed = c.id;
            break;
        }
        pick -= c.weight;
    }
    let mut members = vec![seed];
    let mut member_set = vec![false; cities.len()];
    member_set[seed.index()] = true;
    while members.len() < size {
        // Distance of each unclaimed city to its nearest member.
        let mut cands: Vec<(f64, PopId)> = cities
            .iter()
            .filter(|c| !member_set[c.id.index()])
            .map(|c| {
                let d = members
                    .iter()
                    .map(|m| cities[m.index()].pos.distance(c.pos))
                    .fold(f64::INFINITY, f64::min);
                (d, c.id)
            })
            .collect();
        cands.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let k = cands.len().min(3);
        let chosen = cands[rng.gen_range(0..k)].1;
        member_set[chosen.index()] = true;
        members.push(chosen);
    }
    members.sort();
    members
}

/// Build a BP's internal physical network: Euclidean MST over its cities
/// plus a few shortcut edges for meshiness (degree ≈ 2.5).
fn internal_network(
    cities: &[City],
    members: &[PopId],
    rng: &mut ChaCha8Rng,
) -> Vec<(PopId, PopId)> {
    let n = members.len();
    if n < 2 {
        return Vec::new();
    }
    let pos = |p: PopId| cities[p.index()].pos;
    // Prim's MST, O(n^2): fine for n ≤ ~100.
    let mut in_tree = vec![false; n];
    let mut best = vec![(f64::INFINITY, 0usize); n];
    in_tree[0] = true;
    for j in 1..n {
        best[j] = (pos(members[0]).distance(pos(members[j])), 0);
    }
    let mut edges = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let (j, _) = best
            .iter()
            .enumerate()
            .filter(|(j, _)| !in_tree[*j])
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).unwrap())
            .map(|(j, v)| (j, v.0))
            .expect("tree not spanning");
        in_tree[j] = true;
        let parent = best[j].1;
        edges.push(order_pair(members[parent], members[j]));
        for k in 0..n {
            if !in_tree[k] {
                let d = pos(members[j]).distance(pos(members[k]));
                if d < best[k].0 {
                    best[k] = (d, j);
                }
            }
        }
    }
    // Shortcuts: each node connects to its 2nd-nearest non-neighbor with
    // probability 1/2, adding ~n/2 chords.
    let mut have: Vec<(PopId, PopId)> = edges.clone();
    for (i, &m) in members.iter().enumerate() {
        if !rng.gen_bool(0.5) {
            continue;
        }
        let mut others: Vec<(f64, PopId)> = members
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, &o)| (pos(m).distance(pos(o)), o))
            .collect();
        others.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for (_, o) in others.into_iter().take(3) {
            let e = order_pair(m, o);
            if !have.contains(&e) {
                have.push(e);
                edges.push(e);
                break;
            }
        }
    }
    edges
}

/// A geographic ring: members ordered by angle around their centroid and
/// connected cyclically (degree 2; any single internal failure leaves the
/// ring connected the other way).
fn ring_network(cities: &[City], members: &[PopId]) -> Vec<(PopId, PopId)> {
    let n = members.len();
    if n < 2 {
        return Vec::new();
    }
    if n == 2 {
        return vec![order_pair(members[0], members[1])];
    }
    let cx: f64 = members.iter().map(|m| cities[m.index()].pos.x).sum::<f64>() / n as f64;
    let cy: f64 = members.iter().map(|m| cities[m.index()].pos.y).sum::<f64>() / n as f64;
    let mut ordered: Vec<PopId> = members.to_vec();
    ordered.sort_by(|a, b| {
        let pa = cities[a.index()].pos;
        let pb = cities[b.index()].pos;
        let ta = (pa.y - cy).atan2(pa.x - cx);
        let tb = (pb.y - cy).atan2(pb.x - cx);
        ta.partial_cmp(&tb).expect("NaN angle").then(a.cmp(b))
    });
    (0..n).map(|i| order_pair(ordered[i], ordered[(i + 1) % n])).collect()
}

/// Hub-and-spoke: every member connects to the highest-weight member,
/// plus a triangle over the hub's nearest neighbours so the hub is not a
/// universal single point of failure.
fn hub_network(cities: &[City], members: &[PopId]) -> Vec<(PopId, PopId)> {
    let n = members.len();
    if n < 2 {
        return Vec::new();
    }
    let hub = *members
        .iter()
        .max_by(|a, b| {
            cities[a.index()]
                .weight
                .partial_cmp(&cities[b.index()].weight)
                .expect("NaN weight")
                .then(b.cmp(a))
        })
        .expect("non-empty");
    let mut edges: Vec<(PopId, PopId)> =
        members.iter().filter(|&&m| m != hub).map(|&m| order_pair(hub, m)).collect();
    // Triangle over the hub's nearest two neighbours.
    let mut near: Vec<PopId> = members.iter().copied().filter(|&m| m != hub).collect();
    near.sort_by(|a, b| {
        let da = cities[hub.index()].pos.distance(cities[a.index()].pos);
        let db = cities[hub.index()].pos.distance(cities[b.index()].pos);
        da.partial_cmp(&db).expect("NaN distance").then(a.cmp(b))
    });
    if near.len() >= 2 {
        let e = order_pair(near[0], near[1]);
        if !edges.contains(&e) {
            edges.push(e);
        }
    }
    edges
}

/// All-pairs internal shortest paths (km, hops) among `targets` inside a
/// BP's physical network. Dijkstra by km from each target; the hop count is
/// that of the km-shortest path.
fn internal_paths(
    cities: &[City],
    bp: &BpNetwork,
    targets: &[PopId],
) -> Vec<((PopId, PopId), (f64, u32))> {
    // Adjacency over the BP's cities.
    let mut adj: HashMap<PopId, Vec<(PopId, f64)>> = HashMap::new();
    for &(u, v) in &bp.edges {
        let d = cities[u.index()].pos.distance(cities[v.index()].pos);
        adj.entry(u).or_default().push((v, d));
        adj.entry(v).or_default().push((u, d));
    }
    let mut out = Vec::new();
    for (ti, &src) in targets.iter().enumerate() {
        // Dijkstra from src.
        let mut dist: HashMap<PopId, (f64, u32)> = HashMap::new();
        dist.insert(src, (0.0, 0));
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        heap.push(HeapItem { cost: 0.0, hops: 0, node: src });
        while let Some(HeapItem { cost, hops, node }) = heap.pop() {
            if let Some(&(best, _)) = dist.get(&node) {
                if cost > best + 1e-12 {
                    continue;
                }
            }
            if let Some(neigh) = adj.get(&node) {
                for &(nxt, d) in neigh {
                    let nc = cost + d;
                    let nh = hops + 1;
                    let better = match dist.get(&nxt) {
                        None => true,
                        Some(&(c, _)) => nc < c - 1e-12,
                    };
                    if better {
                        dist.insert(nxt, (nc, nh));
                        heap.push(HeapItem { cost: nc, hops: nh, node: nxt });
                    }
                }
            }
        }
        for &dst in targets.iter().skip(ti + 1) {
            if let Some(&(km, hops)) = dist.get(&dst) {
                out.push(((src, dst), (km, hops)));
            }
        }
    }
    out
}

#[derive(PartialEq)]
struct HeapItem {
    cost: f64,
    hops: u32,
    node: PopId,
}
impl Eq for HeapItem {}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on cost.
        other.cost.partial_cmp(&self.cost).unwrap().then(other.hops.cmp(&self.hops))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn order_pair(a: PopId, b: PopId) -> (PopId, PopId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

fn pick_weighted(menu: &[(f64, f64)], total: f64, rng: &mut ChaCha8Rng) -> f64 {
    let mut pick = rng.gen_range(0.0..total);
    for &(v, w) in menu {
        if pick < w {
            return v;
        }
        pick -= w;
    }
    menu.last().expect("non-empty menu").0
}

/// Box-Muller standard normal (avoids pulling in rand_distr).
fn sample_std_normal(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ZooGenerator::new(ZooConfig::small()).generate();
        let b = ZooGenerator::new(ZooConfig::small()).generate();
        assert_eq!(a.n_links(), b.n_links());
        assert_eq!(a.n_routers(), b.n_routers());
        for (x, y) in a.links.iter().zip(&b.links) {
            assert_eq!(x.a, y.a);
            assert_eq!(x.b, y.b);
            assert!((x.true_monthly_cost - y.true_monthly_cost).abs() < 1e-9);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = ZooGenerator::new(ZooConfig::small()).generate();
        let b = ZooGenerator::new(ZooConfig::small().with_seed(7)).generate();
        // Extremely unlikely to coincide.
        assert!(
            a.n_links() != b.n_links()
                || a.links
                    .iter()
                    .zip(&b.links)
                    .any(|(x, y)| (x.true_monthly_cost - y.true_monthly_cost).abs() > 1e-9)
        );
    }

    #[test]
    fn small_instance_validates_and_is_nontrivial() {
        let t = ZooGenerator::new(ZooConfig::small()).generate();
        t.validate().unwrap();
        assert!(t.n_routers() >= 4, "expected a few routers, got {}", t.n_routers());
        assert!(t.n_links() >= 20, "expected a few links, got {}", t.n_links());
    }

    #[test]
    fn routers_meet_colocation_threshold() {
        let cfg = ZooConfig::small();
        let t = ZooGenerator::new(cfg.clone()).generate();
        for r in &t.routers {
            assert!(r.colocated_bps.len() >= cfg.colocation_threshold);
            for bp in &r.colocated_bps {
                assert!(t.bps[bp.index()].present_in(r.city));
            }
        }
    }

    #[test]
    fn links_respect_hop_bound_and_ownership() {
        let cfg = ZooConfig::small();
        let t = ZooGenerator::new(cfg.clone()).generate();
        for l in &t.links {
            assert!(l.hop_count <= cfg.max_logical_hops);
            let bp = l.owner.as_bp().expect("generator emits only BP links");
            let (ca, cb) = (t.router(l.a).city, t.router(l.b).city);
            assert!(t.bps[bp.index()].present_in(ca));
            assert!(t.bps[bp.index()].present_in(cb));
        }
    }

    #[test]
    fn external_isps_append_virtual_mesh() {
        let mut t = ZooGenerator::new(ZooConfig::small()).generate();
        let before = t.n_links();
        let cfg = ExternalIspConfig { n_isps: 2, attach_points: 4, ..Default::default() };
        attach_external_isps(&mut t, &cfg, &CostModel::default());
        let added = t.n_links() - before;
        assert_eq!(added, 2 * (4 * 3 / 2));
        t.validate().unwrap();
        assert_eq!(t.virtual_links().len(), added);
    }

    #[test]
    fn bp_internal_networks_are_connected() {
        let t = ZooGenerator::new(ZooConfig::small()).generate();
        for bp in &t.bps {
            // Union-find over edges must connect all cities.
            let mut parent: HashMap<PopId, PopId> = bp.cities.iter().map(|&c| (c, c)).collect();
            fn find(p: &mut HashMap<PopId, PopId>, x: PopId) -> PopId {
                let mut r = x;
                while p[&r] != r {
                    r = p[&r];
                }
                let mut c = x;
                while p[&c] != r {
                    let nxt = p[&c];
                    p.insert(c, r);
                    c = nxt;
                }
                r
            }
            for &(u, v) in &bp.edges {
                let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
                parent.insert(ru, rv);
            }
            let root = find(&mut parent, bp.cities[0]);
            for &c in &bp.cities {
                assert_eq!(find(&mut parent, c), root, "{} disconnected in {}", c, bp.name);
            }
        }
    }
}

#[cfg(test)]
mod style_tests {
    use super::*;

    fn connected(bp: &BpNetwork) -> bool {
        let mut adj: HashMap<PopId, Vec<PopId>> = HashMap::new();
        for &(u, v) in &bp.edges {
            adj.entry(u).or_default().push(v);
            adj.entry(v).or_default().push(u);
        }
        let mut seen = vec![bp.cities[0]];
        let mut stack = vec![bp.cities[0]];
        while let Some(c) = stack.pop() {
            for &n in adj.get(&c).map(|v| v.as_slice()).unwrap_or(&[]) {
                if !seen.contains(&n) {
                    seen.push(n);
                    stack.push(n);
                }
            }
        }
        seen.len() == bp.cities.len()
    }

    fn degree_of(bp: &BpNetwork, city: PopId) -> usize {
        bp.edges.iter().filter(|&&(u, v)| u == city || v == city).count()
    }

    #[test]
    fn ring_style_is_connected_degree_two() {
        let cfg = ZooConfig { internal_style: InternalStyle::Ring, ..ZooConfig::small() };
        let t = ZooGenerator::new(cfg).generate();
        t.validate().unwrap();
        for bp in &t.bps {
            assert!(connected(bp), "{} disconnected", bp.name);
            if bp.cities.len() >= 3 {
                for &c in &bp.cities {
                    assert_eq!(degree_of(bp, c), 2, "{} not a ring at {c}", bp.name);
                }
            }
        }
    }

    #[test]
    fn hub_style_is_connected_with_a_hub() {
        let cfg = ZooConfig { internal_style: InternalStyle::HubAndSpoke, ..ZooConfig::small() };
        let t = ZooGenerator::new(cfg).generate();
        t.validate().unwrap();
        for bp in &t.bps {
            assert!(connected(bp), "{} disconnected", bp.name);
            if bp.cities.len() >= 4 {
                // Some city has degree >= n-1 (the hub).
                let max_deg = bp.cities.iter().map(|&c| degree_of(bp, c)).max().unwrap_or(0);
                assert!(
                    max_deg >= bp.cities.len() - 1,
                    "{}: no hub found (max degree {max_deg})",
                    bp.name
                );
            }
        }
    }

    #[test]
    fn styles_change_link_offer_structure() {
        let mst = ZooGenerator::new(ZooConfig::small()).generate();
        let ring = ZooGenerator::new(ZooConfig {
            internal_style: InternalStyle::Ring,
            ..ZooConfig::small()
        })
        .generate();
        // Ring internals have longer hop paths, so fewer pairs pass the
        // hop bound — different offer counts are expected.
        assert_ne!(mst.n_links(), ring.n_links());
    }
}

#[cfg(test)]
mod scale_tests {
    use super::*;

    #[test]
    fn scale_preset_hits_roadmap_targets() {
        let t = ZooGenerator::new(ZooConfig::scale()).generate();
        t.validate().unwrap();
        eprintln!(
            "[scale preset] routers={} links={} bps={}",
            t.n_routers(),
            t.n_links(),
            t.bps.len()
        );
        assert!(t.bps.len() >= 100, "got {} BPs", t.bps.len());
        assert!(t.n_links() >= 10_000, "got {} links", t.n_links());
        assert!(t.n_routers() <= 110, "router count must stay tractable, got {}", t.n_routers());
    }
}

//! Lease-cost model for logical links.
//!
//! The paper does not publish BP cost curves; what matters to the auction is
//! that costs (i) grow with distance and capacity, (ii) differ across BPs
//! (operational efficiency), and (iii) have enough idiosyncratic noise that
//! the cheapest acceptable set is not trivially the same BP everywhere.
//! This model captures exactly that: a fixed port cost plus a
//! distance×capacity term, scaled per BP and per link.

use serde::{Deserialize, Serialize};

/// Parameters of the monthly-cost model, dollars.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed per-link monthly cost (ports, cross-connects), $.
    pub fixed: f64,
    /// $ per (Gbit/s × km) per month. TeleGeography-style long-haul lease
    /// pricing is on the order of cents per Gbps-km-month.
    pub per_gbps_km: f64,
    /// Capacity is priced with economies of scale: effective capacity is
    /// `capacity^capacity_exponent` (exponent in (0, 1]).
    pub capacity_exponent: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self { fixed: 350.0, per_gbps_km: 0.04, capacity_exponent: 0.75 }
    }
}

impl CostModel {
    /// Monthly cost of a link with the given geometry for a BP with
    /// `efficiency` (1.0 = nominal, <1 cheaper, >1 dearer) and a
    /// link-idiosyncratic `noise` factor around 1.0.
    pub fn monthly_cost(
        &self,
        capacity_gbps: f64,
        distance_km: f64,
        efficiency: f64,
        noise: f64,
    ) -> f64 {
        assert!(capacity_gbps > 0.0 && distance_km >= 0.0, "invalid link geometry");
        assert!(efficiency > 0.0 && noise > 0.0, "invalid cost multipliers");
        let eff_capacity = capacity_gbps.powf(self.capacity_exponent);
        (self.fixed + self.per_gbps_km * eff_capacity * distance_km) * efficiency * noise
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_increases_with_distance_and_capacity() {
        let m = CostModel::default();
        let base = m.monthly_cost(10.0, 1000.0, 1.0, 1.0);
        assert!(m.monthly_cost(10.0, 2000.0, 1.0, 1.0) > base);
        assert!(m.monthly_cost(100.0, 1000.0, 1.0, 1.0) > base);
    }

    #[test]
    fn capacity_has_economies_of_scale() {
        let m = CostModel::default();
        // 10x the capacity should cost less than 10x (net of the fixed part).
        let c10 = m.monthly_cost(10.0, 1000.0, 1.0, 1.0) - m.fixed;
        let c100 = m.monthly_cost(100.0, 1000.0, 1.0, 1.0) - m.fixed;
        assert!(c100 < 10.0 * c10);
        assert!(c100 > c10);
    }

    #[test]
    fn efficiency_scales_cost_linearly() {
        let m = CostModel::default();
        let nominal = m.monthly_cost(40.0, 500.0, 1.0, 1.0);
        let cheap = m.monthly_cost(40.0, 500.0, 0.8, 1.0);
        assert!((cheap / nominal - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid link geometry")]
    fn rejects_zero_capacity() {
        CostModel::default().monthly_cost(0.0, 10.0, 1.0, 1.0);
    }
}

//! Instance summary statistics (experiment E-T1).
//!
//! The paper's §3.3 in-text claims about its instance — 20 BPs, 4674
//! logical links, per-BP shares between ~2% and ~12% — are exactly what
//! [`TopologyStats`] reports, so the generator can be checked against them.

use crate::ids::BpId;
use crate::model::PocTopology;
use serde::{Deserialize, Serialize};

/// Summary of a generated instance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TopologyStats {
    pub n_cities: usize,
    pub n_bps: usize,
    pub n_routers: usize,
    pub n_bp_links: usize,
    pub n_virtual_links: usize,
    /// (BP, link count, share of BP links) sorted by descending share.
    pub bp_shares: Vec<(BpId, usize, f64)>,
    pub total_capacity_gbps: f64,
    pub mean_link_distance_km: f64,
}

impl TopologyStats {
    pub fn compute(topo: &PocTopology) -> Self {
        let per_bp = topo.links_per_bp();
        let n_bp_links: usize = per_bp.values().sum();
        let n_virtual = topo.n_links() - n_bp_links;
        let mut bp_shares: Vec<(BpId, usize, f64)> = per_bp
            .into_iter()
            .map(|(bp, n)| {
                (bp, n, if n_bp_links == 0 { 0.0 } else { n as f64 / n_bp_links as f64 })
            })
            .collect();
        bp_shares.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let total_capacity_gbps = topo.links.iter().map(|l| l.capacity_gbps).sum();
        let mean_link_distance_km = if topo.links.is_empty() {
            0.0
        } else {
            topo.links.iter().map(|l| l.distance_km).sum::<f64>() / topo.n_links() as f64
        };
        Self {
            n_cities: topo.cities.len(),
            n_bps: topo.bps.len(),
            n_routers: topo.n_routers(),
            n_bp_links,
            n_virtual_links: n_virtual,
            bp_shares,
            total_capacity_gbps,
            mean_link_distance_km,
        }
    }

    /// Largest / smallest BP shares of offered links, as fractions.
    pub fn share_range(&self) -> (f64, f64) {
        let max = self.bp_shares.first().map(|x| x.2).unwrap_or(0.0);
        let min = self.bp_shares.last().map(|x| x.2).unwrap_or(0.0);
        (min, max)
    }

    /// The `n` largest BPs by offered-link count (Figure 2 reports the five
    /// largest).
    pub fn largest_bps(&self, n: usize) -> Vec<BpId> {
        self.bp_shares.iter().take(n).map(|x| x.0).collect()
    }

    /// Render a small human-readable table.
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "cities={} bps={} routers={} bp_links={} virtual_links={}\n",
            self.n_cities, self.n_bps, self.n_routers, self.n_bp_links, self.n_virtual_links
        ));
        s.push_str("BP     links   share\n");
        for (bp, n, share) in &self.bp_shares {
            s.push_str(&format!("{bp:<6} {n:<7} {:.1}%\n", share * 100.0));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::two_bp_square;

    #[test]
    fn shares_sum_to_one() {
        let stats = TopologyStats::compute(&two_bp_square());
        let total: f64 = stats.bp_shares.iter().map(|x| x.2).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(stats.n_bp_links, 6);
        assert_eq!(stats.n_virtual_links, 0);
    }

    #[test]
    fn largest_bps_ordered_by_count() {
        let stats = TopologyStats::compute(&two_bp_square());
        assert_eq!(stats.largest_bps(2).len(), 2);
        let (min, max) = stats.share_range();
        assert!(min <= max);
    }

    #[test]
    fn render_table_mentions_every_bp() {
        let stats = TopologyStats::compute(&two_bp_square());
        let table = stats.render_table();
        assert!(table.contains("bp0"));
        assert!(table.contains("bp1"));
    }
}

#[cfg(test)]
mod paper_instance_tests {
    use super::*;
    use crate::zoo::{ZooConfig, ZooGenerator};

    /// E-T1: the default instance reproduces the paper's §3.3 claims —
    /// 20 BPs, ≈4674 logical links, per-BP shares roughly 2%–12%.
    #[test]
    fn paper_defaults_match_section_3_3_claims() {
        let t = ZooGenerator::new(ZooConfig::paper()).generate();
        let s = TopologyStats::compute(&t);
        assert_eq!(s.n_bps, 20);
        assert!(
            (4200..=5200).contains(&s.n_bp_links),
            "expected ~4674 logical links, got {}",
            s.n_bp_links
        );
        let (min, max) = s.share_range();
        assert!((0.015..=0.035).contains(&min), "smallest share ~2%, got {:.3}", min);
        assert!((0.08..=0.14).contains(&max), "largest share ~12%, got {:.3}", max);
    }
}

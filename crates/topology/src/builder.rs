//! Hand-construction of topologies for tests, examples, and small demos.
//!
//! The builder mints ids in insertion order, keeps the `a < b` link-endpoint
//! invariant, and lets callers skip the synthetic generator entirely.

use crate::geo::Point;
use crate::ids::{BpId, LinkId, PopId, RouterId};
use crate::model::{BpNetwork, City, LinkOwner, LogicalLink, PocRouter, PocTopology};

/// Incremental topology builder. See crate docs for the data model.
#[derive(Default)]
pub struct TopologyBuilder {
    cities: Vec<City>,
    bps: Vec<BpNetwork>,
    routers: Vec<PocRouter>,
    links: Vec<LogicalLink>,
}

impl TopologyBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a city at `pos` with gravity weight `weight`; returns its id.
    pub fn city(&mut self, name: &str, pos: Point, weight: f64) -> PopId {
        let id = PopId::from_index(self.cities.len());
        self.cities.push(City { id, name: name.to_string(), pos, weight });
        id
    }

    /// Add a bandwidth provider present in `cities` with internal `edges`.
    pub fn bp(&mut self, name: &str, cities: Vec<PopId>, edges: Vec<(PopId, PopId)>) -> BpId {
        let id = BpId::from_index(self.bps.len());
        self.bps.push(BpNetwork { id, name: name.to_string(), cities, edges });
        id
    }

    /// Place a POC router at `city`; `colocated` lists the BPs present.
    pub fn router(&mut self, city: PopId, colocated: Vec<BpId>) -> RouterId {
        let id = RouterId::from_index(self.routers.len());
        self.routers.push(PocRouter { id, city, colocated_bps: colocated });
        id
    }

    /// Offer a logical link. Endpoint order is normalized.
    #[allow(clippy::too_many_arguments)]
    pub fn link(
        &mut self,
        owner: LinkOwner,
        x: RouterId,
        y: RouterId,
        capacity_gbps: f64,
        distance_km: f64,
        hop_count: u32,
        true_monthly_cost: f64,
    ) -> LinkId {
        assert!(x != y, "logical links must connect distinct routers");
        let (a, b) = if x < y { (x, y) } else { (y, x) };
        let id = LinkId::from_index(self.links.len());
        self.links.push(LogicalLink {
            id,
            owner,
            a,
            b,
            capacity_gbps,
            distance_km,
            hop_count,
            true_monthly_cost,
        });
        id
    }

    /// Finish, validating the instance.
    pub fn build(self) -> PocTopology {
        let topo = PocTopology {
            cities: self.cities,
            bps: self.bps,
            routers: self.routers,
            links: self.links,
        };
        topo.validate().expect("builder produced an invalid topology");
        topo
    }
}

/// A canonical 4-router / 2-BP fixture used across the workspace's tests:
///
/// ```text
///   r0 --- r1        BP0 offers r0-r1, r1-r2, r0-r2 (cheap, 100G)
///    \    / |        BP1 offers r0-r3, r2-r3, r1-r3 (dearer, 40G)
///     \  /  |
///      r2 - r3
/// ```
pub fn two_bp_square() -> PocTopology {
    let mut b = TopologyBuilder::new();
    let c0 = b.city("west", Point::new(0.0, 0.0), 2.0);
    let c1 = b.city("north", Point::new(1000.0, 800.0), 1.0);
    let c2 = b.city("mid", Point::new(900.0, 0.0), 3.0);
    let c3 = b.city("east", Point::new(1800.0, 300.0), 1.5);
    let bp0 = b.bp("BP-A", vec![c0, c1, c2], vec![(c0, c1), (c1, c2), (c0, c2)]);
    let bp1 = b.bp("BP-B", vec![c0, c1, c2, c3], vec![(c0, c3), (c2, c3), (c1, c3)]);
    let r0 = b.router(c0, vec![bp0, bp1]);
    let r1 = b.router(c1, vec![bp0, bp1]);
    let r2 = b.router(c2, vec![bp0, bp1]);
    let r3 = b.router(c3, vec![bp1]);
    b.link(LinkOwner::Bp(bp0), r0, r1, 100.0, 1300.0, 1, 4000.0);
    b.link(LinkOwner::Bp(bp0), r1, r2, 100.0, 810.0, 1, 2600.0);
    b.link(LinkOwner::Bp(bp0), r0, r2, 100.0, 910.0, 1, 2900.0);
    b.link(LinkOwner::Bp(bp1), r0, r3, 40.0, 1830.0, 2, 5200.0);
    b.link(LinkOwner::Bp(bp1), r2, r3, 40.0, 950.0, 1, 3100.0);
    b.link(LinkOwner::Bp(bp1), r1, r3, 40.0, 950.0, 1, 3050.0);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_fixture_validates() {
        let t = two_bp_square();
        t.validate().unwrap();
        assert_eq!(t.n_routers(), 4);
        assert_eq!(t.n_links(), 6);
        assert_eq!(t.links_of_bp(BpId(0)).len(), 3);
        assert_eq!(t.links_of_bp(BpId(1)).len(), 3);
    }

    #[test]
    fn builder_normalizes_endpoint_order() {
        let mut b = TopologyBuilder::new();
        let c0 = b.city("x", Point::new(0.0, 0.0), 1.0);
        let c1 = b.city("y", Point::new(1.0, 0.0), 1.0);
        let bp = b.bp("bp", vec![c0, c1], vec![(c0, c1)]);
        let r0 = b.router(c0, vec![bp]);
        let r1 = b.router(c1, vec![bp]);
        // Pass endpoints in reverse order.
        b.link(LinkOwner::Bp(bp), r1, r0, 10.0, 1.0, 1, 1.0);
        let t = b.build();
        assert_eq!(t.links[0].a, r0);
        assert_eq!(t.links[0].b, r1);
    }

    #[test]
    #[should_panic(expected = "distinct routers")]
    fn self_links_rejected() {
        let mut b = TopologyBuilder::new();
        let c0 = b.city("x", Point::new(0.0, 0.0), 1.0);
        let bp = b.bp("bp", vec![c0], vec![]);
        let r0 = b.router(c0, vec![bp]);
        b.link(LinkOwner::Bp(bp), r0, r0, 10.0, 1.0, 1, 1.0);
    }
}

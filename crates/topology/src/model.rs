//! Core topology data model: cities, BP networks, POC routers, logical links.

use crate::geo::Point;
use crate::ids::{BpId, LinkId, PopId, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A city / PoP location. `weight` is a population-like attractor used by
/// gravity-model traffic matrices and by the generator when sizing BPs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct City {
    pub id: PopId,
    pub name: String,
    pub pos: Point,
    pub weight: f64,
}

/// A bandwidth provider's own physical network: the cities it is present in
/// and the physical adjacencies between them. Logical links offered to the
/// POC are paths through this network between POC-router cities.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BpNetwork {
    pub id: BpId,
    pub name: String,
    /// Cities where this BP has a PoP.
    pub cities: Vec<PopId>,
    /// Undirected physical edges, as pairs of cities (both in `cities`).
    pub edges: Vec<(PopId, PopId)>,
}

impl BpNetwork {
    /// Whether the BP has a PoP in `city`.
    pub fn present_in(&self, city: PopId) -> bool {
        self.cities.contains(&city)
    }
}

/// Who offers a logical link to the POC.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum LinkOwner {
    /// Offered by a bandwidth provider and priced through the auction.
    Bp(BpId),
    /// A *virtual link* provided by the external ISP with the given index:
    /// a path through that ISP between two POC attachment points, priced by
    /// long-term contract (paper §3.3), not by the auction.
    Virtual(u32),
}

impl LinkOwner {
    pub fn as_bp(self) -> Option<BpId> {
        match self {
            LinkOwner::Bp(b) => Some(b),
            LinkOwner::Virtual(_) => None,
        }
    }

    pub fn is_virtual(self) -> bool {
        matches!(self, LinkOwner::Virtual(_))
    }
}

/// A point-to-point connection between two POC routers offered for lease.
/// "Logical" because it may traverse several physical links inside the
/// owner's network (`hop_count` of them, spanning `distance_km`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogicalLink {
    pub id: LinkId,
    pub owner: LinkOwner,
    /// Endpoints, stored with `a < b` (links are undirected).
    pub a: RouterId,
    pub b: RouterId,
    /// Usable capacity in Gbit/s.
    pub capacity_gbps: f64,
    /// Physical fibre distance, km (≥ straight-line distance).
    pub distance_km: f64,
    /// Number of physical hops inside the owner network.
    pub hop_count: u32,
    /// The owner's true monthly cost of providing this link, in dollars.
    /// Bids are built on top of this by the auction crate; the auction never
    /// sees this field directly (it sees declared bids).
    pub true_monthly_cost: f64,
}

impl LogicalLink {
    /// The endpoint opposite to `r`, or `None` if `r` is not an endpoint.
    pub fn other_end(&self, r: RouterId) -> Option<RouterId> {
        if r == self.a {
            Some(self.b)
        } else if r == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Whether the link connects the (unordered) router pair `(x, y)`.
    pub fn connects(&self, x: RouterId, y: RouterId) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }
}

/// A POC router, placed at a city where at least the colocation threshold
/// of BPs are present.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PocRouter {
    pub id: RouterId,
    pub city: PopId,
    /// BPs colocated at this router's city.
    pub colocated_bps: Vec<BpId>,
}

/// The full POC topology instance consumed by the feasibility oracle and
/// the bandwidth auction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PocTopology {
    pub cities: Vec<City>,
    pub bps: Vec<BpNetwork>,
    pub routers: Vec<PocRouter>,
    pub links: Vec<LogicalLink>,
}

impl PocTopology {
    /// Number of POC routers.
    pub fn n_routers(&self) -> usize {
        self.routers.len()
    }

    /// Number of logical links (BP-offered plus virtual).
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Look up a link by id. Panics on a dangling id — ids are only minted
    /// by this crate, so a miss is a logic error, not an input error.
    pub fn link(&self, id: LinkId) -> &LogicalLink {
        &self.links[id.index()]
    }

    pub fn router(&self, id: RouterId) -> &PocRouter {
        &self.routers[id.index()]
    }

    pub fn city(&self, id: PopId) -> &City {
        &self.cities[id.index()]
    }

    /// Position of a router on the plane.
    pub fn router_pos(&self, id: RouterId) -> Point {
        self.city(self.router(id).city).pos
    }

    /// Straight-line distance between two routers, km.
    pub fn router_distance(&self, a: RouterId, b: RouterId) -> f64 {
        self.router_pos(a).distance(self.router_pos(b))
    }

    /// Ids of all links owned by `bp`.
    pub fn links_of_bp(&self, bp: BpId) -> Vec<LinkId> {
        self.links.iter().filter(|l| l.owner == LinkOwner::Bp(bp)).map(|l| l.id).collect()
    }

    /// Ids of all virtual (external-ISP) links.
    pub fn virtual_links(&self) -> Vec<LinkId> {
        self.links.iter().filter(|l| l.owner.is_virtual()).map(|l| l.id).collect()
    }

    /// Link count per BP, keyed by BP id.
    pub fn links_per_bp(&self) -> BTreeMap<BpId, usize> {
        let mut m: BTreeMap<BpId, usize> = self.bps.iter().map(|b| (b.id, 0)).collect();
        for l in &self.links {
            if let LinkOwner::Bp(b) = l.owner {
                *m.entry(b).or_insert(0) += 1;
            }
        }
        m
    }

    /// A cheap structural fingerprint of this instance: FNV-1a over the
    /// structural counts, link endpoints, and link capacities. Not
    /// cryptographic — a "same instance?" check used by the control
    /// plane's recovery path and by `poc-flow`'s feasibility cache to
    /// refuse cross-instance reuse.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.mix(self.n_routers() as u64);
        h.mix(self.n_links() as u64);
        h.mix(self.bps.len() as u64);
        for l in &self.links {
            h.mix(l.a.0 as u64);
            h.mix(l.b.0 as u64);
            h.mix(l.capacity_gbps.to_bits());
        }
        h.finish()
    }

    /// Internal consistency check; used by tests and by deserialization
    /// call-sites that accept instances from outside this crate.
    pub fn validate(&self) -> Result<(), String> {
        for (i, c) in self.cities.iter().enumerate() {
            if c.id.index() != i {
                return Err(format!("city {} stored at index {i}", c.id));
            }
            if !(c.weight.is_finite() && c.weight > 0.0) {
                return Err(format!("city {} has non-positive weight", c.id));
            }
        }
        for (i, r) in self.routers.iter().enumerate() {
            if r.id.index() != i {
                return Err(format!("router {} stored at index {i}", r.id));
            }
            if r.city.index() >= self.cities.len() {
                return Err(format!("router {} at unknown city {}", r.id, r.city));
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            if l.id.index() != i {
                return Err(format!("link {} stored at index {i}", l.id));
            }
            if l.a >= l.b {
                return Err(format!("link {} endpoints not ordered (a<b)", l.id));
            }
            if l.b.index() >= self.routers.len() {
                return Err(format!("link {} references unknown router {}", l.id, l.b));
            }
            if !(l.capacity_gbps.is_finite() && l.capacity_gbps > 0.0) {
                return Err(format!("link {} has non-positive capacity", l.id));
            }
            if !(l.true_monthly_cost.is_finite() && l.true_monthly_cost >= 0.0) {
                return Err(format!("link {} has invalid cost", l.id));
            }
            if let LinkOwner::Bp(b) = l.owner {
                if b.index() >= self.bps.len() {
                    return Err(format!("link {} owned by unknown BP {}", l.id, b));
                }
            }
        }
        Ok(())
    }
}

/// Incremental FNV-1a hasher behind the structural fingerprints. Public so
/// downstream crates can extend a topology fingerprint with their own state
/// (e.g. `poc-flow` mixes in the traffic matrix and constraint to
/// fingerprint a whole oracle instance).
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Fnv1a {
    pub fn new() -> Self {
        Self(0xcbf29ce484222325)
    }

    /// Mix one 64-bit word into the hash.
    pub fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PocTopology {
        let cities = vec![
            City { id: PopId(0), name: "a".into(), pos: Point::new(0.0, 0.0), weight: 1.0 },
            City { id: PopId(1), name: "b".into(), pos: Point::new(100.0, 0.0), weight: 2.0 },
        ];
        let bps = vec![BpNetwork {
            id: BpId(0),
            name: "bp0".into(),
            cities: vec![PopId(0), PopId(1)],
            edges: vec![(PopId(0), PopId(1))],
        }];
        let routers = vec![
            PocRouter { id: RouterId(0), city: PopId(0), colocated_bps: vec![BpId(0)] },
            PocRouter { id: RouterId(1), city: PopId(1), colocated_bps: vec![BpId(0)] },
        ];
        let links = vec![LogicalLink {
            id: LinkId(0),
            owner: LinkOwner::Bp(BpId(0)),
            a: RouterId(0),
            b: RouterId(1),
            capacity_gbps: 100.0,
            distance_km: 100.0,
            hop_count: 1,
            true_monthly_cost: 1000.0,
        }];
        PocTopology { cities, bps, routers, links }
    }

    #[test]
    fn tiny_topology_validates() {
        tiny().validate().unwrap();
    }

    #[test]
    fn other_end_and_connects() {
        let t = tiny();
        let l = t.link(LinkId(0));
        assert_eq!(l.other_end(RouterId(0)), Some(RouterId(1)));
        assert_eq!(l.other_end(RouterId(1)), Some(RouterId(0)));
        assert_eq!(l.other_end(RouterId(9)), None);
        assert!(l.connects(RouterId(1), RouterId(0)));
        assert!(!l.connects(RouterId(1), RouterId(1)));
    }

    #[test]
    fn links_per_bp_counts_only_bp_links() {
        let mut t = tiny();
        t.links.push(LogicalLink {
            id: LinkId(1),
            owner: LinkOwner::Virtual(0),
            a: RouterId(0),
            b: RouterId(1),
            capacity_gbps: 10.0,
            distance_km: 120.0,
            hop_count: 3,
            true_monthly_cost: 5000.0,
        });
        t.validate().unwrap();
        let per = t.links_per_bp();
        assert_eq!(per[&BpId(0)], 1);
        assert_eq!(t.virtual_links(), vec![LinkId(1)]);
    }

    #[test]
    fn validate_rejects_unordered_endpoints() {
        let mut t = tiny();
        let l = &mut t.links[0];
        std::mem::swap(&mut l.a, &mut l.b);
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_dangling_router() {
        let mut t = tiny();
        t.links[0].b = RouterId(40);
        assert!(t.validate().is_err());
    }

    #[test]
    fn router_distance_matches_geometry() {
        let t = tiny();
        assert!((t.router_distance(RouterId(0), RouterId(1)) - 100.0).abs() < 1e-9);
    }
}

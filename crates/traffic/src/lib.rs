//! Synthetic traffic-matrix substrate.
//!
//! The paper's auction (§3.3) assumes "some upper-bound estimate of its
//! traffic matrix (how much traffic flows between each pair of attachment
//! points)" and evaluates on "a synthetic traffic matrix between all POC
//! routers". This crate generates such matrices — gravity-model (the
//! standard synthetic WAN workload), uniform, and hotspot variants — and
//! provides the [`TrafficMatrix`] container consumed by the feasibility
//! oracle and by the flow-level simulator.

pub mod arrivals;
pub mod matrix;
pub mod models;

pub use arrivals::{pair_demands, total_user_flows, PairDemand, UserFlowModel};
pub use matrix::TrafficMatrix;
pub use models::{TrafficModel, TrafficScenario};

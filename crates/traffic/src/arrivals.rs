//! User-flow scaling: from aggregate traffic matrices to packet sources.
//!
//! The gravity/hotspot matrices describe aggregate Gbit/s between router
//! pairs; the packet engine wants *sources* that stand in for the user
//! flows behind each aggregate. [`UserFlowModel`] fixes the per-user-flow
//! rate (a video stream, a bulk transfer share) and [`pair_demands`]
//! expands a matrix into one [`PairDemand`] per non-zero pair, each
//! carrying the number of user flows it aggregates — millions of them at
//! paper scale, without simulating millions of independent sources.

use crate::matrix::TrafficMatrix;
use poc_topology::RouterId;
use serde::{Deserialize, Serialize};

/// How aggregate demand decomposes into user flows.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct UserFlowModel {
    /// Average rate of one user flow, Gbit/s.
    pub per_flow_gbps: f64,
}

impl Default for UserFlowModel {
    fn default() -> Self {
        // 4 Mbit/s: an HD video stream, the canonical eyeball flow.
        Self { per_flow_gbps: 0.004 }
    }
}

/// One pair's aggregate demand, annotated with the user flows it carries.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PairDemand {
    pub src: RouterId,
    pub dst: RouterId,
    /// Aggregate rate, Gbit/s.
    pub rate_gbps: f64,
    /// `ceil(rate / per_flow_rate)` — how many user flows the aggregate
    /// stands in for (at least 1 for any non-zero demand).
    pub user_flows: u64,
}

/// Expand a traffic matrix into per-pair demands under a user-flow model.
/// Zero-demand pairs are skipped; iteration order (and thus output order)
/// is the matrix's deterministic row-major order.
pub fn pair_demands(tm: &TrafficMatrix, model: &UserFlowModel) -> Vec<PairDemand> {
    let per_flow = model.per_flow_gbps.max(f64::MIN_POSITIVE);
    tm.iter_demands()
        .map(|(src, dst, rate_gbps)| PairDemand {
            src,
            dst,
            rate_gbps,
            user_flows: (rate_gbps / per_flow).ceil().max(1.0) as u64,
        })
        .collect()
}

/// Total user flows a matrix decomposes into under a model.
pub fn total_user_flows(tm: &TrafficMatrix, model: &UserFlowModel) -> u64 {
    pair_demands(tm, model).iter().map(|d| d.user_flows).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::TrafficScenario;
    use poc_topology::{ZooConfig, ZooGenerator};

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    #[test]
    fn counts_round_up_and_total_is_preserved() {
        let mut tm = TrafficMatrix::zero(3);
        tm.set(r(0), r(1), 1.0);
        tm.set(r(1), r(2), 0.0001); // far below one 4 Mbit/s flow
        let demands = pair_demands(&tm, &UserFlowModel::default());
        assert_eq!(demands.len(), 2);
        assert_eq!(demands[0].user_flows, 250);
        assert_eq!(demands[1].user_flows, 1, "tiny demands still carry one flow");
        let total: f64 = demands.iter().map(|d| d.rate_gbps).sum();
        assert!((total - tm.total()).abs() < 1e-12, "aggregate rate unchanged");
    }

    #[test]
    fn paper_scale_matrix_aggregates_millions_of_user_flows() {
        let topo = ZooGenerator::new(ZooConfig::small()).generate();
        let tm = TrafficScenario::paper_default().generate(&topo);
        let n = total_user_flows(&tm, &UserFlowModel::default());
        // paper_default targets 24 Tbit/s; at 4 Mbit/s per user flow the
        // fabric carries millions of flows (the cap may shave the total).
        assert!(n > 1_000_000, "expected millions of user flows, got {n}");
    }

    #[test]
    fn expansion_is_deterministic() {
        let topo = ZooGenerator::new(ZooConfig::small()).generate();
        let tm = TrafficScenario::paper_default().generate(&topo);
        let m = UserFlowModel::default();
        assert_eq!(pair_demands(&tm, &m), pair_demands(&tm, &m));
    }
}

//! The traffic-matrix container.

use poc_topology::RouterId;
use serde::{Deserialize, Serialize};

/// A dense origin-destination demand matrix over `n` POC routers, Gbit/s.
///
/// Demands are directed: `demand(a, b)` is traffic entering the POC at
/// router `a` destined to router `b`. The diagonal is always zero.
///
/// ```
/// use poc_traffic::TrafficMatrix;
/// use poc_topology::RouterId;
///
/// let mut tm = TrafficMatrix::zero(3);
/// tm.set(RouterId(0), RouterId(2), 40.0);
/// tm.set(RouterId(2), RouterId(0), 10.0);
/// tm.scale_to_total(100.0);
/// assert_eq!(tm.demand(RouterId(0), RouterId(2)), 80.0);
/// assert_eq!(tm.n_flows(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n: usize,
    /// Row-major `n × n`, Gbit/s.
    demand: Vec<f64>,
}

impl TrafficMatrix {
    /// An all-zero matrix over `n` routers.
    pub fn zero(n: usize) -> Self {
        Self { n, demand: vec![0.0; n * n] }
    }

    /// Build from a dense row-major vector.
    ///
    /// # Panics
    /// Panics if the length is not `n²`, any entry is negative/non-finite,
    /// or the diagonal is non-zero.
    pub fn from_dense(n: usize, demand: Vec<f64>) -> Self {
        assert_eq!(demand.len(), n * n, "demand vector must be n^2 long");
        for (i, &d) in demand.iter().enumerate() {
            assert!(d.is_finite() && d >= 0.0, "invalid demand at flat index {i}");
            if i / n == i % n {
                assert_eq!(d, 0.0, "diagonal must be zero (router {})", i / n);
            }
        }
        Self { n, demand }
    }

    pub fn n_routers(&self) -> usize {
        self.n
    }

    /// Demand from `a` to `b`, Gbit/s.
    #[inline]
    pub fn demand(&self, a: RouterId, b: RouterId) -> f64 {
        self.demand[a.index() * self.n + b.index()]
    }

    /// Set the demand from `a` to `b`.
    ///
    /// # Panics
    /// Panics on the diagonal or on invalid values.
    pub fn set(&mut self, a: RouterId, b: RouterId, gbps: f64) {
        assert!(a != b, "no self-demand");
        assert!(gbps.is_finite() && gbps >= 0.0, "invalid demand");
        self.demand[a.index() * self.n + b.index()] = gbps;
    }

    /// Total offered load, Gbit/s.
    pub fn total(&self) -> f64 {
        self.demand.iter().sum()
    }

    /// Largest single demand, Gbit/s.
    pub fn max_demand(&self) -> f64 {
        self.demand.iter().copied().fold(0.0, f64::max)
    }

    /// Multiply every demand by `factor` (capacity-planning headroom).
    pub fn scale(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor >= 0.0, "invalid scale factor");
        for d in &mut self.demand {
            *d *= factor;
        }
    }

    /// Clamp every demand at `cap` Gbit/s.
    pub fn cap_demands(&mut self, cap: f64) {
        assert!(cap.is_finite() && cap > 0.0, "invalid demand cap");
        for d in &mut self.demand {
            if *d > cap {
                *d = cap;
            }
        }
    }

    /// Rescale so the total offered load equals `total_gbps`.
    /// No-op on an all-zero matrix.
    pub fn scale_to_total(&mut self, total_gbps: f64) {
        let t = self.total();
        if t > 0.0 {
            self.scale(total_gbps / t);
        }
    }

    /// Iterate over the non-zero directed demands as `(src, dst, gbps)`.
    pub fn iter_demands(&self) -> impl Iterator<Item = (RouterId, RouterId, f64)> + '_ {
        let n = self.n;
        self.demand
            .iter()
            .enumerate()
            .filter(|(_, &d)| d > 0.0)
            .map(move |(i, &d)| (RouterId::from_index(i / n), RouterId::from_index(i % n), d))
    }

    /// Undirected pair load: demand(a,b) + demand(b,a), for the feasibility
    /// oracle's per-pair routing (links are undirected full-duplex, so the
    /// binding load per direction is the directed demand; this helper is for
    /// reporting).
    pub fn pair_total(&self, a: RouterId, b: RouterId) -> f64 {
        self.demand(a, b) + self.demand(b, a)
    }

    /// Number of strictly positive demands.
    pub fn n_flows(&self) -> usize {
        self.demand.iter().filter(|&&d| d > 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    #[test]
    fn zero_matrix_has_no_flows() {
        let tm = TrafficMatrix::zero(5);
        assert_eq!(tm.total(), 0.0);
        assert_eq!(tm.n_flows(), 0);
        assert_eq!(tm.iter_demands().count(), 0);
    }

    #[test]
    fn set_and_get_round_trip() {
        let mut tm = TrafficMatrix::zero(3);
        tm.set(r(0), r(2), 4.5);
        tm.set(r(2), r(0), 1.5);
        assert_eq!(tm.demand(r(0), r(2)), 4.5);
        assert_eq!(tm.demand(r(2), r(0)), 1.5);
        assert_eq!(tm.pair_total(r(0), r(2)), 6.0);
        assert_eq!(tm.total(), 6.0);
        assert_eq!(tm.n_flows(), 2);
        assert_eq!(tm.max_demand(), 4.5);
    }

    #[test]
    #[should_panic(expected = "no self-demand")]
    fn self_demand_rejected() {
        TrafficMatrix::zero(3).set(r(1), r(1), 1.0);
    }

    #[test]
    fn scale_to_total_hits_target() {
        let mut tm = TrafficMatrix::zero(3);
        tm.set(r(0), r(1), 2.0);
        tm.set(r(1), r(2), 6.0);
        tm.scale_to_total(100.0);
        assert!((tm.total() - 100.0).abs() < 1e-9);
        // Relative proportions preserved.
        assert!((tm.demand(r(1), r(2)) / tm.demand(r(0), r(1)) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn scale_to_total_on_zero_is_noop() {
        let mut tm = TrafficMatrix::zero(2);
        tm.scale_to_total(10.0);
        assert_eq!(tm.total(), 0.0);
    }

    #[test]
    fn from_dense_validates_diagonal() {
        let ok = TrafficMatrix::from_dense(2, vec![0.0, 1.0, 2.0, 0.0]);
        assert_eq!(ok.demand(r(0), r(1)), 1.0);
        let bad =
            std::panic::catch_unwind(|| TrafficMatrix::from_dense(2, vec![1.0, 0.0, 0.0, 0.0]));
        assert!(bad.is_err());
    }

    #[test]
    fn iter_demands_yields_sorted_flat_order() {
        let mut tm = TrafficMatrix::zero(3);
        tm.set(r(2), r(0), 1.0);
        tm.set(r(0), r(1), 2.0);
        let v: Vec<_> = tm.iter_demands().collect();
        assert_eq!(v, vec![(r(0), r(1), 2.0), (r(2), r(0), 1.0)]);
    }
}

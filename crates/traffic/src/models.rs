//! Traffic-matrix generators.
//!
//! Three synthetic workload families, all seeded and deterministic:
//!
//! * **Gravity** — the classic WAN model: demand(a→b) ∝ w(a)·w(b), where
//!   `w` is the city weight of the router's location. This is the default
//!   used by the Figure-2 reproduction.
//! * **Uniform** — equal demand between every ordered pair; stresses the
//!   auction's feasibility oracle uniformly.
//! * **Hotspot** — gravity plus `k` content-heavy sources (modelling large
//!   CSPs attached directly to the POC, §1.2) whose egress is multiplied.

use crate::matrix::TrafficMatrix;
use poc_topology::{PocTopology, RouterId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which demand structure to generate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TrafficModel {
    /// Gravity model with multiplicative lognormal-ish jitter (sigma as
    /// given; 0 disables jitter).
    Gravity { jitter_sigma: f64 },
    /// Same demand between every ordered pair.
    Uniform,
    /// Gravity plus `hotspots` sources whose egress demand is scaled by
    /// `multiplier` (models directly-attached content providers).
    Hotspot { hotspots: usize, multiplier: f64, jitter_sigma: f64 },
}

/// A complete workload description: model, seed, and target total load.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficScenario {
    pub model: TrafficModel,
    pub seed: u64,
    /// Total offered load across all pairs, Gbit/s.
    pub total_gbps: f64,
    /// Optional per-pair demand ceiling, Gbit/s, applied after scaling
    /// (the realized total may fall below `total_gbps` when it binds).
    /// Gravity matrices produce elephant pairs; a cap around the largest
    /// link capacity keeps single demands routable without extreme
    /// splitting.
    #[serde(default)]
    pub cap_gbps: Option<f64>,
}

impl TrafficScenario {
    /// The workload used by the Figure-2 reproduction: gravity with mild
    /// jitter, sized so the paper-scale topology runs at moderate load,
    /// with per-pair demands capped at 1.5× the largest (100G) link.
    pub fn paper_default() -> Self {
        Self {
            model: TrafficModel::Gravity { jitter_sigma: 0.3 },
            seed: 42,
            total_gbps: 24000.0,
            cap_gbps: Some(150.0),
        }
    }

    /// Generate the matrix for `topo`.
    pub fn generate(&self, topo: &PocTopology) -> TrafficMatrix {
        let n = topo.n_routers();
        let mut tm = TrafficMatrix::zero(n);
        if n < 2 {
            return tm;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let weights: Vec<f64> = topo.routers.iter().map(|r| topo.city(r.city).weight).collect();
        match &self.model {
            TrafficModel::Uniform => {
                for a in 0..n {
                    for b in 0..n {
                        if a != b {
                            tm.set(RouterId::from_index(a), RouterId::from_index(b), 1.0);
                        }
                    }
                }
            }
            TrafficModel::Gravity { jitter_sigma } => {
                fill_gravity(&mut tm, &weights, *jitter_sigma, &mut rng);
            }
            TrafficModel::Hotspot { hotspots, multiplier, jitter_sigma } => {
                assert!(*multiplier >= 1.0, "hotspot multiplier must be >= 1");
                fill_gravity(&mut tm, &weights, *jitter_sigma, &mut rng);
                // The k highest-weight routers are the content hotspots.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&x, &y| weights[y].partial_cmp(&weights[x]).unwrap());
                for &h in order.iter().take(*hotspots) {
                    let src = RouterId::from_index(h);
                    for b in 0..n {
                        if b != h {
                            let dst = RouterId::from_index(b);
                            let d = tm.demand(src, dst);
                            tm.set(src, dst, d * multiplier);
                        }
                    }
                }
            }
        }
        tm.scale_to_total(self.total_gbps);
        if let Some(cap) = self.cap_gbps {
            assert!(cap > 0.0, "demand cap must be positive");
            tm.cap_demands(cap);
        }
        tm
    }
}

fn fill_gravity(tm: &mut TrafficMatrix, weights: &[f64], sigma: f64, rng: &mut ChaCha8Rng) {
    let n = weights.len();
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            let jitter = if sigma > 0.0 {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (sigma * z).exp()
            } else {
                1.0
            };
            tm.set(
                RouterId::from_index(a),
                RouterId::from_index(b),
                weights[a] * weights[b] * jitter,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::{ZooConfig, ZooGenerator};

    fn topo() -> PocTopology {
        ZooGenerator::new(ZooConfig::small()).generate()
    }

    #[test]
    fn gravity_total_matches_target() {
        let t = topo();
        let s = TrafficScenario { cap_gbps: None, ..TrafficScenario::paper_default() };
        let tm = s.generate(&t);
        assert!((tm.total() - s.total_gbps).abs() < 1e-6);
        assert_eq!(tm.n_routers(), t.n_routers());
    }

    #[test]
    fn demand_cap_binds() {
        let t = topo();
        let capped = TrafficScenario::paper_default();
        let tm = capped.generate(&t);
        assert!(tm.max_demand() <= capped.cap_gbps.unwrap() + 1e-9);
        assert!(tm.total() <= capped.total_gbps + 1e-6);
    }

    #[test]
    fn gravity_is_deterministic_per_seed() {
        let t = topo();
        let s = TrafficScenario::paper_default();
        assert_eq!(s.generate(&t), s.generate(&t));
        let s2 = TrafficScenario { seed: 43, ..s.clone() };
        assert_ne!(s.generate(&t), s2.generate(&t));
    }

    #[test]
    fn uniform_has_equal_demands() {
        let t = topo();
        let s = TrafficScenario {
            model: TrafficModel::Uniform,
            seed: 0,
            total_gbps: 100.0,
            cap_gbps: None,
        };
        let tm = s.generate(&t);
        let n = tm.n_routers();
        let expect = 100.0 / (n * (n - 1)) as f64;
        for (_, _, d) in tm.iter_demands() {
            assert!((d - expect).abs() < 1e-9);
        }
        assert_eq!(tm.n_flows(), n * (n - 1));
    }

    #[test]
    fn hotspot_sources_dominate_egress() {
        let t = topo();
        let base = TrafficScenario {
            model: TrafficModel::Gravity { jitter_sigma: 0.0 },
            seed: 7,
            total_gbps: 1000.0,
            cap_gbps: None,
        };
        let hot = TrafficScenario {
            model: TrafficModel::Hotspot { hotspots: 1, multiplier: 10.0, jitter_sigma: 0.0 },
            seed: 7,
            total_gbps: 1000.0,
            cap_gbps: None,
        };
        let tm_base = base.generate(&t);
        let tm_hot = hot.generate(&t);
        // Identify the hotspot (highest-weight router).
        let weights: Vec<f64> = t.routers.iter().map(|r| t.city(r.city).weight).collect();
        let h = (0..weights.len())
            .max_by(|&x, &y| weights[x].partial_cmp(&weights[y]).unwrap())
            .unwrap();
        let egress = |tm: &TrafficMatrix, src: usize| -> f64 {
            (0..tm.n_routers())
                .filter(|&b| b != src)
                .map(|b| tm.demand(RouterId::from_index(src), RouterId::from_index(b)))
                .sum()
        };
        // Hotspot egress share must strictly grow vs the gravity baseline.
        let share_base = egress(&tm_base, h) / tm_base.total();
        let share_hot = egress(&tm_hot, h) / tm_hot.total();
        assert!(
            share_hot > share_base * 2.0,
            "hotspot share {share_hot:.3} vs base {share_base:.3}"
        );
    }

    #[test]
    fn gravity_favors_heavy_pairs() {
        let t = topo();
        let s = TrafficScenario {
            model: TrafficModel::Gravity { jitter_sigma: 0.0 },
            seed: 1,
            total_gbps: 100.0,
            cap_gbps: None,
        };
        let tm = s.generate(&t);
        let weights: Vec<f64> = t.routers.iter().map(|r| t.city(r.city).weight).collect();
        // demand(a,b)/demand(c,b) == w(a)/w(c) exactly when jitter is off.
        let n = weights.len();
        assert!(n >= 3);
        let (a, b, c) = (0, 1, 2);
        let ratio = tm.demand(RouterId::from_index(a), RouterId::from_index(b))
            / tm.demand(RouterId::from_index(c), RouterId::from_index(b));
        assert!((ratio - weights[a] / weights[c]).abs() < 1e-9);
    }
}

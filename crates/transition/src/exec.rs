//! Executing a transition plan: antichain verification, journaled steps,
//! mid-flight replanning, rollback.
//!
//! The executor walks the plan's homogeneous rounds (all-add / all-remove
//! runs — the DAG's antichains: ops within a round commute). Before each
//! round it polls [`TransitionHooks::poll_events`] for the outside world
//! intruding — a link cut, a BP recall — and re-verifies the round's
//! states concurrently (scoped threads sharing one warm oracle, the same
//! pattern as the auction's parallel Clarke pivots). Anything off plan
//! triggers a replan from the live state toward the (possibly shrunken)
//! target; when no safe forward plan remains, the executor plans a
//! rollback to the original set, and as a last resort force-restores it
//! atomically.
//!
//! Application order is strictly the plan's canonical linearization:
//! every step goes through [`TransitionHooks::apply_step`] so a control
//! plane can journal it durably *before* mutating the lease book —
//! that's what makes a crash at any point recoverable.

use crate::plan::{plan_transition, PlanConfig, TransitionOp, TransitionPlan};
use poc_flow::{AcceptabilityOracle, Constraint, LinkSet, WarmOracle};
use poc_topology::{LinkId, PocTopology};
use poc_traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};

/// Something that happened to the network while a transition was in
/// flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransitionEvent {
    /// The link physically failed: it must leave the live set immediately
    /// and can appear in no future state (including rollback).
    LinkCut(LinkId),
    /// The owning BP recalled the link: it may finish serving the current
    /// state but must not be in the target.
    Recall(LinkId),
}

/// How a transition ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransitionOutcome {
    /// All steps applied; the fabric is on the target set.
    Committed,
    /// Forward progress became unsafe; applied steps were unwound by a
    /// planned (per-step-verified) rollback to the original set.
    RolledBack,
    /// Even rollback had no safe step order; the original set was
    /// restored in one atomic install.
    ForceRestored,
}

/// What the executor did.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransitionReport {
    pub outcome: TransitionOutcome,
    /// Steps applied across the original plan and any replans/rollbacks.
    pub steps_applied: usize,
    pub replans: u32,
    pub rollbacks: u32,
    /// The live set when the executor returned.
    pub final_state: LinkSet,
}

/// Executor failures: the planner's own errors never escape (they become
/// rollbacks); only a hook refusing a step does.
#[derive(Debug)]
pub enum ExecError {
    /// A hook failed to apply or restore; the transition cannot proceed
    /// and the caller (control plane) must recover from its journal.
    Hook { step: usize, reason: String },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Hook { step, reason } => write!(f, "hook failed at step {step}: {reason}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The executor's side effects, so the control plane can journal each
/// step before it lands and the simulator can inject failures between
/// rounds.
pub trait TransitionHooks {
    /// Apply one step. `idx` counts applied steps monotonically across
    /// replans (it is the journal sequence number); `state_after` is the
    /// verified link set the fabric is on once this step lands.
    fn apply_step(
        &mut self,
        idx: usize,
        op: TransitionOp,
        state_after: &LinkSet,
    ) -> Result<(), String>;

    /// Drain outside-world events. Called before every round.
    fn poll_events(&mut self) -> Vec<TransitionEvent> {
        Vec::new()
    }

    /// Last-resort atomic restore when not even rollback has a safe step
    /// order.
    fn force_restore(&mut self, links: &LinkSet) -> Result<(), String> {
        let _ = links;
        Ok(())
    }
}

/// Hooks that do nothing (pure planning/verification runs, benchmarks).
pub struct NoHooks;

impl TransitionHooks for NoHooks {
    fn apply_step(&mut self, _: usize, _: TransitionOp, _: &LinkSet) -> Result<(), String> {
        Ok(())
    }
}

/// Replan ceiling: events keep arriving faster than this and the
/// executor stops chasing the target and unwinds instead.
const MAX_REPLANS: u32 = 8;

/// Run `plan`, applying each step through `hooks`. See the module docs
/// for the replan/rollback state machine.
pub fn execute_transition(
    topo: &PocTopology,
    tm: &TrafficMatrix,
    constraint: Constraint,
    cfg: &PlanConfig,
    plan: TransitionPlan,
    hooks: &mut dyn TransitionHooks,
) -> Result<TransitionReport, ExecError> {
    let _span = poc_obs::span!("transition.run");
    let mut original = plan.from.clone();
    let mut target = plan.to.clone();
    let mut current = plan.from.clone();
    let mut plan = plan;
    let mut steps_applied = 0usize;
    let mut replans = 0u32;
    let mut rollbacks = 0u32;
    let mut rolling_back = false;

    // One warm oracle re-verifies every round; sharing it across the
    // round's verification threads keeps its witness chain close to the
    // states being probed (soundness does not depend on probe order — a
    // warm accept is a genuine witness, and warm failures fall back
    // cold).
    let oracle = WarmOracle::new(topo, tm, constraint);

    'replan: loop {
        let states = plan.states();
        for round in plan.rounds() {
            // 1. Let the outside world intrude.
            let events = hooks.poll_events();
            let drifted = apply_events(&events, &mut current, &mut target, &mut original);

            // 2. Re-verify this round's states concurrently (antichain
            //    fan-out, mirroring the auction's parallel pivots).
            let verified = !drifted && verify_round(&oracle, &states[round.clone()]);

            if drifted || !verified {
                replans += 1;
                poc_obs::counter!("transition.replans").inc();
                if replans <= MAX_REPLANS && !rolling_back {
                    if let Ok(p) = plan_transition(topo, tm, constraint, &current, &target, cfg) {
                        plan = p;
                        continue 'replan;
                    }
                }
                // No safe way forward: unwind to the original set.
                if !rolling_back {
                    rolling_back = true;
                    rollbacks += 1;
                    poc_obs::counter!("transition.rollbacks").inc();
                    target = original.clone();
                    if let Ok(p) = plan_transition(topo, tm, constraint, &current, &target, cfg) {
                        plan = p;
                        continue 'replan;
                    }
                }
                // Not even rollback has a safe order (or rollback itself
                // drifted): restore atomically.
                hooks
                    .force_restore(&target)
                    .map_err(|reason| ExecError::Hook { step: steps_applied, reason })?;
                poc_obs::counter!("transition.steps").inc();
                return Ok(TransitionReport {
                    outcome: TransitionOutcome::ForceRestored,
                    steps_applied,
                    replans,
                    rollbacks,
                    final_state: target,
                });
            }

            // 3. Apply the round in canonical order, one journaled step at
            //    a time.
            for i in round {
                let op = plan.steps[i];
                let state_after = &states[i];
                let _step_span = poc_obs::span!("transition.step");
                hooks
                    .apply_step(steps_applied, op, state_after)
                    .map_err(|reason| ExecError::Hook { step: steps_applied, reason })?;
                poc_obs::counter!("transition.steps").inc();
                current = state_after.clone();
                steps_applied += 1;
            }
        }
        return Ok(TransitionReport {
            outcome: if rolling_back {
                TransitionOutcome::RolledBack
            } else {
                TransitionOutcome::Committed
            },
            steps_applied,
            replans,
            rollbacks,
            final_state: current,
        });
    }
}

/// Fold events into the live, target, and original sets. Returns whether
/// anything actually changed (an event about an absent link is a no-op).
fn apply_events(
    events: &[TransitionEvent],
    current: &mut LinkSet,
    target: &mut LinkSet,
    original: &mut LinkSet,
) -> bool {
    let mut changed = false;
    for ev in events {
        match *ev {
            TransitionEvent::LinkCut(l) => {
                // A dead link is gone everywhere: live now, and from every
                // set we might still steer toward.
                for set in [&mut *current, &mut *target, &mut *original] {
                    if set.contains(l) {
                        set.remove(l);
                        changed = true;
                    }
                }
            }
            TransitionEvent::Recall(l) => {
                // Recalled links drain via a planned Remove step: they
                // leave the destinations, not the live set.
                for set in [&mut *target, &mut *original] {
                    if set.contains(l) {
                        set.remove(l);
                        changed = true;
                    }
                }
            }
        }
    }
    changed
}

/// Verify a round's states against the shared warm oracle: a concurrent
/// fan-out first, then — only if the fan-out rejects something — a
/// sequential re-walk of the round in plan order.
///
/// The retry is not redundancy, it is completeness. The warm oracle's
/// witness is the *last* accepted routing, so unordered concurrent probes
/// can warm-start far from the state they check, trip the invalidation
/// guard, and land on the cold fallback — whose greedy packing is
/// incomplete and can reject states the planner (probing the chain in
/// order, each state one link from its witness) proved safe. Re-walking
/// in plan order reproduces the planner's chain exactly; `evaluate`
/// bypasses the verdict memo, so a spurious concurrent reject does not
/// stick. A warm accept always carries a genuine routing witness, so the
/// retry can only repair false rejections, never mask a real one.
fn verify_round(oracle: &WarmOracle<'_>, states: &[LinkSet]) -> bool {
    let fan_out_ok = if states.len() <= 1 {
        states.iter().all(|s| oracle.acceptable(s))
    } else {
        std::thread::scope(|scope| {
            // Capture the transition's trace context before fanning out, so
            // per-state verification spans parent under the transition trace
            // across the thread boundary.
            let ctx = poc_obs::TraceCtx::current();
            let handles: Vec<_> = states
                .iter()
                .map(|s| {
                    scope.spawn(move || {
                        let _trace = ctx.as_ref().map(poc_obs::TraceCtx::adopt);
                        let _span = poc_obs::span!("transition.verify");
                        oracle.acceptable(s)
                    })
                })
                .collect();
            handles.into_iter().all(|h| h.join().expect("verify thread panicked"))
        })
    };
    if fan_out_ok {
        return true;
    }
    poc_obs::counter!("transition.verify.retries").inc();
    let _span = poc_obs::span!("transition.verify.sequential");
    states.iter().all(|s| oracle.evaluate(s).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_flow::FeasibilityOracle;
    use poc_topology::builder::two_bp_square;
    use poc_topology::{PocTopology, RouterId};
    use poc_traffic::TrafficMatrix;

    fn tm_for(t: &PocTopology) -> TrafficMatrix {
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(RouterId(0), RouterId(1), 10.0);
        tm.set(RouterId(2), RouterId(3), 10.0);
        tm
    }

    /// Hooks that record every applied step and can inject events at a
    /// chosen poll.
    #[derive(Default)]
    struct Recorder {
        applied: Vec<(usize, TransitionOp)>,
        states: Vec<LinkSet>,
        events_at_poll: std::collections::HashMap<usize, Vec<TransitionEvent>>,
        polls: usize,
        restored: Option<LinkSet>,
    }

    impl TransitionHooks for Recorder {
        fn apply_step(
            &mut self,
            idx: usize,
            op: TransitionOp,
            state_after: &LinkSet,
        ) -> Result<(), String> {
            self.applied.push((idx, op));
            self.states.push(state_after.clone());
            Ok(())
        }

        fn poll_events(&mut self) -> Vec<TransitionEvent> {
            let evs = self.events_at_poll.remove(&self.polls).unwrap_or_default();
            self.polls += 1;
            evs
        }

        fn force_restore(&mut self, links: &LinkSet) -> Result<(), String> {
            self.restored = Some(links.clone());
            Ok(())
        }
    }

    fn two_minimal_sets(t: &PocTopology, tm: &TrafficMatrix, c: Constraint) -> (LinkSet, LinkSet) {
        let cold = FeasibilityOracle::new(t, tm, c);
        let full = LinkSet::full(t.n_links());
        let prune = |order: Vec<poc_topology::LinkId>| {
            let mut cur = full.clone();
            for l in order {
                let mut cand = cur.clone();
                cand.remove(l);
                if cand.len() < cur.len() && cold.acceptable(&cand) {
                    cur = cand;
                }
            }
            cur
        };
        let fwd: Vec<_> = (0..t.n_links()).map(poc_topology::LinkId::from_index).collect();
        let rev: Vec<_> = fwd.iter().rev().copied().collect();
        (prune(fwd), prune(rev))
    }

    #[test]
    fn quiet_execution_commits_and_applies_every_step_in_order() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let c = Constraint::BaseLoad;
        let (a, b) = two_minimal_sets(&t, &tm, c);
        if a == b {
            return;
        }
        let cfg = PlanConfig::default();
        let plan = plan_transition(&t, &tm, c, &a, &b, &cfg).unwrap();
        let n_steps = plan.steps.len();
        let mut rec = Recorder::default();
        let report = execute_transition(&t, &tm, c, &cfg, plan, &mut rec).unwrap();
        assert_eq!(report.outcome, TransitionOutcome::Committed);
        assert_eq!(report.steps_applied, n_steps);
        assert_eq!(report.replans, 0);
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.final_state, b);
        assert_eq!(rec.applied.len(), n_steps);
        // Step indices are the journal sequence: 0..n in order.
        assert!(rec.applied.iter().enumerate().all(|(i, (idx, _))| i == *idx));
        assert_eq!(rec.states.last().unwrap(), &b);
    }

    #[test]
    fn link_cut_mid_transition_triggers_replan_not_violation() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let c = Constraint::BaseLoad;
        let (a, b) = two_minimal_sets(&t, &tm, c);
        if a == b {
            return;
        }
        let cfg = PlanConfig::default();
        let plan = plan_transition(&t, &tm, c, &a, &b, &cfg).unwrap();
        // Cut a link the target keeps — but only one that is not load-
        // bearing for feasibility: pick a target link whose removal stays
        // acceptable, so a forward replan must exist.
        let cold = FeasibilityOracle::new(&t, &tm, c);
        let Some(cut) = b.iter().find(|&l| {
            let mut s = b.clone();
            s.remove(l);
            cold.acceptable(&s)
        }) else {
            return;
        };
        let mut rec = Recorder::default();
        rec.events_at_poll.insert(0, vec![TransitionEvent::LinkCut(cut)]);
        let report = execute_transition(&t, &tm, c, &cfg, plan, &mut rec).unwrap();
        assert_eq!(report.outcome, TransitionOutcome::Committed);
        assert!(report.replans >= 1, "cut must force a replan");
        assert!(!report.final_state.contains(cut), "dead link must not be in the final set");
        let mut want = b.clone();
        want.remove(cut);
        assert_eq!(report.final_state, want);
        // Every applied state is feasible and never contains the cut link.
        for s in &rec.states {
            assert!(!s.contains(cut));
            assert!(cold.acceptable(s));
        }
    }

    #[test]
    fn recall_mid_transition_drains_the_link_via_a_remove_step() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let c = Constraint::BaseLoad;
        let (a, b) = two_minimal_sets(&t, &tm, c);
        if a == b {
            return;
        }
        let cold = FeasibilityOracle::new(&t, &tm, c);
        let Some(recalled) = b.iter().find(|&l| {
            let mut s = b.clone();
            s.remove(l);
            cold.acceptable(&s)
        }) else {
            return;
        };
        let cfg = PlanConfig::default();
        let plan = plan_transition(&t, &tm, c, &a, &b, &cfg).unwrap();
        let mut rec = Recorder::default();
        rec.events_at_poll.insert(0, vec![TransitionEvent::Recall(recalled)]);
        let report = execute_transition(&t, &tm, c, &cfg, plan, &mut rec).unwrap();
        assert_eq!(report.outcome, TransitionOutcome::Committed);
        assert!(!report.final_state.contains(recalled));
        // Unlike a cut, the recalled link may appear in intermediate
        // states (it drains via a planned Remove) — but each such state
        // still passed the oracle.
        for s in &rec.states {
            assert!(cold.acceptable(s));
        }
    }

    #[test]
    fn impossible_target_after_event_rolls_back() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let c = Constraint::BaseLoad;
        let (a, b) = two_minimal_sets(&t, &tm, c);
        if a == b {
            return;
        }
        let cfg = PlanConfig::default();
        let plan = plan_transition(&t, &tm, c, &a, &b, &cfg).unwrap();
        // Cut every link that is in the target but not the source: the
        // target collapses to a ⊆-of-a set; if that is infeasible the
        // executor must unwind to (what remains of) the original set —
        // never commit an unsafe state.
        let cuts: Vec<_> = b.difference(&a).iter().map(TransitionEvent::LinkCut).collect();
        if cuts.is_empty() {
            return;
        }
        let mut rec = Recorder::default();
        rec.events_at_poll.insert(0, cuts);
        let report = execute_transition(&t, &tm, c, &cfg, plan, &mut rec).unwrap();
        // All surviving-target links were already live, so whatever path
        // was taken, the final state may not contain a cut link and every
        // applied state must have been safe.
        for l in b.difference(&a).iter() {
            assert!(!report.final_state.contains(l));
        }
        let cold = FeasibilityOracle::new(&t, &tm, c);
        for s in &rec.states {
            assert!(cold.acceptable(s));
        }
    }

    #[test]
    fn hook_failure_surfaces_with_step_index() {
        struct FailingHooks;
        impl TransitionHooks for FailingHooks {
            fn apply_step(&mut self, _: usize, _: TransitionOp, _: &LinkSet) -> Result<(), String> {
                Err("journal full".into())
            }
        }
        let t = two_bp_square();
        let tm = tm_for(&t);
        let c = Constraint::BaseLoad;
        let (a, b) = two_minimal_sets(&t, &tm, c);
        if a == b {
            return;
        }
        let cfg = PlanConfig::default();
        let plan = plan_transition(&t, &tm, c, &a, &b, &cfg).unwrap();
        let err = execute_transition(&t, &tm, c, &cfg, plan, &mut FailingHooks).unwrap_err();
        let ExecError::Hook { step, reason } = err;
        assert_eq!(step, 0);
        assert_eq!(reason, "journal full");
    }
}

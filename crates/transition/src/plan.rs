//! Ordering lease migrations so every intermediate state is safe.
//!
//! The planner searches over interleavings of the add set `to ∖ from` and
//! the remove set `from ∖ to`. Each candidate prefix state is checked
//! with a [`WarmOracle`]: the accepted routing of one state is the warm
//! witness for the next probe, so verifying a whole plan costs little
//! more than repairing one routing step by step. Greedy order (adds
//! before removes — extra capacity never hurts) is tried first; when a
//! branch dead-ends the search backtracks, memoizing dead states so the
//! same hopeless interleaving is never explored twice.

use poc_flow::Constraint;
use poc_flow::{AcceptabilityOracle, LinkSet, Rejection, WarmOracle};
use poc_topology::{LinkId, PocTopology};
use poc_traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One lease-migration operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransitionOp {
    /// Bring a link into the fabric (book its lease).
    Add(LinkId),
    /// Take a link out of the fabric (expire its lease).
    Remove(LinkId),
}

impl TransitionOp {
    pub fn link(&self) -> LinkId {
        match *self {
            TransitionOp::Add(l) | TransitionOp::Remove(l) => l,
        }
    }

    pub fn is_add(&self) -> bool {
        matches!(self, TransitionOp::Add(_))
    }

    /// The state after applying this op to `state`.
    pub fn apply(&self, state: &LinkSet) -> LinkSet {
        let mut next = state.clone();
        match *self {
            TransitionOp::Add(l) => next.insert(l),
            TransitionOp::Remove(l) => next.remove(l),
        }
        next
    }
}

impl std::fmt::Display for TransitionOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransitionOp::Add(l) => write!(f, "+{l}"),
            TransitionOp::Remove(l) => write!(f, "-{l}"),
        }
    }
}

/// Planner knobs.
#[derive(Clone, Copy, Debug)]
pub struct PlanConfig {
    /// Headroom budget: no intermediate state may hold more than
    /// `max(|from|, |to|) + max_extra_links` links. `None` means
    /// unbounded — the trivially safe "add everything, then remove"
    /// order is always available (capacity is monotone). A tight budget
    /// models lease-count limits and forces genuine interleaving.
    pub max_extra_links: Option<usize>,
    /// Search budget: total states explored before the planner gives up
    /// with [`TransitionError::NoSafePlan`].
    pub max_explored: usize,
}

impl Default for PlanConfig {
    fn default() -> Self {
        Self { max_extra_links: None, max_explored: 20_000 }
    }
}

/// An ordered, per-step-verified migration from one link set to another.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransitionPlan {
    pub from: LinkSet,
    pub to: LinkSet,
    /// The canonical linearization. Every prefix of it was verified
    /// feasible and resilient at planning time.
    pub steps: Vec<TransitionOp>,
    /// Oracle probes spent planning (for benchmarks).
    pub probes: usize,
}

impl TransitionPlan {
    /// The state after each step; the last equals `to`. (The state
    /// "after zero steps" is `from` and is not included.)
    pub fn states(&self) -> Vec<LinkSet> {
        let mut out = Vec::with_capacity(self.steps.len());
        let mut cur = self.from.clone();
        for op in &self.steps {
            cur = op.apply(&cur);
            out.push(cur.clone());
        }
        out
    }

    /// Consecutive same-kind steps, as index ranges into `steps`. All-add
    /// rounds and all-remove rounds are the executor's antichains: within
    /// a round the operations commute, and every interleaving of an
    /// all-add (all-remove) round stays a superset of the verified round
    /// entry (exit) state.
    pub fn rounds(&self) -> Vec<std::ops::Range<usize>> {
        let mut out = Vec::new();
        let mut start = 0;
        for i in 1..self.steps.len() {
            if self.steps[i].is_add() != self.steps[start].is_add() {
                out.push(start..i);
                start = i;
            }
        }
        if start < self.steps.len() {
            out.push(start..self.steps.len());
        }
        out
    }

    pub fn is_noop(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Why no plan was produced.
#[derive(Clone, Debug, PartialEq)]
pub enum TransitionError {
    /// `from` and `to` live in different link universes.
    UniverseMismatch { from: usize, to: usize },
    /// The target set itself fails the oracle — no migration can end
    /// there.
    TargetInfeasible(Rejection),
    /// Every interleaving within budget reaches an infeasible
    /// intermediate state (or the search budget ran out).
    NoSafePlan { explored: usize },
}

impl std::fmt::Display for TransitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransitionError::UniverseMismatch { from, to } => {
                write!(f, "link universes differ: from={from}, to={to}")
            }
            TransitionError::TargetInfeasible(r) => write!(f, "target set infeasible: {r:?}"),
            TransitionError::NoSafePlan { explored } => {
                write!(f, "no safe transition order exists ({explored} states explored)")
            }
        }
    }
}

impl std::error::Error for TransitionError {}

/// Plan a safe migration `from → to`: an ordering of the add/remove
/// operations in which **every** intermediate link set passes the
/// feasibility-and-resilience oracle at `constraint`.
///
/// `from` itself is *not* required to pass — it is whatever the fabric is
/// currently on, possibly degraded by a link cut; the plan's job is to
/// move off it without ever making things unsafe again. The target must
/// pass ([`TransitionError::TargetInfeasible`] otherwise).
pub fn plan_transition(
    topo: &PocTopology,
    tm: &TrafficMatrix,
    constraint: Constraint,
    from: &LinkSet,
    to: &LinkSet,
    cfg: &PlanConfig,
) -> Result<TransitionPlan, TransitionError> {
    if from.universe() != to.universe() {
        return Err(TransitionError::UniverseMismatch { from: from.universe(), to: to.universe() });
    }
    let _span = poc_obs::span!("transition.plan");

    let oracle = WarmOracle::new(topo, tm, constraint);
    // The target anchors the search; its routing seeds the witness chain.
    if let (Err(r), _) = oracle.evaluate_traced(to) {
        return Err(TransitionError::TargetInfeasible(r));
    }
    // Prefer a witness near the *start* of the walk when one exists; a
    // degraded `from` just leaves the target witness in place.
    let _ = oracle.evaluate_traced(from);

    let budget = from.len().max(to.len()).saturating_add(cfg.max_extra_links.unwrap_or(usize::MAX));

    let mut search = Search {
        oracle: &oracle,
        to,
        budget,
        max_explored: cfg.max_explored,
        explored: 0,
        probes: 0,
        dead: HashSet::new(),
    };
    let mut steps = Vec::new();
    if search.dfs(from.clone(), &mut steps) {
        poc_obs::counter!("transition.plans").inc();
        Ok(TransitionPlan { from: from.clone(), to: to.clone(), steps, probes: search.probes })
    } else {
        Err(TransitionError::NoSafePlan { explored: search.explored })
    }
}

struct Search<'a, 'o> {
    oracle: &'a WarmOracle<'o>,
    to: &'a LinkSet,
    budget: usize,
    max_explored: usize,
    explored: usize,
    probes: usize,
    /// States from which no safe completion exists.
    dead: HashSet<LinkSet>,
}

impl Search<'_, '_> {
    /// Extend `steps` from `state` to `self.to`; true on success.
    fn dfs(&mut self, state: LinkSet, steps: &mut Vec<TransitionOp>) -> bool {
        if &state == self.to {
            return true;
        }
        if self.explored >= self.max_explored {
            return false;
        }

        // Candidate ops, greedy order: adds first (extra capacity only
        // helps), both in ascending link order for determinism.
        let mut candidates: Vec<TransitionOp> = Vec::new();
        if state.len() < self.budget {
            candidates.extend(self.to.difference(&state).iter().map(TransitionOp::Add));
        }
        candidates.extend(state.difference(self.to).iter().map(TransitionOp::Remove));

        for op in candidates {
            let next = op.apply(&state);
            if self.dead.contains(&next) {
                continue;
            }
            self.explored += 1;
            self.probes += 1;
            // `acceptable` memoizes per set, so re-probing a state reached
            // through a different interleaving is free.
            if !self.oracle.acceptable(&next) {
                self.dead.insert(next);
                continue;
            }
            steps.push(op);
            if self.dfs(next.clone(), steps) {
                return true;
            }
            steps.pop();
            self.dead.insert(next);
        }
        self.dead.insert(state);
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_flow::FeasibilityOracle;
    use poc_topology::builder::two_bp_square;
    use poc_topology::RouterId;

    fn tm_for(t: &PocTopology) -> TrafficMatrix {
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(RouterId(0), RouterId(1), 10.0);
        tm.set(RouterId(2), RouterId(3), 10.0);
        tm
    }

    /// A minimal feasible subset: greedily drop links while staying
    /// acceptable.
    fn minimal_feasible(
        t: &PocTopology,
        tm: &TrafficMatrix,
        c: Constraint,
        start: &LinkSet,
        drop_order: impl Iterator<Item = LinkId>,
    ) -> LinkSet {
        let cold = FeasibilityOracle::new(t, tm, c);
        let mut cur = start.clone();
        for l in drop_order {
            if !cur.contains(l) {
                continue;
            }
            let mut cand = cur.clone();
            cand.remove(l);
            if cold.acceptable(&cand) {
                cur = cand;
            }
        }
        cur
    }

    #[test]
    fn noop_transition_has_no_steps() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let full = LinkSet::full(t.n_links());
        let plan =
            plan_transition(&t, &tm, Constraint::BaseLoad, &full, &full, &PlanConfig::default())
                .unwrap();
        assert!(plan.is_noop());
        assert!(plan.states().is_empty());
        assert!(plan.rounds().is_empty());
    }

    #[test]
    fn unbounded_plan_adds_then_removes_and_every_prefix_is_feasible() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        for c in Constraint::paper_suite(1) {
            let full = LinkSet::full(t.n_links());
            // Two different minimal feasible sets, pruned in opposite orders.
            let a = minimal_feasible(&t, &tm, c, &full, (0..t.n_links()).map(LinkId::from_index));
            let b =
                minimal_feasible(&t, &tm, c, &full, (0..t.n_links()).rev().map(LinkId::from_index));
            if a == b {
                continue; // nothing to migrate at this constraint
            }
            let plan = plan_transition(&t, &tm, c, &a, &b, &PlanConfig::default()).unwrap();
            assert_eq!(plan.steps.len(), a.difference(&b).len() + b.difference(&a).len());
            // Greedy unbounded order: all adds precede all removes.
            let first_remove = plan.steps.iter().position(|s| !s.is_add());
            if let Some(fr) = first_remove {
                assert!(
                    plan.steps[fr..].iter().all(|s| !s.is_add()),
                    "unbounded plan should not interleave ({})",
                    c.label()
                );
            }
            // Every intermediate passes the cold oracle too.
            let cold = FeasibilityOracle::new(&t, &tm, c);
            for state in plan.states() {
                assert!(cold.acceptable(&state), "unsafe intermediate at {}", c.label());
            }
            assert_eq!(plan.states().last().unwrap(), &b);
        }
    }

    #[test]
    fn rounds_partition_steps_into_homogeneous_runs() {
        let t = two_bp_square();
        let plan = TransitionPlan {
            from: LinkSet::empty(t.n_links()),
            to: LinkSet::empty(t.n_links()),
            steps: vec![
                TransitionOp::Add(LinkId(0)),
                TransitionOp::Add(LinkId(1)),
                TransitionOp::Remove(LinkId(2)),
                TransitionOp::Add(LinkId(3)),
            ],
            probes: 0,
        };
        assert_eq!(plan.rounds(), vec![0..2, 2..3, 3..4]);
    }

    #[test]
    fn zero_headroom_between_minimal_sets_yields_no_safe_plan() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let c = Constraint::BaseLoad;
        let full = LinkSet::full(t.n_links());
        let a = minimal_feasible(&t, &tm, c, &full, (0..t.n_links()).map(LinkId::from_index));
        let b = minimal_feasible(&t, &tm, c, &full, (0..t.n_links()).rev().map(LinkId::from_index));
        if a == b || a.len() != b.len() {
            return; // needs two same-size minimal sets to force the bind
        }
        // At |state| ≤ max(|a|,|b|) + 0 every add from `a` is blocked
        // (budget) and every remove breaks feasibility (minimality): the
        // planner must prove unsatisfiability, not hang or ship garbage.
        let err = plan_transition(
            &t,
            &tm,
            c,
            &a,
            &b,
            &PlanConfig { max_extra_links: Some(0), max_explored: 10_000 },
        )
        .unwrap_err();
        assert!(matches!(err, TransitionError::NoSafePlan { .. }), "got {err}");
    }

    #[test]
    fn tight_headroom_forces_interleaving_but_stays_safe() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let c = Constraint::BaseLoad;
        let full = LinkSet::full(t.n_links());
        let a = minimal_feasible(&t, &tm, c, &full, (0..t.n_links()).map(LinkId::from_index));
        let b = minimal_feasible(&t, &tm, c, &full, (0..t.n_links()).rev().map(LinkId::from_index));
        if a == b {
            return;
        }
        let adds = b.difference(&a).len();
        if adds < 2 {
            return; // headroom 1 only binds with ≥2 adds
        }
        let plan = plan_transition(
            &t,
            &tm,
            c,
            &a,
            &b,
            &PlanConfig { max_extra_links: Some(1), max_explored: 10_000 },
        );
        let Ok(plan) = plan else { return };
        let cap = a.len().max(b.len()) + 1;
        let cold = FeasibilityOracle::new(&t, &tm, c);
        for state in plan.states() {
            assert!(state.len() <= cap, "headroom budget violated");
            assert!(cold.acceptable(&state));
        }
        assert_eq!(plan.states().last().unwrap(), &b);
    }

    #[test]
    fn infeasible_target_is_typed() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let err = plan_transition(
            &t,
            &tm,
            Constraint::BaseLoad,
            &LinkSet::full(t.n_links()),
            &LinkSet::empty(t.n_links()),
            &PlanConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TransitionError::TargetInfeasible(_)), "got {err}");
    }

    #[test]
    fn universe_mismatch_is_typed() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let err = plan_transition(
            &t,
            &tm,
            Constraint::BaseLoad,
            &LinkSet::empty(t.n_links()),
            &LinkSet::empty(t.n_links() + 1),
            &PlanConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, TransitionError::UniverseMismatch { .. }));
    }

    #[test]
    fn degraded_source_is_allowed() {
        // `from` need not be feasible — that is exactly the post-link-cut
        // replan case. The plan just has to climb out safely.
        let t = two_bp_square();
        let tm = tm_for(&t);
        let c = Constraint::BaseLoad;
        let full = LinkSet::full(t.n_links());
        let degraded = LinkSet::empty(t.n_links()); // nothing routable
        let plan = plan_transition(&t, &tm, c, &degraded, &full, &PlanConfig::default());
        // Either a plan exists (every *intermediate after the first
        // feasible point* is fine) or the planner proves there is none;
        // what it must not do is reject the degraded source outright.
        match plan {
            Ok(p) => assert_eq!(p.states().last().unwrap(), &full),
            Err(TransitionError::NoSafePlan { .. }) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}

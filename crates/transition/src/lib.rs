//! Safe auction-to-auction transitions for the POC.
//!
//! When a re-auction selects a different link set than the one the fabric
//! is installed on (a BP recalled a link, prices moved, demand shifted),
//! the POC cannot atomically swap thousands of leases: links are added
//! and removed one operation at a time, and the fabric between those
//! operations is what members actually ride on. This crate makes that
//! migration *safe*:
//!
//! * [`plan::plan_transition`] orders the lease add/remove operations so
//!   that **every intermediate link set is feasible and resilient** under
//!   the operating [`Constraint`](poc_flow::Constraint) — verified with
//!   the incremental [`WarmOracle`](poc_flow::WarmOracle), carrying the
//!   routing witness from step to step. A greedy order that dead-ends is
//!   repaired by backtracking; if no safe order exists at all, the typed
//!   [`TransitionError::NoSafePlan`] says so rather than shipping an
//!   unsafe plan.
//! * [`exec::execute_transition`] runs a plan round by round (consecutive
//!   same-kind operations form an antichain whose members are verified
//!   concurrently), applying each step through [`exec::TransitionHooks`]
//!   so a controller can journal it durably before touching the lease
//!   book. Mid-flight events — link cuts, BP recalls — trigger a replan
//!   toward the (possibly shrunken) target; when no safe forward plan
//!   remains, the executor plans a rollback to the original set, and as a
//!   last resort force-restores it atomically.
//!
//! The control plane (`poc-ctrlplane`) journals every step as its own
//! record, so a controller killed at any crash point recovers into
//! "resume the remaining steps" or "roll back the applied ones" — never a
//! half-migrated lease book.

pub mod exec;
pub mod plan;

pub use exec::{
    execute_transition, ExecError, TransitionEvent, TransitionHooks, TransitionOutcome,
    TransitionReport,
};
pub use plan::{plan_transition, PlanConfig, TransitionError, TransitionOp, TransitionPlan};

//! Property tests for the transition planner: for random pairs of real
//! auction outcomes, every intermediate state of the planned migration
//! passes the *cold* feasibility oracle at the operating constraint —
//! the planner verifies with the warm oracle, so this cross-checks that
//! the warm witness chain never vouches for a state the from-scratch
//! oracle would flag, at all three paper constraint levels.

use poc_auction::{run_auction, GreedySelector, Market};
use poc_flow::{Constraint, FeasibilityOracle, LinkSet};
use poc_topology::builder::two_bp_square;
use poc_topology::RouterId;
use poc_traffic::TrafficMatrix;
use poc_transition::{plan_transition, PlanConfig, TransitionError};
use proptest::prelude::*;

/// Random sparse demand over the square's four routers.
fn tm_from(demands: &[(u8, u8, u8)]) -> TrafficMatrix {
    let mut tm = TrafficMatrix::zero(4);
    for &(s, d, gbps) in demands {
        let (s, d) = (RouterId((s % 4) as u32), RouterId((d % 4) as u32));
        if s != d {
            tm.set(s, d, 1.0 + f64::from(gbps % 9));
        }
    }
    tm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Plan between the selections of two genuine auction outcomes (same
    /// instance, different demand): every intermediate link set must be
    /// acceptable to a cold oracle at the constraint the plan was made
    /// for — there is no moment during the migration when the fabric is
    /// infeasible or non-resilient.
    #[test]
    fn every_intermediate_state_passes_the_cold_oracle(
        demands_a in prop::collection::vec((0u8..4, 0u8..4, 0u8..9), 1..4),
        demands_b in prop::collection::vec((0u8..4, 0u8..4, 0u8..9), 1..4),
        headroom in 0usize..3,
    ) {
        let topo = two_bp_square();
        for constraint in Constraint::paper_suite(1) {
            let market = Market::truthful(&topo, 3.0);
            let selector = GreedySelector::default();
            let (tm_a, tm_b) = (tm_from(&demands_a), tm_from(&demands_b));
            let (Ok(out_a), Ok(out_b)) = (
                run_auction(&market, &tm_a, constraint, &selector),
                run_auction(&market, &tm_b, constraint, &selector),
            ) else {
                continue; // a demand set the instance cannot serve at all
            };

            // The migration runs under the *new* round's demand: that is
            // what the fabric must keep carrying while leases move.
            let cfg = PlanConfig { max_extra_links: Some(headroom), max_explored: 20_000 };
            let plan = match plan_transition(
                &topo, &tm_b, constraint, &out_a.selected, &out_b.selected, &cfg,
            ) {
                Ok(plan) => plan,
                // A tight headroom budget may genuinely exclude every safe
                // order; `NoSafePlan` is the typed answer for that. The
                // unbounded fallback must then succeed (add-first order is
                // always safe when capacity may grow).
                Err(TransitionError::NoSafePlan { .. }) => {
                    let unbounded = PlanConfig::default();
                    plan_transition(
                        &topo, &tm_b, constraint, &out_a.selected, &out_b.selected, &unbounded,
                    ).expect("unbounded plan between feasible outcomes must exist")
                }
                Err(e) => panic!("unexpected planner error: {e}"),
            };

            prop_assert_eq!(plan.states().last().unwrap_or(&out_a.selected), &plan.to);
            let cold = FeasibilityOracle::new(&topo, &tm_b, constraint);
            for (i, state) in plan.states().iter().enumerate() {
                prop_assert!(
                    cold.acceptable(state),
                    "step {} of {} leaves an unacceptable intermediate at {} \
                     (|state|={}, from={:?}, to={:?})",
                    i + 1, plan.steps.len(), constraint.label(),
                    state.len(), plan.from, plan.to
                );
            }
        }
    }

    /// Planning is deterministic: the same inputs give the same step
    /// sequence (the executor journals steps by index, so replay after a
    /// crash must see the identical plan).
    #[test]
    fn planning_is_deterministic(
        demands_a in prop::collection::vec((0u8..4, 0u8..4, 0u8..9), 1..4),
        demands_b in prop::collection::vec((0u8..4, 0u8..4, 0u8..9), 1..4),
    ) {
        let topo = two_bp_square();
        let constraint = Constraint::BaseLoad;
        let market = Market::truthful(&topo, 3.0);
        let selector = GreedySelector::default();
        let (tm_a, tm_b) = (tm_from(&demands_a), tm_from(&demands_b));
        let (Ok(out_a), Ok(out_b)) = (
            run_auction(&market, &tm_a, constraint, &selector),
            run_auction(&market, &tm_b, constraint, &selector),
        ) else {
            return;
        };
        let cfg = PlanConfig::default();
        let p1 = plan_transition(&topo, &tm_b, constraint, &out_a.selected, &out_b.selected, &cfg);
        let p2 = plan_transition(&topo, &tm_b, constraint, &out_a.selected, &out_b.selected, &cfg);
        match (p1, p2) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.steps, b.steps),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => panic!("nondeterministic verdict: {a:?} vs {b:?}"),
        }
    }
}

/// The remove-only direction: migrating to a strict subset (a shrinking
/// re-auction) still verifies every prefix. Deterministic companion to
/// the random cases above.
#[test]
fn shrink_to_subset_is_verified_stepwise() {
    let topo = two_bp_square();
    let mut tm = TrafficMatrix::zero(4);
    tm.set(RouterId(0), RouterId(1), 10.0);
    tm.set(RouterId(2), RouterId(3), 10.0);
    for constraint in Constraint::paper_suite(1) {
        let cold = FeasibilityOracle::new(&topo, &tm, constraint);
        let full = LinkSet::full(topo.n_links());
        // Greedily find a proper feasible subset to shrink to.
        let mut target = full.clone();
        for l in (0..topo.n_links()).map(poc_topology::LinkId::from_index) {
            let mut cand = target.clone();
            cand.remove(l);
            if cold.acceptable(&cand) {
                target = cand;
            }
        }
        if target == full {
            continue;
        }
        let plan = plan_transition(&topo, &tm, constraint, &full, &target, &PlanConfig::default())
            .expect("shrinking to a feasible subset must be plannable");
        assert!(plan.steps.iter().all(|s| !s.is_add()));
        for state in plan.states() {
            assert!(cold.acceptable(&state));
        }
    }
}

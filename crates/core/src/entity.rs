//! The ecosystem registry: who participates, in what role, attached where.
//!
//! The paper's cast (§3.2): the POC itself, Bandwidth Providers leasing it
//! links, Last-Mile Providers and directly-attached CSPs buying transit,
//! external ISPs supplying fallback connectivity, and customers hanging off
//! LMPs (customers are aggregated per LMP here; the POC never sees them
//! individually).

use poc_topology::{BpId, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Registry-scoped entity identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EntityId(pub u32);

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// What role an entity plays.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EntityKind {
    /// A Last-Mile Provider attached at a POC router.
    Lmp { router: RouterId },
    /// A content/service provider attached directly to the POC.
    DirectCsp { router: RouterId },
    /// A CSP reaching the POC through an LMP.
    HostedCsp { via_lmp: EntityId },
    /// A Bandwidth Provider offering links to the auction.
    BandwidthProvider { bp: BpId },
    /// An external ISP providing fallback connectivity (virtual links).
    ExternalIsp { isp_index: u32 },
}

/// A registered entity.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Entity {
    pub id: EntityId,
    pub name: String,
    pub kind: EntityKind,
    /// Whether the member has signed the POC terms-of-service (required for
    /// LMPs and directly-attached CSPs before traffic is accepted).
    pub tos_signed: bool,
}

/// The registry. Ids are minted in registration order.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Registry {
    entities: Vec<Entity>,
    by_name: BTreeMap<String, EntityId>,
}

/// Errors from registration and lookup.
#[derive(Clone, Debug, PartialEq)]
pub enum RegistryError {
    DuplicateName(String),
    UnknownEntity(EntityId),
    /// Hosted CSPs must point at a registered LMP.
    NotAnLmp(EntityId),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateName(n) => write!(f, "name {n:?} already registered"),
            RegistryError::UnknownEntity(e) => write!(f, "unknown entity {e}"),
            RegistryError::NotAnLmp(e) => write!(f, "{e} is not an LMP"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an entity; names must be unique.
    pub fn register(&mut self, name: &str, kind: EntityKind) -> Result<EntityId, RegistryError> {
        if self.by_name.contains_key(name) {
            return Err(RegistryError::DuplicateName(name.to_string()));
        }
        if let EntityKind::HostedCsp { via_lmp } = kind {
            match self.get(via_lmp) {
                Ok(e) if matches!(e.kind, EntityKind::Lmp { .. }) => {}
                Ok(_) => return Err(RegistryError::NotAnLmp(via_lmp)),
                Err(e) => return Err(e),
            }
        }
        let id = EntityId(u32::try_from(self.entities.len()).expect("registry overflow"));
        self.entities.push(Entity { id, name: name.to_string(), kind, tos_signed: false });
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    pub fn get(&self, id: EntityId) -> Result<&Entity, RegistryError> {
        self.entities.get(id.0 as usize).ok_or(RegistryError::UnknownEntity(id))
    }

    pub fn by_name(&self, name: &str) -> Option<&Entity> {
        self.by_name.get(name).map(|&id| &self.entities[id.0 as usize])
    }

    /// Record ToS acceptance.
    pub fn sign_tos(&mut self, id: EntityId) -> Result<(), RegistryError> {
        let e = self.entities.get_mut(id.0 as usize).ok_or(RegistryError::UnknownEntity(id))?;
        e.tos_signed = true;
        Ok(())
    }

    /// Whether the entity may send traffic through the POC: LMPs and
    /// direct CSPs need a signed ToS; hosted CSPs ride their LMP's
    /// signature; infrastructure roles never originate POC traffic.
    pub fn may_send_traffic(&self, id: EntityId) -> bool {
        match self.get(id) {
            Ok(e) => match &e.kind {
                EntityKind::Lmp { .. } | EntityKind::DirectCsp { .. } => e.tos_signed,
                EntityKind::HostedCsp { via_lmp } => self.may_send_traffic(*via_lmp),
                EntityKind::BandwidthProvider { .. } | EntityKind::ExternalIsp { .. } => false,
            },
            Err(_) => false,
        }
    }

    /// The POC router where this entity's traffic enters, if any.
    pub fn attachment_router(&self, id: EntityId) -> Option<RouterId> {
        match &self.get(id).ok()?.kind {
            EntityKind::Lmp { router } | EntityKind::DirectCsp { router } => Some(*router),
            EntityKind::HostedCsp { via_lmp } => self.attachment_router(*via_lmp),
            _ => None,
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = &Entity> {
        self.entities.iter()
    }

    /// All LMPs.
    pub fn lmps(&self) -> Vec<&Entity> {
        self.entities.iter().filter(|e| matches!(e.kind, EntityKind::Lmp { .. })).collect()
    }

    pub fn len(&self) -> usize {
        self.entities.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut r = Registry::new();
        let lmp = r.register("acme-lmp", EntityKind::Lmp { router: RouterId(0) }).unwrap();
        assert_eq!(r.get(lmp).unwrap().name, "acme-lmp");
        assert_eq!(r.by_name("acme-lmp").unwrap().id, lmp);
        assert!(r.by_name("nope").is_none());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut r = Registry::new();
        r.register("x", EntityKind::Lmp { router: RouterId(0) }).unwrap();
        let err = r.register("x", EntityKind::DirectCsp { router: RouterId(1) }).unwrap_err();
        assert_eq!(err, RegistryError::DuplicateName("x".into()));
    }

    #[test]
    fn hosted_csp_requires_lmp() {
        let mut r = Registry::new();
        let csp = r.register("direct", EntityKind::DirectCsp { router: RouterId(0) }).unwrap();
        let err = r.register("hosted", EntityKind::HostedCsp { via_lmp: csp }).unwrap_err();
        assert_eq!(err, RegistryError::NotAnLmp(csp));
        let lmp = r.register("lmp", EntityKind::Lmp { router: RouterId(1) }).unwrap();
        assert!(r.register("hosted", EntityKind::HostedCsp { via_lmp: lmp }).is_ok());
    }

    #[test]
    fn traffic_permission_follows_tos() {
        let mut r = Registry::new();
        let lmp = r.register("lmp", EntityKind::Lmp { router: RouterId(0) }).unwrap();
        let hosted = r.register("csp", EntityKind::HostedCsp { via_lmp: lmp }).unwrap();
        let bp = r.register("bp", EntityKind::BandwidthProvider { bp: BpId(0) }).unwrap();
        assert!(!r.may_send_traffic(lmp));
        assert!(!r.may_send_traffic(hosted), "hosted CSP rides its LMP's signature");
        r.sign_tos(lmp).unwrap();
        assert!(r.may_send_traffic(lmp));
        assert!(r.may_send_traffic(hosted));
        assert!(!r.may_send_traffic(bp), "BPs never originate POC traffic");
    }

    #[test]
    fn attachment_router_resolution() {
        let mut r = Registry::new();
        let lmp = r.register("lmp", EntityKind::Lmp { router: RouterId(7) }).unwrap();
        let hosted = r.register("csp", EntityKind::HostedCsp { via_lmp: lmp }).unwrap();
        let isp = r.register("isp", EntityKind::ExternalIsp { isp_index: 0 }).unwrap();
        assert_eq!(r.attachment_router(lmp), Some(RouterId(7)));
        assert_eq!(r.attachment_router(hosted), Some(RouterId(7)));
        assert_eq!(r.attachment_router(isp), None);
    }

    #[test]
    fn lmps_listing() {
        let mut r = Registry::new();
        r.register("lmp1", EntityKind::Lmp { router: RouterId(0) }).unwrap();
        r.register("csp", EntityKind::DirectCsp { router: RouterId(1) }).unwrap();
        r.register("lmp2", EntityKind::Lmp { router: RouterId(2) }).unwrap();
        assert_eq!(r.lmps().len(), 2);
    }
}

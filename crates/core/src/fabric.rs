//! The installed forwarding state of the POC fabric.
//!
//! After an auction round selects `SL`, the POC installs next-hop tables
//! computed from shortest paths over the leased links. The fabric is a
//! "transparent fabric" (§1.2): it forwards between attachment routers and
//! applies no policy of its own.

use poc_flow::{CapacityGraph, LinkSet};
use poc_topology::{LinkId, PocTopology, RouterId};

/// Errors from walking the installed forwarding tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricError {
    /// The next-hop tables cycle without reaching the destination. The
    /// tables `install()` computes are loop-free by construction, so this
    /// indicates corrupted or hand-built state.
    RoutingLoop { src: RouterId, dst: RouterId },
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::RoutingLoop { src, dst } => {
                write!(f, "forwarding loop from {src} to {dst}")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// Next-hop forwarding tables over an active link set.
#[derive(Clone, Debug)]
pub struct ForwardingState {
    n_routers: usize,
    /// `next[src][dst]` = (link to take, next router), or None.
    next: Vec<Vec<Option<(LinkId, RouterId)>>>,
    active: LinkSet,
}

impl ForwardingState {
    /// Compute tables from all-pairs shortest paths (by distance) over
    /// `active`.
    pub fn install(topo: &PocTopology, active: &LinkSet) -> Self {
        let n = topo.n_routers();
        let g = CapacityGraph::new(topo, active);
        let mut next = vec![vec![None; n]; n];
        // One Dijkstra per source, extracting first hops.
        for (src_i, row) in next.iter_mut().enumerate() {
            let src = RouterId::from_index(src_i);
            // Dijkstra with predecessor tracking via repeated shortest_path
            // would be O(n^2 E); do a single-source pass instead.
            let (dist, prev) = single_source(&g, topo, src);
            for (dst_i, slot) in row.iter_mut().enumerate() {
                if dst_i == src_i || dist[dst_i].is_infinite() {
                    continue;
                }
                // Walk back from dst to src to find the first hop.
                let mut cur = dst_i;
                let mut hop = None;
                while let Some((link, parent)) = prev[cur] {
                    hop = Some((link, RouterId::from_index(cur)));
                    if parent.index() == src_i {
                        break;
                    }
                    cur = parent.index();
                }
                *slot = hop;
            }
        }
        Self { n_routers: n, next, active: active.clone() }
    }

    /// The active links this state was installed from.
    pub fn active(&self) -> &LinkSet {
        &self.active
    }

    /// Next hop from `at` toward `dst`.
    pub fn next_hop(&self, at: RouterId, dst: RouterId) -> Option<(LinkId, RouterId)> {
        self.next.get(at.index())?.get(dst.index()).copied().flatten()
    }

    /// Full path from `src` to `dst` (links in order), `Ok(None)` if
    /// unreachable, or [`FabricError::RoutingLoop`] if the tables are
    /// inconsistent (which `install()` cannot produce).
    pub fn path(&self, src: RouterId, dst: RouterId) -> Result<Option<Vec<LinkId>>, FabricError> {
        if src == dst {
            return Ok(Some(Vec::new()));
        }
        let mut path = Vec::new();
        let mut at = src;
        for _ in 0..=self.n_routers {
            let Some((link, nxt)) = self.next_hop(at, dst) else {
                return Ok(None);
            };
            path.push(link);
            if nxt == dst {
                return Ok(Some(path));
            }
            at = nxt;
        }
        Err(FabricError::RoutingLoop { src, dst })
    }

    /// Whether every router can reach every other.
    pub fn fully_connected(&self) -> bool {
        (0..self.n_routers)
            .all(|s| (0..self.n_routers).all(|d| s == d || self.next[s][d].is_some()))
    }
}

fn single_source(
    g: &CapacityGraph<'_>,
    topo: &PocTopology,
    src: RouterId,
) -> (Vec<f64>, Vec<Option<(LinkId, RouterId)>>) {
    let n = topo.n_routers();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(LinkId, RouterId)>> = vec![None; n];
    let mut heap = std::collections::BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push((std::cmp::Reverse(ordered(0.0)), src));
    while let Some((std::cmp::Reverse(d), node)) = heap.pop() {
        let d = d.0;
        if d > dist[node.index()] + 1e-12 {
            continue;
        }
        for &(l, nb) in g.neighbors(node) {
            let nd = d + topo.link(l).distance_km;
            if nd < dist[nb.index()] - 1e-12 {
                dist[nb.index()] = nd;
                prev[nb.index()] = Some((l, node));
                heap.push((std::cmp::Reverse(ordered(nd)), nb));
            }
        }
    }
    (dist, prev)
}

/// Total-ordered f64 wrapper for the heap.
#[derive(PartialEq, PartialOrd)]
struct Ordered(f64);
impl Eq for Ordered {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.partial_cmp(other).expect("NaN distance")
    }
}
fn ordered(v: f64) -> Ordered {
    Ordered(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::builder::two_bp_square;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    #[test]
    fn full_topology_fully_connected() {
        let t = two_bp_square();
        let fs = ForwardingState::install(&t, &LinkSet::full(t.n_links()));
        assert!(fs.fully_connected());
        // Direct link r0-r1 is the next hop.
        let (l, nxt) = fs.next_hop(r(0), r(1)).unwrap();
        assert!(t.link(l).connects(r(0), r(1)));
        assert_eq!(nxt, r(1));
    }

    #[test]
    fn path_walks_multi_hop() {
        let t = two_bp_square();
        // Remove the direct r0-r3 link (link 3): path must go via another
        // router.
        let mut active = LinkSet::full(t.n_links());
        active.remove(LinkId(3));
        let fs = ForwardingState::install(&t, &active);
        let path = fs.path(r(0), r(3)).unwrap().unwrap();
        assert!(path.len() >= 2);
        assert!(!path.contains(&LinkId(3)));
    }

    #[test]
    fn unreachable_returns_none() {
        let t = two_bp_square();
        let bp0 = LinkSet::from_links(t.n_links(), t.links_of_bp(poc_topology::BpId(0)));
        let fs = ForwardingState::install(&t, &bp0);
        assert!(!fs.fully_connected());
        assert!(fs.path(r(0), r(3)).unwrap().is_none());
        assert!(fs.next_hop(r(0), r(3)).is_none());
    }

    #[test]
    fn self_path_is_empty() {
        let t = two_bp_square();
        let fs = ForwardingState::install(&t, &LinkSet::full(t.n_links()));
        assert_eq!(fs.path(r(2), r(2)).unwrap().unwrap(), Vec::<LinkId>::new());
    }

    #[test]
    fn paths_are_distance_shortest() {
        let t = two_bp_square();
        let fs = ForwardingState::install(&t, &LinkSet::full(t.n_links()));
        // r0→r3 direct (1830) beats r0-r2-r3 (910+950=1860).
        let path = fs.path(r(0), r(3)).unwrap().unwrap();
        assert_eq!(path.len(), 1);
    }

    #[test]
    fn routing_loop_is_an_error_not_a_panic() {
        // Hand-build corrupted tables: r0 → r1 → r0 while "heading" to r2.
        let t = two_bp_square();
        let mut fs = ForwardingState::install(&t, &LinkSet::full(t.n_links()));
        let to_r1 = fs.next_hop(r(0), r(1)).unwrap();
        let to_r0 = fs.next_hop(r(1), r(0)).unwrap();
        fs.next[0][2] = Some(to_r1);
        fs.next[1][2] = Some(to_r0);
        assert_eq!(fs.path(r(0), r(2)), Err(FabricError::RoutingLoop { src: r(0), dst: r(2) }));
        // The error formats the offending pair for operators.
        let msg = fs.path(r(0), r(2)).unwrap_err().to_string();
        assert!(msg.contains("forwarding loop"), "got: {msg}");
    }
}

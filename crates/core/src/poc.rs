//! The POC facade: membership, auction rounds, fabric installs, billing.
//!
//! Lifecycle of one operating period:
//!
//! 1. members attach ([`Poc::attach_lmp`], [`Poc::attach_direct_csp`],
//!    [`Poc::attach_hosted_csp`]) and sign the ToS;
//! 2. the POC estimates its traffic matrix and runs an auction round
//!    ([`Poc::run_auction_round`]) — leases are booked and the fabric
//!    installed;
//! 3. traffic flows (simulated by `poc-netsim`), producing per-member
//!    usage;
//! 4. [`Poc::billing_cycle`] settles: BPs and external ISPs are paid,
//!    members are charged usage-proportional transit fees sized to exactly
//!    cover the outlay — the nonprofit break-even discipline of §3.2.

use crate::entity::{EntityId, EntityKind, Registry, RegistryError};
use crate::fabric::ForwardingState;
use crate::lease::{Lease, LeaseBook, LeaseOpError};
use crate::settlement::{Account, Ledger};
use crate::tos::{NeutralityEngine, TrafficPolicy, Verdict};
use poc_auction::{run_auction, AuctionOutcome, GreedySelector, Market};
use poc_flow::{Constraint, LinkSet};
use poc_topology::{PocTopology, RouterId};
use poc_traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};

/// POC operating parameters.
#[derive(Clone, Debug)]
pub struct PocConfig {
    /// Contract premium applied to external-ISP virtual links.
    pub virtual_price_factor: f64,
    /// Feasibility constraint for auction rounds.
    pub constraint: Constraint,
    /// Selection heuristic parameters.
    pub selector: GreedySelector,
}

impl Default for PocConfig {
    fn default() -> Self {
        Self {
            virtual_price_factor: 3.0,
            constraint: Constraint::BaseLoad,
            selector: GreedySelector::default(),
        }
    }
}

/// Result of one billing cycle.
#[derive(Clone, Debug)]
pub struct BillingSummary {
    pub period: u32,
    /// Payments to BPs plus external-ISP contract costs.
    pub total_outlay: f64,
    /// Total billable usage, Gbit/s-period.
    pub total_usage_gbps: f64,
    /// Transit price per Gbit/s-period that exactly covers the outlay.
    pub unit_price: f64,
    /// Per-member charges.
    pub charges: Vec<(EntityId, f64)>,
    /// POC net position for the period (≈0: nonprofit break-even).
    pub poc_net: f64,
}

/// Errors from POC operations.
#[derive(Debug)]
pub enum PocError {
    Registry(RegistryError),
    Auction(poc_auction::vcg::AuctionError),
    /// The installed forwarding tables are corrupt (routing loop).
    Fabric(crate::fabric::FabricError),
    /// Billing requested before any auction round installed a fabric.
    NoFabric,
    /// Usage reported for an entity that may not send traffic.
    NotAuthorized(EntityId),
}

impl std::fmt::Display for PocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PocError::Registry(e) => write!(f, "registry: {e}"),
            PocError::Auction(e) => write!(f, "auction: {e}"),
            PocError::Fabric(e) => write!(f, "fabric: {e}"),
            PocError::NoFabric => write!(f, "no fabric installed (run an auction round first)"),
            PocError::NotAuthorized(e) => write!(f, "{e} is not authorized to send traffic"),
        }
    }
}

impl std::error::Error for PocError {}

impl From<RegistryError> for PocError {
    fn from(e: RegistryError) -> Self {
        PocError::Registry(e)
    }
}

/// Everything a controller must persist to survive a restart: the
/// registry (who attached, ToS signatures), the money (ledger), the
/// lease book, recorded violations, the last auction outcome, and the
/// period counter. Deliberately excludes everything derivable at
/// restore time from the topology and config — the forwarding fabric is
/// reinstalled from `last_outcome`, and the neutrality engine is
/// stateless.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PocState {
    pub registry: Registry,
    pub ledger: Ledger,
    pub leases: LeaseBook,
    pub violations: Vec<(EntityId, Verdict)>,
    pub last_outcome: Option<AuctionOutcome>,
    pub period: u32,
}

/// A cheap structural fingerprint of the instance a [`PocState`] was
/// taken against. Recovery refuses to load state into a facade built on
/// a different topology (replaying leases/routes against the wrong link
/// universe would corrupt everything downstream).
pub fn topology_fingerprint(topo: &PocTopology) -> u64 {
    // FNV-1a over the structural counts, link endpoints, and capacities
    // (shared machinery in `poc_topology::PocTopology::fingerprint`); not
    // cryptographic, just a cheap "same instance?" check.
    topo.fingerprint()
}

/// The Public Option for the Core.
pub struct Poc {
    topo: PocTopology,
    config: PocConfig,
    registry: Registry,
    ledger: Ledger,
    leases: LeaseBook,
    fabric: Option<ForwardingState>,
    /// The link set the fabric is installed on. Normally the last
    /// outcome's selection; during a lease transition it tracks the
    /// plan's intermediate set step by step.
    active_set: Option<LinkSet>,
    engine: NeutralityEngine,
    violations: Vec<(EntityId, Verdict)>,
    last_outcome: Option<AuctionOutcome>,
    period: u32,
}

impl Poc {
    pub fn new(topo: PocTopology, config: PocConfig) -> Self {
        let mut registry = Registry::new();
        // Infrastructure roles are pre-registered from the topology.
        for bp in &topo.bps {
            registry
                .register(&format!("bp:{}", bp.name), EntityKind::BandwidthProvider { bp: bp.id })
                .expect("BP names unique by construction");
        }
        let mut isps: Vec<u32> = topo
            .links
            .iter()
            .filter_map(|l| match l.owner {
                poc_topology::LinkOwner::Virtual(i) => Some(i),
                _ => None,
            })
            .collect();
        isps.sort_unstable();
        isps.dedup();
        for isp in isps {
            registry
                .register(&format!("isp:ext{isp}"), EntityKind::ExternalIsp { isp_index: isp })
                .expect("ISP names unique by construction");
        }
        Self {
            topo,
            config,
            registry,
            ledger: Ledger::new(),
            leases: LeaseBook::new(),
            fabric: None,
            active_set: None,
            engine: NeutralityEngine::new(),
            violations: Vec::new(),
            last_outcome: None,
            period: 0,
        }
    }

    pub fn topo(&self) -> &PocTopology {
        &self.topo
    }

    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    pub fn leases(&self) -> &LeaseBook {
        &self.leases
    }

    pub fn fabric(&self) -> Option<&ForwardingState> {
        self.fabric.as_ref()
    }

    pub fn last_outcome(&self) -> Option<&AuctionOutcome> {
        self.last_outcome.as_ref()
    }

    pub fn period(&self) -> u32 {
        self.period
    }

    /// Attach an LMP at a router; signs the ToS (attachment is conditional
    /// on accepting the peering conditions, §3.4).
    pub fn attach_lmp(&mut self, name: &str, router: RouterId) -> Result<EntityId, PocError> {
        let id = self.registry.register(name, EntityKind::Lmp { router })?;
        self.registry.sign_tos(id)?;
        Ok(id)
    }

    /// Attach a large CSP directly to the POC.
    pub fn attach_direct_csp(
        &mut self,
        name: &str,
        router: RouterId,
    ) -> Result<EntityId, PocError> {
        let id = self.registry.register(name, EntityKind::DirectCsp { router })?;
        self.registry.sign_tos(id)?;
        Ok(id)
    }

    /// Register a CSP that reaches the POC through an LMP.
    pub fn attach_hosted_csp(
        &mut self,
        name: &str,
        via_lmp: EntityId,
    ) -> Result<EntityId, PocError> {
        Ok(self.registry.register(name, EntityKind::HostedCsp { via_lmp })?)
    }

    /// Run the auction without touching any state: the deterministic
    /// "what would the next round select" computation. The safe-transition
    /// planner uses this to obtain the target link set before deciding how
    /// to migrate the live fabric onto it.
    pub fn compute_auction_outcome(&self, tm: &TrafficMatrix) -> Result<AuctionOutcome, PocError> {
        let market = Market::truthful(&self.topo, self.config.virtual_price_factor);
        run_auction(&market, tm, self.config.constraint, &self.config.selector)
            .map_err(PocError::Auction)
    }

    /// Run one auction round against the upper-bound traffic matrix,
    /// ingest leases, install the fabric.
    pub fn run_auction_round(&mut self, tm: &TrafficMatrix) -> Result<&AuctionOutcome, PocError> {
        let outcome = self.compute_auction_outcome(tm)?;
        self.leases.ingest_auction(&self.topo, &outcome, self.period);
        self.leases.mark_reauctioned();
        self.fabric = Some(ForwardingState::install(&self.topo, &outcome.selected));
        self.active_set = Some(outcome.selected.clone());
        self.last_outcome = Some(outcome);
        Ok(self.last_outcome.as_ref().expect("just set"))
    }

    /// The link set the forwarding fabric is currently installed on.
    pub fn installed_links(&self) -> Option<&LinkSet> {
        self.active_set.as_ref()
    }

    /// Apply one transition step: bring `link` into the live fabric and,
    /// when it is a BP-owned link the new outcome selected, book its lease
    /// at the pro-rata price the outcome's settlement implies. Virtual
    /// (external-ISP) links carry no lease; only the fabric changes.
    ///
    /// Steps are surgical so a controller killed between any two of them
    /// recovers a `LeaseBook` consistent with the installed fabric.
    pub fn transition_add_link(
        &mut self,
        outcome: &AuctionOutcome,
        link: poc_topology::LinkId,
    ) -> Result<(), LeaseOpError> {
        if let Some(lease) = Lease::priced_from(&self.topo, outcome, link, self.period) {
            // Kept links keep their existing lease: adding one that is
            // already booked means the planner re-applied a step (replay
            // after a crash) — not an error, but do not double-book.
            match self.leases.add_lease(lease) {
                Ok(()) | Err(LeaseOpError::AlreadyLeased { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        let mut set =
            self.active_set.clone().unwrap_or_else(|| LinkSet::empty(self.topo.links.len()));
        set.insert(link);
        self.fabric = Some(ForwardingState::install(&self.topo, &set));
        self.active_set = Some(set);
        Ok(())
    }

    /// Apply one transition step: take `link` out of the live fabric and
    /// expire its lease. A link already being recalled by its BP is left
    /// to the recall machinery (`RecallInFlight`); the caller treats that
    /// as "removal already scheduled", not a failure. Virtual links and
    /// links with no active lease only change the fabric.
    pub fn transition_remove_link(
        &mut self,
        link: poc_topology::LinkId,
    ) -> Result<(), LeaseOpError> {
        match self.leases.remove_lease(link) {
            Ok(_) | Err(LeaseOpError::NoActiveLease { .. }) => {}
            Err(e) => return Err(e),
        }
        let mut set =
            self.active_set.clone().unwrap_or_else(|| LinkSet::empty(self.topo.links.len()));
        set.remove(link);
        self.fabric = Some(ForwardingState::install(&self.topo, &set));
        self.active_set = Some(set);
        Ok(())
    }

    /// Finalize a completed transition onto `outcome`: the fabric is
    /// already on the target set (the last step put it there), so this
    /// clears the re-auction flag and records the outcome as current.
    pub fn commit_transition(&mut self, outcome: AuctionOutcome) {
        self.leases.mark_reauctioned();
        self.fabric = Some(ForwardingState::install(&self.topo, &outcome.selected));
        self.active_set = Some(outcome.selected.clone());
        self.last_outcome = Some(outcome);
    }

    /// Atomically force the fabric back onto `links` (last-resort rollback
    /// when no step-by-step safe plan exists; also used by recovery to
    /// restore the pre-transition set in one install).
    pub fn force_install(&mut self, links: &LinkSet) {
        self.fabric = Some(ForwardingState::install(&self.topo, links));
        self.active_set = Some(links.clone());
    }

    pub fn config(&self) -> &PocConfig {
        &self.config
    }

    /// Settle one period. `usage` is billable usage per member (Gbit/s
    /// averaged over the period, sent + received). The POC prices transit
    /// at exactly outlay/usage — nonprofit break-even.
    pub fn billing_cycle(&mut self, usage: &[(EntityId, f64)]) -> Result<BillingSummary, PocError> {
        let outcome = self.last_outcome.as_ref().ok_or(PocError::NoFabric)?;
        for &(id, _) in usage {
            if !self.registry.may_send_traffic(id) {
                return Err(PocError::NotAuthorized(id));
            }
        }
        let period = self.period;

        // Outlay: BP lease payments...
        let mut total_outlay = 0.0;
        for (bp, amount) in self.leases.payments_due(period) {
            let bp_entity = self
                .registry
                .by_name(&format!("bp:{}", self.topo.bps[bp.index()].name))
                .expect("BPs pre-registered")
                .id;
            self.ledger.post(
                period,
                Account::Poc,
                Account::Entity(bp_entity),
                amount,
                &format!("lease payment to {bp}"),
            );
            total_outlay += amount;
        }
        // ...plus external-ISP contract costs for selected virtual links.
        let market = Market::truthful(&self.topo, self.config.virtual_price_factor);
        let virtual_cost = market.virtual_cost(&outcome.selected);
        if virtual_cost > 0.0 {
            // Split per ISP index pro-rata by their links' costs.
            let mut per_isp: std::collections::BTreeMap<u32, f64> = Default::default();
            for l in outcome.selected.iter() {
                if let poc_topology::LinkOwner::Virtual(i) = self.topo.link(l).owner {
                    *per_isp.entry(i).or_insert(0.0) +=
                        self.topo.link(l).true_monthly_cost * self.config.virtual_price_factor;
                }
            }
            for (isp, amount) in per_isp {
                let isp_entity = self
                    .registry
                    .by_name(&format!("isp:ext{isp}"))
                    .expect("ISPs pre-registered")
                    .id;
                self.ledger.post(
                    period,
                    Account::Poc,
                    Account::Entity(isp_entity),
                    amount,
                    &format!("virtual-link contract, ext ISP {isp}"),
                );
            }
            total_outlay += virtual_cost;
        }

        // Charges: usage-proportional, summing exactly to the outlay.
        let total_usage_gbps: f64 = usage.iter().map(|(_, u)| u).sum();
        let unit_price = if total_usage_gbps > 0.0 { total_outlay / total_usage_gbps } else { 0.0 };
        let mut charges = Vec::with_capacity(usage.len());
        for &(id, gbps) in usage {
            let charge = gbps * unit_price;
            self.ledger.post(
                period,
                Account::Entity(id),
                Account::Poc,
                charge,
                "transit (usage-based)",
            );
            charges.push((id, charge));
        }

        let (inflow, outflow) = self.ledger.poc_period_flows(period);
        self.period += 1;
        Ok(BillingSummary {
            period,
            total_outlay,
            total_usage_gbps,
            unit_price,
            charges,
            poc_net: inflow - outflow,
        })
    }

    /// A BP recalls one of its leased links (the §3.3 overbuy-then-recall
    /// story), with `notice_periods` of notice. Returns whether a matching
    /// active lease existed; when it did, a re-auction is flagged.
    pub fn recall_link(
        &mut self,
        bp: poc_topology::BpId,
        link: poc_topology::LinkId,
        notice_periods: u32,
    ) -> bool {
        self.leases.recall(bp, link, self.period, notice_periods)
    }

    /// Whether a recall/expiry has made the installed fabric stale.
    pub fn reauction_needed(&self) -> bool {
        self.leases.reauction_needed()
    }

    /// Advance the lease book to the current period, expiring recalled
    /// leases whose notice has run out. Returns the expired links.
    pub fn expire_leases(&mut self) -> Vec<poc_topology::LinkId> {
        self.leases.advance_to(self.period)
    }

    /// Review a traffic policy against the ToS; violations are recorded.
    pub fn review_policy(&mut self, policy: &TrafficPolicy) -> Verdict {
        let verdict = self.engine.review(policy);
        if verdict.is_violation() {
            self.violations.push((policy.lmp, verdict.clone()));
        }
        verdict
    }

    /// All recorded violations.
    pub fn violations(&self) -> &[(EntityId, Verdict)] {
        &self.violations
    }

    /// Export the persistent state (for snapshots). The forwarding
    /// fabric and neutrality engine are excluded: both are rebuilt by
    /// [`Poc::restore_state`].
    pub fn export_state(&self) -> PocState {
        PocState {
            registry: self.registry.clone(),
            ledger: self.ledger.clone(),
            leases: self.leases.clone(),
            violations: self.violations.clone(),
            last_outcome: self.last_outcome.clone(),
            period: self.period,
        }
    }

    /// Replace the persistent state wholesale (recovery). The fabric is
    /// reinstalled from the restored outcome's selected set, so a
    /// recovered controller answers `GetPath` identically to the
    /// pre-crash one.
    pub fn restore_state(&mut self, state: PocState) {
        let PocState { registry, ledger, leases, violations, last_outcome, period } = state;
        self.registry = registry;
        self.ledger = ledger;
        self.leases = leases;
        self.violations = violations;
        self.fabric =
            last_outcome.as_ref().map(|o| ForwardingState::install(&self.topo, &o.selected));
        self.active_set = last_outcome.as_ref().map(|o| o.selected.clone());
        self.last_outcome = last_outcome;
        self.period = period;
    }

    /// Path through the installed fabric between two members' routers.
    pub fn member_path(
        &self,
        from: EntityId,
        to: EntityId,
    ) -> Result<Option<Vec<poc_topology::LinkId>>, PocError> {
        let fabric = self.fabric.as_ref().ok_or(PocError::NoFabric)?;
        let (Some(a), Some(b)) =
            (self.registry.attachment_router(from), self.registry.attachment_router(to))
        else {
            return Ok(None);
        };
        fabric.path(a, b).map_err(PocError::Fabric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tos::{PolicyAction, PolicyBasis, PolicyMatch};
    use poc_topology::builder::two_bp_square;
    use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
    use poc_topology::CostModel;

    fn poc() -> Poc {
        let mut t = two_bp_square();
        attach_external_isps(
            &mut t,
            &ExternalIspConfig { n_isps: 1, attach_points: 4, ..Default::default() },
            &CostModel::default(),
        );
        Poc::new(t, PocConfig::default())
    }

    fn demand(n: usize) -> TrafficMatrix {
        let mut tm = TrafficMatrix::zero(n);
        tm.set(RouterId(0), RouterId(1), 10.0);
        tm.set(RouterId(1), RouterId(2), 5.0);
        tm
    }

    #[test]
    fn bps_and_isps_preregistered() {
        let p = poc();
        assert!(p.registry().by_name("bp:BP-A").is_some());
        assert!(p.registry().by_name("bp:BP-B").is_some());
        assert!(p.registry().by_name("isp:ext0").is_some());
    }

    #[test]
    fn auction_round_installs_fabric_and_leases() {
        let mut p = poc();
        let tm = demand(p.topo().n_routers());
        let out = p.run_auction_round(&tm).unwrap();
        assert!(!out.selected.is_empty());
        let n_selected = out.selected.len();
        assert!(p.fabric().is_some());
        assert!(p.leases().leases().len() <= n_selected); // virtual links not leased
    }

    #[test]
    fn billing_breaks_even_and_conserves() {
        let mut p = poc();
        let tm = demand(p.topo().n_routers());
        p.run_auction_round(&tm).unwrap();
        let lmp1 = p.attach_lmp("lmp-west", RouterId(0)).unwrap();
        let lmp2 = p.attach_lmp("lmp-east", RouterId(1)).unwrap();
        let summary = p.billing_cycle(&[(lmp1, 12.0), (lmp2, 8.0)]).unwrap();
        assert!(summary.total_outlay > 0.0);
        assert!((summary.poc_net).abs() < 1e-6, "nonprofit must break even: {summary:?}");
        assert!((p.ledger().conservation_error()).abs() < 1e-9);
        // Charges proportional to usage.
        assert!((summary.charges[0].1 / summary.charges[1].1 - 1.5).abs() < 1e-9);
        assert_eq!(summary.period, 0);
        assert_eq!(p.period(), 1);
    }

    #[test]
    fn billing_requires_fabric() {
        let mut p = poc();
        let lmp = p.attach_lmp("lmp", RouterId(0)).unwrap();
        assert!(matches!(p.billing_cycle(&[(lmp, 1.0)]), Err(PocError::NoFabric)));
    }

    #[test]
    fn billing_rejects_unauthorized_senders() {
        let mut p = poc();
        let tm = demand(p.topo().n_routers());
        p.run_auction_round(&tm).unwrap();
        let bp = p.registry().by_name("bp:BP-A").unwrap().id;
        assert!(matches!(p.billing_cycle(&[(bp, 1.0)]), Err(PocError::NotAuthorized(_))));
    }

    #[test]
    fn policy_violations_recorded() {
        let mut p = poc();
        let lmp = p.attach_lmp("lmp", RouterId(0)).unwrap();
        let csp = p.attach_hosted_csp("csp", lmp).unwrap();
        let v = p.review_policy(&TrafficPolicy {
            lmp,
            matches: PolicyMatch { source: Some(csp), ..PolicyMatch::any() },
            action: PolicyAction::Block,
            basis: PolicyBasis::Commercial,
        });
        assert!(v.is_violation());
        assert_eq!(p.violations().len(), 1);
    }

    #[test]
    fn recall_via_facade_flags_and_expires() {
        let mut p = poc();
        let tm = demand(p.topo().n_routers());
        p.run_auction_round(&tm).unwrap();
        let lease = p.leases().leases()[0].clone();
        assert!(!p.reauction_needed());
        assert!(p.recall_link(lease.bp, lease.link, 0));
        assert!(p.reauction_needed());
        // Notice 0: expires as soon as leases advance to the current period.
        let expired = p.expire_leases();
        assert_eq!(expired, vec![lease.link]);
        // Unknown recall is a no-op.
        assert!(!p.recall_link(poc_topology::BpId(42), poc_topology::LinkId(0), 1));
    }

    #[test]
    fn state_export_restore_round_trips_through_json() {
        let mut p = poc();
        let tm = demand(p.topo().n_routers());
        p.run_auction_round(&tm).unwrap();
        let lmp1 = p.attach_lmp("lmp-west", RouterId(0)).unwrap();
        let lmp2 = p.attach_lmp("lmp-east", RouterId(1)).unwrap();
        p.billing_cycle(&[(lmp1, 12.0), (lmp2, 8.0)]).unwrap();
        let lease = p.leases().leases()[0].clone();
        p.recall_link(lease.bp, lease.link, 1);

        let exported = p.export_state();
        let json = serde_json::to_vec(&exported).unwrap();
        let back: PocState = serde_json::from_slice(&json).unwrap();

        // Restore into a fresh facade over the same topology.
        let mut fresh = poc();
        fresh.restore_state(back);
        assert_eq!(fresh.period(), p.period());
        assert_eq!(
            fresh.ledger().balance(Account::Entity(lmp1)),
            p.ledger().balance(Account::Entity(lmp1))
        );
        assert_eq!(fresh.leases().leases().len(), p.leases().leases().len());
        assert!(fresh.reauction_needed());
        assert!(fresh.fabric().is_some(), "fabric reinstalled from the restored outcome");
        assert_eq!(
            fresh.last_outcome().unwrap().selected,
            p.last_outcome().unwrap().selected,
            "identical selected set after restore"
        );
        // The restored registry still rejects duplicate names minted
        // before the snapshot.
        assert!(fresh.attach_lmp("lmp-west", RouterId(0)).is_err());
        // And the restored fabric answers paths like the original.
        assert_eq!(fresh.member_path(lmp1, lmp2).unwrap(), p.member_path(lmp1, lmp2).unwrap());
    }

    #[test]
    fn topology_fingerprint_distinguishes_instances() {
        let small = two_bp_square();
        assert_eq!(topology_fingerprint(&small), topology_fingerprint(&two_bp_square()));
        let mut bigger = two_bp_square();
        attach_external_isps(
            &mut bigger,
            &ExternalIspConfig { n_isps: 1, attach_points: 4, ..Default::default() },
            &CostModel::default(),
        );
        assert_ne!(topology_fingerprint(&small), topology_fingerprint(&bigger));
    }

    #[test]
    fn transition_steps_keep_leases_consistent_with_fabric() {
        let mut p = poc();
        let tm = demand(p.topo().n_routers());
        p.run_auction_round(&tm).unwrap();
        let original = p.installed_links().unwrap().clone();
        let outcome = p.last_outcome().unwrap().clone();
        let universe = p.topo().links.len();
        let live_before = p.leases().active_links(universe, p.period()).len();

        // Remove one leased link, then add it back from the same outcome.
        let lease = p.leases().leases()[0].clone();
        p.transition_remove_link(lease.link).unwrap();
        assert!(!p.installed_links().unwrap().contains(lease.link));
        assert_eq!(p.leases().active_links(universe, p.period()).len(), live_before - 1);

        p.transition_add_link(&outcome, lease.link).unwrap();
        assert!(p.installed_links().unwrap().contains(lease.link));
        assert_eq!(p.leases().active_links(universe, p.period()).len(), live_before);
        assert_eq!(p.installed_links().unwrap(), &original);

        // Re-applying an add (crash replay) must not double-book.
        p.transition_add_link(&outcome, lease.link).unwrap();
        assert_eq!(p.leases().active_links(universe, p.period()).len(), live_before);

        // Removing a link with no lease (virtual or never leased) only
        // touches the fabric.
        let unleased = (0..universe)
            .map(poc_topology::LinkId::from_index)
            .find(|l| !p.leases().active_links(universe, p.period()).contains(*l))
            .unwrap();
        p.transition_remove_link(unleased).unwrap();
        assert!(!p.installed_links().unwrap().contains(unleased));

        // Commit restores the outcome's exact selected set.
        p.commit_transition(outcome.clone());
        assert_eq!(p.installed_links().unwrap(), &outcome.selected);
        assert!(!p.reauction_needed());
    }

    #[test]
    fn member_path_through_fabric() {
        let mut p = poc();
        let tm = demand(p.topo().n_routers());
        p.run_auction_round(&tm).unwrap();
        let a = p.attach_lmp("a", RouterId(0)).unwrap();
        let b = p.attach_lmp("b", RouterId(1)).unwrap();
        let path = p.member_path(a, b).unwrap();
        assert!(path.is_some());
        assert!(!path.unwrap().is_empty());
    }
}

//! The §3.2 payment structure as a double-entry ledger.
//!
//! "Entities pay directly for what they receive": the POC pays BPs (auction
//! payments) and external ISPs (contracts); LMPs and directly-attached CSPs
//! pay the POC for access; customers pay their LMP; hosted CSPs pay their
//! LMP. Every transfer is a [`Posting`] debited from one account and
//! credited to another, so the ledger conserves money by construction, and
//! the nonprofit POC's break-even discipline is checkable as an invariant.

use crate::entity::EntityId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A ledger account. The POC itself holds [`Account::Poc`]; everyone else
/// is identified by registry id.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Account {
    Poc,
    Entity(EntityId),
    /// The aggregated customers of one LMP (the POC never bills end users
    /// directly, but their payments to LMPs appear so the revenue flow of
    /// §3.2 is complete end-to-end).
    CustomersOf(EntityId),
}

impl std::fmt::Display for Account {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Account::Poc => write!(f, "POC"),
            Account::Entity(e) => write!(f, "{e}"),
            Account::CustomersOf(e) => write!(f, "customers({e})"),
        }
    }
}

/// One transfer.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Posting {
    pub period: u32,
    pub from: Account,
    pub to: Account,
    pub amount: f64,
    pub memo: String,
}

/// The double-entry ledger.
///
/// ```
/// use poc_core::settlement::{Account, Ledger};
/// use poc_core::entity::EntityId;
///
/// let mut ledger = Ledger::new();
/// let lmp = Account::Entity(EntityId(0));
/// ledger.post(0, lmp, Account::Poc, 100.0, "transit");
/// ledger.post(0, Account::Poc, Account::Entity(EntityId(1)), 100.0, "lease");
/// assert_eq!(ledger.balance(Account::Poc), 0.0); // nonprofit break-even
/// assert!(ledger.conservation_error().abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Ledger {
    postings: Vec<Posting>,
    balances: BTreeMap<Account, f64>,
}

impl Ledger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a transfer. Zero-amount postings are dropped silently;
    /// negative amounts are a caller bug.
    pub fn post(&mut self, period: u32, from: Account, to: Account, amount: f64, memo: &str) {
        assert!(amount.is_finite() && amount >= 0.0, "negative posting {amount} ({memo})");
        assert!(from != to, "self-posting ({memo})");
        if amount == 0.0 {
            return;
        }
        *self.balances.entry(from).or_insert(0.0) -= amount;
        *self.balances.entry(to).or_insert(0.0) += amount;
        self.postings.push(Posting { period, from, to, amount, memo: memo.to_string() });
    }

    /// Net balance of an account (positive = received more than paid).
    pub fn balance(&self, account: Account) -> f64 {
        self.balances.get(&account).copied().unwrap_or(0.0)
    }

    /// Sum of all balances — always ~0 by construction; exposed so tests
    /// and audits can assert conservation explicitly.
    pub fn conservation_error(&self) -> f64 {
        self.balances.values().sum()
    }

    /// All postings in a period.
    pub fn period_postings(&self, period: u32) -> Vec<&Posting> {
        self.postings.iter().filter(|p| p.period == period).collect()
    }

    /// Total flow into `to` from `from` across all periods.
    pub fn total_flow(&self, from: Account, to: Account) -> f64 {
        self.postings.iter().filter(|p| p.from == from && p.to == to).map(|p| p.amount).sum()
    }

    pub fn postings(&self) -> &[Posting] {
        &self.postings
    }

    /// Render a human-readable account statement: every posting involving
    /// `account` with a running balance, grouped by period. The artifact a
    /// member would receive with its invoice.
    pub fn statement(&self, account: Account) -> String {
        let mut out = format!("statement for {account}\n");
        out.push_str(&format!(
            "{:<8}{:<12}{:>14}{:>14}  {}\n",
            "period", "direction", "amount $", "balance $", "memo"
        ));
        let mut running = 0.0;
        let mut any = false;
        for p in &self.postings {
            let (direction, signed) = if p.to == account {
                ("credit", p.amount)
            } else if p.from == account {
                ("debit", -p.amount)
            } else {
                continue;
            };
            any = true;
            running += signed;
            out.push_str(&format!(
                "{:<8}{:<12}{:>14.2}{:>14.2}  {}\n",
                p.period, direction, p.amount, running, p.memo
            ));
        }
        if !any {
            out.push_str("(no activity)\n");
        }
        out.push_str(&format!("closing balance: {:.2}\n", self.balance(account)));
        out
    }

    /// POC revenue (inflows) and outlay (outflows) for a period; the
    /// nonprofit break-even check compares the two.
    pub fn poc_period_flows(&self, period: u32) -> (f64, f64) {
        let mut inflow = 0.0;
        let mut outflow = 0.0;
        for p in self.period_postings(period) {
            if p.to == Account::Poc {
                inflow += p.amount;
            }
            if p.from == Account::Poc {
                outflow += p.amount;
            }
        }
        (inflow, outflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> Account {
        Account::Entity(EntityId(i))
    }

    #[test]
    fn posting_moves_balance() {
        let mut l = Ledger::new();
        l.post(1, e(0), Account::Poc, 100.0, "access fee");
        assert_eq!(l.balance(e(0)), -100.0);
        assert_eq!(l.balance(Account::Poc), 100.0);
        assert!(l.conservation_error().abs() < 1e-12);
    }

    #[test]
    fn zero_postings_dropped() {
        let mut l = Ledger::new();
        l.post(1, e(0), Account::Poc, 0.0, "noop");
        assert!(l.postings().is_empty());
    }

    #[test]
    #[should_panic(expected = "negative posting")]
    fn negative_amount_rejected() {
        Ledger::new().post(1, e(0), Account::Poc, -5.0, "bad");
    }

    #[test]
    #[should_panic(expected = "self-posting")]
    fn self_posting_rejected() {
        Ledger::new().post(1, e(0), e(0), 5.0, "bad");
    }

    #[test]
    fn period_flows_and_break_even() {
        let mut l = Ledger::new();
        // Two LMPs pay the POC; the POC pays a BP; exactly break-even.
        l.post(3, e(0), Account::Poc, 60.0, "lmp0 transit");
        l.post(3, e(1), Account::Poc, 40.0, "lmp1 transit");
        l.post(3, Account::Poc, e(2), 100.0, "bp lease payment");
        let (inflow, outflow) = l.poc_period_flows(3);
        assert_eq!(inflow, 100.0);
        assert_eq!(outflow, 100.0);
        assert_eq!(l.balance(Account::Poc), 0.0);
        // Other periods are empty.
        assert_eq!(l.poc_period_flows(4), (0.0, 0.0));
    }

    #[test]
    fn statement_renders_running_balance() {
        let mut l = Ledger::new();
        l.post(0, e(0), Account::Poc, 25.0, "transit");
        l.post(1, Account::Poc, e(0), 10.0, "rebate");
        let s = l.statement(e(0));
        assert!(s.contains("debit"), "{s}");
        assert!(s.contains("credit"), "{s}");
        assert!(s.contains("closing balance: -15.00"), "{s}");
        // Uninvolved account gets an empty statement.
        let empty = l.statement(e(9));
        assert!(empty.contains("(no activity)"), "{empty}");
    }

    #[test]
    fn total_flow_accumulates_across_periods() {
        let mut l = Ledger::new();
        l.post(1, Account::CustomersOf(EntityId(0)), e(0), 10.0, "subscriptions");
        l.post(2, Account::CustomersOf(EntityId(0)), e(0), 12.0, "subscriptions");
        assert_eq!(l.total_flow(Account::CustomersOf(EntityId(0)), e(0)), 22.0);
    }
}

//! Optional POC network services (§3.1).
//!
//! Beyond point-to-point transit the paper lets the POC offer "multicast
//! and anycast delivery mechanisms" and openly-priced QoS tiers — with the
//! hard rule that such services be *openly offered* at posted prices,
//! never granted selectively. This module implements all three on top of
//! the installed forwarding fabric:
//!
//! * [`AnycastGroup`] — one logical address served by several replica
//!   routers; the fabric resolves each client to its nearest replica;
//! * [`MulticastTree`] — a shortest-path distribution tree from a source
//!   to a subscriber set, with link-usage accounting (one copy per link,
//!   the whole point of multicast);
//! * [`QosCatalog`] — posted-price service tiers; purchases are open to
//!   every member (enforced by construction) and generate ledger-ready
//!   charges.

use crate::fabric::{FabricError, ForwardingState};
use poc_topology::{LinkId, PocTopology, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// An anycast group: a service reachable at whichever replica is nearest.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnycastGroup {
    pub name: String,
    pub replicas: Vec<RouterId>,
}

impl AnycastGroup {
    pub fn new(name: &str, replicas: Vec<RouterId>) -> Self {
        assert!(!replicas.is_empty(), "anycast group needs at least one replica");
        Self { name: name.to_string(), replicas }
    }

    /// Resolve a client router to its nearest replica (by fabric path
    /// length in km) and the path to it. `Ok(None)` if no replica is
    /// reachable; corrupted tables surface as [`FabricError`].
    pub fn resolve(
        &self,
        topo: &PocTopology,
        fabric: &ForwardingState,
        client: RouterId,
    ) -> Result<Option<(RouterId, Vec<LinkId>)>, FabricError> {
        let mut best: Option<(f64, RouterId, Vec<LinkId>)> = None;
        for &replica in &self.replicas {
            let Some(path) = fabric.path(client, replica)? else { continue };
            let km: f64 = path.iter().map(|&l| topo.link(l).distance_km).sum();
            let better = match &best {
                None => true,
                Some((bkm, brep, _)) => {
                    km < bkm - 1e-9 || ((km - bkm).abs() <= 1e-9 && replica < *brep)
                }
            };
            if better {
                best = Some((km, replica, path));
            }
        }
        Ok(best.map(|(_, r, p)| (r, p)))
    }
}

/// A multicast distribution tree from one source to a subscriber set,
/// built from the fabric's unicast paths (shortest-path tree; a classic,
/// not Steiner-optimal, but loop-free and deduplicated).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MulticastTree {
    pub source: RouterId,
    pub subscribers: Vec<RouterId>,
    /// Links of the tree (each link carries exactly one copy).
    pub links: BTreeSet<LinkId>,
    /// Subscribers unreachable from the source.
    pub unreachable: Vec<RouterId>,
}

impl MulticastTree {
    /// Build the tree over the installed fabric. Corrupted forwarding
    /// tables surface as [`FabricError`] rather than a silent drop.
    pub fn build(
        fabric: &ForwardingState,
        source: RouterId,
        subscribers: &[RouterId],
    ) -> Result<Self, FabricError> {
        let mut links = BTreeSet::new();
        let mut unreachable = Vec::new();
        for &sub in subscribers {
            if sub == source {
                continue;
            }
            match fabric.path(source, sub)? {
                Some(path) => links.extend(path),
                None => unreachable.push(sub),
            }
        }
        Ok(Self { source, subscribers: subscribers.to_vec(), links, unreachable })
    }

    /// Total fabric bandwidth consumed for a stream of `rate_gbps`
    /// (one copy per tree link).
    pub fn bandwidth_gbps(&self, rate_gbps: f64) -> f64 {
        rate_gbps * self.links.len() as f64
    }

    /// Bandwidth the same delivery would cost as unicast (one copy per
    /// subscriber path link) — the multicast saving baseline.
    pub fn unicast_bandwidth_gbps(
        &self,
        fabric: &ForwardingState,
        rate_gbps: f64,
    ) -> Result<f64, FabricError> {
        let mut total_links = 0usize;
        for &sub in &self.subscribers {
            if sub == self.source {
                continue;
            }
            if let Some(path) = fabric.path(self.source, sub)? {
                total_links += path.len();
            }
        }
        Ok(rate_gbps * total_links as f64)
    }
}

/// One openly-offered QoS tier. `price_per_gbps` is the monthly posted
/// price; the open offer is structural — there is no per-member gate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QosTier {
    pub name: String,
    /// Scheduling priority boost relative to best-effort.
    pub priority: i32,
    pub price_per_gbps: f64,
}

/// The POC's posted-price QoS catalog (§3.1: offerings must be open so
/// "users could choose their desired level of service and pay the
/// resulting price").
///
/// ```
/// use poc_core::services::{QosCatalog, QosTier};
///
/// let mut catalog = QosCatalog::new();
/// catalog.publish(QosTier { name: "gold".into(), priority: 10, price_per_gbps: 12.0 });
/// // Posted prices: the same purchase costs the same for everyone.
/// let a = catalog.purchase("gold", 4.0).unwrap();
/// let b = catalog.purchase("gold", 4.0).unwrap();
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct QosCatalog {
    tiers: BTreeMap<String, QosTier>,
}

/// A purchase of a tier by a member, priced at the posted rate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct QosPurchase {
    pub tier: String,
    pub gbps: f64,
    pub monthly_charge: f64,
}

impl QosCatalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish a tier. Republishing a name updates the posted price —
    /// openly, for everyone at once.
    pub fn publish(&mut self, tier: QosTier) {
        assert!(
            tier.price_per_gbps >= 0.0 && tier.price_per_gbps.is_finite(),
            "posted price must be non-negative"
        );
        self.tiers.insert(tier.name.clone(), tier);
    }

    pub fn tiers(&self) -> impl Iterator<Item = &QosTier> {
        self.tiers.values()
    }

    pub fn get(&self, name: &str) -> Option<&QosTier> {
        self.tiers.get(name)
    }

    /// Purchase `gbps` of a tier at its posted price. The same call with
    /// the same arguments yields the same charge for every member —
    /// non-discrimination by construction.
    pub fn purchase(&self, tier: &str, gbps: f64) -> Option<QosPurchase> {
        assert!(gbps > 0.0 && gbps.is_finite(), "purchase must be positive");
        let t = self.tiers.get(tier)?;
        Some(QosPurchase { tier: t.name.clone(), gbps, monthly_charge: t.price_per_gbps * gbps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_flow::LinkSet;
    use poc_topology::builder::two_bp_square;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    fn fabric(topo: &PocTopology) -> ForwardingState {
        ForwardingState::install(topo, &LinkSet::full(topo.n_links()))
    }

    #[test]
    fn anycast_resolves_to_nearest_replica() {
        let t = two_bp_square();
        let f = fabric(&t);
        let group = AnycastGroup::new("dns", vec![r(1), r(3)]);
        // r0 is 1300km from r1 and 1830km from r3 → r1.
        let (replica, path) = group.resolve(&t, &f, r(0)).unwrap().unwrap();
        assert_eq!(replica, r(1));
        assert_eq!(path.len(), 1);
        // A client at a replica resolves to itself with an empty path.
        let (replica, path) = group.resolve(&t, &f, r(3)).unwrap().unwrap();
        assert_eq!(replica, r(3));
        assert!(path.is_empty());
    }

    #[test]
    fn anycast_unreachable_when_fabric_partitioned() {
        let t = two_bp_square();
        let bp0_only = LinkSet::from_links(t.n_links(), t.links_of_bp(poc_topology::BpId(0)));
        let f = ForwardingState::install(&t, &bp0_only);
        let group = AnycastGroup::new("cdn", vec![r(3)]);
        assert!(group.resolve(&t, &f, r(0)).unwrap().is_none());
    }

    #[test]
    fn multicast_tree_dedupes_shared_links() {
        let t = two_bp_square();
        let f = fabric(&t);
        // Source r0, subscribers r1 and r2: paths are the direct links, no
        // sharing; subscribers r3 via r1/r2 would share the first hop with
        // them. Use all three.
        let tree = MulticastTree::build(&f, r(0), &[r(1), r(2), r(3)]).unwrap();
        assert!(tree.unreachable.is_empty());
        // Tree bandwidth strictly below unicast when any link is shared,
        // and never above.
        let mc = tree.bandwidth_gbps(10.0);
        let uc = tree.unicast_bandwidth_gbps(&f, 10.0).unwrap();
        assert!(mc <= uc, "multicast {mc} must not exceed unicast {uc}");
        assert_eq!(mc, 10.0 * tree.links.len() as f64);
    }

    #[test]
    fn multicast_reports_unreachable_subscribers() {
        let t = two_bp_square();
        let bp0_only = LinkSet::from_links(t.n_links(), t.links_of_bp(poc_topology::BpId(0)));
        let f = ForwardingState::install(&t, &bp0_only);
        let tree = MulticastTree::build(&f, r(0), &[r(1), r(3)]).unwrap();
        assert_eq!(tree.unreachable, vec![r(3)]);
        assert!(!tree.links.is_empty(), "reachable subscriber still served");
    }

    #[test]
    fn qos_catalog_posted_prices_uniform() {
        let mut catalog = QosCatalog::new();
        catalog.publish(QosTier { name: "gold".into(), priority: 10, price_per_gbps: 12.0 });
        catalog.publish(QosTier { name: "silver".into(), priority: 5, price_per_gbps: 5.0 });
        assert_eq!(catalog.tiers().count(), 2);
        // Same purchase, same price — for anyone.
        let a = catalog.purchase("gold", 4.0).unwrap();
        let b = catalog.purchase("gold", 4.0).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.monthly_charge, 48.0);
        assert!(catalog.purchase("platinum", 1.0).is_none());
    }

    #[test]
    fn qos_republish_updates_price_openly() {
        let mut catalog = QosCatalog::new();
        catalog.publish(QosTier { name: "gold".into(), priority: 10, price_per_gbps: 12.0 });
        catalog.publish(QosTier { name: "gold".into(), priority: 10, price_per_gbps: 9.0 });
        assert_eq!(catalog.get("gold").unwrap().price_per_gbps, 9.0);
        assert_eq!(catalog.tiers().count(), 1);
    }
}

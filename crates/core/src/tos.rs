//! Terms-of-service: the §3.4 peering conditions as an executable
//! neutrality-enforcement engine.
//!
//! A POC-connected LMP must not:
//!
//! 1. *(i)* differentially treat (priorities or blocking) incoming traffic
//!    based on source or application, nor outgoing traffic based on
//!    destination or application;
//! 2. *(ii)* differentially provide CDN or other application-enhancement
//!    services based on the source (incoming) or destination (outgoing);
//! 3. *(iii)* differentially allow third parties to provide such services
//!    targeting only a subset of traffic.
//!
//! Exceptions the paper carves out: security blocking, internal
//! maintenance priority, and QoS offered openly at posted prices ("we make
//! a distinction between service discrimination and QoS, and disallow the
//! former while not prohibiting the latter").

use crate::entity::EntityId;
use serde::{Deserialize, Serialize};

/// What traffic a policy matches. `None` = wildcard; a `Some` selector is
/// what makes a policy *differential*.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct PolicyMatch {
    /// Match on the origin entity of incoming traffic.
    pub source: Option<EntityId>,
    /// Match on the destination entity of outgoing traffic.
    pub destination: Option<EntityId>,
    /// Match on application/protocol (e.g. "video", "voip").
    pub application: Option<String>,
}

impl PolicyMatch {
    /// Matches everything.
    pub fn any() -> Self {
        Self::default()
    }

    /// Whether the policy singles out a subset of traffic.
    pub fn is_differential(&self) -> bool {
        self.source.is_some() || self.destination.is_some() || self.application.is_some()
    }
}

/// What the policy does to matched traffic.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PolicyAction {
    Block,
    /// Scheduling priority change (positive = boost, negative = throttle).
    Prioritize(i32),
    /// Provide a CDN / application-enhancement service to matched traffic.
    ProvideEnhancement {
        service: String,
    },
    /// Permit a third party to install an enhancement service that applies
    /// to the matched traffic.
    AllowThirdPartyEnhancement {
        provider: String,
    },
}

/// The declared basis for the policy — what the LMP claims justifies it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum PolicyBasis {
    /// Security response (the paper's blocking exception).
    Security,
    /// Internal maintenance traffic handling (the priority exception).
    Maintenance,
    /// A QoS tier or service offered openly at a posted price, available
    /// to anyone who pays.
    PostedPrice { price: f64, openly_offered: bool },
    /// No declared basis.
    Commercial,
}

/// A traffic-handling policy an LMP wants to (or is observed to) apply.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrafficPolicy {
    /// The LMP applying the policy.
    pub lmp: EntityId,
    pub matches: PolicyMatch,
    pub action: PolicyAction,
    pub basis: PolicyBasis,
}

/// The engine's ruling.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    Allowed {
        rationale: String,
    },
    /// Violation of peering condition (i), (ii) or (iii).
    Violation {
        condition: u8,
        rationale: String,
    },
}

impl Verdict {
    pub fn is_violation(&self) -> bool {
        matches!(self, Verdict::Violation { .. })
    }
}

/// The neutrality-enforcement engine. Stateless: each policy is judged
/// against the peering conditions; [`NeutralityEngine::review_all`] batches.
///
/// ```
/// use poc_core::tos::*;
/// use poc_core::entity::EntityId;
///
/// let engine = NeutralityEngine::new();
/// // Source-based blocking without a security basis violates condition (i):
/// let verdict = engine.review(&TrafficPolicy {
///     lmp: EntityId(0),
///     matches: PolicyMatch { source: Some(EntityId(7)), ..PolicyMatch::any() },
///     action: PolicyAction::Block,
///     basis: PolicyBasis::Commercial,
/// });
/// assert!(verdict.is_violation());
/// ```
#[derive(Clone, Debug, Default)]
pub struct NeutralityEngine;

impl NeutralityEngine {
    pub fn new() -> Self {
        Self
    }

    /// Judge one policy.
    pub fn review(&self, policy: &TrafficPolicy) -> Verdict {
        let differential = policy.matches.is_differential();
        match (&policy.action, &policy.basis) {
            // Security blocking is the explicit carve-out — even targeted.
            (PolicyAction::Block, PolicyBasis::Security) => {
                Verdict::Allowed { rationale: "security exception (ToS carve-out)".into() }
            }
            // Maintenance priority likewise.
            (PolicyAction::Prioritize(_), PolicyBasis::Maintenance) => {
                Verdict::Allowed { rationale: "internal maintenance exception".into() }
            }
            // Posted-price QoS / services must be openly offered and not
            // single out traffic the buyer didn't choose: the *offer* is
            // uniform even though only payers receive it.
            (
                PolicyAction::Prioritize(_) | PolicyAction::ProvideEnhancement { .. },
                PolicyBasis::PostedPrice { price, openly_offered },
            ) => {
                if *openly_offered && *price >= 0.0 {
                    Verdict::Allowed {
                        rationale: format!(
                            "QoS/enhancement at posted price ${price:.2}, openly offered"
                        ),
                    }
                } else {
                    Verdict::Violation {
                        condition: if matches!(policy.action, PolicyAction::Prioritize(_)) {
                            1
                        } else {
                            2
                        },
                        rationale: "priced service not openly offered".into(),
                    }
                }
            }
            // Blocking without a security basis.
            (PolicyAction::Block, _) => Verdict::Violation {
                condition: 1,
                rationale: if differential {
                    "blocking traffic by source/destination/application".into()
                } else {
                    "blanket blocking of peer traffic".into()
                },
            },
            // Differential priority without an allowed basis.
            (PolicyAction::Prioritize(_), _) => {
                if differential {
                    Verdict::Violation {
                        condition: 1,
                        rationale: "differential priority based on traffic identity".into(),
                    }
                } else {
                    Verdict::Allowed {
                        rationale: "uniform scheduling change affects all traffic equally".into(),
                    }
                }
            }
            // Enhancement services granted to a subset without posted price.
            (PolicyAction::ProvideEnhancement { .. }, _) => {
                if differential {
                    Verdict::Violation {
                        condition: 2,
                        rationale: "CDN/enhancement provided only to selected traffic".into(),
                    }
                } else {
                    Verdict::Allowed {
                        rationale: "enhancement applied uniformly to all traffic".into(),
                    }
                }
            }
            // Third-party installs must be open to all comers.
            (PolicyAction::AllowThirdPartyEnhancement { .. }, basis) => {
                if differential {
                    Verdict::Violation {
                        condition: 3,
                        rationale: "third-party enhancement permitted only for a subset of traffic"
                            .into(),
                    }
                } else if matches!(basis, PolicyBasis::PostedPrice { openly_offered: false, .. }) {
                    Verdict::Violation {
                        condition: 3,
                        rationale: "third-party install terms not openly offered".into(),
                    }
                } else {
                    Verdict::Allowed {
                        rationale: "third-party enhancement open to all traffic".into(),
                    }
                }
            }
        }
    }

    /// Judge a batch, returning only the violations.
    pub fn review_all<'p>(
        &self,
        policies: &'p [TrafficPolicy],
    ) -> Vec<(&'p TrafficPolicy, Verdict)> {
        policies.iter().map(|p| (p, self.review(p))).filter(|(_, v)| v.is_violation()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lmp() -> EntityId {
        EntityId(0)
    }

    fn src() -> EntityId {
        EntityId(1)
    }

    #[test]
    fn source_based_blocking_violates_condition_1() {
        let e = NeutralityEngine::new();
        let v = e.review(&TrafficPolicy {
            lmp: lmp(),
            matches: PolicyMatch { source: Some(src()), ..PolicyMatch::any() },
            action: PolicyAction::Block,
            basis: PolicyBasis::Commercial,
        });
        assert_eq!(
            v,
            Verdict::Violation {
                condition: 1,
                rationale: "blocking traffic by source/destination/application".into()
            }
        );
    }

    #[test]
    fn security_blocking_allowed() {
        let e = NeutralityEngine::new();
        let v = e.review(&TrafficPolicy {
            lmp: lmp(),
            matches: PolicyMatch { source: Some(src()), ..PolicyMatch::any() },
            action: PolicyAction::Block,
            basis: PolicyBasis::Security,
        });
        assert!(!v.is_violation(), "{v:?}");
    }

    #[test]
    fn application_throttling_violates_condition_1() {
        // The §2.4.2 cellular-provider scenario: throttle video.
        let e = NeutralityEngine::new();
        let v = e.review(&TrafficPolicy {
            lmp: lmp(),
            matches: PolicyMatch { application: Some("video".into()), ..PolicyMatch::any() },
            action: PolicyAction::Prioritize(-10),
            basis: PolicyBasis::Commercial,
        });
        assert!(matches!(v, Verdict::Violation { condition: 1, .. }), "{v:?}");
    }

    #[test]
    fn posted_price_qos_allowed() {
        // The paper's QoS-vs-discrimination distinction.
        let e = NeutralityEngine::new();
        let v = e.review(&TrafficPolicy {
            lmp: lmp(),
            matches: PolicyMatch { application: Some("voip".into()), ..PolicyMatch::any() },
            action: PolicyAction::Prioritize(5),
            basis: PolicyBasis::PostedPrice { price: 9.99, openly_offered: true },
        });
        assert!(!v.is_violation(), "{v:?}");
        // Same action, secret pricing: violation.
        let v2 = e.review(&TrafficPolicy {
            lmp: lmp(),
            matches: PolicyMatch { application: Some("voip".into()), ..PolicyMatch::any() },
            action: PolicyAction::Prioritize(5),
            basis: PolicyBasis::PostedPrice { price: 9.99, openly_offered: false },
        });
        assert!(v2.is_violation());
    }

    #[test]
    fn selective_cdn_violates_condition_2() {
        let e = NeutralityEngine::new();
        let v = e.review(&TrafficPolicy {
            lmp: lmp(),
            matches: PolicyMatch { source: Some(src()), ..PolicyMatch::any() },
            action: PolicyAction::ProvideEnhancement { service: "cdn-cache".into() },
            basis: PolicyBasis::Commercial,
        });
        assert!(matches!(v, Verdict::Violation { condition: 2, .. }), "{v:?}");
        // Uniform CDN for everyone is fine.
        let v2 = e.review(&TrafficPolicy {
            lmp: lmp(),
            matches: PolicyMatch::any(),
            action: PolicyAction::ProvideEnhancement { service: "cdn-cache".into() },
            basis: PolicyBasis::Commercial,
        });
        assert!(!v2.is_violation());
    }

    #[test]
    fn exclusive_third_party_install_violates_condition_3() {
        // The paper's example: letting Netflix install enhancement boxes
        // while refusing others.
        let e = NeutralityEngine::new();
        let v = e.review(&TrafficPolicy {
            lmp: lmp(),
            matches: PolicyMatch { source: Some(src()), ..PolicyMatch::any() },
            action: PolicyAction::AllowThirdPartyEnhancement { provider: "netflix".into() },
            basis: PolicyBasis::Commercial,
        });
        assert!(matches!(v, Verdict::Violation { condition: 3, .. }), "{v:?}");
        // Open install program at a set fee is fine.
        let v2 = e.review(&TrafficPolicy {
            lmp: lmp(),
            matches: PolicyMatch::any(),
            action: PolicyAction::AllowThirdPartyEnhancement { provider: "anyone".into() },
            basis: PolicyBasis::PostedPrice { price: 1000.0, openly_offered: true },
        });
        assert!(!v2.is_violation(), "{v2:?}");
    }

    #[test]
    fn maintenance_priority_allowed() {
        let e = NeutralityEngine::new();
        let v = e.review(&TrafficPolicy {
            lmp: lmp(),
            matches: PolicyMatch { application: Some("ospf".into()), ..PolicyMatch::any() },
            action: PolicyAction::Prioritize(100),
            basis: PolicyBasis::Maintenance,
        });
        assert!(!v.is_violation());
    }

    #[test]
    fn uniform_priority_change_allowed() {
        let e = NeutralityEngine::new();
        let v = e.review(&TrafficPolicy {
            lmp: lmp(),
            matches: PolicyMatch::any(),
            action: PolicyAction::Prioritize(-1),
            basis: PolicyBasis::Commercial,
        });
        assert!(!v.is_violation(), "uniform dampening treats all traffic equally");
    }

    #[test]
    fn review_all_filters_violations() {
        let e = NeutralityEngine::new();
        let policies = vec![
            TrafficPolicy {
                lmp: lmp(),
                matches: PolicyMatch::any(),
                action: PolicyAction::Prioritize(0),
                basis: PolicyBasis::Commercial,
            },
            TrafficPolicy {
                lmp: lmp(),
                matches: PolicyMatch { source: Some(src()), ..PolicyMatch::any() },
                action: PolicyAction::Block,
                basis: PolicyBasis::Commercial,
            },
        ];
        let violations = e.review_all(&policies);
        assert_eq!(violations.len(), 1);
    }
}

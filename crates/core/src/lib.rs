//! The Public Option for the Core — the POC control plane.
//!
//! This crate assembles the paper's proposal (§1.2, §3) as a runnable
//! system on top of the substrates:
//!
//! * [`entity`] — the ecosystem registry: LMPs, CSPs, BPs, external ISPs,
//!   and where they attach to the POC fabric;
//! * [`tos`] — the terms-of-service: the §3.4 peering conditions as an
//!   executable neutrality-enforcement engine distinguishing posted-price
//!   QoS (allowed) from source/destination discrimination (violation);
//! * [`settlement`] — the §3.2 payment structure as a double-entry ledger:
//!   everyone pays directly for what they receive, and the nonprofit POC
//!   breaks even;
//! * [`lease`] — the lease lifecycle: auction outcomes become monthly
//!   leases; BPs can recall links (the paper's overbuy-then-recall story),
//!   which flags a re-auction;
//! * [`fabric`] — the forwarding state installed from the selected link
//!   set: next-hop tables, path queries;
//! * [`services`] — the §3.1 optional offerings: anycast, multicast, and
//!   openly-priced QoS tiers;
//! * [`poc`] — the facade tying it together: attach members, run auction
//!   rounds, install fabrics, run billing cycles.

pub mod entity;
pub mod fabric;
pub mod lease;
pub mod poc;
pub mod services;
pub mod settlement;
pub mod tos;

pub use entity::{EntityId, EntityKind, Registry};
pub use fabric::{FabricError, ForwardingState};
pub use lease::{Lease, LeaseBook, LeaseOpError, LeaseState};
pub use poc::{BillingSummary, Poc, PocConfig};
pub use services::{AnycastGroup, MulticastTree, QosCatalog, QosTier};
pub use settlement::{Account, Ledger, Posting};
pub use tos::{NeutralityEngine, PolicyAction, PolicyBasis, TrafficPolicy, Verdict};

//! Lease lifecycle: auction outcomes become leases; BPs can recall links.
//!
//! §3.3's provisioning story: large CSPs "can overbuy, and then lease out
//! (on a temporary basis) their excess bandwidth but can quickly recall it
//! from the POC when needed". A recall deactivates the lease after its
//! notice period and flags that a re-auction is due.

use poc_auction::AuctionOutcome;
use poc_flow::LinkSet;
use poc_topology::{BpId, LinkId, LinkOwner, PocTopology};
use serde::{Deserialize, Serialize};

/// State of one lease.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LeaseState {
    Active,
    /// Recall requested; the lease dies at the end of `effective_period`.
    Recalled {
        effective_period: u32,
    },
    Expired,
}

/// One leased link.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Lease {
    pub link: LinkId,
    pub bp: BpId,
    /// This link's share of the BP's monthly VCG payment (allocated
    /// pro-rata by declared unit price — the VCG payment itself is per-BP).
    pub monthly_payment: f64,
    pub started_period: u32,
    pub state: LeaseState,
}

/// Why a surgical lease operation (transition executor migrating one link
/// at a time) was refused. Typed so the executor can branch: a recall in
/// flight is "leave it to the recall machinery", not a failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LeaseOpError {
    /// No active lease exists on the link.
    NoActiveLease { link: LinkId },
    /// The link's lease is already dying through a BP recall: it expires
    /// at the end of `effective_period` and must not be removed a second
    /// time by a transition plan that also scheduled it.
    RecallInFlight { link: LinkId, bp: BpId, effective_period: u32 },
    /// A live (active or recalled-but-not-yet-expired) lease already
    /// covers the link.
    AlreadyLeased { link: LinkId },
}

impl std::fmt::Display for LeaseOpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseOpError::NoActiveLease { link } => write!(f, "no active lease on {link}"),
            LeaseOpError::RecallInFlight { link, bp, effective_period } => write!(
                f,
                "{link} is already being recalled by {bp} (effective period {effective_period})"
            ),
            LeaseOpError::AlreadyLeased { link } => write!(f, "{link} already has a live lease"),
        }
    }
}

impl std::error::Error for LeaseOpError {}

/// The book of active and historical leases.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LeaseBook {
    leases: Vec<Lease>,
    /// Set when a recall or expiry means the installed fabric no longer
    /// matches the lease book.
    reauction_needed: bool,
}

impl LeaseBook {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest an auction outcome: one lease per selected BP link, with the
    /// BP's payment allocated pro-rata by the topology's declared cost
    /// (virtual links are contract-priced and not leased through the book).
    pub fn ingest_auction(&mut self, topo: &PocTopology, outcome: &AuctionOutcome, period: u32) {
        for settlement in &outcome.settlements {
            if settlement.n_selected_links == 0 {
                continue;
            }
            let links: Vec<LinkId> = outcome
                .selected
                .iter()
                .filter(|&l| topo.link(l).owner == LinkOwner::Bp(settlement.bp))
                .collect();
            let weight_total: f64 = links.iter().map(|&l| topo.link(l).true_monthly_cost).sum();
            for &l in &links {
                let w = topo.link(l).true_monthly_cost;
                let share = if weight_total > 0.0 { w / weight_total } else { 0.0 };
                self.leases.push(Lease {
                    link: l,
                    bp: settlement.bp,
                    monthly_payment: settlement.payment * share,
                    started_period: period,
                    state: LeaseState::Active,
                });
            }
        }
    }

    /// All leases (including recalled/expired).
    pub fn leases(&self) -> &[Lease] {
        &self.leases
    }

    /// Links with an active lease as of `period`.
    pub fn active_links(&self, universe: usize, period: u32) -> LinkSet {
        LinkSet::from_links(
            universe,
            self.leases.iter().filter(|l| l.is_active_in(period)).map(|l| l.link),
        )
    }

    /// Monthly payment owed to each BP for leases active in `period`.
    pub fn payments_due(&self, period: u32) -> Vec<(BpId, f64)> {
        let mut by_bp: std::collections::BTreeMap<BpId, f64> = Default::default();
        for l in &self.leases {
            if l.is_active_in(period) {
                *by_bp.entry(l.bp).or_insert(0.0) += l.monthly_payment;
            }
        }
        by_bp.into_iter().collect()
    }

    /// BP recalls one of its leased links with `notice_periods` of notice.
    /// Returns whether a matching active lease was found.
    pub fn recall(&mut self, bp: BpId, link: LinkId, now: u32, notice_periods: u32) -> bool {
        let mut found = false;
        for l in &mut self.leases {
            if l.bp == bp && l.link == link && matches!(l.state, LeaseState::Active) {
                l.state = LeaseState::Recalled { effective_period: now + notice_periods };
                found = true;
            }
        }
        if found {
            self.reauction_needed = true;
        }
        found
    }

    /// Advance the book to `period`, expiring recalled leases that reached
    /// their effective period. Returns the links that just expired.
    pub fn advance_to(&mut self, period: u32) -> Vec<LinkId> {
        let mut expired = Vec::new();
        for l in &mut self.leases {
            if let LeaseState::Recalled { effective_period } = l.state {
                if period >= effective_period {
                    l.state = LeaseState::Expired;
                    expired.push(l.link);
                }
            }
        }
        expired
    }

    /// Retire the active lease on `link` (a transition step removing a
    /// link that lost the re-auction). Returns the retired lease.
    ///
    /// A lease whose BP already recalled it is *guarded*: the recall owns
    /// the remainder of its lifecycle (it expires at its notice deadline,
    /// and the BP is still owed the notice-period payments), so a plan
    /// that also scheduled the link for removal gets a typed
    /// [`LeaseOpError::RecallInFlight`] instead of double-removing it.
    pub fn remove_lease(&mut self, link: LinkId) -> Result<Lease, LeaseOpError> {
        let mut recalled: Option<(BpId, u32)> = None;
        for l in &mut self.leases {
            if l.link == link {
                match l.state {
                    LeaseState::Active => {
                        l.state = LeaseState::Expired;
                        return Ok(l.clone());
                    }
                    LeaseState::Recalled { effective_period } => {
                        recalled = Some((l.bp, effective_period));
                    }
                    LeaseState::Expired => {}
                }
            }
        }
        match recalled {
            Some((bp, effective_period)) => {
                Err(LeaseOpError::RecallInFlight { link, bp, effective_period })
            }
            None => Err(LeaseOpError::NoActiveLease { link }),
        }
    }

    /// Book a single lease (a transition step bringing a newly won link
    /// into service). Refused when a live lease already covers the link —
    /// adding a second would double-pay the BP.
    pub fn add_lease(&mut self, lease: Lease) -> Result<(), LeaseOpError> {
        let live = self.leases.iter().any(|l| {
            l.link == lease.link
                && matches!(l.state, LeaseState::Active | LeaseState::Recalled { .. })
        });
        if live {
            return Err(LeaseOpError::AlreadyLeased { link: lease.link });
        }
        self.leases.push(lease);
        Ok(())
    }

    /// Whether the installed fabric is stale (a recall/expiry happened
    /// since the last auction ingest).
    pub fn reauction_needed(&self) -> bool {
        self.reauction_needed
    }

    /// Clear the re-auction flag (called after a fresh auction round).
    pub fn mark_reauctioned(&mut self) {
        self.reauction_needed = false;
    }
}

impl Lease {
    /// Price a single link's lease from an auction outcome, with the BP's
    /// VCG payment allocated pro-rata by declared cost — the same formula
    /// [`LeaseBook::ingest_auction`] applies to the whole selected set.
    /// `None` for links the outcome did not select or that no BP owns
    /// (virtual links are contract-priced, not leased).
    pub fn priced_from(
        topo: &PocTopology,
        outcome: &AuctionOutcome,
        link: LinkId,
        period: u32,
    ) -> Option<Lease> {
        let LinkOwner::Bp(bp) = topo.link(link).owner else { return None };
        if !outcome.selected.contains(link) {
            return None;
        }
        let settlement = outcome.settlements.iter().find(|s| s.bp == bp)?;
        let weight_total: f64 = outcome
            .selected
            .iter()
            .filter(|&l| topo.link(l).owner == LinkOwner::Bp(bp))
            .map(|l| topo.link(l).true_monthly_cost)
            .sum();
        let w = topo.link(link).true_monthly_cost;
        let share = if weight_total > 0.0 { w / weight_total } else { 0.0 };
        Some(Lease {
            link,
            bp,
            monthly_payment: settlement.payment * share,
            started_period: period,
            state: LeaseState::Active,
        })
    }

    fn is_active_in(&self, period: u32) -> bool {
        match self.state {
            LeaseState::Active => true,
            LeaseState::Recalled { effective_period } => period < effective_period,
            LeaseState::Expired => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_auction::{run_auction, ExhaustiveSelector, Market};
    use poc_flow::Constraint;
    use poc_topology::builder::two_bp_square;
    use poc_topology::RouterId;
    use poc_traffic::TrafficMatrix;

    fn outcome_and_topo() -> (poc_topology::PocTopology, AuctionOutcome) {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(RouterId(0), RouterId(1), 10.0);
        tm.set(RouterId(1), RouterId(2), 5.0);
        let out = run_auction(&m, &tm, Constraint::BaseLoad, &ExhaustiveSelector).unwrap();
        (t, out)
    }

    #[test]
    fn ingest_creates_leases_matching_selection() {
        let (t, out) = outcome_and_topo();
        let mut book = LeaseBook::new();
        book.ingest_auction(&t, &out, 1);
        assert_eq!(book.leases().len(), out.selected.len());
        let active = book.active_links(t.n_links(), 1);
        assert_eq!(active, out.selected);
    }

    #[test]
    fn payments_allocate_full_vcg_amount() {
        let (t, out) = outcome_and_topo();
        let mut book = LeaseBook::new();
        book.ingest_auction(&t, &out, 1);
        let due: f64 = book.payments_due(1).iter().map(|(_, p)| p).sum();
        let paid: f64 = out.settlements.iter().map(|s| s.payment).sum();
        assert!((due - paid).abs() < 1e-9, "due {due} vs VCG {paid}");
    }

    #[test]
    fn recall_lifecycle() {
        let (t, out) = outcome_and_topo();
        let mut book = LeaseBook::new();
        book.ingest_auction(&t, &out, 1);
        let lease = book.leases()[0].clone();
        assert!(!book.reauction_needed());
        assert!(book.recall(lease.bp, lease.link, 2, 1));
        assert!(book.reauction_needed());
        // Still active during the notice period.
        assert!(book.active_links(t.n_links(), 2).contains(lease.link));
        // Expired after.
        let expired = book.advance_to(3);
        assert_eq!(expired, vec![lease.link]);
        assert!(!book.active_links(t.n_links(), 3).contains(lease.link));
    }

    #[test]
    fn recall_unknown_link_is_noop() {
        let (t, out) = outcome_and_topo();
        let mut book = LeaseBook::new();
        book.ingest_auction(&t, &out, 1);
        assert!(!book.recall(BpId(9), LinkId(0), 2, 1));
        assert!(!book.reauction_needed());
        drop(t);
    }

    #[test]
    fn recalled_lease_is_guarded_against_double_removal() {
        // The recall-during-transition edge: a BP recalls a link while an
        // active plan has the same link scheduled for removal. The remove
        // must be refused with a typed guard, leaving the recall to run
        // out its notice period — not double-removed.
        let (t, out) = outcome_and_topo();
        let mut book = LeaseBook::new();
        book.ingest_auction(&t, &out, 1);
        let lease = book.leases()[0].clone();
        assert!(book.recall(lease.bp, lease.link, 2, 3));
        let err = book.remove_lease(lease.link).unwrap_err();
        assert_eq!(
            err,
            LeaseOpError::RecallInFlight { link: lease.link, bp: lease.bp, effective_period: 5 }
        );
        // The lease is still dying through its recall, once: active during
        // the notice window, gone after, and still owed notice payments.
        assert!(book.active_links(t.n_links(), 4).contains(lease.link));
        assert!(!book.active_links(t.n_links(), 5).contains(lease.link));
        let live = book
            .leases()
            .iter()
            .filter(|l| l.link == lease.link && !matches!(l.state, LeaseState::Expired))
            .count();
        assert_eq!(live, 1, "exactly one live lease survives the refused removal");
    }

    #[test]
    fn remove_and_add_lease_round_trip_with_typed_guards() {
        let (t, out) = outcome_and_topo();
        let mut book = LeaseBook::new();
        book.ingest_auction(&t, &out, 1);
        let lease = book.leases()[0].clone();

        let removed = book.remove_lease(lease.link).unwrap();
        assert_eq!(removed.link, lease.link);
        assert!(!book.active_links(t.n_links(), 1).contains(lease.link));
        // Second removal: nothing active left on the link.
        assert_eq!(
            book.remove_lease(lease.link).unwrap_err(),
            LeaseOpError::NoActiveLease { link: lease.link }
        );

        // Re-book it (a rollback restoring the link), then refuse a dup.
        let fresh = Lease::priced_from(&t, &out, lease.link, 2).unwrap();
        assert!((fresh.monthly_payment - lease.monthly_payment).abs() < 1e-9);
        book.add_lease(fresh.clone()).unwrap();
        assert!(book.active_links(t.n_links(), 2).contains(lease.link));
        assert_eq!(
            book.add_lease(fresh).unwrap_err(),
            LeaseOpError::AlreadyLeased { link: lease.link }
        );
    }

    #[test]
    fn priced_from_allocates_each_bps_payment_exactly() {
        let (t, out) = outcome_and_topo();
        // Summing per-link priced leases over the selected set reproduces
        // each settlement's payment (and matches ingest_auction).
        let mut by_bp: std::collections::BTreeMap<BpId, f64> = Default::default();
        for link in out.selected.iter() {
            if let Some(lease) = Lease::priced_from(&t, &out, link, 0) {
                *by_bp.entry(lease.bp).or_insert(0.0) += lease.monthly_payment;
            }
        }
        for s in out.settlements.iter().filter(|s| s.n_selected_links > 0) {
            let got = by_bp.get(&s.bp).copied().unwrap_or(0.0);
            assert!((got - s.payment).abs() < 1e-9, "{}: {got} vs {}", s.bp, s.payment);
        }
        // Unselected links price to None.
        let unselected =
            (0..t.n_links()).map(LinkId::from_index).find(|&l| !out.selected.contains(l));
        if let Some(l) = unselected {
            assert!(Lease::priced_from(&t, &out, l, 0).is_none());
        }
    }

    #[test]
    fn mark_reauctioned_clears_flag() {
        let (t, out) = outcome_and_topo();
        let mut book = LeaseBook::new();
        book.ingest_auction(&t, &out, 1);
        let lease = book.leases()[0].clone();
        book.recall(lease.bp, lease.link, 2, 0);
        assert!(book.reauction_needed());
        book.mark_reauctioned();
        assert!(!book.reauction_needed());
        drop(t);
    }
}

//! Lease lifecycle: auction outcomes become leases; BPs can recall links.
//!
//! §3.3's provisioning story: large CSPs "can overbuy, and then lease out
//! (on a temporary basis) their excess bandwidth but can quickly recall it
//! from the POC when needed". A recall deactivates the lease after its
//! notice period and flags that a re-auction is due.

use poc_auction::AuctionOutcome;
use poc_flow::LinkSet;
use poc_topology::{BpId, LinkId, LinkOwner, PocTopology};
use serde::{Deserialize, Serialize};

/// State of one lease.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LeaseState {
    Active,
    /// Recall requested; the lease dies at the end of `effective_period`.
    Recalled {
        effective_period: u32,
    },
    Expired,
}

/// One leased link.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Lease {
    pub link: LinkId,
    pub bp: BpId,
    /// This link's share of the BP's monthly VCG payment (allocated
    /// pro-rata by declared unit price — the VCG payment itself is per-BP).
    pub monthly_payment: f64,
    pub started_period: u32,
    pub state: LeaseState,
}

/// The book of active and historical leases.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LeaseBook {
    leases: Vec<Lease>,
    /// Set when a recall or expiry means the installed fabric no longer
    /// matches the lease book.
    reauction_needed: bool,
}

impl LeaseBook {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingest an auction outcome: one lease per selected BP link, with the
    /// BP's payment allocated pro-rata by the topology's declared cost
    /// (virtual links are contract-priced and not leased through the book).
    pub fn ingest_auction(&mut self, topo: &PocTopology, outcome: &AuctionOutcome, period: u32) {
        for settlement in &outcome.settlements {
            if settlement.n_selected_links == 0 {
                continue;
            }
            let links: Vec<LinkId> = outcome
                .selected
                .iter()
                .filter(|&l| topo.link(l).owner == LinkOwner::Bp(settlement.bp))
                .collect();
            let weight_total: f64 = links.iter().map(|&l| topo.link(l).true_monthly_cost).sum();
            for &l in &links {
                let w = topo.link(l).true_monthly_cost;
                let share = if weight_total > 0.0 { w / weight_total } else { 0.0 };
                self.leases.push(Lease {
                    link: l,
                    bp: settlement.bp,
                    monthly_payment: settlement.payment * share,
                    started_period: period,
                    state: LeaseState::Active,
                });
            }
        }
    }

    /// All leases (including recalled/expired).
    pub fn leases(&self) -> &[Lease] {
        &self.leases
    }

    /// Links with an active lease as of `period`.
    pub fn active_links(&self, universe: usize, period: u32) -> LinkSet {
        LinkSet::from_links(
            universe,
            self.leases.iter().filter(|l| l.is_active_in(period)).map(|l| l.link),
        )
    }

    /// Monthly payment owed to each BP for leases active in `period`.
    pub fn payments_due(&self, period: u32) -> Vec<(BpId, f64)> {
        let mut by_bp: std::collections::BTreeMap<BpId, f64> = Default::default();
        for l in &self.leases {
            if l.is_active_in(period) {
                *by_bp.entry(l.bp).or_insert(0.0) += l.monthly_payment;
            }
        }
        by_bp.into_iter().collect()
    }

    /// BP recalls one of its leased links with `notice_periods` of notice.
    /// Returns whether a matching active lease was found.
    pub fn recall(&mut self, bp: BpId, link: LinkId, now: u32, notice_periods: u32) -> bool {
        let mut found = false;
        for l in &mut self.leases {
            if l.bp == bp && l.link == link && matches!(l.state, LeaseState::Active) {
                l.state = LeaseState::Recalled { effective_period: now + notice_periods };
                found = true;
            }
        }
        if found {
            self.reauction_needed = true;
        }
        found
    }

    /// Advance the book to `period`, expiring recalled leases that reached
    /// their effective period. Returns the links that just expired.
    pub fn advance_to(&mut self, period: u32) -> Vec<LinkId> {
        let mut expired = Vec::new();
        for l in &mut self.leases {
            if let LeaseState::Recalled { effective_period } = l.state {
                if period >= effective_period {
                    l.state = LeaseState::Expired;
                    expired.push(l.link);
                }
            }
        }
        expired
    }

    /// Whether the installed fabric is stale (a recall/expiry happened
    /// since the last auction ingest).
    pub fn reauction_needed(&self) -> bool {
        self.reauction_needed
    }

    /// Clear the re-auction flag (called after a fresh auction round).
    pub fn mark_reauctioned(&mut self) {
        self.reauction_needed = false;
    }
}

impl Lease {
    fn is_active_in(&self, period: u32) -> bool {
        match self.state {
            LeaseState::Active => true,
            LeaseState::Recalled { effective_period } => period < effective_period,
            LeaseState::Expired => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_auction::{run_auction, ExhaustiveSelector, Market};
    use poc_flow::Constraint;
    use poc_topology::builder::two_bp_square;
    use poc_topology::RouterId;
    use poc_traffic::TrafficMatrix;

    fn outcome_and_topo() -> (poc_topology::PocTopology, AuctionOutcome) {
        let t = two_bp_square();
        let m = Market::truthful(&t, 3.0);
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(RouterId(0), RouterId(1), 10.0);
        tm.set(RouterId(1), RouterId(2), 5.0);
        let out = run_auction(&m, &tm, Constraint::BaseLoad, &ExhaustiveSelector).unwrap();
        (t, out)
    }

    #[test]
    fn ingest_creates_leases_matching_selection() {
        let (t, out) = outcome_and_topo();
        let mut book = LeaseBook::new();
        book.ingest_auction(&t, &out, 1);
        assert_eq!(book.leases().len(), out.selected.len());
        let active = book.active_links(t.n_links(), 1);
        assert_eq!(active, out.selected);
    }

    #[test]
    fn payments_allocate_full_vcg_amount() {
        let (t, out) = outcome_and_topo();
        let mut book = LeaseBook::new();
        book.ingest_auction(&t, &out, 1);
        let due: f64 = book.payments_due(1).iter().map(|(_, p)| p).sum();
        let paid: f64 = out.settlements.iter().map(|s| s.payment).sum();
        assert!((due - paid).abs() < 1e-9, "due {due} vs VCG {paid}");
    }

    #[test]
    fn recall_lifecycle() {
        let (t, out) = outcome_and_topo();
        let mut book = LeaseBook::new();
        book.ingest_auction(&t, &out, 1);
        let lease = book.leases()[0].clone();
        assert!(!book.reauction_needed());
        assert!(book.recall(lease.bp, lease.link, 2, 1));
        assert!(book.reauction_needed());
        // Still active during the notice period.
        assert!(book.active_links(t.n_links(), 2).contains(lease.link));
        // Expired after.
        let expired = book.advance_to(3);
        assert_eq!(expired, vec![lease.link]);
        assert!(!book.active_links(t.n_links(), 3).contains(lease.link));
    }

    #[test]
    fn recall_unknown_link_is_noop() {
        let (t, out) = outcome_and_topo();
        let mut book = LeaseBook::new();
        book.ingest_auction(&t, &out, 1);
        assert!(!book.recall(BpId(9), LinkId(0), 2, 1));
        assert!(!book.reauction_needed());
        drop(t);
    }

    #[test]
    fn mark_reauctioned_clears_flag() {
        let (t, out) = outcome_and_topo();
        let mut book = LeaseBook::new();
        book.ingest_auction(&t, &out, 1);
        let lease = book.leases()[0].clone();
        book.recall(lease.bp, lease.link, 2, 0);
        assert!(book.reauction_needed());
        book.mark_reauctioned();
        assert!(!book.reauction_needed());
        drop(t);
    }
}

//! E-F2 — Figure 2: payment-over-bid margins of the five largest BPs
//! under Constraints #1/#2/#3, plus timing of one full VCG round.
//!
//! `POC_PAPER_SCALE=1 cargo bench -p poc-bench --bench fig2_pob` prints the
//! full-scale figure (several minutes); the default prints the same series
//! on the laptop-scale instance.

use criterion::{criterion_group, Criterion};
use poc_auction::{run_auction, GreedySelector, Market};
use poc_bench::{instance, paper_scale};
use poc_flow::Constraint;
use std::time::Duration;

fn print_figure2() {
    let (topo, tm) = instance();
    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(16);
    let stride = if paper_scale() { 32 } else { 4 };
    println!(
        "\n=== E-F2 / Figure 2: PoB margins, five largest BPs ({} scale) ===",
        if paper_scale() { "paper" } else { "small" }
    );
    let mut rows: Vec<(String, Vec<(String, f64)>)> = Vec::new();
    for c in Constraint::paper_suite(stride) {
        match run_auction(&market, &tm, c, &selector) {
            Ok(out) => {
                println!(
                    "constraint {}: |SL| = {}, C(SL) = ${:.0}",
                    c.label(),
                    out.selected.len(),
                    out.total_cost
                );
                rows.push((
                    c.label().into(),
                    out.top_pob(5).into_iter().map(|(bp, p)| (bp.to_string(), p)).collect(),
                ));
            }
            Err(e) => println!("constraint {} infeasible: {e}", c.label()),
        }
    }
    print!("{:<10}", "BP");
    for (label, _) in &rows {
        print!("{label:>12}");
    }
    println!();
    if let Some((_, first)) = rows.first() {
        for (i, (bp_label, _)) in first.iter().enumerate() {
            print!("{bp_label:<10}");
            for (_, series) in &rows {
                match series.get(i) {
                    Some((_, pob)) => print!("{pob:>12.4}"),
                    None => print!("{:>12}", "-"),
                }
            }
            println!();
        }
    }
}

fn bench_auction_round(c: &mut Criterion) {
    let (topo, tm) = {
        // Timing always on the small instance — a paper-scale VCG round is
        // minutes long and belongs in the printed experiment, not the
        // statistical timer.
        let mut topo = poc_topology::ZooGenerator::new(poc_topology::ZooConfig::small()).generate();
        poc_topology::zoo::attach_external_isps(
            &mut topo,
            &poc_topology::zoo::ExternalIspConfig::default(),
            &poc_topology::CostModel::default(),
        );
        let tm = poc_traffic::TrafficScenario {
            total_gbps: 2500.0,
            ..poc_traffic::TrafficScenario::paper_default()
        }
        .generate(&topo);
        (topo, tm)
    };
    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(8);
    c.bench_function("vcg_round_baseload_small", |b| {
        b.iter(|| run_auction(&market, &tm, Constraint::BaseLoad, &selector).expect("feasible"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(20));
    targets = bench_auction_round
}

fn main() {
    print_figure2();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

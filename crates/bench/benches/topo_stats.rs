//! E-T1 — §3.3 instance statistics: 20 BPs, ≈4674 logical links, per-BP
//! shares ≈2%–12%. Always printed at paper scale (generation is cheap);
//! the timer measures instance generation.

use criterion::{criterion_group, Criterion};
use poc_topology::{TopologyStats, ZooConfig, ZooGenerator};
use std::time::Duration;

fn print_stats() {
    let topo = ZooGenerator::new(ZooConfig::paper()).generate();
    let stats = TopologyStats::compute(&topo);
    println!("\n=== E-T1 / §3.3 instance statistics (paper: 20 BPs, 4674 links, 2%–12%) ===");
    println!("{}", stats.render_table());
    let (min, max) = stats.share_range();
    println!(
        "links = {} (paper 4674), shares {:.1}%–{:.1}% (paper ~2%–12%)",
        stats.n_bp_links,
        min * 100.0,
        max * 100.0
    );
}

fn bench_generation(c: &mut Criterion) {
    c.bench_function("zoo_generate_paper_scale", |b| {
        b.iter(|| ZooGenerator::new(ZooConfig::paper()).generate())
    });
    c.bench_function("zoo_generate_small", |b| {
        b.iter(|| ZooGenerator::new(ZooConfig::small()).generate())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(10));
    targets = bench_generation
}

fn main() {
    print_stats();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

//! E-C1 — §3.3 collusion analysis: coordinated link withholding raises
//! payments, bounded per-BP by the virtual-link fallback.

use criterion::{criterion_group, Criterion};
use poc_auction::collusion::withholding_experiment;
use poc_auction::{GreedySelector, Market};
use poc_flow::Constraint;
use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
use poc_topology::{CostModel, PocTopology, ZooConfig, ZooGenerator};
use poc_traffic::{TrafficMatrix, TrafficScenario};
use std::time::Duration;

/// Withholding needs the paper's assumption that the external fallback
/// keeps every pivot feasible: attach the ISPs at every router.
fn instance() -> (PocTopology, TrafficMatrix) {
    let mut topo = ZooGenerator::new(ZooConfig::small()).generate();
    let isp = ExternalIspConfig { attach_points: 64, ..Default::default() };
    attach_external_isps(&mut topo, &isp, &CostModel::default());
    let tm =
        TrafficScenario { total_gbps: 2500.0, ..TrafficScenario::paper_default() }.generate(&topo);
    (topo, tm)
}

fn print_collusion() {
    let (topo, tm) = instance();
    let mut market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(16);
    println!("\n=== E-C1 / §3.3 link-withholding collusion ===");
    match withholding_experiment(&mut market, &tm, Constraint::BaseLoad, &selector) {
        Ok(report) => {
            println!("{:<8}{:>16}{:>16}{:>12}", "BP", "payment before", "payment after", "gain");
            for d in &report.deltas {
                if d.payment_before > 0.0 || d.payment_after > 0.0 {
                    println!(
                        "{:<8}{:>16.0}{:>16.0}{:>12.0}",
                        d.bp.to_string(),
                        d.payment_before,
                        d.payment_after,
                        d.gain()
                    );
                }
            }
            println!(
                "coalition gain: ${:.0} (finite — bounded by virtual links)",
                report.total_gain()
            );
        }
        Err(e) => println!("experiment infeasible: {e}"),
    }
}

fn bench_withholding(c: &mut Criterion) {
    let (topo, tm) = instance();
    let selector = GreedySelector::with_prune_budget(8);
    c.bench_function("withholding_experiment_small", |b| {
        b.iter(|| {
            let mut market = Market::truthful(&topo, 3.0);
            withholding_experiment(&mut market, &tm, Constraint::BaseLoad, &selector)
                .expect("feasible")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(20));
    targets = bench_withholding
}

fn main() {
    print_collusion();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

//! Micro-benchmarks of the substrate kernels everything else is built on:
//! LinkSet algebra, single-source shortest path, full-matrix routing,
//! forwarding-table installation, and max-min fair allocation.

use criterion::{criterion_group, BenchmarkId, Criterion};
use poc_bench::{instance, paper_instance};
use poc_core::fabric::ForwardingState;
use poc_flow::{route_tm, CapacityGraph, LinkSet};
use poc_netsim::fairness::{max_min_rates, AllocFlow};
use poc_topology::RouterId;
use std::time::Duration;

fn bench_linkset(c: &mut Criterion) {
    let (topo, _) = paper_instance();
    let n = topo.n_links();
    let full = LinkSet::full(n);
    let odd =
        LinkSet::from_links(n, (0..n).filter(|i| i % 2 == 1).map(poc_topology::LinkId::from_index));
    c.bench_function("linkset_union_4700", |b| b.iter(|| full.union(&odd)));
    c.bench_function("linkset_difference_4700", |b| b.iter(|| full.difference(&odd)));
    c.bench_function("linkset_iter_count_4700", |b| b.iter(|| odd.iter().count()));
}

fn bench_shortest_path(c: &mut Criterion) {
    let (topo, _) = paper_instance();
    let all = LinkSet::full(topo.n_links());
    let g = CapacityGraph::new(&topo, &all);
    let (src, dst) = (RouterId(0), RouterId(topo.n_routers() as u32 - 1));
    c.bench_function("dijkstra_paper_scale", |b| {
        b.iter(|| {
            g.shortest_path(src, dst, |l, _| topo.link(l).distance_km, |_, _| true)
                .expect("connected")
        })
    });
}

fn bench_route_tm(c: &mut Criterion) {
    let (topo, tm) = instance();
    let all = LinkSet::full(topo.n_links());
    c.bench_function("route_tm_small", |b| {
        b.iter(|| route_tm(&topo, &all, &tm).expect("feasible"))
    });
}

fn bench_forwarding_install(c: &mut Criterion) {
    for (label, (topo, _)) in [("small", instance()), ("paper", paper_instance())] {
        let all = LinkSet::full(topo.n_links());
        c.bench_with_input(BenchmarkId::new("forwarding_install", label), &topo, |b, topo| {
            b.iter(|| ForwardingState::install(topo, &all))
        });
    }
}

fn bench_fairness(c: &mut Criterion) {
    let (topo, tm) = instance();
    let all = LinkSet::full(topo.n_links());
    let routing = route_tm(&topo, &all, &tm).expect("feasible");
    let g = CapacityGraph::new(&topo, &all);
    let flows: Vec<AllocFlow> = routing
        .flows
        .iter()
        .flat_map(|f| {
            f.paths.iter().map(|(path, gbps)| {
                let dirs = g.path_dirs(f.src, path);
                AllocFlow { hops: path.iter().copied().zip(dirs).collect(), demand_gbps: *gbps }
            })
        })
        .collect();
    c.bench_function(&format!("max_min_rates_{}_flows", flows.len()), |b| {
        b.iter(|| max_min_rates(&topo, &flows, None))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(10));
    targets = bench_linkset, bench_shortest_path, bench_route_tm, bench_forwarding_install, bench_fairness
}

fn main() {
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

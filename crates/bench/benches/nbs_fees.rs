//! E-B1 — §4.5 incumbent advantage: the Nash-bargained fee
//! t = (p − r·c)/2 falls with the churn rate r, so incumbent LMPs (low r)
//! extract more and incumbent CSPs (high churn threat) pay less.

use criterion::{criterion_group, Criterion};
use poc_econ::fees::nbs_fee;
use poc_econ::Economy;
use std::time::Duration;

fn print_fee_sweep() {
    println!("\n=== E-B1 / §4.5 NBS fee vs churn rate (p = 20, c = 50) ===");
    println!("{:>6}{:>10}", "r", "fee");
    for i in 0..=10 {
        let r = i as f64 / 25.0; // 0 .. 0.4
        println!("{r:>6.2}{:>10.2}", nbs_fee(20.0, r, 50.0));
    }
    println!("\nper-(CSP, LMP) fees in the example economy:");
    let economy = Economy::example();
    for (s, csp) in economy.csps.iter().enumerate() {
        println!("{}:", csp.name);
        for (lmp, r, fee) in economy.per_lmp_nbs_fees(s) {
            println!("  {lmp:<24} r = {r:>5.2}  t = {fee:>7.2}");
        }
    }
}

fn bench_fees(c: &mut Criterion) {
    let economy = Economy::example();
    c.bench_function("per_lmp_nbs_fees_all_csps", |b| {
        b.iter(|| (0..economy.csps.len()).map(|s| economy.per_lmp_nbs_fees(s)).collect::<Vec<_>>())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(Duration::from_secs(10));
    targets = bench_fees
}

fn main() {
    print_fee_sweep();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

//! E-PP — Pivot parallelism: sequential vs. threaded Clarke-pivot phase.
//!
//! A VCG round runs one full re-selection per participating BP (the
//! `C(SL_−α)` term of the pivot rule). Those re-selections are independent,
//! so [`PivotMode::Parallel`] fans them out over `std::thread::scope` while
//! sharing one memoized feasibility cache. This bench times the identical
//! round under both modes and prints the speedup plus cache hit rates —
//! the settlements themselves are asserted bit-identical by the
//! `vcg_pivot_modes_agree` property test.
//!
//! `POC_PAPER_SCALE=1 cargo bench -p poc-bench --bench pivot_parallel`
//! prints the comparison on the full §3.3 instance (slow); the default
//! prints the same comparison on the laptop-scale instance and then runs
//! the statistical timer on it.

use criterion::{criterion_group, BenchmarkId, Criterion};
use poc_auction::{run_auction_with, GreedySelector, Market, PivotMode};
use poc_bench::{instance, paper_scale};
use poc_flow::Constraint;
use std::time::{Duration, Instant};

fn print_mode_comparison() {
    let (topo, tm) = instance();
    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(if paper_scale() { 16 } else { 8 });
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "\n=== E-PP / pivot parallelism: sequential vs parallel Clarke pivots ({} scale, {} core{}) ===",
        if paper_scale() { "paper" } else { "small" },
        cores,
        if cores == 1 { "" } else { "s" }
    );
    if cores == 1 {
        println!("(single-core host: parallel mode can only match sequential, not beat it)");
    }
    println!("{:<12}{:>14}{:>14}{:>10}", "constraint", "sequential", "parallel", "speedup");
    let stride = if paper_scale() { 32 } else { 4 };
    for c in [Constraint::BaseLoad, Constraint::SinglePathFailure { sample_every: stride }] {
        let t0 = Instant::now();
        let seq = run_auction_with(&market, &tm, c, &selector, PivotMode::Sequential);
        let t_seq = t0.elapsed();
        let t1 = Instant::now();
        let par = run_auction_with(&market, &tm, c, &selector, PivotMode::Parallel);
        let t_par = t1.elapsed();
        match (seq, par) {
            (Ok(s), Ok(p)) => {
                assert_eq!(
                    s.total_cost.to_bits(),
                    p.total_cost.to_bits(),
                    "modes must agree on C(SL)"
                );
                println!(
                    "{:<12}{:>12.1}ms{:>12.1}ms{:>9.2}x   (|SL| = {}, {} settlements)",
                    c.label(),
                    t_seq.as_secs_f64() * 1e3,
                    t_par.as_secs_f64() * 1e3,
                    t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9),
                    s.selected.len(),
                    s.settlements.len(),
                );
            }
            (Err(e), _) | (_, Err(e)) => println!("{:<12}infeasible: {e}", c.label()),
        }
    }
}

fn bench_pivot_modes(c: &mut Criterion) {
    // Timing always on the small instance — paper-scale rounds are minutes
    // long and belong in the printed experiment above, not the timer.
    let mut topo = poc_topology::ZooGenerator::new(poc_topology::ZooConfig::small()).generate();
    poc_topology::zoo::attach_external_isps(
        &mut topo,
        &poc_topology::zoo::ExternalIspConfig::default(),
        &poc_topology::CostModel::default(),
    );
    let tm = poc_traffic::TrafficScenario {
        total_gbps: 2500.0,
        ..poc_traffic::TrafficScenario::paper_default()
    }
    .generate(&topo);
    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(8);
    for (label, mode) in [("sequential", PivotMode::Sequential), ("parallel", PivotMode::Parallel)]
    {
        c.bench_with_input(BenchmarkId::new("vcg_round_baseload", label), &mode, |b, &mode| {
            b.iter(|| {
                run_auction_with(&market, &tm, Constraint::BaseLoad, &selector, mode)
                    .expect("feasible")
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(20));
    targets = bench_pivot_modes
}

fn main() {
    print_mode_comparison();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

//! E-PP — Pivot parallelism: sequential vs. threaded Clarke-pivot phase.
//!
//! A VCG round runs one full re-selection per participating BP (the
//! `C(SL_−α)` term of the pivot rule). Those re-selections are independent,
//! so [`PivotMode::Parallel`] fans them out over `std::thread::scope` while
//! sharing one memoized feasibility cache. This bench times the identical
//! round under both modes and prints the speedup plus cache hit rates —
//! the settlements themselves are asserted bit-identical by the
//! `vcg_pivot_modes_agree` property test.
//!
//! `POC_PAPER_SCALE=1 cargo bench -p poc-bench --bench pivot_parallel`
//! prints the comparison on the full §3.3 instance (slow); the default
//! prints the same comparison on the laptop-scale instance and then runs
//! the statistical timer on it.

use criterion::{criterion_group, BenchmarkId, Criterion};
use poc_auction::{run_auction_with, GreedySelector, Market, PivotMode};
use poc_bench::report::{ModeSample, PivotModesReport, ScaleInfo};
use poc_bench::{instance, paper_scale};
use poc_flow::Constraint;
use std::time::{Duration, Instant};

fn print_mode_comparison() {
    let (topo, tm) = instance();
    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(if paper_scale() { 16 } else { 8 });
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "\n=== E-PP / pivot parallelism: sequential vs parallel Clarke pivots ({} scale, {} core{}) ===",
        if paper_scale() { "paper" } else { "small" },
        cores,
        if cores == 1 { "" } else { "s" }
    );
    if cores == 1 {
        println!("(single-core host: parallel mode can only match sequential, not beat it)");
    }
    println!("{:<12}{:>14}{:>14}{:>10}", "constraint", "sequential", "parallel", "speedup");
    let stride = if paper_scale() { 32 } else { 4 };
    let mut mode_samples = Vec::new();
    for c in [Constraint::BaseLoad, Constraint::SinglePathFailure { sample_every: stride }] {
        let t0 = Instant::now();
        let seq = run_auction_with(&market, &tm, c, &selector, PivotMode::Sequential);
        let t_seq = t0.elapsed();
        let t1 = Instant::now();
        let par = run_auction_with(&market, &tm, c, &selector, PivotMode::Parallel);
        let t_par = t1.elapsed();
        match (seq, par) {
            (Ok(s), Ok(p)) => {
                assert_eq!(
                    s.total_cost.to_bits(),
                    p.total_cost.to_bits(),
                    "modes must agree on C(SL)"
                );
                println!(
                    "{:<12}{:>12.1}ms{:>12.1}ms{:>9.2}x   (|SL| = {}, {} settlements)",
                    c.label(),
                    t_seq.as_secs_f64() * 1e3,
                    t_par.as_secs_f64() * 1e3,
                    t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9),
                    s.selected.len(),
                    s.settlements.len(),
                );
                mode_samples.push(ModeSample {
                    constraint: c.label().to_string(),
                    sequential_ms: t_seq.as_secs_f64() * 1e3,
                    parallel_ms: t_par.as_secs_f64() * 1e3,
                    speedup: t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-9),
                });
            }
            (Err(e), _) | (_, Err(e)) => println!("{:<12}infeasible: {e}", c.label()),
        }
    }
    // Emit the machine-readable artifact next to the printed table.
    let report = PivotModesReport {
        bench: "pivot_modes".into(),
        scale: ScaleInfo {
            preset: if paper_scale() { "paper" } else { "small" }.into(),
            n_routers: topo.n_routers(),
            n_links: topo.n_links(),
            n_bps: topo.bps.len(),
        },
        cores,
        samples: mode_samples,
    };
    let out =
        std::env::var("POC_BENCH_MODES_OUT").unwrap_or_else(|_| "BENCH_pivot_modes.json".into());
    match report.write(std::path::Path::new(&out)) {
        Ok(()) => println!("mode comparison artifact -> {out}"),
        Err(e) => eprintln!("could not write {out}: {e}"),
    }
}

/// E-OBS — instrumentation overhead on the parallel pivot path.
///
/// The ISSUE acceptance bar: recording must not add a lock to the pivot
/// hot path, and a fully-enabled registry must stay within a few percent
/// of the no-op configuration. Both configurations run the identical
/// parallel round; only the shared `enabled` flag differs (no-op mode
/// still executes every instrumentation call site, so this measures the
/// real disabled-path cost too: one relaxed atomic load + branch each).
fn print_metrics_overhead() {
    let (topo, tm) = small_bench_instance();
    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(8);
    let reg = poc_obs::global();
    let run = || {
        run_auction_with(&market, &tm, Constraint::BaseLoad, &selector, PivotMode::Parallel)
            .expect("feasible")
    };
    let time = |reps: u32| {
        // Warm-up outside the timed window (thread pool spin-up, cache
        // registration, page faults).
        run();
        let t0 = Instant::now();
        for _ in 0..reps {
            run();
        }
        t0.elapsed().as_secs_f64() / reps as f64
    };
    const REPS: u32 = 10;
    reg.set_enabled(false);
    let t_noop = time(REPS);
    reg.set_enabled(true);
    let t_enabled = time(REPS);
    let overhead = (t_enabled / t_noop - 1.0) * 100.0;
    println!("\n=== E-OBS / poc-obs overhead on the parallel VCG round ===");
    println!("{:<18}{:>12.2}ms", "no-op registry", t_noop * 1e3);
    println!("{:<18}{:>12.2}ms", "metrics enabled", t_enabled * 1e3);
    println!("overhead: {overhead:+.2}%  (acceptance bar: under ~5%)");

    // Same round again, now with the flight recorder in play: a trace
    // context is installed (as the server does per request), and only the
    // recorder's enabled flag differs between the two configurations.
    // Disabled tracing should be free — begin_span bails on one relaxed
    // load before touching the thread-local — and enabled tracing must
    // stay under the same ~5% bar (enforced in release mode by the
    // `trace_overhead` integration test).
    let recorder = poc_obs::trace::recorder();
    let _trace = poc_obs::trace::start_trace(poc_obs::trace::new_trace_id());
    recorder.set_enabled(false);
    let t_untraced = time(REPS);
    recorder.set_enabled(true);
    let t_traced = time(REPS);
    recorder.set_enabled(false);
    let overhead_off = (t_untraced / t_enabled - 1.0) * 100.0;
    let overhead_on = (t_traced / t_untraced - 1.0) * 100.0;
    println!("\n=== E-OBS / flight-recorder overhead on the parallel VCG round ===");
    println!(
        "{:<18}{:>12.2}ms  ({overhead_off:+.2}% vs metrics alone)",
        "tracing off",
        t_untraced * 1e3
    );
    println!("{:<18}{:>12.2}ms", "tracing on", t_traced * 1e3);
    println!("overhead: {overhead_on:+.2}%  (acceptance bar: under ~5% enabled, ~0% disabled)");
}

fn small_bench_instance() -> (poc_topology::PocTopology, poc_traffic::TrafficMatrix) {
    let mut topo = poc_topology::ZooGenerator::new(poc_topology::ZooConfig::small()).generate();
    poc_topology::zoo::attach_external_isps(
        &mut topo,
        &poc_topology::zoo::ExternalIspConfig::default(),
        &poc_topology::CostModel::default(),
    );
    let tm = poc_traffic::TrafficScenario {
        total_gbps: 2500.0,
        ..poc_traffic::TrafficScenario::paper_default()
    }
    .generate(&topo);
    (topo, tm)
}

fn bench_pivot_modes(c: &mut Criterion) {
    // Timing always on the small instance — paper-scale rounds are minutes
    // long and belong in the printed experiment above, not the timer.
    let (topo, tm) = small_bench_instance();
    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(8);
    for (label, mode) in [("sequential", PivotMode::Sequential), ("parallel", PivotMode::Parallel)]
    {
        c.bench_with_input(BenchmarkId::new("vcg_round_baseload", label), &mode, |b, &mode| {
            b.iter(|| {
                run_auction_with(&market, &tm, Constraint::BaseLoad, &selector, mode)
                    .expect("feasible")
            })
        });
    }
    // Same parallel round, with the observability registry live vs no-op.
    for (label, enabled) in [("metrics_noop", false), ("metrics_enabled", true)] {
        poc_obs::global().set_enabled(enabled);
        c.bench_with_input(BenchmarkId::new("vcg_round_parallel", label), &enabled, |b, _| {
            b.iter(|| {
                run_auction_with(&market, &tm, Constraint::BaseLoad, &selector, PivotMode::Parallel)
                    .expect("feasible")
            })
        });
    }
    poc_obs::global().set_enabled(true);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(20));
    targets = bench_pivot_modes
}

fn main() {
    print_mode_comparison();
    print_metrics_overhead();
    // CI smoke mode wants the printed experiments and the artifact, not
    // the multi-minute statistical timer.
    if std::env::var_os("POC_BENCH_QUICK").is_some() {
        return;
    }
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

//! E-R1 — failure drills across constraint levels: sets selected under
//! stricter constraints survive fibre cuts with higher availability.

use criterion::{criterion_group, Criterion};
use poc_auction::{GreedySelector, Market, Selector};
use poc_bench::instance;
use poc_flow::{Constraint, FeasibilityOracle};
use poc_netsim::drill::{run_drill, DrillSpec};
use std::time::Duration;

fn print_drills() {
    let (topo, tm) = instance();
    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(16);
    let spec = DrillSpec { n_failures: 6, outage_hours: 1.0, gap_hours: 0.5 };
    println!("\n=== E-R1 / failure drill by constraint ===");
    println!(
        "{:<14}{:>8}{:>14}{:>16}{:>12}",
        "constraint", "|SL|", "cost $/mo", "availability", "reroutes"
    );
    for c in Constraint::paper_suite(4) {
        let oracle = FeasibilityOracle::new(&topo, &tm, c);
        let Some(sel) = selector.select(&market, &oracle, market.offered()) else {
            println!("{:<14} infeasible", c.label());
            continue;
        };
        match run_drill(&topo, &sel.links, &tm, &spec) {
            Ok(drill) => println!(
                "{:<14}{:>8}{:>14.0}{:>15.2}%{:>12}",
                c.label(),
                sel.links.len(),
                sel.cost,
                drill.availability * 100.0,
                drill.total_reroutes
            ),
            Err(e) => println!("{:<14} unroutable: {e}", c.label()),
        }
    }
}

fn bench_drill(c: &mut Criterion) {
    let (topo, tm) = instance();
    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(8);
    let oracle = FeasibilityOracle::new(&topo, &tm, Constraint::BaseLoad);
    let sel = selector.select(&market, &oracle, market.offered()).expect("feasible");
    let spec = DrillSpec { n_failures: 4, outage_hours: 1.0, gap_hours: 0.5 };
    c.bench_function("failure_drill_baseload_small", |b| {
        b.iter(|| run_drill(&topo, &sel.links, &tm, &spec).expect("routable"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(20));
    targets = bench_drill
}

fn main() {
    print_drills();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

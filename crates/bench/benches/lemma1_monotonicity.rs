//! E-L1 — Lemma 1: the CSP's best-response price p*(t) is strictly
//! increasing in the termination fee for every demand family meeting the
//! lemma's hypotheses (and, as the paper's sufficiency caveat predicts,
//! even for linear demand which violates them).

use criterion::{criterion_group, Criterion};
use poc_econ::demand::{Exponential, Linear, Logistic, ParetoTail};
use poc_econ::fees::monopoly_price;
use poc_econ::lemma::{is_strictly_increasing, price_response_curve};
use poc_econ::Demand;
use std::time::Duration;

fn print_lemma() {
    println!("\n=== E-L1 / Lemma 1: p*(t) sweeps ===");
    let families: Vec<(&str, Box<dyn Demand>)> = vec![
        ("exponential λ=0.1", Box::new(Exponential::new(0.1))),
        ("pareto σ=5 k=2", Box::new(ParetoTail::new(5.0, 2.0))),
        ("logistic μ=15 s=4", Box::new(Logistic::new(15.0, 4.0))),
        ("linear b=40 (violates hypotheses)", Box::new(Linear::new(40.0))),
    ];
    print!("{:<36}", "family \\ t");
    for t in [0.0, 4.0, 8.0, 12.0, 16.0, 20.0] {
        print!("{t:>8.1}");
    }
    println!("{:>14}", "monotone?");
    for (name, d) in &families {
        let curve = price_response_curve(d.as_ref(), 20.0, 6);
        print!("{name:<36}");
        for (_, p) in &curve {
            print!("{p:>8.2}");
        }
        println!("{:>14}", is_strictly_increasing(&curve, 1e-6));
    }
}

fn bench_pricing(c: &mut Criterion) {
    let d = Exponential::new(0.1);
    c.bench_function("monopoly_price_exponential", |b| {
        b.iter(|| monopoly_price(&d, criterion::black_box(3.0)))
    });
    let p = ParetoTail::new(5.0, 2.0);
    c.bench_function("monopoly_price_pareto", |b| {
        b.iter(|| monopoly_price(&p, criterion::black_box(3.0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(Duration::from_secs(10));
    targets = bench_pricing
}

fn main() {
    print_lemma();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

//! E-EQ — §4.5 third model: the renegotiation fixed point
//! t* = (p*(t*) − ⟨rc⟩)/2 exists, is unique in practice, and the iterated
//! best-response converges for every demand family.

use criterion::{criterion_group, Criterion};
use poc_econ::demand::{Exponential, Logistic, ParetoTail};
use poc_econ::fees::bargaining_equilibrium;
use poc_econ::Demand;
use std::time::Duration;

fn print_equilibria() {
    println!("\n=== E-EQ / §4.5 renegotiation fixed points ===");
    let families: Vec<(&str, Box<dyn Demand>)> = vec![
        ("exponential λ=0.1", Box::new(Exponential::new(0.1))),
        ("pareto σ=5 k=2.5", Box::new(ParetoTail::new(5.0, 2.5))),
        ("logistic μ=15 s=4", Box::new(Logistic::new(15.0, 4.0))),
    ];
    println!(
        "{:<22}{:>8}{:>10}{:>10}{:>8}{:>12}",
        "family", "⟨rc⟩", "t*", "p*(t*)", "iters", "converged"
    );
    for (name, d) in &families {
        for avg_rc in [0.0, 3.0, 9.0] {
            let out = bargaining_equilibrium(d.as_ref(), avg_rc);
            println!(
                "{name:<22}{avg_rc:>8.1}{:>10.3}{:>10.3}{:>8}{:>12}",
                out.fee, out.price, out.iterations, out.converged
            );
        }
    }
}

fn bench_equilibrium(c: &mut Criterion) {
    let d = Exponential::new(0.1);
    c.bench_function("bargaining_equilibrium_exponential", |b| {
        b.iter(|| bargaining_equilibrium(&d, criterion::black_box(3.0)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(10));
    targets = bench_equilibrium
}

fn main() {
    print_equilibria();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

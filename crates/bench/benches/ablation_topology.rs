//! Ablation — BP internal-network style: how carrier wiring (meshy MST,
//! ring, hub-and-spoke) shapes the offered-link market and the auction's
//! clearing cost and margins.

use criterion::{criterion_group, Criterion};
use poc_auction::{run_auction, GreedySelector, Market};
use poc_flow::Constraint;
use poc_topology::zoo::{attach_external_isps, ExternalIspConfig, InternalStyle};
use poc_topology::{CostModel, TopologyStats, ZooConfig, ZooGenerator};
use poc_traffic::TrafficScenario;
use std::time::Duration;

const STYLES: [(&str, InternalStyle); 3] = [
    ("mst+shortcuts", InternalStyle::MstPlusShortcuts),
    ("ring", InternalStyle::Ring),
    ("hub-and-spoke", InternalStyle::HubAndSpoke),
];

fn print_ablation() {
    println!("\n=== Ablation: BP internal-network style ===");
    println!(
        "{:<16}{:>8}{:>10}{:>8}{:>14}{:>12}",
        "style", "links", "routers", "|SL|", "C(SL) $/mo", "PoB spread"
    );
    for (label, style) in STYLES {
        let cfg = ZooConfig { internal_style: style, ..ZooConfig::small() };
        let mut topo = ZooGenerator::new(cfg).generate();
        attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
        let stats = TopologyStats::compute(&topo);
        let tm = TrafficScenario { total_gbps: 2000.0, ..TrafficScenario::paper_default() }
            .generate(&topo);
        let market = Market::truthful(&topo, 3.0);
        match run_auction(
            &market,
            &tm,
            Constraint::BaseLoad,
            &GreedySelector::with_prune_budget(12),
        ) {
            Ok(out) => {
                let pobs: Vec<f64> = out.settlements.iter().filter_map(|s| s.pob()).collect();
                let spread = pobs.iter().copied().fold(f64::MIN, f64::max)
                    - pobs.iter().copied().fold(f64::MAX, f64::min);
                println!(
                    "{label:<16}{:>8}{:>10}{:>8}{:>14.0}{:>12.3}",
                    stats.n_bp_links,
                    stats.n_routers,
                    out.selected.len(),
                    out.total_cost,
                    spread
                );
            }
            Err(e) => println!("{label:<16} infeasible: {e}"),
        }
    }
    println!(
        "sparser internal wiring (ring/hub) offers fewer, longer logical links — \
         thinner competition, different clearing costs and margin spreads."
    );
}

fn bench_styles(c: &mut Criterion) {
    for (label, style) in STYLES {
        let cfg = ZooConfig { internal_style: style, ..ZooConfig::small() };
        c.bench_function(&format!("zoo_generate_{label}"), |b| {
            b.iter(|| ZooGenerator::new(cfg.clone()).generate())
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(10));
    targets = bench_styles
}

fn main() {
    print_ablation();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

//! Ablation (DESIGN.md §4) — selection optimizer: how much does the
//! reverse-prune pass buy over pure greedy routing-driven selection, and
//! how close is the heuristic to the exact optimum on an instance small
//! enough to enumerate?

use criterion::{criterion_group, Criterion};
use poc_auction::{ExhaustiveSelector, ForwardGreedySelector, GreedySelector, Market, Selector};
use poc_bench::instance;
use poc_flow::{Constraint, FeasibilityOracle};
use poc_topology::builder::two_bp_square;
use poc_topology::RouterId;
use poc_traffic::TrafficMatrix;
use std::time::Duration;

fn print_ablation() {
    let (topo, tm) = instance();
    let market = Market::truthful(&topo, 3.0);
    let oracle = FeasibilityOracle::new(&topo, &tm, Constraint::BaseLoad);
    println!("\n=== Ablation: selection algorithm & prune budget vs cost ===");
    println!("{:<28}{:>8}{:>14}", "selector", "|SL|", "C(SL) $/mo");
    for budget in [0, 8, 32, 128] {
        let sel = GreedySelector::with_prune_budget(budget)
            .select(&market, &oracle, market.offered())
            .expect("feasible");
        println!(
            "{:<28}{:>8}{:>14.0}",
            format!("routing-greedy (prune {budget})"),
            sel.links.len(),
            sel.cost
        );
    }
    for budget in [0, 32] {
        let sel = ForwardGreedySelector { prune_budget: budget }
            .select(&market, &oracle, market.offered())
            .expect("feasible");
        println!(
            "{:<28}{:>8}{:>14.0}",
            format!("forward-greedy (prune {budget})"),
            sel.links.len(),
            sel.cost
        );
    }

    // Exact-vs-heuristic on the enumerable fixture.
    let fixture = two_bp_square();
    let fm = Market::truthful(&fixture, 3.0);
    let mut ftm = TrafficMatrix::zero(fixture.n_routers());
    ftm.set(RouterId(0), RouterId(1), 10.0);
    ftm.set(RouterId(2), RouterId(3), 5.0);
    let foracle = FeasibilityOracle::new(&fixture, &ftm, Constraint::BaseLoad);
    let exact = ExhaustiveSelector.select(&fm, &foracle, fm.offered()).expect("feasible");
    let greedy = GreedySelector::default().select(&fm, &foracle, fm.offered()).expect("feasible");
    println!(
        "\nfixture optimality gap: exact ${:.0} vs greedy ${:.0} ({:+.1}%)",
        exact.cost,
        greedy.cost,
        100.0 * (greedy.cost - exact.cost) / exact.cost
    );
}

fn bench_selectors(c: &mut Criterion) {
    let (topo, tm) = instance();
    let market = Market::truthful(&topo, 3.0);
    let oracle = FeasibilityOracle::new(&topo, &tm, Constraint::BaseLoad);
    for budget in [0usize, 16] {
        c.bench_function(&format!("greedy_select_prune_{budget}"), |b| {
            let sel = GreedySelector::with_prune_budget(budget);
            b.iter(|| sel.select(&market, &oracle, market.offered()).expect("feasible"))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(20));
    targets = bench_selectors
}

fn main() {
    print_ablation();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

//! Ablation (DESIGN.md §4) — feasibility oracle: the greedy
//! multi-commodity router is conservative; Dinic max-flow upper-bounds
//! what any routing could place per pair. This measures the gap as load
//! scales, locating where the heuristic starts rejecting instances an LP
//! might still pack.

use criterion::{criterion_group, Criterion};
use poc_bench::instance;
use poc_flow::maxflow::max_flow_between;
use poc_flow::{route_tm, LinkSet};
use poc_traffic::TrafficMatrix;
use std::time::Duration;

fn print_gap() {
    let (topo, base_tm) = instance();
    let all = LinkSet::full(topo.n_links());
    println!("\n=== Ablation: greedy router vs load scale ===");
    println!("{:<12}{:>14}{:>12}{:>14}", "load scale", "total Gbps", "routable?", "max util");
    for scale in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let mut tm = base_tm.clone();
        tm.scale(scale);
        match route_tm(&topo, &all, &tm) {
            Ok(routing) => println!(
                "{scale:<12}{:>14.0}{:>12}{:>14.3}",
                tm.total(),
                "yes",
                routing.max_utilization(&topo)
            ),
            Err(_) => println!("{scale:<12}{:>14.0}{:>12}{:>14}", tm.total(), "no", "-"),
        }
    }

    // Per-pair sanity: routed single-pair demand can never exceed max-flow.
    println!("\nper-pair max-flow bound spot checks:");
    let pairs = [(0u32, 1u32), (0, topo.n_routers() as u32 - 1)];
    for (a, b) in pairs {
        let (ra, rb) = (poc_topology::RouterId(a), poc_topology::RouterId(b));
        let mf = max_flow_between(&topo, &all, ra, rb).expect("routers in range");
        let mut tm = TrafficMatrix::zero(topo.n_routers());
        tm.set(ra, rb, mf * 0.95);
        let routable = route_tm(&topo, &all, &tm).is_ok();
        println!("  {ra}→{rb}: maxflow {mf:.0} Gbps, 95% of it greedy-routable: {routable}");
    }
}

fn bench_oracles(c: &mut Criterion) {
    let (topo, tm) = instance();
    let all = LinkSet::full(topo.n_links());
    c.bench_function("route_tm_full_offer", |b| {
        b.iter(|| route_tm(&topo, &all, &tm).expect("feasible"))
    });
    let (ra, rb) = (poc_topology::RouterId(0), poc_topology::RouterId(topo.n_routers() as u32 - 1));
    c.bench_function("dinic_max_flow_one_pair", |b| {
        b.iter(|| max_flow_between(&topo, &all, ra, rb))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(15));
    targets = bench_oracles
}

fn main() {
    print_gap();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

//! E-W1 — §4.3/4.4 social welfare by regime: NN ≥ UR-bargaining ≥
//! UR-unilateral, with consumer surplus highest under NN.

use criterion::{criterion_group, Criterion};
use poc_econ::Economy;
use std::time::Duration;

fn print_regimes() {
    let economy = Economy::example();
    let reports = economy.compare_regimes();
    println!("\n=== E-W1 / §4 welfare by regime ===");
    println!("{:<16}{:>10}{:>12}{:>10}", "regime", "welfare", "consumer CS", "fees");
    for r in &reports {
        println!(
            "{:<16}{:>10.2}{:>12.2}{:>10.2}",
            r.regime.label(),
            r.total_welfare(),
            r.total_consumer_surplus(),
            r.total_fees()
        );
    }
    let [nn, uni, nbs] = &reports;
    println!(
        "W_NN ≥ W_NBS ≥ W_unilateral: {}",
        nn.total_welfare() >= nbs.total_welfare() - 1e-9
            && nbs.total_welfare() >= uni.total_welfare() - 1e-9
    );
    println!("\nper-CSP prices (fees raise prices, Lemma 1 at work):");
    println!("{:<26}{:>8}{:>10}{:>10}", "CSP", "NN", "UR-uni", "UR-NBS");
    for i in 0..economy.csps.len() {
        println!(
            "{:<26}{:>8.2}{:>10.2}{:>10.2}",
            economy.csps[i].name, nn.per_csp[i].price, uni.per_csp[i].price, nbs.per_csp[i].price
        );
    }
}

fn bench_regimes(c: &mut Criterion) {
    let economy = Economy::example();
    c.bench_function("compare_regimes_example_economy", |b| b.iter(|| economy.compare_regimes()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(10));
    targets = bench_regimes
}

fn main() {
    print_regimes();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

//! Ablation (DESIGN.md §4) — bid language: additive vs bulk-discounted
//! (subadditive) pricing. Discounts lower the clearing cost and shift the
//! payment-over-bid distribution.

use criterion::{criterion_group, Criterion};
use poc_auction::{run_auction, BpBid, GreedySelector, Market};
use poc_bench::instance;
use poc_flow::{Constraint, LinkSet};
use std::time::Duration;

fn discounted_market(topo: &poc_topology::PocTopology) -> Market<'_> {
    let bids = topo
        .bps
        .iter()
        .map(|bp| {
            BpBid::truthful_discounted(
                bp.id,
                topo.links_of_bp(bp.id).into_iter().map(|l| (l, topo.link(l).true_monthly_cost)),
                // 5% off from 10 links, 12% off from 40.
                vec![(10, 0.95), (40, 0.88)],
            )
        })
        .collect();
    Market::new(topo, bids, 3.0).expect("discounted truthful bids are valid")
}

fn print_ablation() {
    let (topo, tm) = instance();
    let selector = GreedySelector::with_prune_budget(16);
    println!("\n=== Ablation: bid language (additive vs volume discount) ===");
    println!("{:<22}{:>8}{:>14}{:>14}{:>12}", "pricing", "|SL|", "C(SL)", "payments", "mean PoB");
    for (label, market) in
        [("additive", Market::truthful(&topo, 3.0)), ("volume discount", discounted_market(&topo))]
    {
        match run_auction(&market, &tm, Constraint::BaseLoad, &selector) {
            Ok(out) => {
                let payments: f64 = out.settlements.iter().map(|s| s.payment).sum();
                let pobs: Vec<f64> = out.settlements.iter().filter_map(|s| s.pob()).collect();
                let mean_pob = if pobs.is_empty() {
                    0.0
                } else {
                    pobs.iter().sum::<f64>() / pobs.len() as f64
                };
                println!(
                    "{label:<22}{:>8}{:>14.0}{:>14.0}{:>12.4}",
                    out.selected.len(),
                    out.total_cost,
                    payments,
                    mean_pob
                );
            }
            Err(e) => println!("{label:<22} infeasible: {e}"),
        }
    }
    // Spot-check subadditivity: pricing a BP's whole offer under discounts
    // is cheaper than additively.
    let add = Market::truthful(&topo, 3.0);
    let disc = discounted_market(&topo);
    let bp = topo.bps[0].id;
    let all_of_bp = LinkSet::from_links(topo.n_links(), topo.links_of_bp(bp));
    println!(
        "\nBP {} full-offer price: additive ${:.0} vs discounted ${:.0}",
        bp,
        add.bp_cost(bp, &all_of_bp),
        disc.bp_cost(bp, &all_of_bp)
    );
}

fn bench_cost_eval(c: &mut Criterion) {
    let (topo, _tm) = instance();
    let add = Market::truthful(&topo, 3.0);
    let disc = discounted_market(&topo);
    let all = add.offered().clone();
    c.bench_function("total_cost_additive", |b| b.iter(|| add.total_cost(&all)));
    c.bench_function("total_cost_discounted", |b| b.iter(|| disc.total_cost(&all)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(Duration::from_secs(10));
    targets = bench_cost_eval
}

fn main() {
    print_ablation();
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
}

//! Enforces the flight-recorder overhead bar from DESIGN.md §6: with the
//! recorder enabled, a traced parallel VCG round must stay within ~5% of
//! the identical round with the recorder disabled.
//!
//! Methodology: the two configurations are *interleaved* round-by-round
//! and each side keeps its minimum, so a one-off scheduler hiccup or
//! frequency step hits both sides alike instead of biasing whichever
//! configuration happened to run second. The assertion allows the 5%
//! relative bar plus a small absolute floor so sub-millisecond jitter on
//! a fast host can't fail a run that is within measurement noise.
//!
//! Meaningful only under optimization; the test is a no-op in debug
//! builds (`cargo test --release -p poc-bench` runs it for real, and CI
//! does exactly that).

use poc_auction::{run_auction_with, GreedySelector, Market, PivotMode};
use poc_flow::Constraint;
use std::time::Instant;

#[test]
fn traced_parallel_round_within_five_percent() {
    if cfg!(debug_assertions) {
        eprintln!("skipping overhead gate in debug build (timings unrepresentative)");
        return;
    }

    let (topo, tm) = poc_bench::instance();
    let market = Market::truthful(&topo, 3.0);
    let selector = GreedySelector::with_prune_budget(8);
    let run = || {
        run_auction_with(&market, &tm, Constraint::BaseLoad, &selector, PivotMode::Parallel)
            .expect("bench instance is feasible")
    };

    // Metrics stay enabled on both sides — this test isolates the
    // recorder's marginal cost, not the whole observability layer's.
    poc_obs::global().set_enabled(true);
    let recorder = poc_obs::trace::recorder();
    let _trace = poc_obs::trace::start_trace(poc_obs::trace::new_trace_id());

    // Warm-up: thread-pool spin-up, handle registration, page faults.
    run();

    const ROUNDS: usize = 8;
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..ROUNDS {
        recorder.set_enabled(false);
        let t = Instant::now();
        run();
        best_off = best_off.min(t.elapsed().as_secs_f64());

        recorder.set_enabled(true);
        let t = Instant::now();
        run();
        best_on = best_on.min(t.elapsed().as_secs_f64());
    }
    recorder.set_enabled(false);

    let overhead = (best_on / best_off - 1.0) * 100.0;
    eprintln!(
        "traced {:.2}ms vs untraced {:.2}ms: {overhead:+.2}% overhead",
        best_on * 1e3,
        best_off * 1e3
    );
    // 5% relative bar + 2ms absolute jitter floor.
    assert!(
        best_on <= best_off * 1.05 + 2e-3,
        "flight recorder adds {overhead:.2}% to the parallel pivot path \
         (bar: 5%): traced {:.3}ms vs untraced {:.3}ms",
        best_on * 1e3,
        best_off * 1e3
    );
}

//! Shared fixtures for the benchmark harness.
//!
//! Every bench target regenerates one experiment from DESIGN.md's index:
//! it prints the table/series the paper reports (on a laptop-scale
//! instance by default; set `POC_PAPER_SCALE=1` for the full §3.3
//! instance) and then times the computational kernel behind it.

use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
use poc_topology::{CostModel, PocTopology, ZooConfig, ZooGenerator};
use poc_traffic::{TrafficMatrix, TrafficScenario};

pub mod report;

/// Whether to run experiment prints at the paper's full scale.
pub fn paper_scale() -> bool {
    std::env::var_os("POC_PAPER_SCALE").is_some()
}

/// The benchmark instance: small by default, paper-scale on request.
pub fn instance() -> (PocTopology, TrafficMatrix) {
    let (zoo, total) =
        if paper_scale() { (ZooConfig::paper(), 24000.0) } else { (ZooConfig::small(), 2500.0) };
    let mut topo = ZooGenerator::new(zoo).generate();
    attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
    let tm =
        TrafficScenario { total_gbps: total, ..TrafficScenario::paper_default() }.generate(&topo);
    (topo, tm)
}

/// Paper-scale instance regardless of the env toggle (cheap consumers
/// like topology statistics always use the real thing).
pub fn paper_instance() -> (PocTopology, TrafficMatrix) {
    let mut topo = ZooGenerator::new(ZooConfig::paper()).generate();
    attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
    let tm = TrafficScenario::paper_default().generate(&topo);
    (topo, tm)
}

/// The ROADMAP's stress instance: 100+ BPs offering 10k+ links
/// ([`ZooConfig::scale`]) plus the default external ISPs, with the
/// paper's aggregate demand. This is where warm-started pivots are
/// supposed to pay off — `bench_pivot` measures them here.
pub fn scale_instance() -> (PocTopology, TrafficMatrix) {
    let mut topo = ZooGenerator::new(ZooConfig::scale()).generate();
    attach_external_isps(&mut topo, &ExternalIspConfig::default(), &CostModel::default());
    let tm =
        TrafficScenario { total_gbps: 24000.0, ..TrafficScenario::paper_default() }.generate(&topo);
    (topo, tm)
}

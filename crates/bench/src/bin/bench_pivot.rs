//! Warm-vs-cold Clarke-pivot re-selections, emitting `BENCH_pivot.json`.
//!
//! The auction's dominant cost is the per-BP pivot runs (`SL_−α`). This
//! bin measures exactly that kernel: one initial selection over the full
//! offer, then a sample of BP withdrawals re-selected twice — cold (a
//! from-scratch [`FeasibilityOracle`] sharing the round's verdict cache,
//! i.e. [`poc_auction::PivotOracle::Cold`]) and warm (a [`WarmOracle`]
//! seeded with the accepted routing, i.e. the default
//! [`poc_auction::PivotOracle::Warm`]). Results land in a
//! schema-validated JSON artifact so CI and the ROADMAP's perf trajectory
//! can diff runs.
//!
//! Knobs (env):
//! - `POC_BENCH_QUICK=1` — CI smoke mode: small instance, 2 pivots.
//! - `POC_BENCH_PRESET=small|paper|scale` — instance preset
//!   (default `scale`: the 100-BP / 10k-link stress instance).
//! - `POC_BENCH_PIVOTS=N` — number of BP withdrawals to sample.
//! - `POC_BENCH_PRUNE=N` — greedy selector prune budget.
//! - `POC_BENCH_OUT=path` — artifact path (default `BENCH_pivot.json`).
//!
//! Usage: `bench_pivot` to measure, `bench_pivot --validate <path>` to
//! re-read an emitted artifact and check its schema (exit 1 on failure).
//! `--validate` accepts any artifact this workspace emits: the
//! warm-vs-cold report (`"bench": "pivot"`), the mode-comparison
//! report from the `pivot_parallel` bench (`"bench": "pivot_modes"`),
//! the control-plane throughput report from `bench_ctrl`
//! (`"bench": "ctrl"`), or the packet-engine throughput report from
//! `bench_dataplane` (`"bench": "dataplane"`).

use poc_auction::{GreedySelector, Market, Selector};
use poc_bench::report::{
    CtrlBenchReport, DataplaneBenchReport, PivotBenchReport, PivotModesReport, PivotSample,
    ScaleInfo,
};
use poc_bench::{instance, paper_instance, scale_instance};
use poc_flow::{Constraint, FeasibilityCache, FeasibilityOracle, WarmOracle};
use std::path::Path;
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn counter_delta(
    after: &poc_obs::MetricsSnapshot,
    before: &poc_obs::MetricsSnapshot,
    name: &str,
) -> u64 {
    after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--validate") {
        let path = args.get(2).map(String::as_str).unwrap_or("BENCH_pivot.json");
        // Dispatch on the discriminator: each read fails cleanly on the
        // other schema (missing fields), so try both before giving up.
        let as_pivot =
            PivotBenchReport::read(Path::new(path)).and_then(|r| r.validate().map(|()| r));
        match as_pivot {
            Ok(r) => {
                println!(
                    "{path}: valid pivot artifact ({} samples on {} preset, speedup {:.2}x)",
                    r.samples.len(),
                    r.scale.preset,
                    r.speedup
                );
                return;
            }
            Err(pivot_err) => {
                let as_modes =
                    PivotModesReport::read(Path::new(path)).and_then(|r| r.validate().map(|()| r));
                match as_modes {
                    Ok(r) => {
                        println!(
                            "{path}: valid pivot_modes artifact ({} constraints on {} preset, \
                             {} cores)",
                            r.samples.len(),
                            r.scale.preset,
                            r.cores
                        );
                        return;
                    }
                    Err(modes_err) => {
                        let as_ctrl = CtrlBenchReport::read(Path::new(path))
                            .and_then(|r| r.validate().map(|()| r));
                        match as_ctrl {
                            Ok(r) => {
                                println!(
                                    "{path}: valid ctrl artifact ({} mode, {:.2}x over baseline)",
                                    r.mode, r.speedup
                                );
                                return;
                            }
                            Err(ctrl_err) => {
                                let as_dp = DataplaneBenchReport::read(Path::new(path))
                                    .and_then(|r| r.validate().map(|()| r));
                                match as_dp {
                                    Ok(r) => {
                                        println!(
                                            "{path}: valid dataplane artifact ({} mode, \
                                             {:.1}M events/sec)",
                                            r.mode,
                                            r.events_per_sec / 1e6
                                        );
                                        return;
                                    }
                                    Err(dp_err) => {
                                        eprintln!("{path}: INVALID artifact");
                                        eprintln!("  as pivot: {pivot_err}");
                                        eprintln!("  as pivot_modes: {modes_err}");
                                        eprintln!("  as ctrl: {ctrl_err}");
                                        eprintln!("  as dataplane: {dp_err}");
                                        std::process::exit(1);
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    let quick = std::env::var_os("POC_BENCH_QUICK").is_some();
    let preset = std::env::var("POC_BENCH_PRESET")
        .unwrap_or_else(|_| if quick { "small" } else { "scale" }.into());
    let n_pivots = env_usize("POC_BENCH_PIVOTS", if quick { 2 } else { 4 });
    let prune_budget = env_usize("POC_BENCH_PRUNE", if quick { 16 } else { 8 });

    let (topo, tm) = match preset.as_str() {
        "small" => instance(),
        "paper" => paper_instance(),
        "scale" => scale_instance(),
        other => {
            eprintln!("unknown POC_BENCH_PRESET {other:?} (want small|paper|scale)");
            std::process::exit(2);
        }
    };
    let scale = ScaleInfo {
        preset: preset.clone(),
        n_routers: topo.n_routers(),
        n_links: topo.n_links(),
        n_bps: topo.bps.len(),
    };
    println!(
        "instance: preset={} routers={} links={} bps={}",
        scale.preset, scale.n_routers, scale.n_links, scale.n_bps
    );

    let market = Market::truthful(&topo, 3.0);
    let constraint = Constraint::BaseLoad;
    let selector = GreedySelector::with_prune_budget(prune_budget);

    // The round's initial selection, with the shared verdict cache every
    // cold pivot will also use (mirrors PivotOracle::Cold in vcg).
    let cache = FeasibilityCache::new();
    let oracle = FeasibilityOracle::with_cache(&topo, &tm, constraint, &cache)
        .expect("fresh cache has no binding");
    let t0 = Instant::now();
    let sl = selector
        .select(&market, &oracle, market.offered())
        .expect("bench instance must be feasible over the full offer");
    println!(
        "initial selection: {} links, cost {:.0}, {:.1}s",
        sl.links.len(),
        sl.cost,
        t0.elapsed().as_secs_f64()
    );

    // Warm pivots start from the accepted routing, exactly as the auction
    // seeds them.
    let seed = oracle.route(&sl.links).expect("selector accepted SL, so SL re-routes");

    // Sample the first N participating BPs (ascending id) that actually
    // have links in SL — the ones whose withdrawal forces a real pivot.
    let sampled: Vec<_> = market
        .participants()
        .into_iter()
        .filter(|&bp| {
            let owned = market.links_of(bp).expect("participant owns links");
            !sl.links.intersection(owned).is_empty()
        })
        .take(n_pivots)
        .collect();
    if sampled.is_empty() {
        eprintln!("no participating BP has links in SL; nothing to pivot");
        std::process::exit(2);
    }

    let mut samples = Vec::new();
    let (mut total_cold_ms, mut total_warm_ms) = (0.0f64, 0.0f64);
    let (mut cache_hits, mut cache_misses) = (0u64, 0u64);
    for bp in sampled {
        let without = market.offered_without(bp);

        let before = poc_obs::global().snapshot();
        let t = Instant::now();
        let cold = selector.select(&market, &oracle, &without);
        let cold_ms = t.elapsed().as_secs_f64() * 1e3;
        let mid = poc_obs::global().snapshot();
        cache_hits += counter_delta(&mid, &before, "flow.cache.hit");
        cache_misses += counter_delta(&mid, &before, "flow.cache.miss");

        let warm_oracle = WarmOracle::new(&topo, &tm, constraint);
        warm_oracle.seed(seed.clone());
        let t = Instant::now();
        let warm = selector.select(&market, &warm_oracle, &without);
        let warm_ms = t.elapsed().as_secs_f64() * 1e3;
        let after = poc_obs::global().snapshot();

        let (cold_cost, warm_cost) = (
            cold.as_ref().map_or(f64::NAN, |s| s.cost),
            warm.as_ref().map_or(f64::NAN, |s| s.cost),
        );
        let sample = PivotSample {
            bp: bp.0,
            cold_ms,
            warm_ms,
            speedup: cold_ms / warm_ms,
            reused_flows: counter_delta(&after, &mid, "flow.warm.reused_flows"),
            rerouted_flows: counter_delta(&after, &mid, "flow.warm.rerouted_flows"),
            fallbacks: counter_delta(&after, &mid, "flow.warm.fallbacks"),
        };
        println!(
            "pivot -{bp}: cold {cold_ms:.0}ms (cost {cold_cost:.0}) vs warm {warm_ms:.0}ms \
             (cost {warm_cost:.0}) — {:.2}x, reused {} rerouted {} fallbacks {}",
            sample.speedup, sample.reused_flows, sample.rerouted_flows, sample.fallbacks
        );
        total_cold_ms += cold_ms;
        total_warm_ms += warm_ms;
        samples.push(sample);
    }

    let probes = cache_hits + cache_misses;
    let report = PivotBenchReport {
        bench: "pivot".into(),
        scale,
        constraint: "#1".into(),
        pivot_mode: "sequential".into(),
        samples,
        total_cold_ms,
        total_warm_ms,
        speedup: total_cold_ms / total_warm_ms,
        cold_cache_hit_rate: if probes == 0 { 0.0 } else { cache_hits as f64 / probes as f64 },
    };
    report.validate().expect("freshly measured report must satisfy its own schema");

    let out = std::env::var("POC_BENCH_OUT").unwrap_or_else(|_| "BENCH_pivot.json".into());
    report.write(Path::new(&out)).expect("write artifact");
    println!(
        "total: cold {:.0}ms vs warm {:.0}ms — {:.2}x warm speedup, cold cache hit rate {:.2} \
         -> {out}",
        report.total_cold_ms, report.total_warm_ms, report.speedup, report.cold_cache_hit_rate
    );
}

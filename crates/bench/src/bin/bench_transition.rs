//! Safe-migration planning and execution cost, emitting
//! `BENCH_transition.json`.
//!
//! Each sample picks a target by re-running the auction under scaled
//! ("headroom") demand, plans a per-step-verified walk from the live
//! selection, and executes it through the netsim transition drill —
//! which independently re-verifies every applied intermediate state and
//! counts violations. The artifact's validation doubles as the safety
//! gate: a sample with any rejected intermediate is an invalid artifact,
//! so CI fails if the executor ever applies an unsafe set. The drill
//! sample additionally cuts and recalls target links mid-walk, so the
//! replan path is measured, not just the quiet one.
//!
//! Knobs (env):
//! - `POC_BENCH_QUICK=1` — CI smoke mode: small instance, fewer samples.
//! - `POC_BENCH_PRESET=small|paper|scale` — instance preset (default
//!   `small`, which CI's quick smoke uses; the committed artifact is
//!   measured at `scale`; `paper` exits early — its zoo has no
//!   acceptable link set, see `auction/examples/smoke_paper_scale.rs`).
//! - `POC_BENCH_OUT=path` — artifact path (default `BENCH_transition.json`).
//!
//! Usage: `bench_transition` to measure, `bench_transition --validate
//! <path>` to re-read an emitted artifact and check its schema (exit 1 on
//! failure).

use poc_auction::{run_auction, GreedySelector, Market};
use poc_bench::report::{ScaleInfo, TransitionBenchReport, TransitionSample};
use poc_bench::{instance, paper_instance, scale_instance};
use poc_flow::{Constraint, LinkSet};
use poc_netsim::{run_transition_drill, TransitionDrillSpec};
use poc_topology::PocTopology;
use poc_traffic::TrafficMatrix;
use poc_transition::{plan_transition, PlanConfig};
use std::path::Path;
use std::time::Instant;

/// The auction's selection under `tm` scaled by `headroom`, or `None`
/// when no acceptable set exists at that demand (the caller skips the
/// headroom and says so — a silently absent sample would read as
/// coverage).
fn selection_at(
    topo: &PocTopology,
    tm: &TrafficMatrix,
    constraint: Constraint,
    headroom: f64,
) -> Option<LinkSet> {
    let mut scaled = tm.clone();
    scaled.scale(headroom);
    let market = Market::truthful(topo, 3.0);
    let selector = GreedySelector::with_prune_budget(16);
    match run_auction(&market, &scaled, constraint, &selector) {
        Ok(out) => Some(out.selected),
        Err(e) => {
            eprintln!("skipping headroom x{headroom}: auction infeasible ({e})");
            None
        }
    }
}

/// The fixed measurement context: one instance, one constraint.
struct Bench<'a> {
    topo: &'a PocTopology,
    tm: &'a TrafficMatrix,
    constraint: Constraint,
}

impl Bench<'_> {
    /// Plan (timed alone), then run the full drill (timed end to end).
    fn sample(
        &self,
        label: &str,
        headroom: f64,
        from: &LinkSet,
        to: &LinkSet,
        spec: &TransitionDrillSpec,
    ) -> Option<TransitionSample> {
        let (topo, tm, constraint) = (self.topo, self.tm, self.constraint);
        let cfg = PlanConfig::default();
        let start = Instant::now();
        let plan = match plan_transition(topo, tm, constraint, from, to, &cfg) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("skipping {label}: no plan ({e:?})");
                return None;
            }
        };
        let plan_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let rep = match run_transition_drill(topo, tm, constraint, from, to, spec) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("skipping {label}: drill failed ({e})");
                return None;
            }
        };
        let run_ms = start.elapsed().as_secs_f64() * 1e3;

        let s = TransitionSample {
            label: label.into(),
            headroom,
            n_from: from.len(),
            n_to: to.len(),
            plan_steps: plan.steps.len(),
            plan_probes: plan.probes as u64,
            plan_ms,
            run_ms,
            steps_applied: rep.steps_applied,
            replans: rep.replans,
            rollbacks: rep.rollbacks,
            outcome: format!("{:?}", rep.outcome)
                .chars()
                .flat_map(|c| {
                    // CamelCase -> snake_case to match the wire summary.
                    if c.is_uppercase() {
                        vec!['_', c.to_ascii_lowercase()]
                    } else {
                        vec![c]
                    }
                })
                .skip(1)
                .collect(),
            unsafe_intermediates: rep.unsafe_intermediates as u64,
        };
        println!(
            "{label}: {} -> {} links, plan {} steps ({} probes, {:.1}ms), \
             ran {} steps / {} replans in {:.1}ms -> {}",
            s.n_from,
            s.n_to,
            s.plan_steps,
            s.plan_probes,
            s.plan_ms,
            s.steps_applied,
            s.replans,
            s.run_ms,
            s.outcome
        );
        Some(s)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--validate") {
        let path = args.get(2).map(String::as_str).unwrap_or("BENCH_transition.json");
        match TransitionBenchReport::read(Path::new(path)).and_then(|r| r.validate().map(|()| r)) {
            Ok(r) => {
                println!(
                    "{path}: valid transition artifact ({} mode, {} samples, \
                     plan {:.1}ms / run {:.1}ms total, all intermediates safe)",
                    r.mode,
                    r.samples.len(),
                    r.total_plan_ms,
                    r.total_run_ms
                );
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID artifact: {e}");
                std::process::exit(1);
            }
        }
    }

    let quick = std::env::var_os("POC_BENCH_QUICK").is_some();
    let preset = std::env::var("POC_BENCH_PRESET").unwrap_or_else(|_| "small".into());
    let (topo, tm) = match preset.as_str() {
        "small" => instance(),
        "paper" => paper_instance(),
        "scale" => scale_instance(),
        other => {
            eprintln!("unknown POC_BENCH_PRESET {other:?} (want small|paper|scale)");
            std::process::exit(2);
        }
    };
    let constraint = Constraint::BaseLoad;
    let scale = ScaleInfo {
        preset: preset.clone(),
        n_routers: topo.n_routers(),
        n_links: topo.n_links(),
        n_bps: topo.bps.len(),
    };
    println!(
        "instance: preset={} routers={} links={} bps={} constraint={}",
        scale.preset,
        scale.n_routers,
        scale.n_links,
        scale.n_bps,
        constraint.label()
    );

    let Some(live) = selection_at(&topo, &tm, constraint, 1.0) else {
        // The paper-preset zoo has an empty acceptable set at every
        // constraint (see `auction/examples/smoke_paper_scale.rs`) —
        // there is nothing to migrate between. `small` and `scale` are
        // the auctionable points.
        eprintln!("preset {preset:?} has no live selection: nothing to migrate");
        std::process::exit(2);
    };
    let headrooms: &[f64] = if quick { &[1.5] } else { &[1.5, 2.0, 3.0] };
    let quiet = TransitionDrillSpec { n_cuts: 0, n_recalls: 0, at_poll: 0 };
    // Faults land at the second round boundary (after the adds round, an
    // adds-first plan's midpoint), so the sample times the mid-flight
    // replan path rather than an instant unwind.
    let faulty = TransitionDrillSpec { n_cuts: 1, n_recalls: 1, at_poll: 1 };

    let bench = Bench { topo: &topo, tm: &tm, constraint };
    let mut samples = Vec::new();
    for &h in headrooms {
        let Some(target) = selection_at(&topo, &tm, constraint, h) else {
            continue;
        };
        samples.extend(bench.sample(&format!("expand x{h}"), h, &live, &target, &quiet));
        samples.extend(bench.sample(
            &format!("drill x{h} cut=1 recall=1"),
            h,
            &live,
            &target,
            &faulty,
        ));
        // And back down: contraction interleaves removes with the oracle
        // holding the floor up.
        samples.extend(bench.sample(&format!("contract x{h}"), h, &target, &live, &quiet));
    }

    let report = TransitionBenchReport {
        bench: "transition".into(),
        mode: if quick { "quick" } else { "full" }.into(),
        scale,
        constraint: constraint.label().into(),
        total_plan_ms: samples.iter().map(|s| s.plan_ms).sum(),
        total_run_ms: samples.iter().map(|s| s.run_ms).sum(),
        samples,
    };
    report.validate().expect("fresh report validates");

    let out = std::env::var("POC_BENCH_OUT").unwrap_or_else(|_| "BENCH_transition.json".into());
    report.write(Path::new(&out)).expect("write artifact");
    println!(
        "headline: {} samples, plan {:.1}ms / run {:.1}ms total, zero unsafe intermediates -> {out}",
        report.samples.len(),
        report.total_plan_ms,
        report.total_run_ms
    );
}

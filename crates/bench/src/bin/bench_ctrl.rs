//! Sustained durable throughput of the control plane, emitting
//! `BENCH_ctrl.json`.
//!
//! The bin boots a live [`PocServer`] with durability on (write-ahead
//! journal, `FsyncPolicy::Always`) and drives it end to end over TCP
//! with a fleet of concurrent clients reporting usage — the mutation the
//! control plane serves at the highest rate. Two phases:
//!
//! * **sharded** — the PR's pipeline: usage state sharded by entity,
//!   concurrent mutations journaled through the group-commit protocol
//!   (K appends coalesce behind one fsync);
//! * **baseline** — `shards = 1`: every mutation takes the single state
//!   lock and journals+fsyncs under it, which is exactly the pre-sharding
//!   serialization — one fsync per mutation, no coalescing.
//!
//! Same world, same client count, same fsync policy, same filesystem;
//! the only variable is the pipeline. The artifact reports sustained
//! acknowledged-mutation throughput with client-observed p50/p99, the
//! realized group-commit batch-size distribution, and the headline
//! `sharded / baseline` speedup.
//!
//! The sharded phase runs *first* so the process-global
//! `ctrl.journal.batch_size` histogram it reads is untouched by the
//! baseline's singleton batches. The baseline's batch quantiles are its
//! measured mean (`appends / fsyncs`, ≈ 1 by construction): a serialized
//! journal commits one mutation per fsync, so the distribution is
//! degenerate and needs no histogram.
//!
//! Throughput on a shared box is noisy — the dominant jitter is the
//! device-side cost of fsync, which drifts run to run. Each phase
//! therefore runs `POC_BENCH_TRIALS` independent repetitions (fresh
//! server, fresh state dir) and reports the **median trial by
//! `req_per_sec`**, so one lucky or unlucky disk draw cannot set the
//! headline in either direction.
//!
//! Knobs (env):
//! - `POC_BENCH_QUICK=1` — CI smoke mode: fewer clients and requests,
//!   one trial per phase.
//! - `POC_BENCH_CLIENTS=N` — concurrent client connections.
//! - `POC_BENCH_REQUESTS=N` — timed mutations per client.
//! - `POC_BENCH_TRIALS=N` — repetitions per phase (default 3 full, 1 quick).
//! - `POC_BENCH_OUT=path` — artifact path (default `BENCH_ctrl.json`).
//! - `POC_BENCH_STATE=dir` — parent for the per-phase state
//!   directories (default: the system temp dir).
//!
//! Usage: `bench_ctrl` to measure, `bench_ctrl --validate <path>` to
//! re-read an emitted artifact and check its schema (exit 1 on failure).

use poc_bench::report::{CtrlBenchReport, CtrlPhase};
use poc_core::poc::{Poc, PocConfig};
use poc_ctrlplane::server::ServerConfig;
use poc_ctrlplane::{
    AttachRole, DurabilityConfig, FsyncPolicy, PocClient, PocServer, ServerHandle,
};
use poc_topology::builder::two_bp_square;
use poc_topology::zoo::{attach_external_isps, ExternalIspConfig};
use poc_topology::{CostModel, RouterId};
use poc_traffic::TrafficMatrix;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn counter_delta(
    after: &poc_obs::MetricsSnapshot,
    before: &poc_obs::MetricsSnapshot,
    name: &str,
) -> u64 {
    after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0)
}

fn build_world() -> (poc_topology::PocTopology, TrafficMatrix) {
    let mut topo = two_bp_square();
    attach_external_isps(
        &mut topo,
        &ExternalIspConfig { n_isps: 1, attach_points: 4, ..Default::default() },
        &CostModel::default(),
    );
    let mut tm = TrafficMatrix::zero(topo.n_routers());
    tm.set(RouterId(0), RouterId(1), 10.0);
    tm.set(RouterId(1), RouterId(2), 5.0);
    (topo, tm)
}

fn start_server(state_dir: &Path, shards: usize) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let _ = std::fs::remove_dir_all(state_dir);
    let (topo, tm) = build_world();
    let poc = Poc::new(topo, PocConfig::default());
    let config = ServerConfig {
        durability: Some(DurabilityConfig {
            state_dir: state_dir.to_path_buf(),
            fsync: FsyncPolicy::Always,
            snapshot_every: 0,
        }),
        shards,
        ..ServerConfig::default()
    };
    let (server, handle) = PocServer::bind_with("127.0.0.1:0", poc, tm, config).unwrap();
    let join = std::thread::spawn(move || server.run());
    (handle, join)
}

/// Percentile of a sorted sample by nearest-rank, microseconds.
fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// Drive one phase: boot a durable server with `shards`, attach one LMP
/// per client, warm up, then measure `requests` usage reports per client
/// wall-to-wall across `clients` concurrent connections.
fn run_phase(
    label: &str,
    state_dir: &Path,
    shards: usize,
    clients: usize,
    requests: usize,
    warmup: usize,
    trial: usize,
) -> (CtrlPhase, poc_obs::MetricsSnapshot) {
    let (handle, join) = start_server(state_dir, shards);
    let addr = handle.local_addr;

    let mut setup = PocClient::connect(addr).unwrap();
    let entities: Vec<_> = (0..clients)
        .map(|i| {
            setup
                .attach(&format!("lmp-{i}"), AttachRole::Lmp { router: RouterId(i as u32 % 4) })
                .unwrap()
        })
        .collect();

    let before = poc_obs::global().snapshot();
    let t0 = Instant::now();
    let mut latencies_us: Vec<f64> = std::thread::scope(|s| {
        let workers: Vec<_> = entities
            .iter()
            .map(|&entity| {
                s.spawn(move || {
                    let mut client = PocClient::connect(addr).unwrap();
                    for _ in 0..warmup {
                        client.report_usage(entity, 0.001).unwrap();
                    }
                    let mut lat = Vec::with_capacity(requests);
                    for _ in 0..requests {
                        let t = Instant::now();
                        client.report_usage(entity, 0.001).unwrap();
                        lat.push(t.elapsed().as_secs_f64() * 1e6);
                    }
                    lat
                })
            })
            .collect();
        workers.into_iter().flat_map(|w| w.join().unwrap()).collect()
    });
    let elapsed_s = t0.elapsed().as_secs_f64();
    let after = poc_obs::global().snapshot();
    handle.shutdown();
    let _ = join.join();

    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total = (clients * requests) as u64;
    let appends = counter_delta(&after, &before, "ctrl.journal.appends");
    let fsyncs = counter_delta(&after, &before, "ctrl.journal.fsyncs");
    let phase = CtrlPhase {
        label: label.into(),
        shards,
        clients,
        requests: total,
        elapsed_s,
        req_per_sec: total as f64 / elapsed_s,
        p50_us: percentile(&latencies_us, 50.0),
        p99_us: percentile(&latencies_us, 99.0),
        busy_rejections: counter_delta(&after, &before, "ctrl.admission.rejected"),
        appends,
        fsyncs,
        group_commits: counter_delta(&after, &before, "ctrl.journal.group_commits"),
        // Placeholder quantiles; the caller fills them from the
        // batch-size histogram (sharded) or the measured mean (baseline).
        batch_p50: 1.0,
        batch_p99: 1.0,
        batch_mean: if fsyncs == 0 { 1.0 } else { appends as f64 / fsyncs as f64 },
    };
    println!(
        "{label}[{trial}]: {} req in {:.2}s — {:.0} req/s, p50 {:.0}us p99 {:.0}us, \
         {} appends / {} fsyncs (batch mean {:.2})",
        phase.requests,
        phase.elapsed_s,
        phase.req_per_sec,
        phase.p50_us,
        phase.p99_us,
        phase.appends,
        phase.fsyncs,
        phase.batch_mean
    );
    (phase, after)
}

/// Run `trials` independent repetitions of a phase and keep the median
/// trial by throughput. Returns that trial's phase record plus the
/// metrics snapshot taken after the *last* trial (the process-global
/// registry accumulates across trials, so histogram reads must happen
/// after all repetitions of the phase of interest and before any other
/// phase runs).
fn run_trials(
    label: &str,
    state_dir: &Path,
    shards: usize,
    clients: usize,
    requests: usize,
    warmup: usize,
    trials: usize,
) -> (CtrlPhase, poc_obs::MetricsSnapshot) {
    let mut runs: Vec<(CtrlPhase, poc_obs::MetricsSnapshot)> = (0..trials)
        .map(|t| run_phase(label, state_dir, shards, clients, requests, warmup, t))
        .collect();
    runs.sort_by(|a, b| a.0.req_per_sec.partial_cmp(&b.0.req_per_sec).unwrap());
    let last_snapshot = runs.last().map(|(_, s)| s.clone()).unwrap();
    let (median, _) = runs.swap_remove(runs.len() / 2);
    (median, last_snapshot)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--validate") {
        let path = args.get(2).map(String::as_str).unwrap_or("BENCH_ctrl.json");
        match CtrlBenchReport::read(Path::new(path)).and_then(|r| r.validate().map(|()| r)) {
            Ok(r) => {
                let sharded = &r.phases[0];
                println!(
                    "{path}: valid ctrl artifact ({} mode, {:.0} req/s sharded, \
                     {:.2}x over baseline, batch p50 {:.0})",
                    r.mode, sharded.req_per_sec, r.speedup, sharded.batch_p50
                );
            }
            Err(e) => {
                eprintln!("{path}: INVALID artifact\n  as ctrl: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let quick = std::env::var_os("POC_BENCH_QUICK").is_some();
    let clients = env_usize("POC_BENCH_CLIENTS", if quick { 8 } else { 96 });
    let requests = env_usize("POC_BENCH_REQUESTS", if quick { 100 } else { 300 });
    let trials = env_usize("POC_BENCH_TRIALS", if quick { 1 } else { 3 });
    let warmup = (requests / 10).max(5);
    let state_root = std::env::var("POC_BENCH_STATE")
        .map(PathBuf::from)
        .unwrap_or_else(|_| std::env::temp_dir());
    let dir =
        |phase: &str| state_root.join(format!("poc-bench-ctrl-{}-{phase}", std::process::id()));
    println!(
        "bench_ctrl: {clients} clients x {requests} requests (+{warmup} warmup) x {trials} \
         trials, durable, state under {}",
        state_root.display()
    );

    // Sharded phase first: the global batch-size histogram then holds
    // exactly this phase's group-commit batches. One shard per client:
    // a usage report waits for its group commit *holding its shard
    // lock*, so the number of shards bounds how many mutations can sit
    // in one batch — shards must scale with the expected concurrency
    // (`poc serve --shards`).
    let shards = env_usize("POC_BENCH_SHARDS", clients);
    let (mut sharded, after_sharded) =
        run_trials("sharded", &dir("sharded"), shards, clients, requests, warmup, trials);
    if let Some(h) = after_sharded.histogram("ctrl.journal.batch_size") {
        if h.count > 0 {
            sharded.batch_p50 = h.p50 as f64;
            sharded.batch_p99 = h.p99 as f64;
        }
    }

    let (mut baseline, _) =
        run_trials("baseline", &dir("baseline"), 1, clients, requests, warmup, trials);
    // Serialized commits are singleton batches; report the measured mean
    // as the (degenerate) distribution.
    baseline.batch_p50 = baseline.batch_mean.max(1.0);
    baseline.batch_p99 = baseline.batch_mean.max(1.0);
    baseline.batch_mean = baseline.batch_mean.max(1.0);

    let report = CtrlBenchReport {
        bench: "ctrl".into(),
        mode: if quick { "quick" } else { "full" }.into(),
        trials,
        speedup: sharded.req_per_sec / baseline.req_per_sec,
        phases: vec![sharded, baseline],
    };
    report.validate().expect("freshly measured report must satisfy its own schema");

    let out = std::env::var("POC_BENCH_OUT").unwrap_or_else(|_| "BENCH_ctrl.json".into());
    report.write(Path::new(&out)).expect("write artifact");
    println!(
        "sustained durable throughput: {:.0} req/s sharded vs {:.0} req/s baseline — \
         {:.2}x -> {out}",
        report.phases[0].req_per_sec, report.phases[1].req_per_sec, report.speedup
    );
    let _ = std::fs::remove_dir_all(dir("sharded"));
    let _ = std::fs::remove_dir_all(dir("baseline"));
}

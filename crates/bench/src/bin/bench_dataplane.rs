//! Packet-engine event throughput, emitting `BENCH_dataplane.json`.
//!
//! The data plane's cost is the event loop: every packet is an
//! injection, per-hop departure/pipe-exit events, and a delivery,
//! through the hybrid scheduler (link-event heap merged with per-slice
//! generated injections). This bin measures exactly that kernel — a traffic matrix
//! expanded into persistent sources on the full fabric, run to the
//! horizon — and reports events/sec and packets/sec from the median of
//! independent trials, so a single scheduler hiccup cannot set the
//! headline in either direction. Results land in a schema-validated JSON
//! artifact so CI and the ROADMAP's perf trajectory can diff runs.
//!
//! Knobs (env):
//! - `POC_BENCH_QUICK=1` — CI smoke mode: small instance, short horizon.
//! - `POC_BENCH_PRESET=small|paper|scale` — instance preset
//!   (default `paper`: the full §3.3 instance).
//! - `POC_BENCH_HORIZON_MS=N` — simulated horizon, milliseconds.
//! - `POC_BENCH_TRIALS=N` — independent trials (default 3).
//! - `POC_BENCH_OUT=path` — artifact path (default `BENCH_dataplane.json`).
//!
//! Usage: `bench_dataplane` to measure, `bench_dataplane --validate
//! <path>` to re-read an emitted artifact and check its schema (exit 1 on
//! failure).

use poc_bench::report::{DataplaneBenchReport, DataplaneTrial, ScaleInfo};
use poc_bench::{instance, paper_instance, scale_instance};
use poc_flow::LinkSet;
use poc_netsim::engine::{Engine, EngineConfig, SourceKind};
use poc_topology::PocTopology;
use poc_traffic::{TrafficMatrix, UserFlowModel};
use std::path::Path;
use std::time::Instant;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn build_engine<'t>(topo: &'t PocTopology, tm: &TrafficMatrix, horizon_ns: u64) -> Engine<'t> {
    let all = LinkSet::full(topo.n_links());
    let cfg = EngineConfig { horizon_ns, ..Default::default() };
    let mut eng = Engine::new(topo, &all, cfg).expect("valid bench config");
    // Alternate billing owners/classes by source router, the same split
    // the `poc dataplane` loop uses, so the bench exercises the owner and
    // tag accounting paths too.
    eng.add_traffic_matrix(tm, &UserFlowModel::default(), SourceKind::Persistent, |src| {
        (
            Some(poc_core::entity::EntityId(src.0 % 4)),
            if src.index().is_multiple_of(2) {
                "suspect".to_string()
            } else {
                "control".to_string()
            },
        )
    })
    .expect("full fabric routes the matrix");
    eng
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--validate") {
        let path = args.get(2).map(String::as_str).unwrap_or("BENCH_dataplane.json");
        match DataplaneBenchReport::read(Path::new(path)).and_then(|r| r.validate().map(|()| r)) {
            Ok(r) => {
                println!(
                    "{path}: valid dataplane artifact ({} mode, {:.1}M events/sec, \
                     {:.1}M packets/sec, {} user flows)",
                    r.mode,
                    r.events_per_sec / 1e6,
                    r.packets_per_sec / 1e6,
                    r.n_user_flows
                );
                return;
            }
            Err(e) => {
                eprintln!("{path}: INVALID artifact: {e}");
                std::process::exit(1);
            }
        }
    }

    let quick = std::env::var_os("POC_BENCH_QUICK").is_some();
    let preset = std::env::var("POC_BENCH_PRESET")
        .unwrap_or_else(|_| if quick { "small" } else { "paper" }.into());
    let horizon_ms = env_u64("POC_BENCH_HORIZON_MS", if quick { 5 } else { 20 });
    let horizon_ns = horizon_ms * 1_000_000;
    let n_trials = env_u64("POC_BENCH_TRIALS", 3).max(1) as usize;

    let (topo, tm) = match preset.as_str() {
        "small" => instance(),
        "paper" => paper_instance(),
        "scale" => scale_instance(),
        other => {
            eprintln!("unknown POC_BENCH_PRESET {other:?} (want small|paper|scale)");
            std::process::exit(2);
        }
    };
    let scale = ScaleInfo {
        preset: preset.clone(),
        n_routers: topo.n_routers(),
        n_links: topo.n_links(),
        n_bps: topo.bps.len(),
    };
    println!(
        "instance: preset={} routers={} links={} bps={} horizon={horizon_ms}ms",
        scale.preset, scale.n_routers, scale.n_links, scale.n_bps
    );

    // Probe run for the workload shape (every trial rebuilds identically —
    // the engine is deterministic, only wall time varies).
    let probe = build_engine(&topo, &tm, horizon_ns);
    let (n_sources, n_user_flows) = (probe.n_sources(), probe.n_user_flows());
    drop(probe);
    println!("workload: {n_sources} sources standing in for {n_user_flows} user flows");

    let mut trials: Vec<(DataplaneTrial, f64)> = Vec::with_capacity(n_trials);
    for i in 0..n_trials {
        let eng = build_engine(&topo, &tm, horizon_ns);
        let start = Instant::now();
        let report = eng.run();
        let elapsed = start.elapsed().as_secs_f64();
        let trial = DataplaneTrial {
            events: report.events,
            packets_injected: report.packets_injected,
            packets_delivered: report.packets_delivered,
            packets_dropped: report.packets_dropped,
            elapsed_s: elapsed,
            events_per_sec: report.events as f64 / elapsed,
            packets_per_sec: report.packets_injected as f64 / elapsed,
        };
        println!(
            "trial {}/{n_trials}: {} events in {:.3}s = {:.1}M events/sec",
            i + 1,
            trial.events,
            trial.elapsed_s,
            trial.events_per_sec / 1e6
        );
        trials.push((trial, report.overall_availability()));
    }

    // Median trial by event throughput sets the headline.
    trials.sort_by(|a, b| a.0.events_per_sec.total_cmp(&b.0.events_per_sec));
    let (median, availability) = trials[trials.len() / 2].clone();
    let report = DataplaneBenchReport {
        bench: "dataplane".into(),
        mode: if quick { "quick" } else { "full" }.into(),
        scale,
        horizon_ns,
        n_sources,
        n_user_flows,
        trials: trials.iter().map(|(t, _)| t.clone()).collect(),
        events_per_sec: median.events_per_sec,
        packets_per_sec: median.packets_per_sec,
        availability,
    };
    report.validate().expect("fresh report validates");

    let out = std::env::var("POC_BENCH_OUT").unwrap_or_else(|_| "BENCH_dataplane.json".into());
    report.write(Path::new(&out)).expect("write artifact");
    println!(
        "headline: {:.1}M events/sec, {:.1}M packets/sec, availability {:.4} -> {out}",
        report.events_per_sec / 1e6,
        report.packets_per_sec / 1e6,
        report.availability
    );
}

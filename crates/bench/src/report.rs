//! Machine-readable bench artifacts (`BENCH_*.json`).
//!
//! The ROADMAP asks for a perf trajectory across PRs; these types are the
//! schema of the artifacts the pivot benches emit. They round-trip through
//! serde so CI can re-read an emitted file and validate it structurally
//! (see `bench_pivot --validate`).

use serde::{Deserialize, Serialize};

/// Instance shape a report was measured on.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScaleInfo {
    /// Generator preset: "small", "paper", or "scale".
    pub preset: String,
    pub n_routers: usize,
    pub n_links: usize,
    pub n_bps: usize,
}

/// One sampled Clarke-pivot re-selection, timed cold then warm.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PivotSample {
    /// The withdrawn BP.
    pub bp: u32,
    /// Wall time of the from-scratch re-selection, milliseconds.
    pub cold_ms: f64,
    /// Wall time of the warm-started re-selection, milliseconds.
    pub warm_ms: f64,
    /// `cold_ms / warm_ms`.
    pub speedup: f64,
    /// Flows reused from the witness across the warm run's probes.
    pub reused_flows: u64,
    /// Flows re-routed incrementally across the warm run's probes.
    pub rerouted_flows: u64,
    /// Probes that fell back to a from-scratch evaluation.
    pub fallbacks: u64,
}

/// The `BENCH_pivot.json` artifact: warm-vs-cold pivot re-selections on
/// one instance.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PivotBenchReport {
    /// Artifact discriminator; always "pivot".
    pub bench: String,
    pub scale: ScaleInfo,
    /// Paper constraint label ("#1" / "#2" / "#3").
    pub constraint: String,
    /// Pivot scheduling the samples model ("sequential": each sample is
    /// one pivot re-selection run on its own).
    pub pivot_mode: String,
    pub samples: Vec<PivotSample>,
    pub total_cold_ms: f64,
    pub total_warm_ms: f64,
    /// `total_cold_ms / total_warm_ms` — the headline warm-start speedup.
    pub speedup: f64,
    /// Hit rate of the shared [`poc_flow::FeasibilityCache`] over the cold
    /// runs (warm runs keep private memos and don't touch it).
    pub cold_cache_hit_rate: f64,
}

impl PivotBenchReport {
    /// Structural validation of an emitted artifact: the checks CI runs
    /// against a freshly deserialized file.
    pub fn validate(&self) -> Result<(), String> {
        if self.bench != "pivot" {
            return Err(format!("bench discriminator must be \"pivot\", got {:?}", self.bench));
        }
        if self.samples.is_empty() {
            return Err("no pivot samples recorded".into());
        }
        if self.scale.n_links == 0 || self.scale.n_routers == 0 || self.scale.n_bps == 0 {
            return Err("scale info has zero-sized instance".into());
        }
        for s in &self.samples {
            if !(s.cold_ms.is_finite()
                && s.cold_ms >= 0.0
                && s.warm_ms.is_finite()
                && s.warm_ms >= 0.0)
            {
                return Err(format!("non-finite sample timing for bp {}", s.bp));
            }
        }
        if !(self.speedup.is_finite() && self.speedup > 0.0) {
            return Err(format!("speedup must be finite and positive, got {}", self.speedup));
        }
        if !(0.0..=1.0).contains(&self.cold_cache_hit_rate) {
            return Err(format!("cache hit rate outside [0,1]: {}", self.cold_cache_hit_rate));
        }
        Ok(())
    }

    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, serde_json::to_string(self).expect("report serializes"))
    }

    pub fn read(path: &std::path::Path) -> Result<Self, String> {
        let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        serde_json::from_str(&raw).map_err(|e| format!("parse {path:?}: {e}"))
    }
}

/// One constraint row of the sequential-vs-parallel mode comparison
/// (`BENCH_pivot_modes.json`, emitted by the `pivot_parallel` bench).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModeSample {
    pub constraint: String,
    pub sequential_ms: f64,
    pub parallel_ms: f64,
    pub speedup: f64,
}

/// The `BENCH_pivot_modes.json` artifact.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PivotModesReport {
    /// Artifact discriminator; always "pivot_modes".
    pub bench: String,
    pub scale: ScaleInfo,
    pub cores: usize,
    pub samples: Vec<ModeSample>,
}

impl PivotModesReport {
    /// Structural validation mirroring [`PivotBenchReport::validate`], so
    /// CI can gate the modes artifact with the same `--validate` pass.
    pub fn validate(&self) -> Result<(), String> {
        if self.bench != "pivot_modes" {
            return Err(format!(
                "bench discriminator must be \"pivot_modes\", got {:?}",
                self.bench
            ));
        }
        if self.samples.is_empty() {
            return Err("no mode samples recorded".into());
        }
        if self.scale.n_links == 0 || self.scale.n_routers == 0 || self.scale.n_bps == 0 {
            return Err("scale info has zero-sized instance".into());
        }
        if self.cores == 0 {
            return Err("cores must be positive".into());
        }
        for s in &self.samples {
            if !(s.sequential_ms.is_finite()
                && s.sequential_ms >= 0.0
                && s.parallel_ms.is_finite()
                && s.parallel_ms >= 0.0)
            {
                return Err(format!("non-finite timing for constraint {:?}", s.constraint));
            }
            if !(s.speedup.is_finite() && s.speedup > 0.0) {
                return Err(format!(
                    "speedup must be finite and positive for constraint {:?}, got {}",
                    s.constraint, s.speedup
                ));
            }
        }
        Ok(())
    }

    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, serde_json::to_string(self).expect("report serializes"))
    }

    pub fn read(path: &std::path::Path) -> Result<Self, String> {
        let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        serde_json::from_str(&raw).map_err(|e| format!("parse {path:?}: {e}"))
    }
}

/// One measured phase of the control-plane throughput bench: a client
/// fleet driving a live durable server end to end (TCP framing,
/// admission, sharded apply, group-commit journal).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CtrlPhase {
    /// "sharded" (the PR's pipeline) or "baseline" (1 shard, the
    /// pre-sharding per-mutation-fsync serialization).
    pub label: String,
    /// Usage-ledger shards the server ran with.
    pub shards: usize,
    /// Concurrent client connections driving load.
    pub clients: usize,
    /// Mutations acknowledged across the phase.
    pub requests: u64,
    /// Wall time of the phase, seconds.
    pub elapsed_s: f64,
    /// Sustained acknowledged-mutation throughput (`requests / elapsed_s`).
    pub req_per_sec: f64,
    /// Client-observed request latency percentiles, microseconds.
    pub p50_us: f64,
    pub p99_us: f64,
    /// `Response::Busy` rejections clients absorbed via retry.
    pub busy_rejections: u64,
    /// Journal records appended / fsync batches committed during the
    /// phase: `appends / fsyncs` is the realized group-commit ratio.
    pub appends: u64,
    pub fsyncs: u64,
    pub group_commits: u64,
    /// Group-commit batch-size distribution (mutations per fsync).
    pub batch_p50: f64,
    pub batch_p99: f64,
    pub batch_mean: f64,
}

/// The `BENCH_ctrl.json` artifact: sustained durable throughput of the
/// sharded group-commit control plane against the serialized baseline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CtrlBenchReport {
    /// Artifact discriminator; always "ctrl".
    pub bench: String,
    /// "quick" (CI load-smoke) or "full".
    pub mode: String,
    /// Independent repetitions per phase; each reported phase is the
    /// median trial by `req_per_sec`, so a single disk-mood outlier
    /// cannot set the headline in either direction.
    pub trials: usize,
    pub phases: Vec<CtrlPhase>,
    /// Sharded req/s over baseline req/s — the headline number.
    pub speedup: f64,
}

impl CtrlBenchReport {
    /// Structural validation mirroring [`PivotBenchReport::validate`]:
    /// the checks CI's `--validate` pass runs on the emitted file.
    pub fn validate(&self) -> Result<(), String> {
        if self.bench != "ctrl" {
            return Err(format!("bench discriminator must be \"ctrl\", got {:?}", self.bench));
        }
        if self.phases.is_empty() {
            return Err("no phases recorded".into());
        }
        if self.trials == 0 {
            return Err("trials must be at least 1".into());
        }
        for p in &self.phases {
            if p.shards == 0 || p.clients == 0 || p.requests == 0 {
                return Err(format!("phase {:?} measured nothing", p.label));
            }
            let timings = [p.elapsed_s, p.req_per_sec, p.p50_us, p.p99_us];
            if timings.iter().any(|t| !(t.is_finite() && *t > 0.0)) {
                return Err(format!("non-finite or non-positive timing in phase {:?}", p.label));
            }
            if p.p99_us < p.p50_us {
                return Err(format!("p99 below p50 in phase {:?}", p.label));
            }
            if p.appends == 0 || p.fsyncs == 0 {
                return Err(format!("phase {:?} journaled nothing", p.label));
            }
            if p.fsyncs > p.appends {
                return Err(format!("phase {:?} fsynced more than it appended", p.label));
            }
            let batches = [p.batch_p50, p.batch_p99, p.batch_mean];
            if batches.iter().any(|b| !(b.is_finite() && *b >= 1.0)) {
                return Err(format!("batch sizes below 1 in phase {:?}", p.label));
            }
        }
        if !(self.speedup.is_finite() && self.speedup > 0.0) {
            return Err(format!("speedup must be finite and positive, got {}", self.speedup));
        }
        Ok(())
    }

    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, serde_json::to_string(self).expect("report serializes"))
    }

    pub fn read(path: &std::path::Path) -> Result<Self, String> {
        let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        serde_json::from_str(&raw).map_err(|e| format!("parse {path:?}: {e}"))
    }
}

/// One timed run of the packet engine on a fixed workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DataplaneTrial {
    /// Events popped off the queue across the run.
    pub events: u64,
    pub packets_injected: u64,
    pub packets_delivered: u64,
    pub packets_dropped: u64,
    /// Wall time of the run, seconds.
    pub elapsed_s: f64,
    pub events_per_sec: f64,
    pub packets_per_sec: f64,
}

/// The `BENCH_dataplane.json` artifact: packet-engine event throughput.
/// The headline numbers are the median trial's, so one scheduler hiccup
/// cannot set them in either direction.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DataplaneBenchReport {
    /// Artifact discriminator; always "dataplane".
    pub bench: String,
    /// "quick" (CI dataplane-smoke) or "full".
    pub mode: String,
    pub scale: ScaleInfo,
    /// Simulated horizon, nanoseconds.
    pub horizon_ns: u64,
    /// Packet sources standing in for `n_user_flows` user flows.
    pub n_sources: usize,
    pub n_user_flows: u64,
    pub trials: Vec<DataplaneTrial>,
    /// Median-trial throughput — the headline numbers.
    pub events_per_sec: f64,
    pub packets_per_sec: f64,
    /// Median-trial delivered availability (delivered/offered bytes).
    pub availability: f64,
}

impl DataplaneBenchReport {
    /// Structural validation mirroring [`PivotBenchReport::validate`]:
    /// the checks CI's `--validate` pass runs on the emitted file.
    pub fn validate(&self) -> Result<(), String> {
        if self.bench != "dataplane" {
            return Err(format!("bench discriminator must be \"dataplane\", got {:?}", self.bench));
        }
        if self.trials.is_empty() {
            return Err("no trials recorded".into());
        }
        if self.scale.n_links == 0 || self.scale.n_routers == 0 || self.scale.n_bps == 0 {
            return Err("scale info has zero-sized instance".into());
        }
        if self.horizon_ns == 0 {
            return Err("horizon must be positive".into());
        }
        if self.n_sources == 0 || self.n_user_flows < self.n_sources as u64 {
            return Err(format!(
                "sources/user-flows inconsistent: {} sources, {} user flows",
                self.n_sources, self.n_user_flows
            ));
        }
        for t in &self.trials {
            if t.events == 0 || t.packets_injected == 0 {
                return Err("a trial simulated nothing".into());
            }
            if t.packets_delivered + t.packets_dropped > t.packets_injected {
                return Err("delivered + dropped exceeds injected".into());
            }
            let rates = [t.elapsed_s, t.events_per_sec, t.packets_per_sec];
            if rates.iter().any(|r| !(r.is_finite() && *r > 0.0)) {
                return Err("non-finite or non-positive trial timing".into());
            }
        }
        let headline = [self.events_per_sec, self.packets_per_sec];
        if headline.iter().any(|r| !(r.is_finite() && *r > 0.0)) {
            return Err(format!(
                "headline throughput must be finite and positive, got {} ev/s {} pkt/s",
                self.events_per_sec, self.packets_per_sec
            ));
        }
        if !self.availability.is_finite() || !(0.0..=1.0 + 1e-9).contains(&self.availability) {
            return Err(format!("availability outside [0,1]: {}", self.availability));
        }
        Ok(())
    }

    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, serde_json::to_string(self).expect("report serializes"))
    }

    pub fn read(path: &std::path::Path) -> Result<Self, String> {
        let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        serde_json::from_str(&raw).map_err(|e| format!("parse {path:?}: {e}"))
    }
}

/// One planned-and-executed lease migration (optionally with faults
/// injected mid-walk), timed and safety-audited.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransitionSample {
    /// What the sample exercises, e.g. "expand x1.5" or "drill cut=1".
    pub label: String,
    /// Demand-forecast factor that picked the target set.
    pub headroom: f64,
    pub n_from: usize,
    pub n_to: usize,
    /// Steps of the initial plan.
    pub plan_steps: usize,
    /// Oracle probes the planner spent.
    pub plan_probes: u64,
    /// Wall time of planning alone, milliseconds.
    pub plan_ms: f64,
    /// Wall time of the full drill (plan + execute + any replans),
    /// milliseconds.
    pub run_ms: f64,
    /// Steps actually applied across the walk, replans included.
    pub steps_applied: usize,
    pub replans: u32,
    pub rollbacks: u32,
    /// "committed", "rolled_back", or "force_restored".
    pub outcome: String,
    /// Applied intermediate states an independent oracle rejected —
    /// the safety invariant; validation requires exactly zero.
    pub unsafe_intermediates: u64,
}

/// The `BENCH_transition.json` artifact: safe-migration planning and
/// execution cost, including a mid-transition failure drill. Validation
/// doubles as the safety gate: any sample with a rejected intermediate
/// state fails CI.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransitionBenchReport {
    /// Artifact discriminator; always "transition".
    pub bench: String,
    /// "quick" (CI transition-smoke) or "full".
    pub mode: String,
    pub scale: ScaleInfo,
    /// Paper constraint label ("#1" / "#2" / "#3").
    pub constraint: String,
    pub samples: Vec<TransitionSample>,
    pub total_plan_ms: f64,
    pub total_run_ms: f64,
}

impl TransitionBenchReport {
    /// Structural validation mirroring [`PivotBenchReport::validate`]:
    /// the checks CI's `--validate` pass runs on the emitted file.
    pub fn validate(&self) -> Result<(), String> {
        if self.bench != "transition" {
            return Err(format!(
                "bench discriminator must be \"transition\", got {:?}",
                self.bench
            ));
        }
        if self.samples.is_empty() {
            return Err("no transition samples recorded".into());
        }
        if self.scale.n_links == 0 || self.scale.n_routers == 0 || self.scale.n_bps == 0 {
            return Err("scale info has zero-sized instance".into());
        }
        for s in &self.samples {
            if !(s.headroom.is_finite() && s.headroom > 0.0) {
                return Err(format!("sample {:?}: bad headroom {}", s.label, s.headroom));
            }
            if s.n_from == 0 || s.n_to == 0 {
                return Err(format!("sample {:?}: empty endpoint set", s.label));
            }
            let timings = [s.plan_ms, s.run_ms];
            if timings.iter().any(|t| !(t.is_finite() && *t >= 0.0)) {
                return Err(format!("sample {:?}: non-finite timing", s.label));
            }
            if !matches!(s.outcome.as_str(), "committed" | "rolled_back" | "force_restored") {
                return Err(format!("sample {:?}: unknown outcome {:?}", s.label, s.outcome));
            }
            if s.unsafe_intermediates != 0 {
                return Err(format!(
                    "sample {:?}: {} intermediate states failed verification — the safety \
                     invariant is broken",
                    s.label, s.unsafe_intermediates
                ));
            }
        }
        let totals = [self.total_plan_ms, self.total_run_ms];
        if totals.iter().any(|t| !(t.is_finite() && *t >= 0.0)) {
            return Err("non-finite total timing".into());
        }
        Ok(())
    }

    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, serde_json::to_string(self).expect("report serializes"))
    }

    pub fn read(path: &std::path::Path) -> Result<Self, String> {
        let raw = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        serde_json::from_str(&raw).map_err(|e| format!("parse {path:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> PivotBenchReport {
        PivotBenchReport {
            bench: "pivot".into(),
            scale: ScaleInfo { preset: "scale".into(), n_routers: 56, n_links: 13097, n_bps: 100 },
            constraint: "#1".into(),
            pivot_mode: "sequential".into(),
            samples: vec![PivotSample {
                bp: 3,
                cold_ms: 100.0,
                warm_ms: 40.0,
                speedup: 2.5,
                reused_flows: 1000,
                rerouted_flows: 50,
                fallbacks: 1,
            }],
            total_cold_ms: 100.0,
            total_warm_ms: 40.0,
            speedup: 2.5,
            cold_cache_hit_rate: 0.3,
        }
    }

    #[test]
    fn report_round_trips_and_validates() {
        let r = sample_report();
        r.validate().unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: PivotBenchReport = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.samples.len(), 1);
        assert_eq!(back.scale.n_links, 13097);
    }

    #[test]
    fn validation_rejects_malformed_reports() {
        let mut r = sample_report();
        r.bench = "other".into();
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.samples.clear();
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.speedup = f64::NAN;
        assert!(r.validate().is_err());

        let mut r = sample_report();
        r.cold_cache_hit_rate = 1.5;
        assert!(r.validate().is_err());
    }

    fn sample_modes_report() -> PivotModesReport {
        PivotModesReport {
            bench: "pivot_modes".into(),
            scale: ScaleInfo { preset: "small".into(), n_routers: 14, n_links: 220, n_bps: 10 },
            cores: 8,
            samples: vec![ModeSample {
                constraint: "#1".into(),
                sequential_ms: 120.0,
                parallel_ms: 30.0,
                speedup: 4.0,
            }],
        }
    }

    #[test]
    fn modes_report_round_trips_and_validates() {
        let r = sample_modes_report();
        r.validate().unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: PivotModesReport = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.samples.len(), 1);
        assert_eq!(back.cores, 8);
    }

    #[test]
    fn modes_validation_rejects_malformed_reports() {
        let mut r = sample_modes_report();
        r.bench = "pivot".into();
        assert!(r.validate().is_err());

        let mut r = sample_modes_report();
        r.samples.clear();
        assert!(r.validate().is_err());

        let mut r = sample_modes_report();
        r.cores = 0;
        assert!(r.validate().is_err());

        let mut r = sample_modes_report();
        r.samples[0].parallel_ms = f64::INFINITY;
        assert!(r.validate().is_err());

        let mut r = sample_modes_report();
        r.samples[0].speedup = 0.0;
        assert!(r.validate().is_err());
    }

    fn sample_ctrl_report() -> CtrlBenchReport {
        CtrlBenchReport {
            bench: "ctrl".into(),
            mode: "quick".into(),
            trials: 1,
            phases: vec![
                CtrlPhase {
                    label: "sharded".into(),
                    shards: 8,
                    clients: 8,
                    requests: 4000,
                    elapsed_s: 0.5,
                    req_per_sec: 8000.0,
                    p50_us: 700.0,
                    p99_us: 2100.0,
                    busy_rejections: 0,
                    appends: 4000,
                    fsyncs: 900,
                    group_commits: 900,
                    batch_p50: 4.0,
                    batch_p99: 8.0,
                    batch_mean: 4.4,
                },
                CtrlPhase {
                    label: "baseline".into(),
                    shards: 1,
                    clients: 8,
                    requests: 800,
                    elapsed_s: 0.6,
                    req_per_sec: 1333.0,
                    p50_us: 5200.0,
                    p99_us: 9100.0,
                    busy_rejections: 0,
                    appends: 800,
                    fsyncs: 800,
                    group_commits: 800,
                    batch_p50: 1.0,
                    batch_p99: 1.0,
                    batch_mean: 1.0,
                },
            ],
            speedup: 6.0,
        }
    }

    #[test]
    fn ctrl_report_round_trips_and_validates() {
        let r = sample_ctrl_report();
        r.validate().unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: CtrlBenchReport = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.phases.len(), 2);
        assert_eq!(back.phases[0].shards, 8);
    }

    #[test]
    fn ctrl_validation_rejects_malformed_reports() {
        let mut r = sample_ctrl_report();
        r.bench = "pivot".into();
        assert!(r.validate().is_err());

        let mut r = sample_ctrl_report();
        r.phases.clear();
        assert!(r.validate().is_err());

        let mut r = sample_ctrl_report();
        r.phases[0].req_per_sec = f64::NAN;
        assert!(r.validate().is_err());

        let mut r = sample_ctrl_report();
        r.phases[0].p99_us = r.phases[0].p50_us / 2.0;
        assert!(r.validate().is_err());

        let mut r = sample_ctrl_report();
        r.phases[0].fsyncs = r.phases[0].appends + 1;
        assert!(r.validate().is_err());

        let mut r = sample_ctrl_report();
        r.phases[1].batch_mean = 0.5;
        assert!(r.validate().is_err());

        let mut r = sample_ctrl_report();
        r.trials = 0;
        assert!(r.validate().is_err());

        let mut r = sample_ctrl_report();
        r.speedup = 0.0;
        assert!(r.validate().is_err());
    }

    fn sample_transition_report() -> TransitionBenchReport {
        TransitionBenchReport {
            bench: "transition".into(),
            mode: "quick".into(),
            scale: ScaleInfo { preset: "small".into(), n_routers: 14, n_links: 220, n_bps: 10 },
            constraint: "#1".into(),
            samples: vec![TransitionSample {
                label: "expand x1.5".into(),
                headroom: 1.5,
                n_from: 23,
                n_to: 29,
                plan_steps: 34,
                plan_probes: 40,
                plan_ms: 12.0,
                run_ms: 55.0,
                steps_applied: 34,
                replans: 0,
                rollbacks: 0,
                outcome: "committed".into(),
                unsafe_intermediates: 0,
            }],
            total_plan_ms: 12.0,
            total_run_ms: 55.0,
        }
    }

    #[test]
    fn transition_report_round_trips_and_validates() {
        let r = sample_transition_report();
        r.validate().unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: TransitionBenchReport = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.samples.len(), 1);
        assert_eq!(back.samples[0].plan_steps, 34);
    }

    #[test]
    fn transition_validation_rejects_malformed_reports() {
        let mut r = sample_transition_report();
        r.bench = "pivot".into();
        assert!(r.validate().is_err());

        let mut r = sample_transition_report();
        r.samples.clear();
        assert!(r.validate().is_err());

        let mut r = sample_transition_report();
        r.samples[0].headroom = f64::NAN;
        assert!(r.validate().is_err());

        let mut r = sample_transition_report();
        r.samples[0].outcome = "exploded".into();
        assert!(r.validate().is_err());

        // The safety gate: a rejected intermediate fails validation.
        let mut r = sample_transition_report();
        r.samples[0].unsafe_intermediates = 1;
        assert!(r.validate().is_err());

        let mut r = sample_transition_report();
        r.total_run_ms = f64::INFINITY;
        assert!(r.validate().is_err());
    }

    fn sample_dataplane_report() -> DataplaneBenchReport {
        DataplaneBenchReport {
            bench: "dataplane".into(),
            mode: "quick".into(),
            scale: ScaleInfo { preset: "small".into(), n_routers: 14, n_links: 220, n_bps: 10 },
            horizon_ns: 20_000_000,
            n_sources: 72,
            n_user_flows: 624_318,
            trials: vec![DataplaneTrial {
                events: 9_000_000,
                packets_injected: 4_000_000,
                packets_delivered: 1_400_000,
                packets_dropped: 1_100_000,
                elapsed_s: 0.5,
                events_per_sec: 18_000_000.0,
                packets_per_sec: 8_000_000.0,
            }],
            events_per_sec: 18_000_000.0,
            packets_per_sec: 8_000_000.0,
            availability: 0.33,
        }
    }

    #[test]
    fn dataplane_report_round_trips_and_validates() {
        let r = sample_dataplane_report();
        r.validate().unwrap();
        let json = serde_json::to_string(&r).unwrap();
        let back: DataplaneBenchReport = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        assert_eq!(back.trials.len(), 1);
        assert_eq!(back.n_user_flows, 624_318);
    }

    #[test]
    fn dataplane_validation_rejects_malformed_reports() {
        let mut r = sample_dataplane_report();
        r.bench = "ctrl".into();
        assert!(r.validate().is_err());

        let mut r = sample_dataplane_report();
        r.trials.clear();
        assert!(r.validate().is_err());

        let mut r = sample_dataplane_report();
        r.trials[0].packets_delivered = r.trials[0].packets_injected + 1;
        assert!(r.validate().is_err());

        let mut r = sample_dataplane_report();
        r.trials[0].events_per_sec = f64::NAN;
        assert!(r.validate().is_err());

        let mut r = sample_dataplane_report();
        r.events_per_sec = 0.0;
        assert!(r.validate().is_err());

        let mut r = sample_dataplane_report();
        r.availability = 1.5;
        assert!(r.validate().is_err());

        let mut r = sample_dataplane_report();
        r.n_user_flows = 3;
        assert!(r.validate().is_err());
    }
}

//! The flow-level event simulator.
//!
//! Inputs: a topology, the leased link set, flow specs (persistent or
//! timed), optional link down/up events, and optional ingress throttles
//! (for the discrimination experiments). The simulator sweeps event times
//! in order; between consecutive events flow rates are constant and equal
//! to the max-min fair allocation over the surviving links. Flows are
//! (re)routed on every topology event: distance-shortest path over the
//! links currently up, or zero rate (outage) if disconnected.

use crate::fairness::{max_min_rates, AllocFlow};
use poc_core::entity::EntityId;
use poc_flow::graph::Dir;
use poc_flow::{CapacityGraph, LinkSet};
use poc_topology::{LinkId, PocTopology, RouterId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One simulated flow.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowSpec {
    pub src: RouterId,
    pub dst: RouterId,
    /// Offered rate while active, Gbit/s.
    pub demand_gbps: f64,
    /// Active interval, hours.
    pub start: f64,
    pub end: f64,
    /// Billing attribution (e.g. the LMP or direct CSP originating it).
    pub owner: Option<EntityId>,
    /// Free-form label used by throttles and the discrimination detector.
    pub tag: String,
    /// Optional pinned path (traffic-engineering placement, e.g. from the
    /// auction's feasibility routing). Used while all its links are up;
    /// outages fall back to dynamic shortest-path rerouting.
    #[serde(default)]
    pub pinned_path: Option<Vec<LinkId>>,
}

impl FlowSpec {
    /// A persistent flow covering the whole horizon.
    pub fn persistent(
        src: RouterId,
        dst: RouterId,
        demand_gbps: f64,
        horizon: f64,
        tag: &str,
    ) -> Self {
        Self {
            src,
            dst,
            demand_gbps,
            start: 0.0,
            end: horizon,
            owner: None,
            tag: tag.into(),
            pinned_path: None,
        }
    }

    pub fn with_owner(mut self, owner: EntityId) -> Self {
        self.owner = Some(owner);
        self
    }
}

/// A scheduled link outage.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LinkOutage {
    pub link: LinkId,
    pub down_at: f64,
    pub up_at: f64,
}

/// An ingress throttle applied by a (misbehaving) LMP: flows whose tag
/// matches have their offered rate multiplied by `factor` (< 1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IngressThrottle {
    pub tag: String,
    pub factor: f64,
}

/// Simulation parameters.
#[derive(Clone, Debug, Default)]
pub struct SimConfig {
    /// Simulation horizon, hours.
    pub horizon: f64,
    pub outages: Vec<LinkOutage>,
    pub throttles: Vec<IngressThrottle>,
}

/// Per-flow accounting.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FlowStats {
    pub tag: String,
    pub owner: Option<EntityId>,
    /// Gbit/s × hours offered while active.
    pub offered_gbh: f64,
    /// Gbit/s × hours actually delivered.
    pub delivered_gbh: f64,
    /// Hours spent active but completely disconnected.
    pub outage_hours: f64,
    /// Times the flow changed path due to topology events.
    pub reroutes: u32,
}

impl FlowStats {
    /// Delivered / offered (1.0 = everything).
    pub fn availability(&self) -> f64 {
        if self.offered_gbh <= 0.0 {
            1.0
        } else {
            self.delivered_gbh / self.offered_gbh
        }
    }
}

/// Aggregate simulation output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimReport {
    pub per_flow: Vec<FlowStats>,
    /// Average delivered Gbit/s per owner over the horizon (billing input).
    pub usage_by_owner: Vec<(EntityId, f64)>,
    pub horizon: f64,
    /// Time-weighted mean load per link (both directions summed), Gbit/s,
    /// indexed by link id.
    pub mean_link_load: Vec<f64>,
    /// Peak instantaneous directional load per link, Gbit/s.
    pub peak_link_load: Vec<f64>,
}

impl SimReport {
    /// Mean utilization of a link (mean load over both directions divided
    /// by twice its capacity).
    pub fn mean_utilization(&self, topo: &PocTopology, link: LinkId) -> f64 {
        let cap = topo.link(link).capacity_gbps;
        if cap <= 0.0 {
            0.0
        } else {
            self.mean_link_load[link.index()] / (2.0 * cap)
        }
    }

    /// The `n` most-loaded links by peak directional load.
    pub fn hottest_links(&self, n: usize) -> Vec<(LinkId, f64)> {
        let mut v: Vec<(LinkId, f64)> = self
            .peak_link_load
            .iter()
            .enumerate()
            .map(|(i, &l)| (LinkId::from_index(i), l))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Total delivered / total offered.
    pub fn overall_availability(&self) -> f64 {
        let offered: f64 = self.per_flow.iter().map(|f| f.offered_gbh).sum();
        let delivered: f64 = self.per_flow.iter().map(|f| f.delivered_gbh).sum();
        if offered <= 0.0 {
            1.0
        } else {
            delivered / offered
        }
    }

    /// Mean availability of flows with the given tag.
    pub fn availability_by_tag(&self, tag: &str) -> Option<f64> {
        let tagged: Vec<&FlowStats> = self.per_flow.iter().filter(|f| f.tag == tag).collect();
        if tagged.is_empty() {
            return None;
        }
        Some(tagged.iter().map(|f| f.availability()).sum::<f64>() / tagged.len() as f64)
    }

    pub fn total_reroutes(&self) -> u32 {
        self.per_flow.iter().map(|f| f.reroutes).sum()
    }
}

/// Errors from [`Simulator::new`] and [`Simulator::add_flow`]. Simulation
/// configs come from user input (CLI flags, drill specs, wire requests),
/// so a bad one must surface as a value, not a panic — the same contract
/// as [`crate::drill::DrillError`] and `poc_flow::FlowError`.
#[derive(Clone, Debug, PartialEq)]
pub enum SimError {
    /// `horizon <= 0` (or NaN): the simulation would cover no time.
    NonPositiveHorizon { horizon: f64 },
    /// An interval with `start >= end`, a negative start, or NaN bounds —
    /// either a flow's `[start, end)` or an outage's `[down_at, up_at)`.
    UnorderedInterval { start: f64, end: f64 },
    /// An outage scheduled on a link outside the active (leased) set.
    OutageOnInactiveLink { link: LinkId },
    /// A throttle factor outside `[0, 1]`.
    BadThrottleFactor { tag: String, factor: f64 },
    /// A negative (or NaN) offered rate.
    NegativeDemand { demand_gbps: f64 },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NonPositiveHorizon { horizon } => {
                write!(f, "simulation horizon must be positive, got {horizon}")
            }
            SimError::UnorderedInterval { start, end } => {
                write!(f, "interval [{start}, {end}) must be ordered and non-negative")
            }
            SimError::OutageOnInactiveLink { link } => {
                write!(f, "outage on link {link:?}, which is not in the active set")
            }
            SimError::BadThrottleFactor { tag, factor } => {
                write!(f, "throttle factor for tag {tag:?} must be in [0,1], got {factor}")
            }
            SimError::NegativeDemand { demand_gbps } => {
                write!(f, "offered rate must be non-negative, got {demand_gbps}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The simulator. Build, then [`Simulator::run`].
pub struct Simulator<'t> {
    topo: &'t PocTopology,
    active: LinkSet,
    flows: Vec<FlowSpec>,
    config: SimConfig,
}

impl<'t> Simulator<'t> {
    pub fn new(
        topo: &'t PocTopology,
        active: &LinkSet,
        config: SimConfig,
    ) -> Result<Self, SimError> {
        if config.horizon.is_nan() || config.horizon <= 0.0 {
            return Err(SimError::NonPositiveHorizon { horizon: config.horizon });
        }
        for o in &config.outages {
            if o.down_at.is_nan() || o.up_at.is_nan() || o.down_at < 0.0 || o.down_at >= o.up_at {
                return Err(SimError::UnorderedInterval { start: o.down_at, end: o.up_at });
            }
            if !active.contains(o.link) {
                return Err(SimError::OutageOnInactiveLink { link: o.link });
            }
        }
        for t in &config.throttles {
            if !(0.0..=1.0).contains(&t.factor) {
                return Err(SimError::BadThrottleFactor { tag: t.tag.clone(), factor: t.factor });
            }
        }
        Ok(Self { topo, active: active.clone(), flows: Vec::new(), config })
    }

    pub fn add_flow(&mut self, flow: FlowSpec) -> Result<(), SimError> {
        if flow.start.is_nan() || flow.end.is_nan() || flow.start < 0.0 || flow.start >= flow.end {
            return Err(SimError::UnorderedInterval { start: flow.start, end: flow.end });
        }
        if flow.demand_gbps.is_nan() || flow.demand_gbps < 0.0 {
            return Err(SimError::NegativeDemand { demand_gbps: flow.demand_gbps });
        }
        self.flows.push(flow);
        Ok(())
    }

    /// Add one persistent flow per non-zero demand of a traffic matrix.
    /// `owner_of(router)` attributes usage for billing.
    pub fn add_traffic_matrix(
        &mut self,
        tm: &poc_traffic::TrafficMatrix,
        owner_of: impl Fn(RouterId) -> Option<EntityId>,
    ) {
        let horizon = self.config.horizon;
        for (src, dst, demand) in tm.iter_demands() {
            let mut f = FlowSpec::persistent(src, dst, demand, horizon, "tm");
            f.owner = owner_of(src);
            self.flows.push(f);
        }
    }

    /// Add a traffic matrix with traffic-engineered placement: demands are
    /// routed (with splitting) over the active links exactly as the
    /// auction's feasibility oracle routes them, and each split share
    /// becomes a flow pinned to its path. This is how the POC would
    /// actually place traffic on a fabric sized by that same routing.
    pub fn add_traffic_matrix_routed(
        &mut self,
        tm: &poc_traffic::TrafficMatrix,
        owner_of: impl Fn(RouterId) -> Option<EntityId>,
    ) -> Result<(), poc_flow::RouteError> {
        let routing = poc_flow::route_tm(self.topo, &self.active, tm)?;
        let horizon = self.config.horizon;
        for flow in routing.flows {
            for (path, gbps) in flow.paths {
                let mut f = FlowSpec::persistent(flow.src, flow.dst, gbps, horizon, "tm");
                f.owner = owner_of(flow.src);
                f.pinned_path = Some(path);
                self.flows.push(f);
            }
        }
        Ok(())
    }

    /// Run to the horizon.
    pub fn run(&self) -> SimReport {
        // Event times: flow boundaries and outage boundaries, deduplicated.
        let mut times: Vec<f64> = vec![0.0, self.config.horizon];
        for f in &self.flows {
            times.push(f.start.min(self.config.horizon));
            times.push(f.end.min(self.config.horizon));
        }
        for o in &self.config.outages {
            times.push(o.down_at.min(self.config.horizon));
            times.push(o.up_at.min(self.config.horizon));
        }
        times.sort_by(|a, b| a.total_cmp(b));
        times.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

        let mut stats: Vec<FlowStats> = self
            .flows
            .iter()
            .map(|f| FlowStats {
                tag: f.tag.clone(),
                owner: f.owner,
                offered_gbh: 0.0,
                delivered_gbh: 0.0,
                outage_hours: 0.0,
                reroutes: 0,
            })
            .collect();
        let mut last_paths: Vec<Option<Vec<(LinkId, Dir)>>> = vec![None; self.flows.len()];
        let mut last_topology_key: Option<Vec<bool>> = None;
        let mut mean_link_load = vec![0.0f64; self.topo.n_links()];
        let mut peak_link_load = vec![0.0f64; self.topo.n_links()];

        for w in times.windows(2) {
            let (t0, t1) = (w[0], w[1]);
            if t1 - t0 <= 1e-12 {
                continue;
            }
            let mid = (t0 + t1) / 2.0;
            // Which links are up during this segment?
            let up: Vec<bool> = (0..self.topo.n_links())
                .map(|i| {
                    let l = LinkId::from_index(i);
                    self.active.contains(l)
                        && !self
                            .config
                            .outages
                            .iter()
                            .any(|o| o.link == l && o.down_at <= mid && mid < o.up_at)
                })
                .collect();
            let topology_changed = last_topology_key.as_ref() != Some(&up);
            if topology_changed {
                let mut surviving = LinkSet::empty(self.topo.n_links());
                for (i, &u) in up.iter().enumerate() {
                    if u {
                        surviving.insert(LinkId::from_index(i));
                    }
                }
                let g = CapacityGraph::new(self.topo, &surviving);
                for (i, f) in self.flows.iter().enumerate() {
                    // Pinned placement wins while all its links are up.
                    let pinned_ok =
                        f.pinned_path.as_ref().filter(|p| p.iter().all(|&l| up[l.index()]));
                    let new_path = match pinned_ok {
                        Some(p) => {
                            let dirs = g.path_dirs(f.src, p);
                            Some(p.iter().copied().zip(dirs).collect::<Vec<_>>())
                        }
                        None => g
                            .shortest_path(
                                f.src,
                                f.dst,
                                |l, _| self.topo.link(l).distance_km,
                                |_, _| true,
                            )
                            .map(|p| {
                                let dirs = g.path_dirs(f.src, &p);
                                p.into_iter().zip(dirs).collect::<Vec<_>>()
                            }),
                    };
                    // A reroute is an event the *flow* experiences: only
                    // count it while the flow is active in this segment.
                    // An inactive flow still gets its path refreshed (it
                    // may start mid-outage on the detour), but a topology
                    // flap entirely outside its [start, end) is not a
                    // reroute for it.
                    let active_now = f.start <= t0 + 1e-12 && f.end >= t1 - 1e-12;
                    if last_topology_key.is_some() && active_now && new_path != last_paths[i] {
                        stats[i].reroutes += 1;
                    }
                    last_paths[i] = new_path;
                }
                last_topology_key = Some(up);
            }

            // Active flows this segment with throttles applied.
            let mut seg_flows: Vec<AllocFlow> = Vec::new();
            let mut seg_index: Vec<usize> = Vec::new();
            for (i, f) in self.flows.iter().enumerate() {
                if f.start <= t0 + 1e-12 && f.end >= t1 - 1e-12 && f.demand_gbps > 0.0 {
                    let throttle: f64 = self
                        .config
                        .throttles
                        .iter()
                        .filter(|t| t.tag == f.tag)
                        .map(|t| t.factor)
                        .fold(1.0, f64::min);
                    match &last_paths[i] {
                        Some(hops) => {
                            seg_flows.push(AllocFlow {
                                hops: hops.clone(),
                                demand_gbps: f.demand_gbps * throttle,
                            });
                            seg_index.push(i);
                        }
                        None => {
                            // Disconnected: full outage this segment.
                            let dt = t1 - t0;
                            stats[i].offered_gbh += f.demand_gbps * dt;
                            stats[i].outage_hours += dt;
                        }
                    }
                }
            }
            let rates = max_min_rates(self.topo, &seg_flows, None);
            let dt = t1 - t0;
            let mut seg_fwd = vec![0.0f64; self.topo.n_links()];
            let mut seg_rev = vec![0.0f64; self.topo.n_links()];
            for (k, &i) in seg_index.iter().enumerate() {
                stats[i].offered_gbh += self.flows[i].demand_gbps * dt;
                stats[i].delivered_gbh += rates[k] * dt;
                for &(l, d) in &seg_flows[k].hops {
                    match d {
                        Dir::Fwd => seg_fwd[l.index()] += rates[k],
                        Dir::Rev => seg_rev[l.index()] += rates[k],
                    }
                }
            }
            for i in 0..self.topo.n_links() {
                mean_link_load[i] += (seg_fwd[i] + seg_rev[i]) * dt;
                peak_link_load[i] = peak_link_load[i].max(seg_fwd[i]).max(seg_rev[i]);
            }
        }

        // Usage per owner, averaged over the horizon.
        let mut usage: BTreeMap<EntityId, f64> = BTreeMap::new();
        for s in &stats {
            if let Some(owner) = s.owner {
                *usage.entry(owner).or_insert(0.0) += s.delivered_gbh / self.config.horizon;
            }
        }
        for l in &mut mean_link_load {
            *l /= self.config.horizon;
        }
        SimReport {
            per_flow: stats,
            usage_by_owner: usage.into_iter().collect(),
            horizon: self.config.horizon,
            mean_link_load,
            peak_link_load,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::builder::two_bp_square;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    fn base_sim(topo: &PocTopology, config: SimConfig) -> Simulator<'_> {
        let all = LinkSet::full(topo.n_links());
        Simulator::new(topo, &all, config).expect("valid test config")
    }

    #[test]
    fn uncongested_flow_fully_delivered() {
        let t = two_bp_square();
        let mut sim = base_sim(&t, SimConfig { horizon: 10.0, ..Default::default() });
        sim.add_flow(FlowSpec::persistent(r(0), r(1), 20.0, 10.0, "a")).unwrap();
        let rep = sim.run();
        assert!((rep.overall_availability() - 1.0).abs() < 1e-9);
        assert!((rep.per_flow[0].delivered_gbh - 200.0).abs() < 1e-6);
        assert_eq!(rep.total_reroutes(), 0);
    }

    #[test]
    fn congestion_shares_fairly() {
        let t = two_bp_square();
        let mut sim = base_sim(&t, SimConfig { horizon: 1.0, ..Default::default() });
        // Three 60G flows on the same 100G ingress link direction r0→r1
        // (plus alternate paths available — they'll reroute? No: paths are
        // distance-shortest, all three take the direct link).
        for tag in ["x", "y"] {
            sim.add_flow(FlowSpec::persistent(r(0), r(1), 60.0, 1.0, tag)).unwrap();
        }
        let rep = sim.run();
        // 100G split two ways = 50 each.
        for f in &rep.per_flow {
            assert!((f.delivered_gbh - 50.0).abs() < 1e-6, "{f:?}");
        }
    }

    #[test]
    fn outage_causes_reroute_not_loss_when_backup_exists() {
        let t = two_bp_square();
        let direct = t.links.iter().find(|l| l.connects(r(0), r(1))).unwrap().id;
        let config = SimConfig {
            horizon: 10.0,
            outages: vec![LinkOutage { link: direct, down_at: 2.0, up_at: 4.0 }],
            ..Default::default()
        };
        let mut sim = base_sim(&t, config);
        sim.add_flow(FlowSpec::persistent(r(0), r(1), 10.0, 10.0, "a")).unwrap();
        let rep = sim.run();
        // Rerouted over r0-r2-r1 during the outage: no loss, 2 reroutes
        // (onto backup and back).
        assert!((rep.overall_availability() - 1.0).abs() < 1e-9, "{rep:?}");
        assert_eq!(rep.per_flow[0].reroutes, 2);
    }

    #[test]
    fn outage_without_backup_is_downtime() {
        let t = two_bp_square();
        // Restrict to the single direct r0-r1 link.
        let direct = t.links.iter().find(|l| l.connects(r(0), r(1))).unwrap().id;
        let only = LinkSet::from_links(t.n_links(), [direct]);
        let config = SimConfig {
            horizon: 10.0,
            outages: vec![LinkOutage { link: direct, down_at: 0.0, up_at: 5.0 }],
            ..Default::default()
        };
        let mut sim = Simulator::new(&t, &only, config).unwrap();
        sim.add_flow(FlowSpec::persistent(r(0), r(1), 10.0, 10.0, "a")).unwrap();
        let rep = sim.run();
        assert!((rep.overall_availability() - 0.5).abs() < 1e-9, "{rep:?}");
        assert!((rep.per_flow[0].outage_hours - 5.0).abs() < 1e-9);
    }

    #[test]
    fn throttle_reduces_tagged_goodput_only() {
        let t = two_bp_square();
        let config = SimConfig {
            horizon: 1.0,
            throttles: vec![IngressThrottle { tag: "victim".into(), factor: 0.25 }],
            ..Default::default()
        };
        let mut sim = base_sim(&t, config);
        sim.add_flow(FlowSpec::persistent(r(0), r(1), 40.0, 1.0, "victim")).unwrap();
        sim.add_flow(FlowSpec::persistent(r(2), r(1), 40.0, 1.0, "control")).unwrap();
        let rep = sim.run();
        assert!((rep.availability_by_tag("victim").unwrap() - 0.25).abs() < 1e-9);
        assert!((rep.availability_by_tag("control").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn usage_attribution_for_billing() {
        let t = two_bp_square();
        let mut sim = base_sim(&t, SimConfig { horizon: 2.0, ..Default::default() });
        let owner = EntityId(5);
        sim.add_flow(FlowSpec::persistent(r(0), r(1), 30.0, 2.0, "a").with_owner(owner)).unwrap();
        sim.add_flow(FlowSpec::persistent(r(1), r(2), 10.0, 2.0, "b").with_owner(owner)).unwrap();
        let rep = sim.run();
        assert_eq!(rep.usage_by_owner.len(), 1);
        let (o, gbps) = rep.usage_by_owner[0];
        assert_eq!(o, owner);
        assert!((gbps - 40.0).abs() < 1e-6);
    }

    #[test]
    fn timed_flows_only_count_when_active() {
        let t = two_bp_square();
        let mut sim = base_sim(&t, SimConfig { horizon: 10.0, ..Default::default() });
        sim.add_flow(FlowSpec {
            src: r(0),
            dst: r(1),
            demand_gbps: 10.0,
            start: 2.0,
            end: 7.0,
            owner: None,
            tag: "burst".into(),
            pinned_path: None,
        })
        .unwrap();
        let rep = sim.run();
        assert!((rep.per_flow[0].offered_gbh - 50.0).abs() < 1e-6);
        assert!((rep.per_flow[0].delivered_gbh - 50.0).abs() < 1e-6);
    }

    #[test]
    fn routed_ingestion_splits_and_delivers() {
        // 150G r0→r1 exceeds any single link: routed ingestion splits it
        // across paths and the sim delivers everything.
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let mut tm = poc_traffic::TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 150.0);
        let mut sim =
            Simulator::new(&t, &all, SimConfig { horizon: 1.0, ..Default::default() }).unwrap();
        sim.add_traffic_matrix_routed(&tm, |_| None).unwrap();
        assert!(sim.flows.len() >= 2, "expected split placement");
        let rep = sim.run();
        assert!(
            (rep.overall_availability() - 1.0).abs() < 1e-9,
            "TE placement should deliver everything: {rep:?}"
        );
    }

    #[test]
    fn pinned_path_falls_back_on_outage() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let direct = t.links.iter().find(|l| l.connects(r(0), r(1))).unwrap().id;
        let config = SimConfig {
            horizon: 4.0,
            outages: vec![LinkOutage { link: direct, down_at: 1.0, up_at: 2.0 }],
            ..Default::default()
        };
        let mut sim = Simulator::new(&t, &all, config).unwrap();
        let mut f = FlowSpec::persistent(r(0), r(1), 10.0, 4.0, "pinned");
        f.pinned_path = Some(vec![direct]);
        sim.add_flow(f).unwrap();
        let rep = sim.run();
        // Fully delivered: dynamic fallback during the outage, pinned
        // placement before and after (2 reroutes).
        assert!((rep.overall_availability() - 1.0).abs() < 1e-9, "{rep:?}");
        assert_eq!(rep.per_flow[0].reroutes, 2);
    }

    #[test]
    fn link_loads_tracked() {
        let t = two_bp_square();
        let mut sim = base_sim(&t, SimConfig { horizon: 2.0, ..Default::default() });
        sim.add_flow(FlowSpec::persistent(r(0), r(1), 40.0, 2.0, "a")).unwrap();
        let rep = sim.run();
        let direct = t.links.iter().find(|l| l.connects(r(0), r(1))).unwrap().id;
        // Mean load: 40 Gbps for the whole horizon on one direction.
        assert!((rep.mean_link_load[direct.index()] - 40.0).abs() < 1e-9);
        assert!((rep.peak_link_load[direct.index()] - 40.0).abs() < 1e-9);
        assert_eq!(rep.hottest_links(1)[0].0, direct);
        // Utilization = 40 / (2 × 100).
        assert!((rep.mean_utilization(&t, direct) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn bursty_flow_mean_load_time_weighted() {
        let t = two_bp_square();
        let mut sim = base_sim(&t, SimConfig { horizon: 10.0, ..Default::default() });
        sim.add_flow(FlowSpec {
            src: r(0),
            dst: r(1),
            demand_gbps: 50.0,
            start: 0.0,
            end: 2.0, // 20% duty cycle
            owner: None,
            tag: "burst".into(),
            pinned_path: None,
        })
        .unwrap();
        let rep = sim.run();
        let direct = t.links.iter().find(|l| l.connects(r(0), r(1))).unwrap().id;
        assert!((rep.mean_link_load[direct.index()] - 10.0).abs() < 1e-9, "50 × 0.2");
        assert!((rep.peak_link_load[direct.index()] - 50.0).abs() < 1e-9);
    }

    #[test]
    fn traffic_matrix_ingestion() {
        let t = two_bp_square();
        let mut tm = poc_traffic::TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 5.0);
        tm.set(r(2), r(3), 2.0);
        let mut sim = base_sim(&t, SimConfig { horizon: 1.0, ..Default::default() });
        sim.add_traffic_matrix(&tm, |router| Some(EntityId(router.0)));
        let rep = sim.run();
        assert_eq!(rep.per_flow.len(), 2);
        assert_eq!(rep.usage_by_owner.len(), 2);
    }

    /// Regression: a topology flap entirely outside a flow's active window
    /// used to be counted as reroutes for that flow (the path refresh and
    /// the reroute counter were conflated). The outage here is over before
    /// the flow starts, so it must see zero reroutes and full delivery.
    #[test]
    fn reroute_not_counted_for_inactive_flow() {
        let t = two_bp_square();
        let direct = t.links.iter().find(|l| l.connects(r(0), r(1))).unwrap().id;
        let config = SimConfig {
            horizon: 10.0,
            outages: vec![LinkOutage { link: direct, down_at: 1.0, up_at: 2.0 }],
            ..Default::default()
        };
        let mut sim = base_sim(&t, config);
        sim.add_flow(FlowSpec {
            src: r(0),
            dst: r(1),
            demand_gbps: 10.0,
            start: 3.0,
            end: 5.0,
            owner: None,
            tag: "late".into(),
            pinned_path: None,
        })
        .unwrap();
        let rep = sim.run();
        assert_eq!(rep.per_flow[0].reroutes, 0, "flap before start is not a reroute: {rep:?}");
        assert!((rep.overall_availability() - 1.0).abs() < 1e-9);
    }

    /// An outage extending past the horizon is clamped: only the in-horizon
    /// part counts as downtime.
    #[test]
    fn outage_clamped_to_horizon() {
        let t = two_bp_square();
        let direct = t.links.iter().find(|l| l.connects(r(0), r(1))).unwrap().id;
        let only = LinkSet::from_links(t.n_links(), [direct]);
        let config = SimConfig {
            horizon: 10.0,
            outages: vec![LinkOutage { link: direct, down_at: 5.0, up_at: 20.0 }],
            ..Default::default()
        };
        let mut sim = Simulator::new(&t, &only, config).unwrap();
        sim.add_flow(FlowSpec::persistent(r(0), r(1), 10.0, 10.0, "a")).unwrap();
        let rep = sim.run();
        assert!((rep.per_flow[0].outage_hours - 5.0).abs() < 1e-9, "{rep:?}");
        assert!((rep.overall_availability() - 0.5).abs() < 1e-9);
    }

    /// A flow whose whole active window sits inside an outage (with no
    /// backup path) delivers nothing, and its outage-hours equal its
    /// active duration exactly.
    #[test]
    fn flow_entirely_inside_outage() {
        let t = two_bp_square();
        let direct = t.links.iter().find(|l| l.connects(r(0), r(1))).unwrap().id;
        let only = LinkSet::from_links(t.n_links(), [direct]);
        let config = SimConfig {
            horizon: 10.0,
            outages: vec![LinkOutage { link: direct, down_at: 1.0, up_at: 5.0 }],
            ..Default::default()
        };
        let mut sim = Simulator::new(&t, &only, config).unwrap();
        sim.add_flow(FlowSpec {
            src: r(0),
            dst: r(1),
            demand_gbps: 10.0,
            start: 2.0,
            end: 4.0,
            owner: None,
            tag: "doomed".into(),
            pinned_path: None,
        })
        .unwrap();
        let rep = sim.run();
        assert!((rep.per_flow[0].availability() - 0.0).abs() < 1e-12, "{rep:?}");
        assert!((rep.per_flow[0].outage_hours - 2.0).abs() < 1e-12);
        assert!((rep.per_flow[0].offered_gbh - 20.0).abs() < 1e-9);
    }

    /// Event times closer than the 1e-12 dedup epsilon collapse into one
    /// boundary instead of producing a degenerate zero-length segment.
    #[test]
    fn near_duplicate_event_times_collapse() {
        let t = two_bp_square();
        let mut sim = base_sim(&t, SimConfig { horizon: 4.0, ..Default::default() });
        for (tag, end) in [("a", 2.0), ("b", 2.0 + 5e-13)] {
            sim.add_flow(FlowSpec {
                src: r(0),
                dst: r(1),
                demand_gbps: 10.0,
                start: 0.0,
                end,
                owner: None,
                tag: tag.into(),
                pinned_path: None,
            })
            .unwrap();
        }
        let rep = sim.run();
        for f in &rep.per_flow {
            assert!((f.delivered_gbh - 20.0).abs() < 1e-6, "{f:?}");
            assert!((f.availability() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn construction_and_admission_errors_are_typed() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let direct = t.links.iter().find(|l| l.connects(r(0), r(1))).unwrap().id;

        let e = Simulator::new(&t, &all, SimConfig { horizon: 0.0, ..Default::default() });
        assert_eq!(e.err(), Some(SimError::NonPositiveHorizon { horizon: 0.0 }));
        assert!(Simulator::new(&t, &all, SimConfig { horizon: f64::NAN, ..Default::default() })
            .is_err());

        let bad_outage = SimConfig {
            horizon: 1.0,
            outages: vec![LinkOutage { link: direct, down_at: 3.0, up_at: 2.0 }],
            ..Default::default()
        };
        assert_eq!(
            Simulator::new(&t, &all, bad_outage).err(),
            Some(SimError::UnorderedInterval { start: 3.0, end: 2.0 })
        );

        let inactive = LinkSet::empty(t.n_links());
        let orphan_outage = SimConfig {
            horizon: 1.0,
            outages: vec![LinkOutage { link: direct, down_at: 0.0, up_at: 1.0 }],
            ..Default::default()
        };
        assert_eq!(
            Simulator::new(&t, &inactive, orphan_outage).err(),
            Some(SimError::OutageOnInactiveLink { link: direct })
        );

        let bad_throttle = SimConfig {
            horizon: 1.0,
            throttles: vec![IngressThrottle { tag: "x".into(), factor: 1.5 }],
            ..Default::default()
        };
        assert_eq!(
            Simulator::new(&t, &all, bad_throttle).err(),
            Some(SimError::BadThrottleFactor { tag: "x".into(), factor: 1.5 })
        );

        let mut sim = base_sim(&t, SimConfig { horizon: 1.0, ..Default::default() });
        let mut f = FlowSpec::persistent(r(0), r(1), 10.0, 1.0, "a");
        f.start = 0.5;
        f.end = 0.5;
        assert_eq!(
            sim.add_flow(f).err(),
            Some(SimError::UnorderedInterval { start: 0.5, end: 0.5 })
        );
        let g = FlowSpec::persistent(r(0), r(1), -1.0, 1.0, "a");
        assert_eq!(sim.add_flow(g).err(), Some(SimError::NegativeDemand { demand_gbps: -1.0 }));
        // Errors render a human-readable message.
        let msg = SimError::NonPositiveHorizon { horizon: -2.0 }.to_string();
        assert!(msg.contains("-2"), "{msg}");
    }
}

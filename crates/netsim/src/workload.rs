//! Synthetic flow workloads beyond the static traffic matrix: Poisson
//! on/off flows with gravity-weighted endpoints and a diurnal intensity
//! profile. Used by the churn and utilization experiments, and by the
//! control-plane demo to produce believable usage reports.

use crate::sim::FlowSpec;
use poc_topology::{PocTopology, RouterId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// On/off workload parameters. All randomness flows from `seed`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkloadConfig {
    pub seed: u64,
    /// Horizon, hours.
    pub horizon: f64,
    /// Expected number of flow arrivals over the horizon.
    pub n_flows: usize,
    /// Mean per-flow rate, Gbit/s (exponentially distributed).
    pub mean_rate_gbps: f64,
    /// Mean flow duration, hours (exponentially distributed, truncated at
    /// the horizon).
    pub mean_duration_h: f64,
    /// Diurnal modulation amplitude in [0, 1): arrival intensity follows
    /// `1 + A·sin(2π(t − 6)/24)` (evening peak at t ≈ 12 for A > 0 when
    /// the horizon starts at midnight).
    pub diurnal_amplitude: f64,
    /// Tag stamped on every generated flow.
    pub tag: String,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            horizon: 24.0,
            n_flows: 200,
            mean_rate_gbps: 2.0,
            mean_duration_h: 1.5,
            diurnal_amplitude: 0.5,
            tag: "onoff".into(),
        }
    }
}

/// Relative arrival intensity at hour `t` (mean 1 over a 24h cycle).
pub fn diurnal_factor(t_hours: f64, amplitude: f64) -> f64 {
    assert!((0.0..1.0).contains(&amplitude), "amplitude must be in [0,1)");
    1.0 + amplitude * (std::f64::consts::TAU * (t_hours - 6.0) / 24.0).sin()
}

/// Generate the workload: Poisson arrivals thinned by the diurnal profile,
/// gravity-weighted endpoint choice, exponential rates and durations.
/// Deterministic per config.
pub fn generate_onoff(topo: &PocTopology, cfg: &WorkloadConfig) -> Vec<FlowSpec> {
    assert!(cfg.horizon > 0.0 && cfg.n_flows > 0, "degenerate workload");
    assert!(
        cfg.mean_rate_gbps > 0.0 && cfg.mean_duration_h > 0.0,
        "rates and durations must be positive"
    );
    assert!(topo.n_routers() >= 2, "need at least two routers");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let weights: Vec<f64> = topo.routers.iter().map(|r| topo.city(r.city).weight).collect();
    let total_w: f64 = weights.iter().sum();

    let pick_router = |rng: &mut ChaCha8Rng| -> RouterId {
        let mut x = rng.gen_range(0.0..total_w);
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return RouterId::from_index(i);
            }
            x -= w;
        }
        RouterId::from_index(weights.len() - 1)
    };

    // Thinned Poisson process: candidate arrivals at the peak rate,
    // accepted with probability diurnal/max.
    let peak = 1.0 + cfg.diurnal_amplitude;
    let base_rate = cfg.n_flows as f64 / cfg.horizon; // mean accepted rate
    let candidate_rate = base_rate * peak;
    let mut flows = Vec::new();
    let mut t = 0.0f64;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        t += -u.ln() / candidate_rate;
        if t >= cfg.horizon {
            break;
        }
        let accept = diurnal_factor(t, cfg.diurnal_amplitude) / peak;
        if !rng.gen_bool(accept.clamp(0.0, 1.0)) {
            continue;
        }
        let src = pick_router(&mut rng);
        let mut dst = pick_router(&mut rng);
        while dst == src {
            dst = pick_router(&mut rng);
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let rate = -u.ln() * cfg.mean_rate_gbps;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let duration = (-u.ln() * cfg.mean_duration_h).max(1e-3);
        flows.push(FlowSpec {
            src,
            dst,
            demand_gbps: rate,
            start: t,
            end: (t + duration).min(cfg.horizon),
            owner: None,
            tag: cfg.tag.clone(),
            pinned_path: None,
        });
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::{ZooConfig, ZooGenerator};

    fn topo() -> PocTopology {
        ZooGenerator::new(ZooConfig::small()).generate()
    }

    #[test]
    fn generation_is_deterministic() {
        let t = topo();
        let cfg = WorkloadConfig::default();
        let a = generate_onoff(&t, &cfg);
        let b = generate_onoff(&t, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.src, y.src);
            assert_eq!(x.dst, y.dst);
            assert!((x.demand_gbps - y.demand_gbps).abs() < 1e-12);
        }
    }

    #[test]
    fn flow_count_near_target() {
        let t = topo();
        let cfg = WorkloadConfig { n_flows: 400, ..Default::default() };
        let flows = generate_onoff(&t, &cfg);
        let n = flows.len() as f64;
        assert!((n - 400.0).abs() < 120.0, "Poisson count {n} too far from target 400");
    }

    #[test]
    fn flows_respect_horizon_and_validity() {
        let t = topo();
        let cfg = WorkloadConfig::default();
        for f in generate_onoff(&t, &cfg) {
            assert!(f.start >= 0.0 && f.start < cfg.horizon);
            assert!(f.end > f.start && f.end <= cfg.horizon + 1e-12);
            assert!(f.demand_gbps > 0.0);
            assert_ne!(f.src, f.dst);
            assert_eq!(f.tag, "onoff");
        }
    }

    #[test]
    fn diurnal_factor_bounds_and_mean() {
        for a in [0.0, 0.3, 0.9] {
            let mut sum = 0.0;
            for i in 0..240 {
                let f = diurnal_factor(i as f64 / 10.0, a);
                assert!(f >= 1.0 - a - 1e-9 && f <= 1.0 + a + 1e-9);
                sum += f;
            }
            assert!((sum / 240.0 - 1.0).abs() < 1e-2, "mean must be ~1");
        }
    }

    #[test]
    fn diurnal_peak_concentrates_arrivals() {
        let t = topo();
        let cfg = WorkloadConfig {
            n_flows: 3000,
            diurnal_amplitude: 0.9,
            mean_duration_h: 0.2,
            ..Default::default()
        };
        let flows = generate_onoff(&t, &cfg);
        // Peak window (t≈12) vs trough window (t≈0): expect far more
        // arrivals near the peak.
        let peak = flows.iter().filter(|f| (10.0..14.0).contains(&f.start)).count();
        let trough = flows.iter().filter(|f| f.start < 2.0 || f.start >= 22.0).count();
        assert!(peak as f64 > trough as f64 * 2.0, "peak {peak} vs trough {trough}");
    }

    #[test]
    fn heavier_cities_source_more_flows() {
        let t = topo();
        let cfg = WorkloadConfig { n_flows: 3000, ..Default::default() };
        let flows = generate_onoff(&t, &cfg);
        let weights: Vec<f64> = t.routers.iter().map(|r| t.city(r.city).weight).collect();
        let heaviest = (0..weights.len())
            .max_by(|&a, &b| weights[a].partial_cmp(&weights[b]).unwrap())
            .unwrap();
        let lightest = (0..weights.len())
            .min_by(|&a, &b| weights[a].partial_cmp(&weights[b]).unwrap())
            .unwrap();
        let heavy_count = flows.iter().filter(|f| f.src.index() == heaviest).count();
        let light_count = flows.iter().filter(|f| f.src.index() == lightest).count();
        assert!(
            heavy_count > light_count,
            "gravity weighting broken: {heavy_count} vs {light_count}"
        );
    }
}

//! Observable discrimination: the data-plane half of experiment E-N1.
//!
//! The ToS engine (`poc-core::tos`) rules on *declared* policies; a
//! cheating LMP would not declare. This module shows what cheating looks
//! like on the wire — a tagged traffic class throttled at ingress — and
//! provides a detector comparing normalized goodput between a suspect
//! class and a control class, the way an auditor (or the POC, §3.4's
//! "if widespread cheating is anticipated" discussion) would measure it.

use crate::engine::EngineReport;
use crate::sim::SimReport;
use serde::{Deserialize, Serialize};

/// A suspected throttle to probe for.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ThrottleSpec {
    /// Traffic class suspected of being throttled.
    pub suspect_tag: String,
    /// Reference class expected to receive normal service.
    pub control_tag: String,
    /// Flag when suspect availability falls below `threshold` × control.
    pub threshold: f64,
}

impl Default for ThrottleSpec {
    fn default() -> Self {
        Self { suspect_tag: "suspect".into(), control_tag: "control".into(), threshold: 0.8 }
    }
}

/// Detector verdict.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ThrottleFinding {
    pub suspect_availability: f64,
    pub control_availability: f64,
    /// suspect / control.
    pub ratio: f64,
    pub throttled: bool,
}

/// The comparison itself, shared by the flow-level and packet-level
/// detectors: normalized goodput of the suspect class against the control.
fn judge(suspect: f64, control: f64, spec: &ThrottleSpec) -> ThrottleFinding {
    let ratio = if control > 0.0 { suspect / control } else { 1.0 };
    ThrottleFinding {
        suspect_availability: suspect,
        control_availability: control,
        ratio,
        throttled: ratio < spec.threshold,
    }
}

/// Compare goodput of the suspect class against the control class.
/// Returns `None` when either class has no flows in the report.
pub fn detect_throttling(report: &SimReport, spec: &ThrottleSpec) -> Option<ThrottleFinding> {
    assert!((0.0..=1.0).contains(&spec.threshold), "threshold must be in [0,1]");
    let suspect = report.availability_by_tag(&spec.suspect_tag)?;
    let control = report.availability_by_tag(&spec.control_tag)?;
    Some(judge(suspect, control, spec))
}

/// The same detector over packet-level evidence: delivered/offered bytes
/// per class from an [`EngineReport`]. Packet availability also reflects
/// queueing losses, so thresholds should leave headroom for congestion
/// affecting both classes equally — the *ratio* is the signal, exactly as
/// an external auditor measuring on the wire would compute it.
pub fn detect_throttling_packets(
    report: &EngineReport,
    spec: &ThrottleSpec,
) -> Option<ThrottleFinding> {
    assert!((0.0..=1.0).contains(&spec.threshold), "threshold must be in [0,1]");
    let suspect = report.availability_by_tag(&spec.suspect_tag)?;
    let control = report.availability_by_tag(&spec.control_tag)?;
    Some(judge(suspect, control, spec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{FlowSpec, IngressThrottle, SimConfig, Simulator};
    use poc_flow::LinkSet;
    use poc_topology::builder::two_bp_square;
    use poc_topology::RouterId;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    fn run(throttles: Vec<IngressThrottle>) -> SimReport {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let mut sim =
            Simulator::new(&t, &all, SimConfig { horizon: 1.0, outages: vec![], throttles })
                .unwrap();
        sim.add_flow(FlowSpec::persistent(r(0), r(1), 30.0, 1.0, "suspect")).unwrap();
        sim.add_flow(FlowSpec::persistent(r(2), r(1), 30.0, 1.0, "control")).unwrap();
        sim.run()
    }

    #[test]
    fn clean_lmp_not_flagged() {
        let rep = run(vec![]);
        let finding = detect_throttling(&rep, &ThrottleSpec::default()).unwrap();
        assert!(!finding.throttled, "{finding:?}");
        assert!((finding.ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cheating_lmp_flagged() {
        let rep = run(vec![IngressThrottle { tag: "suspect".into(), factor: 0.5 }]);
        let finding = detect_throttling(&rep, &ThrottleSpec::default()).unwrap();
        assert!(finding.throttled, "{finding:?}");
        assert!((finding.ratio - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mild_degradation_below_threshold_tolerated() {
        let rep = run(vec![IngressThrottle { tag: "suspect".into(), factor: 0.9 }]);
        let finding = detect_throttling(&rep, &ThrottleSpec::default()).unwrap();
        assert!(!finding.throttled, "0.9 >= 0.8 threshold: {finding:?}");
    }

    #[test]
    fn missing_class_returns_none() {
        let rep = run(vec![]);
        let spec = ThrottleSpec { suspect_tag: "ghost".into(), ..Default::default() };
        assert!(detect_throttling(&rep, &spec).is_none());
    }

    #[test]
    fn packet_level_detector_agrees() {
        use crate::engine::{Engine, EngineConfig, SourceKind};
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let throttled_cfg = EngineConfig {
            horizon_ns: 50_000_000,
            throttles: vec![IngressThrottle { tag: "suspect".into(), factor: 0.25 }],
            ..Default::default()
        };
        for (cfg, expect_flag) in [(throttled_cfg, true), (EngineConfig::default(), false)] {
            let mut eng = Engine::new(&t, &all, cfg).unwrap();
            eng.add_source(r(0), r(1), 20.0, None, "suspect", SourceKind::Persistent, 1).unwrap();
            eng.add_source(r(2), r(1), 20.0, None, "control", SourceKind::Persistent, 1).unwrap();
            let rep = eng.run();
            let finding = detect_throttling_packets(&rep, &ThrottleSpec::default()).unwrap();
            assert_eq!(finding.throttled, expect_flag, "{finding:?}");
        }
    }
}

//! The packet-level discrete-event data plane.
//!
//! Where [`crate::sim`] sweeps fluid rate allocations between flow
//! boundaries, this module moves individual packets: a hybrid scheduler
//! (a binary heap keyed on nanosecond timestamps orders link events —
//! departures and propagation-pipe exits — while periodic source
//! injections are generated per time-slice by scanning the source table
//! and merge-joined against the heap under a fixed deterministic tie
//! rule), per-link directional FIFO queues with finite byte buffers and
//! tail drops, store-and-forward transmission at link rate plus
//! propagation delay derived from `distance_km`, and flow sources —
//! persistent or on/off — injecting MTU-sized packets from the same
//! gravity/hotspot traffic matrices the auction is sized on, scaled to
//! millions of user-flows via [`poc_traffic::UserFlowModel`].
//!
//! The loop closes exactly where the flow sim's does: per-owner delivered
//! bytes aggregate into the same `usage_by_owner` shape
//! ([`SimReport::usage_by_owner`](crate::sim::SimReport)), so an
//! [`EngineReport`] feeds `ReportUsage` → settlement ledger →
//! neutrality-violation detection unchanged. One unit of rate is Gbit/s,
//! which is numerically bits/ns — transmission times and delivered-rate
//! conversions need no unit shuffling.
//!
//! Determinism: two engines built with the same inputs and seed produce
//! byte-identical reports. Everything that orders work — the heap key
//! `(time, seq)`, the injection-merge tie rule (link events first at
//! equal times, then injections in source order), route interning,
//! owner/tag interning, source phases drawn from a seeded ChaCha8 — is a
//! function of construction order alone.

use crate::sim::IngressThrottle;
use poc_core::entity::EntityId;
use poc_flow::graph::Dir;
use poc_flow::{CapacityGraph, LinkSet};
use poc_topology::geo::propagation_delay_ms;
use poc_topology::{PocTopology, RouterId};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// Sentinel owner index for unattributed sources.
const NO_OWNER: u16 = u16::MAX;

/// Engine parameters. Times are nanoseconds.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Simulation horizon, ns.
    pub horizon_ns: u64,
    /// Packet size, bytes (MTU-sized frames).
    pub pkt_bytes: u32,
    /// Buffer per directional link, bytes; arrivals that would overflow
    /// it tail-drop.
    pub buffer_bytes: u64,
    /// Seed for source phase staggering (and nothing else).
    pub seed: u64,
    /// Ingress throttles applied by (misbehaving) LMPs: sources whose tag
    /// matches inject at `factor` × their configured rate. Offered bytes
    /// still count at the configured rate, so throttling is visible as
    /// lost availability — same semantics as the flow sim.
    pub throttles: Vec<IngressThrottle>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            horizon_ns: 20_000_000, // 20 ms: well past any one-way propagation delay
            pkt_bytes: 1500,
            buffer_bytes: 1 << 20, // 1 MiB per direction
            seed: 1,
            throttles: Vec::new(),
        }
    }
}

/// How a source injects over time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceKind {
    /// Constant bit-rate for the whole horizon.
    Persistent,
    /// Alternating on/off windows. During on windows the source bursts at
    /// `rate × (on+off)/on`, so its long-run average still matches the
    /// configured rate (and the billing expectation).
    OnOff { on_ns: u64, off_ns: u64 },
}

/// Errors from engine construction and source admission. Library callers
/// feed these from user input (CLI flags, wire requests), so they surface
/// as values — the same panic-free contract as [`crate::sim::SimError`].
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// `horizon_ns == 0`: nothing would ever be simulated.
    ZeroHorizon,
    /// `pkt_bytes == 0`: packets must carry bytes.
    ZeroPacketSize,
    /// The buffer cannot hold even one packet, so every arrival would
    /// tail-drop.
    BufferBelowPacket { buffer_bytes: u64, pkt_bytes: u32 },
    /// A throttle factor outside `[0, 1]`.
    BadThrottleFactor { tag: String, factor: f64 },
    /// A non-finite or negative source rate.
    BadRate { gbps: f64 },
    /// Source endpoints coincide.
    LoopSource { router: RouterId },
    /// An on/off source with an empty on window would never inject.
    ZeroOnWindow,
    /// Owner/tag interning uses compact u16 ids; exceeding 65k distinct
    /// classes means the caller is attributing per-packet, not per-member.
    TooManyClasses,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ZeroHorizon => write!(f, "engine horizon must be positive"),
            EngineError::ZeroPacketSize => write!(f, "packet size must be positive"),
            EngineError::BufferBelowPacket { buffer_bytes, pkt_bytes } => {
                write!(f, "link buffer of {buffer_bytes} B cannot hold one {pkt_bytes} B packet")
            }
            EngineError::BadThrottleFactor { tag, factor } => {
                write!(f, "throttle factor for tag {tag:?} must be in [0,1], got {factor}")
            }
            EngineError::BadRate { gbps } => {
                write!(f, "source rate must be finite and non-negative, got {gbps}")
            }
            EngineError::LoopSource { router } => {
                write!(f, "source endpoints coincide at router {router:?}")
            }
            EngineError::ZeroOnWindow => write!(f, "on/off source needs a non-empty on window"),
            EngineError::TooManyClasses => {
                write!(f, "more than 65534 distinct owners or tags")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Per-tag delivery accounting (neutrality detection input).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TagStats {
    pub tag: String,
    /// Bytes the class *intended* to send over the horizon (configured
    /// rate × horizon — unthrottled, matching the flow sim's offered).
    pub offered_bytes: f64,
    /// Bytes that reached their destination within the horizon.
    pub delivered_bytes: u64,
    /// Packets tail-dropped at full buffers.
    pub dropped_pkts: u64,
}

impl TagStats {
    /// Delivered / offered (1.0 when nothing was offered).
    pub fn availability(&self) -> f64 {
        if self.offered_bytes <= 0.0 {
            1.0
        } else {
            self.delivered_bytes as f64 / self.offered_bytes
        }
    }
}

/// Aggregate engine output. Serializable so determinism can be asserted
/// byte-for-byte, and shaped so `usage_by_owner` drops straight into
/// [`Poc::billing_cycle`](poc_core::poc::Poc::billing_cycle) and
/// `ReportUsage`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineReport {
    pub horizon_ns: u64,
    /// Discrete events processed (injections, arrivals, departures).
    pub events: u64,
    pub packets_injected: u64,
    pub packets_delivered: u64,
    pub packets_dropped: u64,
    pub bytes_delivered: u64,
    /// Average delivered Gbit/s per owner over the horizon — the billing
    /// input, same shape as the flow sim's.
    pub usage_by_owner: Vec<(EntityId, f64)>,
    pub per_tag: Vec<TagStats>,
    pub n_sources: usize,
    /// User-flows the sources aggregate (a pair source stands in for
    /// `ceil(rate / per_flow_rate)` user flows).
    pub n_user_flows: u64,
    /// Demand pairs with no route over the active links.
    pub unroutable_pairs: u32,
}

impl EngineReport {
    /// Total delivered / total offered bytes.
    pub fn overall_availability(&self) -> f64 {
        let offered: f64 = self.per_tag.iter().map(|t| t.offered_bytes).sum();
        if offered <= 0.0 {
            1.0
        } else {
            self.bytes_delivered as f64 / offered
        }
    }

    /// Availability of one traffic class, or `None` if no source carries
    /// the tag.
    pub fn availability_by_tag(&self, tag: &str) -> Option<f64> {
        self.per_tag.iter().find(|t| t.tag == tag).map(TagStats::availability)
    }

    /// Average delivered rate across all owners and classes, Gbit/s.
    pub fn delivered_gbps(&self) -> f64 {
        self.bytes_delivered as f64 * 8.0 / self.horizon_ns as f64
    }
}

/// One directional link: a rate server draining a FIFO byte buffer, plus
/// a propagation pipe for packets in flight. Buffer occupancy lives in
/// the separate [`Occupancy`] array: the tail-drop check — the single
/// hottest path under overload — then touches a compact cache-resident
/// table instead of this struct.
#[derive(Clone, Debug)]
struct DLink {
    /// Serialization cost, ns per byte (`+∞` for a zero-rate link).
    /// Precomputed from the capacity so the event loop multiplies
    /// instead of dividing per departure.
    ns_per_byte: f64,
    prop_ns: u64,
    queue: VecDeque<Packet>,
    /// A departure event is outstanding for the queue head.
    busy: bool,
    /// Packets crossing the link, with their arrival times. Propagation
    /// delay is constant per link and departures happen in time order, so
    /// arrivals are FIFO — only the pipe head needs a heap entry. A long
    /// fat link holds ~bandwidth×delay packets in flight; keeping them
    /// here instead of in the event heap keeps the heap at O(links +
    /// sources) entries rather than O(packets in flight).
    in_flight: VecDeque<(u64, Packet)>,
}

/// Byte occupancy of one directional link's buffer, split out of
/// [`DLink`] so the (majority, under overload) drop path reads 16 bytes
/// per arrival instead of a whole `DLink`.
#[derive(Clone, Copy, Debug)]
struct Occupancy {
    queued_bytes: u64,
    buffer_bytes: u64,
}

impl DLink {
    /// Store-and-forward serialization time for `bytes`, ns (≥ 1). A
    /// zero-rate link never drains: `∞` saturates to `u64::MAX` on the
    /// cast, which the saturating event arithmetic pushes past any
    /// horizon.
    fn tx_ns(&self, bytes: u32) -> u64 {
        (bytes as f64 * self.ns_per_byte).max(1.0) as u64
    }
}

/// A packet in flight. `route` indexes the interned route table; `hop` is
/// the directional link currently carrying it.
#[derive(Clone, Copy, Debug)]
struct Packet {
    route: u32,
    hop: u16,
    /// Total hops on the route, carried in the packet so delivery checks
    /// don't touch the route table.
    hops: u16,
    owner: u16,
    tag: u16,
    bytes: u32,
}

#[derive(Clone, Copy, Debug)]
struct Source {
    route: u32,
    /// First directional link of the route, denormalized so the inject
    /// path (the majority of events) skips the route table entirely.
    first_dl: u32,
    /// Total hops on the route (for [`Packet::hops`]).
    hops: u16,
    owner: u16,
    tag: u16,
    bytes: u32,
    /// Inter-packet gap at the (throttled, burst-scaled) injection rate.
    gap_ns: u64,
    kind: SourceKind,
    /// Deterministic phase stagger so sources don't all fire at t=0.
    phase_ns: u64,
}

/// A link event. Injections are not heap events: periodic source fires
/// are generated per time-slice in [`Engine::run`] and merge-sorted
/// against this queue instead.
#[derive(Clone, Copy)]
enum Ev {
    /// The head of directional link `dl`'s propagation pipe reaches the
    /// far end (and is forwarded to the next hop's queue).
    PipeOut(u32),
    /// The head of directional link `dl`'s FIFO finishes serializing.
    Depart(u32),
}

/// [`Ev`] packed into one word: kind bit in the high bit, payload (a
/// directional-link index, far below 2³¹ for any representable topology)
/// below. Keeps [`Entry`] at 16 bytes.
#[derive(Clone, Copy)]
struct EvWord(u32);

impl EvWord {
    const PAYLOAD: u32 = (1 << 31) - 1;

    fn pack(ev: Ev) -> Self {
        let (kind, payload) = match ev {
            Ev::PipeOut(dl) => (0, dl),
            Ev::Depart(dl) => (1, dl),
        };
        debug_assert!(payload <= Self::PAYLOAD);
        EvWord(kind << 31 | payload)
    }

    fn unpack(self) -> Ev {
        let payload = self.0 & Self::PAYLOAD;
        match self.0 >> 31 {
            0 => Ev::PipeOut(payload),
            _ => Ev::Depart(payload),
        }
    }
}

/// One scheduled event. Ordered by `(at, seq)`: earliest time first,
/// FIFO among equal times. `seq` wraps after 2³² pushes in one run —
/// ordering among equal-time events straddling a wrap deviates from
/// strict FIFO but stays deterministic, which is the property the engine
/// guarantees.
#[derive(Clone, Copy)]
struct Entry {
    at: u64,
    seq: u32,
    ev: EvWord,
}

// Min-heap on (at, seq): earliest time first, FIFO among equal times
// (std's BinaryHeap is a max-heap, hence the reversed comparisons).
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

/// The event queue: std's binary heap plus an in-place `replace_top`, so
/// the dominant pop-then-reschedule pattern costs a single sift-down
/// instead of a pop's sift plus a push's sift.
struct EventHeap {
    h: BinaryHeap<Entry>,
}

impl EventHeap {
    fn with_capacity(n: usize) -> Self {
        EventHeap { h: BinaryHeap::with_capacity(n) }
    }

    fn peek(&self) -> Option<&Entry> {
        self.h.peek()
    }

    fn push(&mut self, e: Entry) {
        self.h.push(e);
    }

    /// Replace the minimum with `e` and restore heap order (one sift).
    fn replace_top(&mut self, e: Entry) {
        *self.h.peek_mut().expect("replace_top on empty heap") = e;
    }

    /// Remove the minimum.
    fn pop_top(&mut self) {
        self.h.pop();
    }
}

/// Mutable scheduler state for one [`Engine::run`]: the link-event heap
/// plus every counter the report is assembled from. Split out of the
/// engine so the hot-path methods can borrow it mutably alongside the
/// engine's link and route tables.
struct RunState {
    lnk: EventHeap,
    seq: u32,
    events: u64,
    packets_injected: u64,
    packets_delivered: u64,
    packets_dropped: u64,
    bytes_delivered: u64,
    owner_bytes: Vec<u64>,
    tag_delivered: Vec<u64>,
    tag_dropped: Vec<u64>,
}

impl RunState {
    /// Enqueue a packet at a directional link: tail-drop on overflow,
    /// else start transmitting if the link is idle.
    fn arrive(
        &mut self,
        links: &mut [DLink],
        occ: &mut [Occupancy],
        horizon: u64,
        now: u64,
        dl: u32,
        pkt: Packet,
    ) {
        let o = &mut occ[dl as usize];
        if o.queued_bytes + pkt.bytes as u64 > o.buffer_bytes {
            self.packets_dropped += 1;
            self.tag_dropped[pkt.tag as usize] += 1;
            return;
        }
        o.queued_bytes += pkt.bytes as u64;
        let link = &mut links[dl as usize];
        link.queue.push_back(pkt);
        if !link.busy {
            link.busy = true;
            let at = now.saturating_add(link.tx_ns(pkt.bytes));
            if at <= horizon {
                self.lnk.push(Entry { at, seq: self.seq, ev: EvWord::pack(Ev::Depart(dl)) });
                self.seq = self.seq.wrapping_add(1);
            }
        }
    }

    /// Process every link event scheduled at or before `until`. The
    /// injection merge calls this with each fire's timestamp, so link
    /// events win ties at equal times — a fixed rule, which is all
    /// determinism needs.
    ///
    /// Most events schedule exactly one successor (the queue's next
    /// departure, the pipe's next exit) — replacing the heap top in
    /// place costs one sift-down where pop-then-push would cost two.
    fn drain_links(
        &mut self,
        links: &mut [DLink],
        occ: &mut [Occupancy],
        route_data: &[u32],
        route_starts: &[u32],
        horizon: u64,
        until: u64,
    ) {
        while let Some(&Entry { at: now, ev, .. }) = self.lnk.peek() {
            if now > until {
                break;
            }
            self.events += 1;
            match ev.unpack() {
                Ev::PipeOut(dl) => {
                    let link = &mut links[dl as usize];
                    let (_, pkt) = link.in_flight.pop_front().expect("pipe head exists");
                    if let Some(&(at, _)) = link.in_flight.front() {
                        self.lnk.replace_top(Entry { at, seq: self.seq, ev });
                        self.seq = self.seq.wrapping_add(1);
                    } else {
                        self.lnk.pop_top();
                    }
                    let next_dl =
                        route_data[(route_starts[pkt.route as usize] + pkt.hop as u32) as usize];
                    self.arrive(links, occ, horizon, now, next_dl, pkt);
                }
                Ev::Depart(dl) => {
                    let link = &mut links[dl as usize];
                    let pkt =
                        link.queue.pop_front().expect("a departure fires only for a queue head");
                    occ[dl as usize].queued_bytes -= pkt.bytes as u64;
                    let prop = link.prop_ns;
                    let succ = match link.queue.front() {
                        Some(head) => {
                            let at = now.saturating_add(link.tx_ns(head.bytes));
                            (at <= horizon).then_some(at)
                        }
                        None => {
                            link.busy = false;
                            None
                        }
                    };
                    match succ {
                        Some(at) => {
                            self.lnk.replace_top(Entry { at, seq: self.seq, ev });
                            self.seq = self.seq.wrapping_add(1);
                        }
                        None => self.lnk.pop_top(),
                    }
                    let t_arr = now.saturating_add(prop);
                    if t_arr > horizon {
                        continue; // still in flight at the horizon
                    }
                    let next_hop = pkt.hop + 1;
                    if next_hop == pkt.hops {
                        self.packets_delivered += 1;
                        self.bytes_delivered += pkt.bytes as u64;
                        self.tag_delivered[pkt.tag as usize] += pkt.bytes as u64;
                        if pkt.owner != NO_OWNER {
                            self.owner_bytes[pkt.owner as usize] += pkt.bytes as u64;
                        }
                    } else {
                        let forwarded = Packet { hop: next_hop, ..pkt };
                        let link = &mut links[dl as usize];
                        let pipe_idle = link.in_flight.is_empty();
                        link.in_flight.push_back((t_arr, forwarded));
                        if pipe_idle {
                            self.lnk.push(Entry {
                                at: t_arr,
                                seq: self.seq,
                                ev: EvWord::pack(Ev::PipeOut(dl)),
                            });
                            self.seq = self.seq.wrapping_add(1);
                        }
                    }
                }
            }
        }
    }
}

/// The packet engine. Build over a topology and the leased link set, add
/// sources (directly or from a traffic matrix), then [`Engine::run`].
pub struct Engine<'t> {
    graph: CapacityGraph<'t>,
    cfg: EngineConfig,
    links: Vec<DLink>,
    occ: Vec<Occupancy>,
    distance: Vec<f64>,
    /// Interned routes, flattened: route `r` is
    /// `route_data[route_starts[r]..route_starts[r + 1]]`. Contiguous so
    /// the per-hop lookups in the event loop stay in cache instead of
    /// chasing one heap allocation per route.
    route_data: Vec<u32>,
    route_starts: Vec<u32>,
    route_of: BTreeMap<(u32, u32), Option<u32>>,
    sources: Vec<Source>,
    owners: Vec<EntityId>,
    owner_of: BTreeMap<EntityId, u16>,
    tags: Vec<String>,
    tag_of: BTreeMap<String, u16>,
    tag_offered: Vec<f64>,
    n_user_flows: u64,
    unroutable_pairs: u32,
    rng: ChaCha8Rng,
}

impl<'t> Engine<'t> {
    pub fn new(
        topo: &'t PocTopology,
        active: &LinkSet,
        cfg: EngineConfig,
    ) -> Result<Self, EngineError> {
        if cfg.horizon_ns == 0 {
            return Err(EngineError::ZeroHorizon);
        }
        if cfg.pkt_bytes == 0 {
            return Err(EngineError::ZeroPacketSize);
        }
        if cfg.buffer_bytes < cfg.pkt_bytes as u64 {
            return Err(EngineError::BufferBelowPacket {
                buffer_bytes: cfg.buffer_bytes,
                pkt_bytes: cfg.pkt_bytes,
            });
        }
        for t in &cfg.throttles {
            if !(0.0..=1.0).contains(&t.factor) {
                return Err(EngineError::BadThrottleFactor {
                    tag: t.tag.clone(),
                    factor: t.factor,
                });
            }
        }
        let mut links = Vec::with_capacity(topo.n_links() * 2);
        let mut distance = Vec::with_capacity(topo.n_links());
        for l in &topo.links {
            let d = DLink {
                ns_per_byte: if l.capacity_gbps > 0.0 {
                    8.0 / l.capacity_gbps
                } else {
                    f64::INFINITY
                },
                prop_ns: (propagation_delay_ms(l.distance_km) * 1e6).round() as u64,
                queue: VecDeque::new(),
                busy: false,
                in_flight: VecDeque::new(),
            };
            links.push(d.clone()); // forward direction
            links.push(d); // reverse direction
            distance.push(l.distance_km);
        }
        let seed = cfg.seed;
        let occ =
            vec![Occupancy { queued_bytes: 0, buffer_bytes: cfg.buffer_bytes }; topo.n_links() * 2];
        Ok(Self {
            graph: CapacityGraph::new(topo, active),
            cfg,
            links,
            occ,
            distance,
            route_data: Vec::new(),
            route_starts: vec![0],
            route_of: BTreeMap::new(),
            sources: Vec::new(),
            owners: Vec::new(),
            owner_of: BTreeMap::new(),
            tags: Vec::new(),
            tag_of: BTreeMap::new(),
            tag_offered: Vec::new(),
            n_user_flows: 0,
            unroutable_pairs: 0,
            rng: ChaCha8Rng::seed_from_u64(seed),
        })
    }

    /// Intern the distance-shortest route `src → dst` over the active
    /// links as a sequence of directional link indices.
    fn route(&mut self, src: RouterId, dst: RouterId) -> Option<u32> {
        if let Some(&cached) = self.route_of.get(&(src.0, dst.0)) {
            return cached;
        }
        let distance = &self.distance;
        let found = self
            .graph
            .shortest_path(src, dst, |l, _| distance[l.index()], |_, _| true)
            .map(|path| {
                let dirs = self.graph.path_dirs(src, &path);
                let id = (self.route_starts.len() - 1) as u32;
                self.route_data.extend(path.iter().zip(dirs).map(|(&l, d)| {
                    (l.index() * 2
                        + match d {
                            Dir::Fwd => 0,
                            Dir::Rev => 1,
                        }) as u32
                }));
                self.route_starts.push(self.route_data.len() as u32);
                id
            });
        self.route_of.insert((src.0, dst.0), found);
        found
    }

    fn intern_owner(&mut self, owner: Option<EntityId>) -> Result<u16, EngineError> {
        let Some(owner) = owner else { return Ok(NO_OWNER) };
        if let Some(&id) = self.owner_of.get(&owner) {
            return Ok(id);
        }
        if self.owners.len() >= NO_OWNER as usize {
            return Err(EngineError::TooManyClasses);
        }
        let id = self.owners.len() as u16;
        self.owners.push(owner);
        self.owner_of.insert(owner, id);
        Ok(id)
    }

    fn intern_tag(&mut self, tag: &str) -> Result<u16, EngineError> {
        if let Some(&id) = self.tag_of.get(tag) {
            return Ok(id);
        }
        if self.tags.len() >= NO_OWNER as usize {
            return Err(EngineError::TooManyClasses);
        }
        let id = self.tags.len() as u16;
        self.tags.push(tag.to_string());
        self.tag_of.insert(tag.to_string(), id);
        self.tag_offered.push(0.0);
        Ok(id)
    }

    /// Add one aggregate source standing in for `user_flows` user flows.
    /// Returns `false` (without adding) when no route exists over the
    /// active links; the pair is counted in `unroutable_pairs`.
    // One parameter per independent knob of the source; bundling them
    // into a spec struct would just move the field list.
    #[allow(clippy::too_many_arguments)]
    pub fn add_source(
        &mut self,
        src: RouterId,
        dst: RouterId,
        rate_gbps: f64,
        owner: Option<EntityId>,
        tag: &str,
        kind: SourceKind,
        user_flows: u64,
    ) -> Result<bool, EngineError> {
        if !(rate_gbps.is_finite() && rate_gbps >= 0.0) {
            return Err(EngineError::BadRate { gbps: rate_gbps });
        }
        if src == dst {
            return Err(EngineError::LoopSource { router: src });
        }
        if let SourceKind::OnOff { on_ns, .. } = kind {
            if on_ns == 0 {
                return Err(EngineError::ZeroOnWindow);
            }
        }
        let Some(route) = self.route(src, dst) else {
            self.unroutable_pairs += 1;
            return Ok(false);
        };
        let owner_id = self.intern_owner(owner)?;
        let tag_id = self.intern_tag(tag)?;
        // Offered intent at the configured (unthrottled) rate: bits/ns ×
        // ns / 8 = bytes.
        self.tag_offered[tag_id as usize] += rate_gbps * self.cfg.horizon_ns as f64 / 8.0;
        self.n_user_flows += user_flows;
        let throttle: f64 = self
            .cfg
            .throttles
            .iter()
            .filter(|t| t.tag == tag)
            .map(|t| t.factor)
            .fold(1.0, f64::min);
        let peak = match kind {
            SourceKind::Persistent => rate_gbps * throttle,
            SourceKind::OnOff { on_ns, off_ns } => {
                rate_gbps * throttle * (on_ns + off_ns) as f64 / on_ns as f64
            }
        };
        if peak <= 0.0 {
            // Zero rate (or throttled to zero): offers, never injects.
            return Ok(true);
        }
        let gap_ns = ((self.cfg.pkt_bytes as f64 * 8.0) / peak).max(1.0) as u64;
        let phase_ns = match kind {
            SourceKind::Persistent => self.rng.gen_range(0..gap_ns),
            SourceKind::OnOff { on_ns, off_ns } => self.rng.gen_range(0..on_ns + off_ns),
        };
        let start = self.route_starts[route as usize] as usize;
        let end = self.route_starts[route as usize + 1] as usize;
        self.sources.push(Source {
            route,
            first_dl: self.route_data[start],
            hops: (end - start) as u16,
            owner: owner_id,
            tag: tag_id,
            bytes: self.cfg.pkt_bytes,
            gap_ns,
            kind,
            phase_ns,
        });
        Ok(true)
    }

    /// Add one source per demand pair, classifying each by its source
    /// router (`classify` returns the billing owner and traffic tag).
    /// Returns the number of routable sources added.
    pub fn add_pair_demands<F>(
        &mut self,
        demands: &[poc_traffic::PairDemand],
        kind: SourceKind,
        mut classify: F,
    ) -> Result<usize, EngineError>
    where
        F: FnMut(RouterId) -> (Option<EntityId>, String),
    {
        let mut added = 0;
        for d in demands {
            let (owner, tag) = classify(d.src);
            if self.add_source(d.src, d.dst, d.rate_gbps, owner, &tag, kind, d.user_flows)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Convenience: scale a traffic matrix to user-flows and add every
    /// pair as a source. Returns the number of routable sources added.
    pub fn add_traffic_matrix<F>(
        &mut self,
        tm: &poc_traffic::TrafficMatrix,
        model: &poc_traffic::UserFlowModel,
        kind: SourceKind,
        classify: F,
    ) -> Result<usize, EngineError>
    where
        F: FnMut(RouterId) -> (Option<EntityId>, String),
    {
        let demands = poc_traffic::pair_demands(tm, model);
        self.add_pair_demands(&demands, kind, classify)
    }

    pub fn n_sources(&self) -> usize {
        self.sources.len()
    }

    pub fn n_user_flows(&self) -> u64 {
        self.n_user_flows
    }

    /// Run to the horizon and report. Consumes the engine: queue state is
    /// not reusable across runs (build a fresh engine per trial).
    pub fn run(mut self) -> EngineReport {
        let _span = poc_obs::span!("netsim.engine.run");
        let horizon = self.cfg.horizon_ns;
        let mut rt = RunState {
            lnk: EventHeap::with_capacity(self.links.len()),
            seq: 0,
            events: 0,
            packets_injected: 0,
            packets_delivered: 0,
            packets_dropped: 0,
            bytes_delivered: 0,
            owner_bytes: vec![0u64; self.owners.len()],
            tag_delivered: vec![0u64; self.tags.len()],
            tag_dropped: vec![0u64; self.tags.len()],
        };

        // Injections never touch the heap: every source is a periodic
        // arithmetic progression, so each time-slice's fires are
        // generated by scanning the source table, sorted on (time,
        // source), and merge-joined against the link-event queue. The tie
        // rule at equal timestamps — link events first, then injections
        // in source order — is fixed, which is all the determinism
        // guarantee needs. This keeps the heap at O(busy links) entries
        // and replaces the inject heap's per-event full-depth sift with a
        // linear scan and a sort of an almost-sorted batch.
        const BUCKET_NS: u64 = 8192;
        let mut next_at: Vec<u64> = self.sources.iter().map(|s| s.phase_ns).collect();
        let mut batch: Vec<(u64, u32)> = Vec::new();
        let mut bucket_start: u64 = 0;
        while bucket_start <= horizon {
            let bucket_end = bucket_start.saturating_add(BUCKET_NS);
            batch.clear();
            for (i, s) in self.sources.iter().enumerate() {
                let mut t = next_at[i];
                if t >= bucket_end {
                    continue;
                }
                while t < bucket_end {
                    if t > horizon {
                        // Park the source so later buckets skip it.
                        t = u64::MAX;
                        break;
                    }
                    match s.kind {
                        SourceKind::Persistent => {
                            batch.push((t, i as u32));
                            t = t.saturating_add(s.gap_ns);
                        }
                        SourceKind::OnOff { on_ns, off_ns } => {
                            let cycle = on_ns + off_ns;
                            let rel = (t + cycle - s.phase_ns % cycle) % cycle;
                            if rel < on_ns {
                                batch.push((t, i as u32));
                                t = t.saturating_add(s.gap_ns);
                            } else {
                                // Off window: skip to the next on window.
                                t = t.saturating_add(cycle - rel);
                            }
                        }
                    }
                }
                next_at[i] = t;
            }
            batch.sort_unstable();
            for &(at, si) in &batch {
                rt.drain_links(
                    &mut self.links,
                    &mut self.occ,
                    &self.route_data,
                    &self.route_starts,
                    horizon,
                    at,
                );
                rt.events += 1;
                rt.packets_injected += 1;
                let s = self.sources[si as usize];
                let pkt = Packet {
                    route: s.route,
                    hop: 0,
                    hops: s.hops,
                    owner: s.owner,
                    tag: s.tag,
                    bytes: s.bytes,
                };
                rt.arrive(&mut self.links, &mut self.occ, horizon, at, s.first_dl, pkt);
            }
            bucket_start = bucket_end;
            if bucket_end == u64::MAX {
                break;
            }
        }
        // Injections are exhausted; run the queues dry to the horizon.
        rt.drain_links(
            &mut self.links,
            &mut self.occ,
            &self.route_data,
            &self.route_starts,
            horizon,
            horizon,
        );
        let RunState {
            events,
            packets_injected,
            packets_delivered,
            packets_dropped,
            bytes_delivered,
            owner_bytes,
            tag_delivered,
            tag_dropped,
            ..
        } = rt;

        poc_obs::counter!("netsim.engine.events").add(events);
        poc_obs::counter!("netsim.engine.packets_injected").add(packets_injected);
        poc_obs::counter!("netsim.engine.packets_delivered").add(packets_delivered);
        poc_obs::counter!("netsim.engine.packets_dropped").add(packets_dropped);

        let mut usage_by_owner: Vec<(EntityId, f64)> = self
            .owners
            .iter()
            .zip(&owner_bytes)
            .map(|(&o, &b)| (o, b as f64 * 8.0 / horizon as f64))
            .collect();
        usage_by_owner.sort_by_key(|&(o, _)| o);
        let per_tag: Vec<TagStats> = self
            .tags
            .iter()
            .enumerate()
            .map(|(i, tag)| TagStats {
                tag: tag.clone(),
                offered_bytes: self.tag_offered[i],
                delivered_bytes: tag_delivered[i],
                dropped_pkts: tag_dropped[i],
            })
            .collect();
        EngineReport {
            horizon_ns: horizon,
            events,
            packets_injected,
            packets_delivered,
            packets_dropped,
            bytes_delivered,
            usage_by_owner,
            per_tag,
            n_sources: self.sources.len(),
            n_user_flows: self.n_user_flows,
            unroutable_pairs: self.unroutable_pairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::builder::two_bp_square;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    fn engine(cfg: EngineConfig) -> Engine<'static> {
        // Leak the small test topology: Engine borrows it and tests are
        // simpler with a 'static instance.
        let topo: &'static PocTopology = Box::leak(Box::new(two_bp_square()));
        let all = LinkSet::full(topo.n_links());
        Engine::new(topo, &all, cfg).unwrap()
    }

    /// Propagation delay of the direct `a`–`b` link (which is also the
    /// distance-shortest route for every pair used in these tests), ns.
    fn direct_prop_ns(a: RouterId, b: RouterId) -> u64 {
        let topo = two_bp_square();
        let l = topo.links.iter().find(|l| l.connects(a, b)).expect("direct link exists");
        (propagation_delay_ms(l.distance_km) * 1e6).round() as u64
    }

    /// What a source at `rate` Gbit/s can deliver before the horizon: the
    /// last `prop` ns of injections are still in flight when time ends.
    fn edge_adjusted(rate: f64, horizon_ns: u64, prop_ns: u64) -> f64 {
        rate * (horizon_ns.saturating_sub(prop_ns)) as f64 / horizon_ns as f64
    }

    const H100MS: u64 = 100_000_000;

    #[test]
    fn uncongested_source_delivers_its_rate() {
        let mut e = engine(EngineConfig { horizon_ns: H100MS, ..Default::default() });
        e.add_source(r(0), r(1), 10.0, None, "a", SourceKind::Persistent, 1).unwrap();
        let rep = e.run();
        assert!(rep.packets_delivered > 0, "{rep:?}");
        assert_eq!(rep.packets_dropped, 0);
        // Everything offered is delivered except the horizon edge effect
        // (packets still crossing 1300 km of fibre when time ends).
        let expected = edge_adjusted(10.0, H100MS, direct_prop_ns(r(0), r(1)));
        let gbps = rep.delivered_gbps();
        assert!((gbps - expected).abs() < 0.2, "delivered {gbps} Gbit/s, expected {expected}");
        assert!(rep.overall_availability() > 0.9, "{rep:?}");
    }

    #[test]
    fn overload_tail_drops_and_caps_delivery_at_link_rate() {
        // 300 Gbit/s offered into a 100 Gbit/s direct link: the FIFO
        // fills, tail drops appear, goodput ≈ line rate (minus the
        // horizon edge effect).
        let mut e = engine(EngineConfig { horizon_ns: H100MS, ..Default::default() });
        for (i, tag) in ["x", "y", "z"].iter().enumerate() {
            e.add_source(
                r(0),
                r(1),
                100.0,
                Some(EntityId(i as u32)),
                tag,
                SourceKind::Persistent,
                1,
            )
            .unwrap();
        }
        let rep = e.run();
        assert!(rep.packets_dropped > 0, "overload must tail-drop: {rep:?}");
        let line = edge_adjusted(100.0, H100MS, direct_prop_ns(r(0), r(1)));
        let gbps = rep.delivered_gbps();
        assert!(gbps < line + 2.0, "delivery cannot exceed line rate: {gbps} vs {line}");
        assert!(gbps > line - 5.0, "the link should run near saturation: {gbps} vs {line}");
        assert!(rep.overall_availability() < 0.5, "{rep:?}");
    }

    #[test]
    fn same_seed_same_inputs_byte_identical_reports() {
        let build = || {
            let mut e = engine(EngineConfig { horizon_ns: 2_000_000, ..Default::default() });
            e.add_source(r(0), r(1), 40.0, Some(EntityId(7)), "a", SourceKind::Persistent, 1000)
                .unwrap();
            e.add_source(
                r(2),
                r(3),
                25.0,
                Some(EntityId(8)),
                "b",
                SourceKind::OnOff { on_ns: 100_000, off_ns: 100_000 },
                500,
            )
            .unwrap();
            e.add_source(r(1), r(2), 60.0, None, "a", SourceKind::Persistent, 1).unwrap();
            e.run()
        };
        let (a, b) = (build(), build());
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "reports must be byte-identical");
    }

    #[test]
    fn different_seed_different_phases() {
        let run = |seed| {
            let mut e = engine(EngineConfig { seed, horizon_ns: 1_000_000, ..Default::default() });
            e.add_source(r(0), r(1), 40.0, None, "a", SourceKind::Persistent, 1).unwrap();
            e.run()
        };
        // Same totals to within edge effects, but not the same event count
        // trace necessarily — only check it still runs deterministically.
        let (a, b) = (run(1), run(2));
        assert!((a.delivered_gbps() - b.delivered_gbps()).abs() < 1.0);
    }

    #[test]
    fn store_and_forward_latency_gates_first_delivery() {
        // A single packet's end-to-end latency is at least the sum of
        // per-hop serialization + propagation; nothing can be delivered
        // if the horizon is below the path's propagation delay.
        let topo: &'static PocTopology = Box::leak(Box::new(two_bp_square()));
        let all = LinkSet::full(topo.n_links());
        let direct = topo
            .links
            .iter()
            .find(|l| l.connects(r(0), r(1)))
            .expect("square has a direct 0-1 link");
        let prop_ns = (propagation_delay_ms(direct.distance_km) * 1e6).round() as u64;
        assert!(prop_ns > 0, "test topology links span real distance");
        let mut e =
            Engine::new(topo, &all, EngineConfig { horizon_ns: prop_ns / 2, ..Default::default() })
                .unwrap();
        e.add_source(r(0), r(1), 50.0, None, "a", SourceKind::Persistent, 1).unwrap();
        let rep = e.run();
        assert!(rep.packets_injected > 0);
        assert_eq!(
            rep.packets_delivered, 0,
            "nothing outruns propagation: prop {prop_ns} ns, horizon {} ns",
            rep.horizon_ns
        );
    }

    #[test]
    fn onoff_source_halves_throughput_at_fifty_percent_duty() {
        // Duty-cycled injection preserves the configured average rate:
        // delivery matches a persistent source of the same rate.
        let run = |kind| {
            let mut e = engine(EngineConfig { horizon_ns: H100MS, ..Default::default() });
            e.add_source(r(0), r(1), 20.0, None, "a", kind, 1).unwrap();
            e.run().delivered_gbps()
        };
        let persistent = run(SourceKind::Persistent);
        let onoff = run(SourceKind::OnOff { on_ns: 500_000, off_ns: 500_000 });
        assert!((persistent - onoff).abs() < 1.0, "persistent {persistent} vs on/off {onoff}");
        let expected = edge_adjusted(20.0, H100MS, direct_prop_ns(r(0), r(1)));
        assert!((onoff - expected).abs() < 1.0, "average rate preserved: {onoff} vs {expected}");
    }

    #[test]
    fn usage_attribution_sums_per_owner() {
        let mut e = engine(EngineConfig { horizon_ns: H100MS, ..Default::default() });
        let owner = EntityId(5);
        e.add_source(r(0), r(1), 30.0, Some(owner), "a", SourceKind::Persistent, 1).unwrap();
        e.add_source(r(1), r(2), 10.0, Some(owner), "b", SourceKind::Persistent, 1).unwrap();
        e.add_source(r(2), r(3), 10.0, None, "c", SourceKind::Persistent, 1).unwrap();
        let rep = e.run();
        assert_eq!(rep.usage_by_owner.len(), 1);
        let (o, gbps) = rep.usage_by_owner[0];
        assert_eq!(o, owner);
        let expected = edge_adjusted(30.0, H100MS, direct_prop_ns(r(0), r(1)))
            + edge_adjusted(10.0, H100MS, direct_prop_ns(r(1), r(2)));
        assert!((gbps - expected).abs() < 0.3, "owner usage {gbps} ≈ {expected}");
        // Unattributed bytes are delivered but not billed.
        assert!(rep.bytes_delivered as f64 * 8.0 / rep.horizon_ns as f64 > gbps);
    }

    #[test]
    fn throttle_shows_up_as_lost_availability() {
        let cfg = EngineConfig {
            horizon_ns: H100MS,
            throttles: vec![IngressThrottle { tag: "victim".into(), factor: 0.25 }],
            ..Default::default()
        };
        let mut e = engine(cfg);
        e.add_source(r(0), r(1), 40.0, None, "victim", SourceKind::Persistent, 1).unwrap();
        e.add_source(r(2), r(1), 40.0, None, "control", SourceKind::Persistent, 1).unwrap();
        let rep = e.run();
        let victim = rep.availability_by_tag("victim").unwrap();
        let control = rep.availability_by_tag("control").unwrap();
        assert!((victim - 0.25).abs() < 0.05, "victim availability {victim}");
        assert!(control > 0.93, "control availability {control}");
    }

    #[test]
    fn unroutable_pair_counted_not_fatal() {
        let topo: &'static PocTopology = Box::leak(Box::new(two_bp_square()));
        // Restrict to one direct link: r2/r3 are unreachable islands.
        let direct = topo.links.iter().find(|l| l.connects(r(0), r(1))).unwrap().id;
        let only = LinkSet::from_links(topo.n_links(), [direct]);
        let mut e = Engine::new(topo, &only, EngineConfig::default()).unwrap();
        assert!(e.add_source(r(0), r(1), 5.0, None, "a", SourceKind::Persistent, 1).unwrap());
        assert!(!e.add_source(r(2), r(3), 5.0, None, "a", SourceKind::Persistent, 1).unwrap());
        let rep = e.run();
        assert_eq!(rep.unroutable_pairs, 1);
        assert_eq!(rep.n_sources, 1);
        assert!(rep.packets_delivered > 0);
    }

    #[test]
    fn construction_and_admission_errors_are_typed() {
        let topo = two_bp_square();
        let all = LinkSet::full(topo.n_links());
        assert_eq!(
            Engine::new(&topo, &all, EngineConfig { horizon_ns: 0, ..Default::default() })
                .err()
                .unwrap(),
            EngineError::ZeroHorizon
        );
        assert!(matches!(
            Engine::new(&topo, &all, EngineConfig { buffer_bytes: 100, ..Default::default() }),
            Err(EngineError::BufferBelowPacket { .. })
        ));
        assert!(matches!(
            Engine::new(
                &topo,
                &all,
                EngineConfig {
                    throttles: vec![IngressThrottle { tag: "t".into(), factor: 1.5 }],
                    ..Default::default()
                }
            ),
            Err(EngineError::BadThrottleFactor { .. })
        ));
        let mut e = Engine::new(&topo, &all, EngineConfig::default()).unwrap();
        assert!(matches!(
            e.add_source(r(0), r(0), 1.0, None, "a", SourceKind::Persistent, 1),
            Err(EngineError::LoopSource { .. })
        ));
        assert!(matches!(
            e.add_source(r(0), r(1), f64::NAN, None, "a", SourceKind::Persistent, 1),
            Err(EngineError::BadRate { .. })
        ));
        assert!(matches!(
            e.add_source(r(0), r(1), 1.0, None, "a", SourceKind::OnOff { on_ns: 0, off_ns: 5 }, 1),
            Err(EngineError::ZeroOnWindow)
        ));
    }

    #[test]
    fn matrix_ingestion_scales_to_user_flows() {
        let topo: &'static PocTopology = Box::leak(Box::new(two_bp_square()));
        let all = LinkSet::full(topo.n_links());
        let mut tm = poc_traffic::TrafficMatrix::zero(topo.n_routers());
        tm.set(r(0), r(1), 8.0);
        tm.set(r(2), r(3), 4.0);
        let mut e =
            Engine::new(topo, &all, EngineConfig { horizon_ns: H100MS, ..Default::default() })
                .unwrap();
        let model = poc_traffic::UserFlowModel { per_flow_gbps: 0.004 };
        let added = e
            .add_traffic_matrix(&tm, &model, SourceKind::Persistent, |router| {
                (Some(EntityId(router.0)), "tm".into())
            })
            .unwrap();
        assert_eq!(added, 2);
        assert_eq!(e.n_user_flows(), 2000 + 1000);
        let rep = e.run();
        assert_eq!(rep.n_user_flows, 3000);
        assert_eq!(rep.usage_by_owner.len(), 2);
        assert!(rep.overall_availability() > 0.9, "{rep:?}");
    }
}

//! Failure drills: does the leased fabric deliver under fibre cuts?
//!
//! Experiment E-R1: the auction's resilience constraints (#2/#3) buy
//! backup capacity; a drill injects outages on the busiest selected links
//! and measures how much of the offered traffic is still delivered. Sets
//! selected under stricter constraints should show higher availability.

use crate::sim::{LinkOutage, SimConfig, SimError, SimReport, Simulator};
use poc_flow::{route_tm, LinkSet};
use poc_topology::{LinkId, PocTopology};
use poc_traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};

/// Drill parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DrillSpec {
    /// How many of the most-loaded links to fail (one at a time,
    /// back-to-back windows).
    pub n_failures: usize,
    /// Duration of each failure window, hours.
    pub outage_hours: f64,
    /// Gap between failure windows, hours.
    pub gap_hours: f64,
}

impl Default for DrillSpec {
    fn default() -> Self {
        Self { n_failures: 5, outage_hours: 1.0, gap_hours: 0.5 }
    }
}

/// Drill outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DrillReport {
    pub availability: f64,
    pub total_reroutes: u32,
    /// Links failed, in schedule order.
    pub failed_links: Vec<LinkId>,
    pub sim: SimReport,
}

/// Errors from [`run_drill`]. A bad [`DrillSpec`] is a caller
/// configuration problem and must surface as a value, not a panic —
/// library callers (the CLI, benches, remote drivers) feed specs from
/// user input.
#[derive(Clone, Debug, PartialEq)]
pub enum DrillError {
    /// `n_failures == 0` or a non-positive/non-finite outage window:
    /// the drill would fail nothing or never end.
    DegenerateSpec { n_failures: usize, outage_hours: f64 },
    /// The base traffic matrix could not be routed over the active set.
    Route(poc_flow::RouteError),
    /// The derived simulation was rejected by the simulator (e.g. a
    /// negative `gap_hours` producing an unordered outage interval).
    Sim(SimError),
}

impl std::fmt::Display for DrillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DrillError::DegenerateSpec { n_failures, outage_hours } => write!(
                f,
                "degenerate drill spec: n_failures {n_failures}, outage_hours {outage_hours} \
                 (need >= 1 failure and a positive finite outage)"
            ),
            DrillError::Route(e) => write!(f, "drill unroutable: {e}"),
            DrillError::Sim(e) => write!(f, "drill simulation rejected: {e}"),
        }
    }
}

impl std::error::Error for DrillError {}

impl From<poc_flow::RouteError> for DrillError {
    fn from(e: poc_flow::RouteError) -> Self {
        DrillError::Route(e)
    }
}

impl From<SimError> for DrillError {
    fn from(e: SimError) -> Self {
        DrillError::Sim(e)
    }
}

/// Run a drill: route the matrix over `active` to find the busiest links,
/// then fail the top `spec.n_failures` of them one after another while the
/// matrix's flows run continuously.
pub fn run_drill(
    topo: &PocTopology,
    active: &LinkSet,
    tm: &TrafficMatrix,
    spec: &DrillSpec,
) -> Result<DrillReport, DrillError> {
    if spec.n_failures == 0
        || !spec.outage_hours.is_finite()
        || spec.outage_hours <= 0.0
        || !spec.gap_hours.is_finite()
        || spec.gap_hours < 0.0
    {
        return Err(DrillError::DegenerateSpec {
            n_failures: spec.n_failures,
            outage_hours: spec.outage_hours,
        });
    }
    let base = route_tm(topo, active, tm)?;
    // Busiest links by total directed load.
    let mut by_load: Vec<(f64, LinkId)> = (0..topo.n_links())
        .filter(|&i| active.contains(LinkId::from_index(i)))
        .map(|i| (base.load_fwd[i] + base.load_rev[i], LinkId::from_index(i)))
        .collect();
    by_load.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let failed_links: Vec<LinkId> = by_load.iter().take(spec.n_failures).map(|&(_, l)| l).collect();

    let window = spec.outage_hours + spec.gap_hours;
    let horizon = window * failed_links.len() as f64 + spec.gap_hours;
    let outages = failed_links
        .iter()
        .enumerate()
        .map(|(i, &link)| LinkOutage {
            link,
            down_at: spec.gap_hours + i as f64 * window,
            up_at: spec.gap_hours + i as f64 * window + spec.outage_hours,
        })
        .collect();

    let mut sim =
        Simulator::new(topo, active, SimConfig { horizon, outages, throttles: Vec::new() })?;
    // Traffic-engineered placement from the base routing: each split share
    // is pinned to its path and falls back to dynamic rerouting during an
    // outage — the behaviour the resilience constraints provision for.
    for flow in &base.flows {
        for (path, gbps) in &flow.paths {
            let mut f = crate::sim::FlowSpec::persistent(flow.src, flow.dst, *gbps, horizon, "tm");
            f.pinned_path = Some(path.clone());
            sim.add_flow(f)?;
        }
    }
    let report = sim.run();
    Ok(DrillReport {
        availability: report.overall_availability(),
        total_reroutes: report.total_reroutes(),
        failed_links,
        sim: report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::builder::two_bp_square;
    use poc_topology::RouterId;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    #[test]
    fn redundant_fabric_survives_drill() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 10.0);
        tm.set(r(2), r(3), 5.0);
        let rep = run_drill(
            &t,
            &all,
            &tm,
            &DrillSpec { n_failures: 3, outage_hours: 1.0, gap_hours: 0.5 },
        )
        .unwrap();
        assert!(rep.availability > 0.99, "{rep:?}");
        assert!(rep.total_reroutes > 0, "failures must have caused reroutes");
        assert_eq!(rep.failed_links.len(), 3);
    }

    #[test]
    fn fragile_fabric_loses_traffic() {
        // Spanning tree: every failure severs something.
        let t = two_bp_square();
        let tree = LinkSet::from_links(t.n_links(), [LinkId(0), LinkId(1), LinkId(5)]);
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 10.0);
        let rep = run_drill(
            &t,
            &tree,
            &tm,
            &DrillSpec { n_failures: 1, outage_hours: 1.0, gap_hours: 0.5 },
        )
        .unwrap();
        assert!(rep.availability < 1.0, "{rep:?}");
    }

    #[test]
    fn degenerate_spec_is_a_typed_error_not_a_panic() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let tm = TrafficMatrix::zero(t.n_routers());
        for spec in [
            DrillSpec { n_failures: 0, outage_hours: 1.0, gap_hours: 0.5 },
            DrillSpec { n_failures: 3, outage_hours: 0.0, gap_hours: 0.5 },
            DrillSpec { n_failures: 3, outage_hours: -1.0, gap_hours: 0.5 },
            DrillSpec { n_failures: 3, outage_hours: f64::NAN, gap_hours: 0.5 },
            DrillSpec { n_failures: 3, outage_hours: f64::INFINITY, gap_hours: 0.5 },
            DrillSpec { n_failures: 3, outage_hours: 1.0, gap_hours: -0.5 },
            DrillSpec { n_failures: 3, outage_hours: 1.0, gap_hours: f64::NAN },
        ] {
            let err = run_drill(&t, &all, &tm, &spec).unwrap_err();
            assert!(matches!(err, DrillError::DegenerateSpec { .. }), "{spec:?} -> {err:?}");
        }
    }

    #[test]
    fn busiest_link_failed_first() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 50.0); // direct link carries the most
        let rep = run_drill(&t, &all, &tm, &DrillSpec::default()).unwrap();
        let direct = t.links.iter().find(|l| l.connects(r(0), r(1))).unwrap().id;
        assert_eq!(rep.failed_links[0], direct);
    }
}

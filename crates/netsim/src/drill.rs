//! Failure drills: does the leased fabric deliver under fibre cuts?
//!
//! Experiment E-R1: the auction's resilience constraints (#2/#3) buy
//! backup capacity; a drill injects outages on the busiest selected links
//! and measures how much of the offered traffic is still delivered. Sets
//! selected under stricter constraints should show higher availability.

use crate::sim::{LinkOutage, SimConfig, SimError, SimReport, Simulator};
use poc_flow::{route_tm, LinkSet};
use poc_topology::{LinkId, PocTopology};
use poc_traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};

/// Drill parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DrillSpec {
    /// How many of the most-loaded links to fail (one at a time,
    /// back-to-back windows).
    pub n_failures: usize,
    /// Duration of each failure window, hours.
    pub outage_hours: f64,
    /// Gap between failure windows, hours.
    pub gap_hours: f64,
}

impl Default for DrillSpec {
    fn default() -> Self {
        Self { n_failures: 5, outage_hours: 1.0, gap_hours: 0.5 }
    }
}

/// Drill outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DrillReport {
    pub availability: f64,
    pub total_reroutes: u32,
    /// Links failed, in schedule order.
    pub failed_links: Vec<LinkId>,
    pub sim: SimReport,
}

/// Errors from [`run_drill`]. A bad [`DrillSpec`] is a caller
/// configuration problem and must surface as a value, not a panic —
/// library callers (the CLI, benches, remote drivers) feed specs from
/// user input.
#[derive(Clone, Debug, PartialEq)]
pub enum DrillError {
    /// `n_failures == 0` or a non-positive/non-finite outage window:
    /// the drill would fail nothing or never end.
    DegenerateSpec { n_failures: usize, outage_hours: f64 },
    /// The base traffic matrix could not be routed over the active set.
    Route(poc_flow::RouteError),
    /// The derived simulation was rejected by the simulator (e.g. a
    /// negative `gap_hours` producing an unordered outage interval).
    Sim(SimError),
}

impl std::fmt::Display for DrillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DrillError::DegenerateSpec { n_failures, outage_hours } => write!(
                f,
                "degenerate drill spec: n_failures {n_failures}, outage_hours {outage_hours} \
                 (need >= 1 failure and a positive finite outage)"
            ),
            DrillError::Route(e) => write!(f, "drill unroutable: {e}"),
            DrillError::Sim(e) => write!(f, "drill simulation rejected: {e}"),
        }
    }
}

impl std::error::Error for DrillError {}

impl From<poc_flow::RouteError> for DrillError {
    fn from(e: poc_flow::RouteError) -> Self {
        DrillError::Route(e)
    }
}

impl From<SimError> for DrillError {
    fn from(e: SimError) -> Self {
        DrillError::Sim(e)
    }
}

/// Run a drill: route the matrix over `active` to find the busiest links,
/// then fail the top `spec.n_failures` of them one after another while the
/// matrix's flows run continuously.
pub fn run_drill(
    topo: &PocTopology,
    active: &LinkSet,
    tm: &TrafficMatrix,
    spec: &DrillSpec,
) -> Result<DrillReport, DrillError> {
    if spec.n_failures == 0
        || !spec.outage_hours.is_finite()
        || spec.outage_hours <= 0.0
        || !spec.gap_hours.is_finite()
        || spec.gap_hours < 0.0
    {
        return Err(DrillError::DegenerateSpec {
            n_failures: spec.n_failures,
            outage_hours: spec.outage_hours,
        });
    }
    let base = route_tm(topo, active, tm)?;
    // Busiest links by total directed load.
    let mut by_load: Vec<(f64, LinkId)> = (0..topo.n_links())
        .filter(|&i| active.contains(LinkId::from_index(i)))
        .map(|i| (base.load_fwd[i] + base.load_rev[i], LinkId::from_index(i)))
        .collect();
    by_load.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let failed_links: Vec<LinkId> = by_load.iter().take(spec.n_failures).map(|&(_, l)| l).collect();

    let window = spec.outage_hours + spec.gap_hours;
    let horizon = window * failed_links.len() as f64 + spec.gap_hours;
    let outages = failed_links
        .iter()
        .enumerate()
        .map(|(i, &link)| LinkOutage {
            link,
            down_at: spec.gap_hours + i as f64 * window,
            up_at: spec.gap_hours + i as f64 * window + spec.outage_hours,
        })
        .collect();

    let mut sim =
        Simulator::new(topo, active, SimConfig { horizon, outages, throttles: Vec::new() })?;
    // Traffic-engineered placement from the base routing: each split share
    // is pinned to its path and falls back to dynamic rerouting during an
    // outage — the behaviour the resilience constraints provision for.
    for flow in &base.flows {
        for (path, gbps) in &flow.paths {
            let mut f = crate::sim::FlowSpec::persistent(flow.src, flow.dst, *gbps, horizon, "tm");
            f.pinned_path = Some(path.clone());
            sim.add_flow(f)?;
        }
    }
    let report = sim.run();
    Ok(DrillReport {
        availability: report.overall_availability(),
        total_reroutes: report.total_reroutes(),
        failed_links,
        sim: report,
    })
}

// ---------------------------------------------------------------------------
// Transition drills: fail the fabric *while it is migrating*.
// ---------------------------------------------------------------------------

use poc_flow::{AcceptabilityOracle, Constraint, WarmOracle};
use poc_transition::{
    execute_transition, plan_transition, PlanConfig, TransitionEvent, TransitionHooks,
    TransitionOp, TransitionOutcome,
};
use std::collections::HashSet;

/// Parameters of a mid-transition failure drill: which poll (round
/// boundary) the outside world intrudes at, and how hard.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransitionDrillSpec {
    /// Cut this many of the busiest target links (they vanish from the
    /// live set and every future state, rollback included).
    pub n_cuts: usize,
    /// BP-recall this many of the next-busiest target links (they drain
    /// via planned Remove steps and must not survive into the target).
    pub n_recalls: usize,
    /// Which executor poll delivers the events (0 = before the first
    /// round — the plan is stale before a single step lands).
    pub at_poll: usize,
}

impl Default for TransitionDrillSpec {
    fn default() -> Self {
        Self { n_cuts: 1, n_recalls: 1, at_poll: 0 }
    }
}

/// What a mid-transition drill proved.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TransitionDrillReport {
    pub outcome: TransitionOutcome,
    pub steps_applied: usize,
    pub replans: u32,
    pub rollbacks: u32,
    /// Links cut / recalled, in injection order.
    pub cut_links: Vec<LinkId>,
    pub recalled_links: Vec<LinkId>,
    /// Applied intermediate states an *independent* oracle rejected
    /// (a fresh [`WarmOracle`], separate from the executor's — warm
    /// accepts carry a genuine routing witness, warm failures fall back
    /// to a full cold evaluation). The whole point of the planner is
    /// that this is zero, whatever was injected.
    pub unsafe_intermediates: usize,
    /// Applied states containing an already-cut link (must be zero: a
    /// dead link may never re-enter the fabric).
    pub dead_link_reappearances: usize,
    /// The live set when the executor finished.
    pub final_state: LinkSet,
}

/// Errors from [`run_transition_drill`].
#[derive(Clone, Debug)]
pub enum TransitionDrillError {
    /// No safe plan exists between the endpoints even before any fault.
    Plan(poc_transition::TransitionError),
    /// The base traffic matrix could not be routed over the target set
    /// (needed to rank links by load for the failure schedule).
    Route(poc_flow::RouteError),
    /// A hook refused mid-drill (cannot happen with the drill's own
    /// in-memory hooks; kept for parity with control-plane callers).
    Exec(String),
}

impl std::fmt::Display for TransitionDrillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransitionDrillError::Plan(e) => write!(f, "transition drill unplannable: {e}"),
            TransitionDrillError::Route(e) => write!(f, "transition drill unroutable: {e}"),
            TransitionDrillError::Exec(e) => write!(f, "transition drill execution failed: {e}"),
        }
    }
}

impl std::error::Error for TransitionDrillError {}

/// Hooks that deliver a scheduled batch of events at one poll and
/// independently re-verify every state the executor applies. The
/// verifier is its own [`WarmOracle`] (not the executor's), seeded with
/// the pre-transition routing — exactly the fabric's position when the
/// walk starts. It then follows the applied state sequence one link at a
/// time, so its witness chain tracks the fabric, and any rejection it
/// produces is a genuine safety violation — an unseeded or cold-only
/// check would misreport feasible sets its greedy router happens not to
/// pack.
struct DrillHooks<'a> {
    verifier: WarmOracle<'a>,
    events: Vec<TransitionEvent>,
    at_poll: usize,
    polls: usize,
    delivered_cuts: HashSet<LinkId>,
    unsafe_intermediates: usize,
    dead_link_reappearances: usize,
    force_restored: Option<LinkSet>,
}

impl TransitionHooks for DrillHooks<'_> {
    fn apply_step(
        &mut self,
        _idx: usize,
        _op: TransitionOp,
        state_after: &LinkSet,
    ) -> Result<(), String> {
        // `evaluate` (not `acceptable`): it bypasses the verdict memo, so
        // a state revisited across replans is re-judged from the current
        // witness rather than a stale chain position.
        if self.verifier.evaluate(state_after).is_err() {
            self.unsafe_intermediates += 1;
        }
        if self.delivered_cuts.iter().any(|&l| state_after.contains(l)) {
            self.dead_link_reappearances += 1;
        }
        Ok(())
    }

    fn poll_events(&mut self) -> Vec<TransitionEvent> {
        let evs =
            if self.polls == self.at_poll { std::mem::take(&mut self.events) } else { Vec::new() };
        self.polls += 1;
        for ev in &evs {
            if let TransitionEvent::LinkCut(l) = ev {
                self.delivered_cuts.insert(*l);
            }
        }
        evs
    }

    fn force_restore(&mut self, links: &LinkSet) -> Result<(), String> {
        self.force_restored = Some(links.clone());
        Ok(())
    }
}

/// Drill a migration `from → to`: plan it, then — at the chosen round
/// boundary — cut the busiest target links and recall the next-busiest
/// while the executor is mid-walk. The executor must replan (or unwind)
/// rather than ever applying a state the cold oracle rejects; the report
/// carries the violation counters for callers to assert on.
pub fn run_transition_drill(
    topo: &PocTopology,
    tm: &TrafficMatrix,
    constraint: Constraint,
    from: &LinkSet,
    to: &LinkSet,
    spec: &TransitionDrillSpec,
) -> Result<TransitionDrillReport, TransitionDrillError> {
    let cfg = PlanConfig::default();
    let plan = plan_transition(topo, tm, constraint, from, to, &cfg)
        .map_err(TransitionDrillError::Plan)?;

    // Rank the target's links by load (same schedule logic as
    // [`run_drill`]): faults hit where they hurt.
    let base = route_tm(topo, to, tm).map_err(TransitionDrillError::Route)?;
    let mut by_load: Vec<(f64, LinkId)> = (0..topo.n_links())
        .filter(|&i| to.contains(LinkId::from_index(i)))
        .map(|i| (base.load_fwd[i] + base.load_rev[i], LinkId::from_index(i)))
        .collect();
    by_load.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    let cut_links: Vec<LinkId> = by_load.iter().take(spec.n_cuts).map(|&(_, l)| l).collect();
    let recalled_links: Vec<LinkId> =
        by_load.iter().skip(spec.n_cuts).take(spec.n_recalls).map(|&(_, l)| l).collect();

    let events = cut_links
        .iter()
        .map(|&l| TransitionEvent::LinkCut(l))
        .chain(recalled_links.iter().map(|&l| TransitionEvent::Recall(l)))
        .collect();
    let verifier = WarmOracle::new(topo, tm, constraint);
    // Anchor the verifier's witness chain where the fabric actually is:
    // traffic is routed on `from` when the walk begins (a successful
    // evaluation installs its routing as the warm witness). A degraded
    // `from` that no longer routes just leaves the chain unseeded — the
    // first accepted probe seeds it instead.
    let _ = verifier.evaluate(from);
    let mut hooks = DrillHooks {
        verifier,
        events,
        at_poll: spec.at_poll,
        polls: 0,
        delivered_cuts: HashSet::new(),
        unsafe_intermediates: 0,
        dead_link_reappearances: 0,
        force_restored: None,
    };
    let report = execute_transition(topo, tm, constraint, &cfg, plan, &mut hooks)
        .map_err(|e| TransitionDrillError::Exec(e.to_string()))?;

    let final_state = hooks.force_restored.clone().unwrap_or_else(|| report.final_state.clone());
    Ok(TransitionDrillReport {
        outcome: report.outcome,
        steps_applied: report.steps_applied,
        replans: report.replans,
        rollbacks: report.rollbacks,
        cut_links,
        recalled_links,
        unsafe_intermediates: hooks.unsafe_intermediates,
        dead_link_reappearances: hooks.dead_link_reappearances,
        final_state,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_flow::FeasibilityOracle;
    use poc_topology::builder::two_bp_square;
    use poc_topology::RouterId;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    #[test]
    fn redundant_fabric_survives_drill() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 10.0);
        tm.set(r(2), r(3), 5.0);
        let rep = run_drill(
            &t,
            &all,
            &tm,
            &DrillSpec { n_failures: 3, outage_hours: 1.0, gap_hours: 0.5 },
        )
        .unwrap();
        assert!(rep.availability > 0.99, "{rep:?}");
        assert!(rep.total_reroutes > 0, "failures must have caused reroutes");
        assert_eq!(rep.failed_links.len(), 3);
    }

    #[test]
    fn fragile_fabric_loses_traffic() {
        // Spanning tree: every failure severs something.
        let t = two_bp_square();
        let tree = LinkSet::from_links(t.n_links(), [LinkId(0), LinkId(1), LinkId(5)]);
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 10.0);
        let rep = run_drill(
            &t,
            &tree,
            &tm,
            &DrillSpec { n_failures: 1, outage_hours: 1.0, gap_hours: 0.5 },
        )
        .unwrap();
        assert!(rep.availability < 1.0, "{rep:?}");
    }

    #[test]
    fn degenerate_spec_is_a_typed_error_not_a_panic() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let tm = TrafficMatrix::zero(t.n_routers());
        for spec in [
            DrillSpec { n_failures: 0, outage_hours: 1.0, gap_hours: 0.5 },
            DrillSpec { n_failures: 3, outage_hours: 0.0, gap_hours: 0.5 },
            DrillSpec { n_failures: 3, outage_hours: -1.0, gap_hours: 0.5 },
            DrillSpec { n_failures: 3, outage_hours: f64::NAN, gap_hours: 0.5 },
            DrillSpec { n_failures: 3, outage_hours: f64::INFINITY, gap_hours: 0.5 },
            DrillSpec { n_failures: 3, outage_hours: 1.0, gap_hours: -0.5 },
            DrillSpec { n_failures: 3, outage_hours: 1.0, gap_hours: f64::NAN },
        ] {
            let err = run_drill(&t, &all, &tm, &spec).unwrap_err();
            assert!(matches!(err, DrillError::DegenerateSpec { .. }), "{spec:?} -> {err:?}");
        }
    }

    #[test]
    fn busiest_link_failed_first() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 50.0); // direct link carries the most
        let rep = run_drill(&t, &all, &tm, &DrillSpec::default()).unwrap();
        let direct = t.links.iter().find(|l| l.connects(r(0), r(1))).unwrap().id;
        assert_eq!(rep.failed_links[0], direct);
    }

    // -- transition drills --------------------------------------------------

    fn drill_tm(t: &PocTopology) -> TrafficMatrix {
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 10.0);
        tm.set(r(2), r(3), 10.0);
        tm
    }

    /// A minimal acceptable set: greedily prune the full fabric while the
    /// cold oracle keeps saying yes.
    fn minimal_set(t: &PocTopology, tm: &TrafficMatrix, c: Constraint) -> LinkSet {
        let cold = FeasibilityOracle::new(t, tm, c);
        let mut cur = LinkSet::full(t.n_links());
        for i in 0..t.n_links() {
            let mut cand = cur.clone();
            cand.remove(LinkId::from_index(i));
            if cold.acceptable(&cand) {
                cur = cand;
            }
        }
        cur
    }

    #[test]
    fn cut_during_expansion_forces_replan_and_excludes_dead_link() {
        let t = two_bp_square();
        let tm = drill_tm(&t);
        let c = Constraint::BaseLoad;
        let from = minimal_set(&t, &tm, c);
        let to = LinkSet::full(t.n_links());
        assert_ne!(from, to, "two_bp_square must have slack to migrate across");

        // Cut the busiest target link before the first step lands: the
        // redundant full fabric stays feasible without it, so the drill
        // must end committed — on the shrunken target, after a replan.
        let spec = TransitionDrillSpec { n_cuts: 1, n_recalls: 0, at_poll: 0 };
        let rep = run_transition_drill(&t, &tm, c, &from, &to, &spec).unwrap();
        assert_eq!(rep.outcome, TransitionOutcome::Committed, "{rep:?}");
        assert!(rep.replans >= 1, "cut must force a replan: {rep:?}");
        assert_eq!(rep.cut_links.len(), 1);
        assert!(!rep.final_state.contains(rep.cut_links[0]));
        assert_eq!(rep.unsafe_intermediates, 0, "{rep:?}");
        assert_eq!(rep.dead_link_reappearances, 0, "{rep:?}");
        let mut want = to.clone();
        want.remove(rep.cut_links[0]);
        assert_eq!(rep.final_state, want);
    }

    #[test]
    fn recall_during_expansion_drains_the_link_safely() {
        let t = two_bp_square();
        let tm = drill_tm(&t);
        let c = Constraint::BaseLoad;
        let from = minimal_set(&t, &tm, c);
        let to = LinkSet::full(t.n_links());

        let spec = TransitionDrillSpec { n_cuts: 0, n_recalls: 2, at_poll: 0 };
        let rep = run_transition_drill(&t, &tm, c, &from, &to, &spec).unwrap();
        assert_eq!(rep.outcome, TransitionOutcome::Committed, "{rep:?}");
        assert_eq!(rep.recalled_links.len(), 2);
        for &l in &rep.recalled_links {
            assert!(!rep.final_state.contains(l), "recalled link must drain out: {rep:?}");
        }
        assert_eq!(rep.unsafe_intermediates, 0, "{rep:?}");
    }

    #[test]
    fn contraction_under_heavy_cuts_never_applies_unsafe_state() {
        let t = two_bp_square();
        let tm = drill_tm(&t);
        let c = Constraint::BaseLoad;
        let from = LinkSet::full(t.n_links());
        let to = minimal_set(&t, &tm, c);
        assert_ne!(from, to);

        // Cut the two busiest links of an already-minimal target: the
        // target may collapse below feasibility, in which case the
        // executor must unwind rather than press on. Whatever the
        // outcome, the safety counters stay at zero and no dead link
        // survives.
        let spec = TransitionDrillSpec { n_cuts: 2, n_recalls: 1, at_poll: 0 };
        let rep = run_transition_drill(&t, &tm, c, &from, &to, &spec).unwrap();
        assert_eq!(rep.unsafe_intermediates, 0, "{rep:?}");
        assert_eq!(rep.dead_link_reappearances, 0, "{rep:?}");
        for &l in &rep.cut_links {
            assert!(!rep.final_state.contains(l), "dead link in final state: {rep:?}");
        }
        if rep.outcome == TransitionOutcome::Committed {
            for &l in &rep.recalled_links {
                assert!(!rep.final_state.contains(l), "{rep:?}");
            }
        }
    }

    #[test]
    fn noop_migration_commits_without_steps() {
        let t = two_bp_square();
        let tm = drill_tm(&t);
        let c = Constraint::BaseLoad;
        let set = LinkSet::full(t.n_links());
        let rep =
            run_transition_drill(&t, &tm, c, &set, &set, &TransitionDrillSpec::default()).unwrap();
        assert_eq!(rep.outcome, TransitionOutcome::Committed);
        assert_eq!(rep.steps_applied, 0);
        assert_eq!(rep.final_state, set);
    }

    #[test]
    fn transition_drill_report_round_trips_through_serde() {
        let t = two_bp_square();
        let tm = drill_tm(&t);
        let c = Constraint::BaseLoad;
        let from = minimal_set(&t, &tm, c);
        let to = LinkSet::full(t.n_links());
        let rep =
            run_transition_drill(&t, &tm, c, &from, &to, &TransitionDrillSpec::default()).unwrap();
        let json = serde_json::to_string(&rep).unwrap();
        let back: TransitionDrillReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.outcome, rep.outcome);
        assert_eq!(back.steps_applied, rep.steps_applied);
        assert_eq!(back.final_state, rep.final_state);
    }
}

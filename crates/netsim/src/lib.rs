//! Flow-level discrete-event simulation of the POC fabric.
//!
//! The paper's POC is "a transparent fabric" between attachment points
//! (§1.2); this crate simulates it at flow granularity: persistent and
//! on/off flows between routers, max-min fair bandwidth sharing on the
//! leased links, link failures with rerouting, per-member usage accounting
//! that feeds the settlement ledger, and observable-throughput evidence
//! for the neutrality-enforcement experiments.
//!
//! * [`fairness`] — progressive-filling max-min fair rate allocation;
//! * [`sim`] — the flow-level event loop: flow arrivals/departures, link
//!   down/up, rerouting, usage metering;
//! * [`engine`] — the packet-level discrete-event core: ns-resolution
//!   event queue, directional FIFO link buffers with tail drops,
//!   store-and-forward + propagation latency, millions of user-flows;
//! * [`drill`] — failure drills measuring delivered-traffic availability
//!   (experiment E-R1), plus mid-transition drills that cut and recall
//!   links while a lease migration is in flight and prove the executor
//!   replans instead of ever applying an infeasible intermediate set;
//! * [`discrim`] — throttling injection and its observable goodput
//!   signature (experiment E-N1's data-plane half).

pub mod discrim;
pub mod drill;
pub mod engine;
pub mod fairness;
pub mod sim;
pub mod workload;

pub use discrim::{detect_throttling, detect_throttling_packets, ThrottleSpec};
pub use drill::{
    run_drill, run_transition_drill, DrillError, DrillReport, DrillSpec, TransitionDrillError,
    TransitionDrillReport, TransitionDrillSpec,
};
pub use engine::{Engine, EngineConfig, EngineError, EngineReport, SourceKind, TagStats};
pub use fairness::max_min_rates;
pub use sim::{FlowSpec, SimConfig, SimError, SimReport, Simulator};
pub use workload::{diurnal_factor, generate_onoff, WorkloadConfig};

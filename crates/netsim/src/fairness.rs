//! Max-min fair rate allocation by progressive filling.
//!
//! Given flows with fixed paths, demands, and per-direction link
//! capacities, rates rise together until a link saturates; flows crossing
//! the bottleneck freeze at their fair share and the rest keep growing.
//! This is the standard fluid-model abstraction of per-flow fair queueing
//! on the fabric.

use poc_flow::graph::Dir;
use poc_topology::{LinkId, PocTopology};

/// A flow for allocation purposes: the (link, direction) pairs it crosses
/// and its demand ceiling.
#[derive(Clone, Debug)]
pub struct AllocFlow {
    pub hops: Vec<(LinkId, Dir)>,
    pub demand_gbps: f64,
}

/// Compute max-min fair rates. `scale[l]` optionally derates a link's
/// usable capacity (e.g. 0.0 while the link is down); pass `None` for full
/// capacity. Returns one rate per flow (≤ demand).
pub fn max_min_rates(topo: &PocTopology, flows: &[AllocFlow], scale: Option<&[f64]>) -> Vec<f64> {
    let n_links = topo.n_links();
    if let Some(s) = scale {
        assert_eq!(s.len(), n_links, "scale vector must cover all links");
    }
    // Residual capacity per (link, dir).
    let cap = |l: usize| {
        let base = topo.links[l].capacity_gbps;
        match scale {
            Some(s) => base * s[l].clamp(0.0, 1.0),
            None => base,
        }
    };
    let mut residual_fwd: Vec<f64> = (0..n_links).map(cap).collect();
    let mut residual_rev = residual_fwd.clone();

    let mut rate = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    // Flows with no hops (same-router or zero demand) freeze at demand.
    for (i, f) in flows.iter().enumerate() {
        if f.hops.is_empty() || f.demand_gbps <= 0.0 {
            rate[i] = f.demand_gbps.max(0.0);
            frozen[i] = true;
        }
    }

    // Progressive filling: at each step find the smallest uniform increment
    // that saturates some link or satisfies some flow; apply and freeze.
    for _ in 0..flows.len() + n_links + 1 {
        // Count unfrozen flows per (link, dir).
        let mut count_fwd = vec![0u32; n_links];
        let mut count_rev = vec![0u32; n_links];
        let mut any_unfrozen = false;
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            any_unfrozen = true;
            for &(l, d) in &f.hops {
                match d {
                    Dir::Fwd => count_fwd[l.index()] += 1,
                    Dir::Rev => count_rev[l.index()] += 1,
                }
            }
        }
        if !any_unfrozen {
            break;
        }
        // Smallest headroom-per-flow across loaded links.
        let mut inc = f64::INFINITY;
        for l in 0..n_links {
            if count_fwd[l] > 0 {
                inc = inc.min(residual_fwd[l] / count_fwd[l] as f64);
            }
            if count_rev[l] > 0 {
                inc = inc.min(residual_rev[l] / count_rev[l] as f64);
            }
        }
        // Smallest remaining-demand among unfrozen flows.
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                inc = inc.min(f.demand_gbps - rate[i]);
            }
        }
        let inc = inc.max(0.0);
        // Apply the increment.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            rate[i] += inc;
            for &(l, d) in &f.hops {
                match d {
                    Dir::Fwd => residual_fwd[l.index()] -= inc,
                    Dir::Rev => residual_rev[l.index()] -= inc,
                }
            }
        }
        // Freeze satisfied flows and flows crossing saturated links.
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let satisfied = rate[i] >= f.demand_gbps - 1e-9;
            let bottlenecked = f.hops.iter().any(|&(l, d)| match d {
                Dir::Fwd => residual_fwd[l.index()] <= 1e-9,
                Dir::Rev => residual_rev[l.index()] <= 1e-9,
            });
            if satisfied || bottlenecked {
                frozen[i] = true;
            }
        }
    }
    debug_assert!(frozen.iter().all(|&f| f), "progressive filling did not terminate");
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::builder::two_bp_square;
    use poc_topology::RouterId;

    /// Hops for the direct link between two routers (test helper).
    fn direct_hops(topo: &PocTopology, a: RouterId, b: RouterId) -> Vec<(LinkId, Dir)> {
        let link = topo.links.iter().find(|l| l.connects(a, b)).expect("no direct link");
        let dir = if link.a == a { Dir::Fwd } else { Dir::Rev };
        vec![(link.id, dir)]
    }

    #[test]
    fn unconstrained_flows_get_their_demand() {
        let t = two_bp_square();
        let flows =
            vec![AllocFlow { hops: direct_hops(&t, RouterId(0), RouterId(1)), demand_gbps: 30.0 }];
        let rates = max_min_rates(&t, &flows, None);
        assert!((rates[0] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn equal_split_on_shared_bottleneck() {
        // Two 80G demands share the 100G r0→r1 direct link: 50/50.
        let t = two_bp_square();
        let hops = direct_hops(&t, RouterId(0), RouterId(1));
        let flows = vec![
            AllocFlow { hops: hops.clone(), demand_gbps: 80.0 },
            AllocFlow { hops, demand_gbps: 80.0 },
        ];
        let rates = max_min_rates(&t, &flows, None);
        assert!((rates[0] - 50.0).abs() < 1e-6, "{rates:?}");
        assert!((rates[1] - 50.0).abs() < 1e-6);
    }

    #[test]
    fn small_flow_satisfied_big_flow_takes_rest() {
        let t = two_bp_square();
        let hops = direct_hops(&t, RouterId(0), RouterId(1));
        let flows = vec![
            AllocFlow { hops: hops.clone(), demand_gbps: 10.0 },
            AllocFlow { hops, demand_gbps: 500.0 },
        ];
        let rates = max_min_rates(&t, &flows, None);
        assert!((rates[0] - 10.0).abs() < 1e-6, "{rates:?}");
        assert!((rates[1] - 90.0).abs() < 1e-6, "{rates:?}");
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let t = two_bp_square();
        let fwd = direct_hops(&t, RouterId(0), RouterId(1));
        let rev = direct_hops(&t, RouterId(1), RouterId(0));
        let flows = vec![
            AllocFlow { hops: fwd, demand_gbps: 90.0 },
            AllocFlow { hops: rev, demand_gbps: 90.0 },
        ];
        let rates = max_min_rates(&t, &flows, None);
        assert!((rates[0] - 90.0).abs() < 1e-6);
        assert!((rates[1] - 90.0).abs() < 1e-6);
    }

    #[test]
    fn link_scale_derates_capacity() {
        let t = two_bp_square();
        let hops = direct_hops(&t, RouterId(0), RouterId(1));
        let link = hops[0].0;
        let mut scale = vec![1.0; t.n_links()];
        scale[link.index()] = 0.5; // degraded to 50G
        let flows = vec![AllocFlow { hops, demand_gbps: 80.0 }];
        let rates = max_min_rates(&t, &flows, Some(&scale));
        assert!((rates[0] - 50.0).abs() < 1e-6, "{rates:?}");
    }

    #[test]
    fn empty_path_flow_passes_through() {
        let t = two_bp_square();
        let flows = vec![AllocFlow { hops: vec![], demand_gbps: 7.0 }];
        let rates = max_min_rates(&t, &flows, None);
        assert_eq!(rates[0], 7.0);
    }

    #[test]
    fn multi_hop_flow_limited_by_worst_link() {
        // Path r0→r3 via the 40G BP-B links.
        let t = two_bp_square();
        let l3 = t.links.iter().find(|l| l.connects(RouterId(0), RouterId(3))).unwrap();
        let dir = if l3.a == RouterId(0) { Dir::Fwd } else { Dir::Rev };
        let flows = vec![AllocFlow { hops: vec![(l3.id, dir)], demand_gbps: 100.0 }];
        let rates = max_min_rates(&t, &flows, None);
        assert!((rates[0] - 40.0).abs() < 1e-6);
    }
}

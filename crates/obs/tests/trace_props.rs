//! Property tests for the causal-tracing layer: random span trees —
//! including subtrees executed on spawned threads — must reconstruct
//! their exact parent/child structure from the flight recorder, and the
//! ring must hold its drop-oldest contract (with the global
//! `obs.trace.dropped` counter advancing) under wraparound.
//!
//! These tests share the process-global recorder with any other test in
//! the binary, so every case tags its spans with a fresh trace id and
//! filters the scrape down to it. The recorder is switched on and left
//! on: restoring "disabled" could race another test's open span between
//! its begin and its record.

use poc_obs::{FlightRecorder, TraceCtx, TraceEventWire};
use proptest::prelude::*;

/// One generated tree node: its parent (always an earlier index, so the
/// tree is well-formed by construction) and whether its subtree runs on
/// a freshly spawned thread.
#[derive(Clone, Copy, Debug)]
struct Node {
    parent: usize,
    spawned: bool,
}

/// Execute the generated tree as real nested spans, depth-first: a
/// node's span stays open while its children run, exactly like the
/// auction round span over its pivots. Spawned subtrees capture the
/// current [`TraceCtx`] and re-install it on the new thread.
fn run_tree(nodes: &[Node], children: &[Vec<usize>], idx: usize) {
    let span = poc_obs::span!("proptree.node", node = idx as u64);
    for &child in &children[idx] {
        if nodes[child].spawned {
            let ctx = TraceCtx::current();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _trace = ctx.as_ref().map(TraceCtx::adopt);
                    run_tree(nodes, children, child);
                });
            });
        } else {
            run_tree(nodes, children, child);
        }
    }
    drop(span);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any random span tree — with arbitrary thread-spawn boundaries —
    /// reconstructs exactly from the recorded events: every node's
    /// recorded parent span is its generating parent's span, the root
    /// parents to the trace root (0), and spawned nodes carry a thread
    /// tag different from their parent's.
    #[test]
    fn random_span_trees_reconstruct_exact_parentage(
        raw in prop::collection::vec((0u64..1_000_000, 0u32..2), 1..10),
    ) {
        poc_obs::trace::recorder().set_enabled(true);
        // Node 0 is the root; node i>0 parents to an earlier node.
        let mut nodes = vec![Node { parent: 0, spawned: false }];
        for (i, &(pick, spawn)) in raw.iter().enumerate() {
            nodes.push(Node { parent: (pick % (i as u64 + 1)) as usize, spawned: spawn == 1 });
        }
        let mut children = vec![Vec::new(); nodes.len()];
        for (i, node) in nodes.iter().enumerate().skip(1) {
            children[node.parent].push(i);
        }

        let trace_id = poc_obs::trace::new_trace_id();
        {
            let _trace = poc_obs::trace::start_trace(trace_id);
            run_tree(&nodes, &children, 0);
        }

        let traces = poc_obs::trace::scrape(Some(trace_id), None);
        prop_assert_eq!(traces.len(), 1, "one trace under this id");
        let events = &traces[0].events;
        prop_assert_eq!(events.len(), nodes.len(), "one span per node");

        // Recover node index -> event via the `node` field.
        let mut by_node: Vec<Option<&TraceEventWire>> = vec![None; nodes.len()];
        for event in events {
            let idx: usize = event
                .fields
                .iter()
                .find(|(k, _)| k == "node")
                .expect("every span carries its node index")
                .1
                .parse()
                .expect("node index is numeric");
            prop_assert!(by_node[idx].is_none(), "node {} recorded twice", idx);
            by_node[idx] = Some(event);
        }

        for (i, node) in nodes.iter().enumerate() {
            let event = by_node[i].expect("every node recorded");
            if i == 0 {
                prop_assert_eq!(event.parent_id, 0, "root parents to the trace root");
            } else {
                let parent_event = by_node[node.parent].expect("parent recorded");
                prop_assert_eq!(
                    event.parent_id, parent_event.span_id,
                    "node {} must parent to node {}", i, node.parent
                );
                if node.spawned {
                    prop_assert_ne!(
                        event.thread, parent_event.thread,
                        "spawned node {} runs on its own thread", i
                    );
                }
            }
            // Children start after their parent on the shared monotone
            // trace clock. (End times are measured from a separate
            // Instant and can skew by nanoseconds, so only start order
            // is asserted.)
            for &child in &children[i] {
                let child_event = by_node[child].expect("child recorded");
                prop_assert!(child_event.start_ns >= event.start_ns);
            }
        }
    }

    /// Wraparound: overfilling a ring keeps exactly the newest
    /// `capacity` events in order, counts every eviction, and advances
    /// the process-global `obs.trace.dropped` counter by the same
    /// amount or more (other tests may evict concurrently).
    #[test]
    fn ring_wraparound_keeps_newest_and_counts_drops(
        capacity in 1usize..32,
        extra in 0u64..64,
    ) {
        poc_obs::global().set_enabled(true);
        let before = poc_obs::global().snapshot().counter("obs.trace.dropped").unwrap_or(0);

        let ring = FlightRecorder::with_capacity(capacity);
        let total = capacity as u64 + extra;
        for n in 0..total {
            ring.record(poc_obs::TraceEvent {
                trace_id: 1,
                span_id: n + 1,
                parent_id: 0,
                name: "proptree.ring",
                start_ns: n,
                dur_ns: 1,
                thread: 0,
                fields: Vec::new(),
            });
        }

        prop_assert_eq!(ring.dropped(), extra);
        let survivors: Vec<u64> = ring.snapshot().iter().map(|e| e.span_id).collect();
        let expected: Vec<u64> = (extra + 1..=total).collect();
        prop_assert_eq!(survivors, expected, "drop-oldest keeps the newest tail in order");

        let after = poc_obs::global().snapshot().counter("obs.trace.dropped").unwrap_or(0);
        prop_assert!(after >= before + extra, "global dropped counter advances per eviction");
    }
}

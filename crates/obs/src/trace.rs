//! Causal tracing: trace contexts, parent-linked span events, and the
//! process-global flight recorder.
//!
//! A **trace** is one causally related tree of [`TraceEvent`]s sharing a
//! `trace_id` — in the control plane, everything one wire request
//! touched: codec, journal append/fsync, the auction round, every
//! Clarke-pivot re-selection (across the parallel thread scope), and the
//! flow-layer oracle/maxflow work underneath. The identity plumbing is a
//! thread-local `(trace_id, span_id)` cell:
//!
//! * [`start_trace`] installs a trace id as the thread's root context
//!   (the control plane calls it once per request, with the id the
//!   client sent in its `Request::Traced` envelope or a fresh one);
//! * every [`crate::Span`] that opens while a trace is active allocates
//!   a span id, records the previous context as its parent, and becomes
//!   the current context until it drops — nesting falls out of RAII
//!   scoping with no extra bookkeeping at call sites;
//! * [`TraceCtx::current`] captures the context as a value that can be
//!   carried into a spawned thread and re-installed with
//!   [`TraceCtx::adopt`] — this is how pivot spans parent to the round
//!   span across the `PivotMode::Parallel` thread-scope boundary.
//!
//! Closed spans land in the global [`FlightRecorder`] (bounded,
//! drop-oldest; see [`crate::ring`]), which the control plane serves via
//! `Request::Trace` and `poc trace` renders as trees or Chrome
//! trace-event JSON ([`crate::chrome`]). The recorder starts *disabled*:
//! an untraced process pays one relaxed atomic load per span, nothing
//! else.

use crate::ring::{FlightRecorder, DEFAULT_CAPACITY};
use crate::sink::FieldValue;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// One closed span as the flight recorder stores it.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// The request-scoped tree this span belongs to.
    pub trace_id: u64,
    /// Unique within the process (never 0).
    pub span_id: u64,
    /// `0` for a trace's root span.
    pub parent_id: u64,
    /// The span's histogram name (`auction.pivot`, `ctrl.journal.fsync`, …).
    pub name: &'static str,
    /// Nanoseconds since the process trace epoch ([`trace_clock_ns`]) —
    /// one shared monotonic base, so spans from different threads order
    /// correctly.
    pub start_ns: u64,
    pub dur_ns: u64,
    /// Small per-thread tag (assigned on first traced span per thread).
    pub thread: u64,
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// [`TraceEvent`] as shipped over the wire (owned strings; fields
/// rendered through their `Display` form).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEventWire {
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_id: u64,
    pub name: String,
    pub start_ns: u64,
    pub dur_ns: u64,
    pub thread: u64,
    pub fields: Vec<(String, String)>,
}

impl TraceEvent {
    pub fn to_wire(&self) -> TraceEventWire {
        TraceEventWire {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
            name: self.name.to_string(),
            start_ns: self.start_ns,
            dur_ns: self.dur_ns,
            thread: self.thread,
            fields: self.fields.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
        }
    }
}

/// One recorded trace: every surviving event sharing a `trace_id`,
/// ordered by start time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceWire {
    pub trace_id: u64,
    pub events: Vec<TraceEventWire>,
}

// ---------------------------------------------------------------------------
// Process-global recorder & clocks
// ---------------------------------------------------------------------------

static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-global flight recorder every traced span lands in.
/// Created on first use — **disabled** — with [`DEFAULT_CAPACITY`] slots
/// (`POC_TRACE_CAPACITY` overrides the capacity at first touch).
pub fn recorder() -> &'static FlightRecorder {
    RECORDER.get_or_init(|| {
        let capacity = std::env::var("POC_TRACE_CAPACITY")
            .ok()
            .and_then(|raw| raw.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        let ring = FlightRecorder::with_capacity(capacity);
        ring.set_enabled(false);
        ring
    })
}

/// Nanoseconds since the process trace epoch (the first call): the
/// shared monotonic base all [`TraceEvent::start_ns`] values use.
pub fn trace_clock_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let elapsed = EPOCH.get_or_init(Instant::now).elapsed();
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

/// A fresh, process-unique, nonzero trace id. Seeded from the wall
/// clock so ids from successive CLI invocations against the same server
/// don't collide.
pub fn new_trace_id() -> u64 {
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    let next = NEXT.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1);
        // Fibonacci hashing spreads the seed; keep ids in 53 bits so
        // they survive any double-precision JSON reader unscathed.
        AtomicU64::new((nanos.wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 12)
    });
    loop {
        let id = next.fetch_add(1, Ordering::Relaxed) & ((1 << 53) - 1);
        if id != 0 {
            return id;
        }
    }
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Small per-thread tag for the `thread` column of trace events.
fn thread_tag() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TAG: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TAG.with(|t| *t)
}

thread_local! {
    /// The thread's current `(trace_id, span_id)`; `(0, _)` = no trace.
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

// ---------------------------------------------------------------------------
// Contexts & guards
// ---------------------------------------------------------------------------

/// A captured trace context: the value to carry across a thread spawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    pub trace_id: u64,
    /// The span the adopting thread's spans will parent to.
    pub span_id: u64,
}

impl TraceCtx {
    /// The calling thread's current context, if a trace is active.
    pub fn current() -> Option<TraceCtx> {
        let (trace_id, span_id) = CURRENT.with(Cell::get);
        (trace_id != 0).then_some(TraceCtx { trace_id, span_id })
    }

    /// Install this context as the calling thread's current one until
    /// the guard drops (which restores whatever was current before).
    /// Call at the top of a spawned closure to parent its spans to the
    /// spawning span.
    #[must_use = "the context is uninstalled when the guard drops"]
    pub fn adopt(&self) -> TraceGuard {
        let prev = CURRENT.with(|c| c.replace((self.trace_id, self.span_id)));
        TraceGuard { prev }
    }
}

/// RAII restore for an installed trace context.
pub struct TraceGuard {
    prev: (u64, u64),
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Make `trace_id` the thread's root context until the guard drops.
/// Spans opened under the guard form a tree rooted at this trace. The
/// control plane calls this once per request.
#[must_use = "the trace ends when the guard drops"]
pub fn start_trace(trace_id: u64) -> TraceGuard {
    TraceCtx { trace_id, span_id: 0 }.adopt()
}

// ---------------------------------------------------------------------------
// Span integration (crate-internal surface for `crate::span`)
// ---------------------------------------------------------------------------

/// The tracing half of an open [`crate::Span`]: identity plus the
/// context to restore when it closes.
pub(crate) struct OpenSpan {
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    start_ns: u64,
    prev: (u64, u64),
}

/// Open the tracing side of a span: `None` (one relaxed load) unless
/// the recorder is enabled *and* the thread has an active trace.
pub(crate) fn begin_span() -> Option<OpenSpan> {
    if !recorder().is_enabled() {
        return None;
    }
    let (trace_id, parent_id) = CURRENT.with(Cell::get);
    if trace_id == 0 {
        return None;
    }
    let span_id = next_span_id();
    let prev = CURRENT.with(|c| c.replace((trace_id, span_id)));
    Some(OpenSpan { trace_id, span_id, parent_id, start_ns: trace_clock_ns(), prev })
}

/// Close the tracing side: restore the context and park the event.
pub(crate) fn end_span(
    open: OpenSpan,
    name: &'static str,
    dur_ns: u64,
    fields: Vec<(&'static str, FieldValue)>,
) {
    CURRENT.with(|c| c.set(open.prev));
    recorder().record(TraceEvent {
        trace_id: open.trace_id,
        span_id: open.span_id,
        parent_id: open.parent_id,
        name,
        start_ns: open.start_ns,
        dur_ns,
        thread: thread_tag(),
        fields,
    });
}

// ---------------------------------------------------------------------------
// Scraping & rendering
// ---------------------------------------------------------------------------

/// Group raw events into per-trace bundles, each sorted by start time;
/// traces ordered by their earliest event.
pub fn group_traces(events: &[TraceEvent]) -> Vec<TraceWire> {
    let mut by_trace: std::collections::BTreeMap<u64, Vec<TraceEventWire>> =
        std::collections::BTreeMap::new();
    for event in events {
        by_trace.entry(event.trace_id).or_default().push(event.to_wire());
    }
    let mut traces: Vec<TraceWire> = by_trace
        .into_iter()
        .map(|(trace_id, mut events)| {
            events.sort_by_key(|e| (e.start_ns, e.span_id));
            TraceWire { trace_id, events }
        })
        .collect();
    traces.sort_by_key(|t| t.events.first().map_or(u64::MAX, |e| e.start_ns));
    traces
}

/// Scrape the global recorder: all traces, one trace by id, or the
/// `last_n` most recently started. This is what `Request::Trace` serves.
pub fn scrape(trace_id: Option<u64>, last_n: Option<usize>) -> Vec<TraceWire> {
    let mut traces = group_traces(&recorder().snapshot());
    if let Some(id) = trace_id {
        traces.retain(|t| t.trace_id == id);
    }
    if let Some(n) = last_n {
        let len = traces.len();
        traces.drain(..len.saturating_sub(n));
    }
    traces
}

/// Trim scraped traces to a serialized-byte budget by repeatedly
/// keeping the longest-duration half of the surviving events. A full
/// default-capacity ring serializes well past the control plane's 1 MiB
/// frame cap; the long spans are the ones that attribute a request's
/// wall time (the short leaves under them are detail), and
/// [`render_tree`] already surfaces spans whose parents were dropped as
/// extra roots, so trimming degrades resolution, not structure.
pub fn trim_traces_to_bytes(mut traces: Vec<TraceWire>, max_bytes: usize) -> Vec<TraceWire> {
    loop {
        let size = serde_json::to_string(&traces).map_or(usize::MAX, |s| s.len());
        if size <= max_bytes || traces.is_empty() {
            return traces;
        }
        // Rank events shallow-first, then longest-first: the spans near the
        // root (request handler, journal append/fsync, round) are the causal
        // skeleton a reader needs even when they are short, while deep spans
        // (per-pivot oracle probes) are numerous and interchangeable — keep
        // the longest of those, since they attribute the wall time. Dropping
        // children before parents also keeps the surviving set a tree.
        // (depth, dur, span_id) is unique per event, so exactly `keep` survive.
        let mut keys: Vec<(u32, u64, u64)> = Vec::new();
        for trace in &traces {
            let parent: std::collections::HashMap<u64, u64> =
                trace.events.iter().map(|e| (e.span_id, e.parent_id)).collect();
            for e in &trace.events {
                let mut depth = 0u32;
                let mut at = e.parent_id;
                while at != 0 && depth < 64 {
                    depth += 1;
                    at = parent.get(&at).copied().unwrap_or(0);
                }
                keys.push((depth, u64::MAX - e.dur_ns, e.span_id));
            }
        }
        let keep = keys.len() / 2;
        if keep == 0 {
            return Vec::new();
        }
        keys.sort_unstable();
        let kept: std::collections::HashSet<u64> =
            keys[..keep].iter().map(|&(_, _, id)| id).collect();
        for trace in &mut traces {
            trace.events.retain(|e| kept.contains(&e.span_id));
        }
        traces.retain(|t| !t.events.is_empty());
    }
}

/// Render one trace as an indented text tree (the default `poc trace`
/// output). Orphaned spans — parents evicted by the ring — surface as
/// additional roots rather than disappearing.
pub fn render_tree(trace: &TraceWire) -> String {
    use std::collections::BTreeMap;
    let mut children: BTreeMap<u64, Vec<&TraceEventWire>> = BTreeMap::new();
    let ids: std::collections::BTreeSet<u64> = trace.events.iter().map(|e| e.span_id).collect();
    for event in &trace.events {
        let parent = if ids.contains(&event.parent_id) { event.parent_id } else { 0 };
        children.entry(parent).or_default().push(event);
    }
    let mut out = format!("trace {} ({} spans)\n", trace.trace_id, trace.events.len());
    fn visit(
        out: &mut String,
        children: &BTreeMap<u64, Vec<&TraceEventWire>>,
        id: u64,
        depth: usize,
    ) {
        for event in children.get(&id).map_or(&[][..], |v| v.as_slice()) {
            let fields: String =
                event.fields.iter().map(|(k, v)| format!(" {k}={v}")).collect::<Vec<_>>().join("");
            out.push_str(&format!(
                "{}{} {:.3}ms [t{}]{}\n",
                "  ".repeat(depth + 1),
                event.name,
                event.dur_ns as f64 / 1e6,
                event.thread,
                fields,
            ));
            visit(out, children, event.span_id, depth + 1);
        }
    }
    visit(&mut out, &children, 0, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_nesting_restores_on_drop() {
        assert_eq!(TraceCtx::current(), None);
        {
            let _root = start_trace(77);
            assert_eq!(TraceCtx::current(), Some(TraceCtx { trace_id: 77, span_id: 0 }));
            {
                let inner = TraceCtx { trace_id: 77, span_id: 5 };
                let _g = inner.adopt();
                assert_eq!(TraceCtx::current(), Some(inner));
            }
            assert_eq!(TraceCtx::current(), Some(TraceCtx { trace_id: 77, span_id: 0 }));
        }
        assert_eq!(TraceCtx::current(), None);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let ids: std::collections::BTreeSet<u64> = (0..100).map(|_| new_trace_id()).collect();
        assert_eq!(ids.len(), 100);
        assert!(!ids.contains(&0));
        assert!(ids.iter().all(|&id| id < (1 << 53)));
    }

    #[test]
    fn grouping_splits_by_trace_and_sorts_by_start() {
        let ev = |trace_id, span_id, start_ns| TraceEvent {
            trace_id,
            span_id,
            parent_id: 0,
            name: "t",
            start_ns,
            dur_ns: 1,
            thread: 0,
            fields: Vec::new(),
        };
        let traces = group_traces(&[ev(2, 1, 50), ev(1, 2, 10), ev(2, 3, 20), ev(1, 4, 5)]);
        assert_eq!(traces.len(), 2);
        // Trace 1 starts earliest (start_ns 5) so it comes first.
        assert_eq!(traces[0].trace_id, 1);
        assert_eq!(traces[0].events.iter().map(|e| e.span_id).collect::<Vec<_>>(), vec![4, 2]);
        assert_eq!(traces[1].events.iter().map(|e| e.span_id).collect::<Vec<_>>(), vec![3, 1]);
    }

    #[test]
    fn wire_events_round_trip_through_json() {
        let wire = TraceEventWire {
            trace_id: 9,
            span_id: 2,
            parent_id: 1,
            name: "auction.pivot".into(),
            start_ns: 123,
            dur_ns: 456,
            thread: 3,
            fields: vec![("bp".into(), "7".into())],
        };
        let trace = TraceWire { trace_id: 9, events: vec![wire] };
        let json = serde_json::to_string(&trace).unwrap();
        let back: TraceWire = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn trim_keeps_longest_spans_within_budget() {
        let ev = |span_id, dur_ns| TraceEventWire {
            trace_id: 1,
            span_id,
            parent_id: 0,
            name: "t".into(),
            start_ns: span_id,
            dur_ns,
            thread: 0,
            fields: Vec::new(),
        };
        // Durations grow with span id: trimming must keep the tail.
        let trace = TraceWire { trace_id: 1, events: (1..=64).map(|i| ev(i, i * 1000)).collect() };
        let full = serde_json::to_string(&vec![trace.clone()]).unwrap().len();

        // A generous budget trims nothing.
        let untrimmed = trim_traces_to_bytes(vec![trace.clone()], full);
        assert_eq!(untrimmed[0].events.len(), 64);

        // A tight budget keeps the longest spans only, within budget.
        let trimmed = trim_traces_to_bytes(vec![trace.clone()], full / 3);
        assert!(!trimmed.is_empty(), "something survives a sane budget");
        let kept = &trimmed[0].events;
        assert!(kept.len() < 64);
        let min_kept = kept.iter().map(|e| e.dur_ns).min().unwrap();
        assert!(min_kept > 32 * 1000, "short spans dropped first, got min {min_kept}");
        assert!(serde_json::to_string(&trimmed).unwrap().len() <= full / 3);

        // An impossible budget degrades to empty, not an oversized reply.
        assert!(trim_traces_to_bytes(vec![trace], 10).is_empty());
    }

    #[test]
    fn trim_keeps_shallow_skeleton_over_deep_floods() {
        let ev = |span_id, parent_id, name: &str, dur_ns| TraceEventWire {
            trace_id: 1,
            span_id,
            parent_id,
            name: name.into(),
            start_ns: span_id,
            dur_ns,
            thread: 0,
            fields: Vec::new(),
        };
        // A request-shaped trace: short journal spans near the root, a long
        // round with a few pivots, and a flood of long oracle probes under
        // the pivots. A real scale round looks exactly like this — the
        // probes dwarf the journal fsync by orders of magnitude, and they
        // sit one level deeper than everything structural.
        let mut events = vec![
            ev(1, 0, "ctrl.request.run_auction", 5_000),
            ev(2, 1, "ctrl.journal.append", 2_000),
            ev(3, 2, "ctrl.journal.fsync", 1_500),
            ev(4, 1, "auction.round.parallel", 4_000),
        ];
        events.extend((0..4).map(|i| ev(10 + i, 4, "auction.pivot", 3_000_000 + i)));
        events.extend(
            (0..64).map(|i| ev(100 + i, 10 + (i % 4), "flow.oracle.evaluate", 1_000_000 + i)),
        );
        let trace = TraceWire { trace_id: 1, events };
        let full = serde_json::to_string(&vec![trace.clone()]).unwrap().len();

        let trimmed = trim_traces_to_bytes(vec![trace], full / 4);
        let kept = &trimmed[0].events;
        assert!(kept.len() < 72, "budget forced a trim");
        // The causal skeleton survives even though every probe is longer
        // than the journal spans.
        for name in [
            "ctrl.request.run_auction",
            "ctrl.journal.append",
            "ctrl.journal.fsync",
            "auction.round.parallel",
            "auction.pivot",
        ] {
            assert!(kept.iter().any(|e| e.name == name), "skeleton span {name} survives the trim");
        }
        // What was dropped came from the deep flood, longest probes kept.
        let probes: Vec<u64> =
            kept.iter().filter(|e| e.name == "flow.oracle.evaluate").map(|e| e.dur_ns).collect();
        assert!(!probes.is_empty() && probes.len() < 64);
        assert!(probes.iter().all(|&d| d >= 1_000_000 + (64 - probes.len() as u64)));
    }

    #[test]
    fn render_tree_indents_children_and_surfaces_orphans() {
        let ev = |span_id, parent_id, name: &str| TraceEventWire {
            trace_id: 1,
            span_id,
            parent_id,
            name: name.into(),
            start_ns: span_id,
            dur_ns: 1_000_000,
            thread: 0,
            fields: Vec::new(),
        };
        let trace = TraceWire {
            trace_id: 1,
            events: vec![ev(1, 0, "root"), ev(2, 1, "child"), ev(9, 1000, "orphan")],
        };
        let text = render_tree(&trace);
        assert!(text.contains("  root"), "{text}");
        assert!(text.contains("    child"), "{text}");
        // span 9's parent (1000) was evicted: it renders as a root.
        assert!(text.contains("  orphan"), "{text}");
    }
}

//! Point-in-time views of a [`crate::MetricsRegistry`], serializable as
//! JSON through the in-tree serde shim. The snapshot is the wire format
//! of the control plane's `Request::Metrics` scrape and of
//! [`crate::MetricsRegistry::snapshot_json`].

use serde::{Deserialize, Serialize};

/// One counter at snapshot time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

/// One gauge at snapshot time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    pub name: String,
    pub value: f64,
}

/// One histogram at snapshot time. Values are in the unit recorded —
/// nanoseconds for every span-fed latency histogram in this workspace.
/// Quantiles are log-bucket estimates clamped to the observed range.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean of the recorded values, `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Everything a registry knows, sorted by instrument name so the JSON is
/// deterministic and diffable.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub gauges: Vec<GaugeSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Value of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The snapshot as a JSON string (same encoding as the wire format).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_round_trip() {
        let snap = MetricsSnapshot {
            counters: vec![CounterSnapshot { name: "a.b".into(), value: 7 }],
            gauges: vec![GaugeSnapshot { name: "g".into(), value: -0.5 }],
            histograms: vec![HistogramSnapshot {
                name: "h".into(),
                count: 2,
                sum: 30,
                min: 10,
                max: 20,
                p50: 10,
                p90: 20,
                p99: 20,
            }],
        };
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("a.b"), Some(7));
        assert_eq!(back.gauge("g"), Some(-0.5));
        assert_eq!(back.histogram("h").unwrap().mean(), 15.0);
        assert_eq!(back.counter("missing"), None);
    }
}

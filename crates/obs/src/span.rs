//! RAII timing spans.
//!
//! A [`Span`] measures the wall time between its construction and its
//! drop and records it, in nanoseconds, into the histogram named by the
//! span. Enter one with the [`crate::span!`] macro — which caches the
//! histogram handle in a per-call-site static so entering a span never
//! takes the registry lock — or with [`Span::on`] when the histogram
//! handle is already at hand (e.g. resolved per-request in the control
//! plane).
//!
//! Spans always feed their histogram. When the global registry has
//! [`crate::MetricsRegistry::set_span_events`] switched on, closing a
//! span additionally emits a `span.close` event carrying the span name,
//! its fields, and the duration — useful for ad-hoc tracing through the
//! stderr sink without paying for string formatting in the steady state.

use crate::registry::Histogram;
use crate::sink::FieldValue;
use std::time::Instant;

/// An in-flight timed region. Ends (and records) on drop.
#[must_use = "a span records on drop; binding it to `_` ends it immediately"]
pub struct Span<'a> {
    name: &'static str,
    hist: &'a Histogram,
    fields: Vec<(&'static str, FieldValue)>,
    /// `None` when the registry is in no-op mode: drop does nothing.
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Enter a span recording into `hist` under `name`.
    pub fn on(name: &'static str, hist: &'a Histogram) -> Self {
        Self::with_fields(name, hist, Vec::new())
    }

    /// As [`Span::on`], with structured fields for the optional
    /// `span.close` event.
    pub fn with_fields(
        name: &'static str,
        hist: &'a Histogram,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> Self {
        let start = hist.is_enabled().then(Instant::now);
        Self { name, hist, fields, start }
    }

    /// Nanoseconds elapsed so far (`0` when the registry is disabled).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.map_or(0, |s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.hist.record(ns);
        let registry = crate::global();
        if registry.span_events_enabled() {
            let mut fields = std::mem::take(&mut self.fields);
            fields.push(("span", FieldValue::Str(self.name.to_string())));
            fields.push(("ns", FieldValue::U64(ns)));
            registry.emit("span.close", &fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn span_records_into_histogram_on_drop() {
        let r = MetricsRegistry::new();
        let h = r.histogram("span.test");
        {
            let span = Span::on("span.test", &h);
            std::thread::sleep(std::time::Duration::from_millis(1));
            assert!(span.elapsed_ns() > 0);
        }
        let snap = r.snapshot();
        let hist = snap.histogram("span.test").unwrap();
        assert_eq!(hist.count, 1);
        assert!(hist.min >= 1_000_000, "slept ≥ 1 ms, recorded {} ns", hist.min);
    }

    #[test]
    fn disabled_histogram_span_is_inert() {
        let r = MetricsRegistry::disabled();
        let h = r.histogram("span.noop");
        {
            let span = Span::on("span.noop", &h);
            assert_eq!(span.elapsed_ns(), 0);
        }
        assert_eq!(h.count(), 0);
    }
}

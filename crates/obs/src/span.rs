//! RAII timing spans.
//!
//! A [`Span`] measures the wall time between its construction and its
//! drop and records it, in nanoseconds, into the histogram named by the
//! span. Enter one with the [`crate::span!`] macro — which caches the
//! histogram handle in a per-call-site static so entering a span never
//! takes the registry lock — or with [`Span::on`] when the histogram
//! handle is already at hand (e.g. resolved per-request in the control
//! plane).
//!
//! Spans always feed their histogram. When the global registry has
//! [`crate::MetricsRegistry::set_span_events`] switched on, closing a
//! span additionally emits a `span.close` event carrying the span name,
//! its fields, and the duration — useful for ad-hoc tracing through the
//! stderr sink without paying for string formatting in the steady state.
//!
//! When the global flight recorder is enabled *and* the thread has an
//! active trace (see [`crate::trace`]), a span additionally becomes a
//! node in the trace's causal tree: it allocates a span id on entry,
//! parents to the previously current span, and parks a
//! [`crate::trace::TraceEvent`] on close.
//!
//! A span's end time is captured **once** on close; the histogram
//! value, the trace event's duration, and the `span.close` event all
//! reuse that single number, so the three can never disagree. Callers
//! that need the recorded duration call [`Span::finish`] instead of
//! reading [`Span::elapsed_ns`] and dropping (which would measure
//! twice).

use crate::registry::Histogram;
use crate::sink::FieldValue;
use crate::trace;
use std::time::Instant;

/// An in-flight timed region. Ends (and records) on drop.
#[must_use = "a span records on drop; binding it to `_` ends it immediately"]
pub struct Span<'a> {
    name: &'static str,
    hist: &'a Histogram,
    fields: Vec<(&'static str, FieldValue)>,
    /// `None` when nothing observes this span (registry in no-op mode
    /// and no active trace): close does nothing.
    start: Option<Instant>,
    /// Whether the histogram was live at entry (the registry half of
    /// `start`'s gate; tracing can keep `start` alive on its own).
    timed: bool,
    /// The tracing half, when the recorder and a trace are active.
    trace: Option<trace::OpenSpan>,
}

impl<'a> Span<'a> {
    /// Enter a span recording into `hist` under `name`.
    pub fn on(name: &'static str, hist: &'a Histogram) -> Self {
        Self::with_fields(name, hist, Vec::new())
    }

    /// As [`Span::on`], with structured fields for the optional
    /// `span.close` event (and the trace event, when tracing).
    pub fn with_fields(
        name: &'static str,
        hist: &'a Histogram,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> Self {
        let timed = hist.is_enabled();
        let trace = trace::begin_span();
        let start = (timed || trace.is_some()).then(Instant::now);
        Self { name, hist, fields, start, timed, trace }
    }

    /// Nanoseconds elapsed so far (`0` when nothing observes the span).
    /// This is a live peek; the value recorded at close is captured
    /// separately (use [`Span::finish`] to obtain that exact value).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.map_or(0, |s| u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }

    /// End the span now and return the duration that was recorded —
    /// the same single captured value the histogram, trace event, and
    /// `span.close` event received (`None` when nothing observed the
    /// span).
    pub fn finish(mut self) -> Option<u64> {
        self.close()
    }

    /// Shared close path for [`Span::finish`] and `Drop`: capture the
    /// end time once and fan the one duration out to every observer.
    fn close(&mut self) -> Option<u64> {
        let start = self.start.take()?;
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if self.timed {
            self.hist.record(ns);
        }
        let registry = crate::global();
        let emit_event = registry.span_events_enabled();
        if let Some(open) = self.trace.take() {
            let fields =
                if emit_event { self.fields.clone() } else { std::mem::take(&mut self.fields) };
            trace::end_span(open, self.name, ns, fields);
        }
        if emit_event {
            let mut fields = std::mem::take(&mut self.fields);
            fields.push(("span", FieldValue::Str(self.name.to_string())));
            fields.push(("ns", FieldValue::U64(ns)));
            registry.emit("span.close", &fields);
        }
        Some(ns)
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    #[test]
    fn span_records_into_histogram_on_drop() {
        let r = MetricsRegistry::new();
        let h = r.histogram("span.test");
        {
            let span = Span::on("span.test", &h);
            std::thread::sleep(std::time::Duration::from_millis(1));
            assert!(span.elapsed_ns() > 0);
        }
        let snap = r.snapshot();
        let hist = snap.histogram("span.test").unwrap();
        assert_eq!(hist.count, 1);
        assert!(hist.min >= 1_000_000, "slept ≥ 1 ms, recorded {} ns", hist.min);
    }

    #[test]
    fn disabled_histogram_span_is_inert() {
        let r = MetricsRegistry::disabled();
        let h = r.histogram("span.noop");
        {
            let span = Span::on("span.noop", &h);
            assert_eq!(span.elapsed_ns(), 0);
        }
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn finish_returns_exactly_the_recorded_value() {
        let r = MetricsRegistry::new();
        let h = r.histogram("span.finish");
        let span = Span::on("span.finish", &h);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let ns = span.finish().expect("histogram was live");
        // The single-sample histogram holds exactly the returned value:
        // min == max == the one captured end time.
        let snap = r.snapshot();
        let hist = snap.histogram("span.finish").unwrap();
        assert_eq!(hist.count, 1);
        assert_eq!(hist.min, ns);
        assert_eq!(hist.max, ns);
    }

    #[test]
    fn traced_span_duration_matches_histogram_exactly() {
        // One captured end time feeds both the histogram and the trace
        // event: the two durations are the same u64.
        let r = MetricsRegistry::new();
        let h = r.histogram("span.traced");
        // Leave the global recorder enabled rather than restoring: a
        // restore racing a parallel traced test could drop its event.
        let rec = trace::recorder();
        rec.set_enabled(true);
        let trace_id = trace::new_trace_id();
        let ns = {
            let _root = trace::start_trace(trace_id);
            let span = Span::on("span.traced", &h);
            std::thread::sleep(std::time::Duration::from_millis(1));
            span.finish().expect("histogram was live")
        };
        let event = rec
            .snapshot()
            .into_iter()
            .find(|e| e.trace_id == trace_id)
            .expect("traced span reached the flight recorder");
        assert_eq!(event.dur_ns, ns);
        let snap = r.snapshot();
        let hist = snap.histogram("span.traced").unwrap();
        assert_eq!(hist.min, ns);
        assert_eq!(hist.max, ns);
    }

    #[test]
    fn trace_only_span_records_even_with_histogram_disabled() {
        let r = MetricsRegistry::disabled();
        let h = r.histogram("span.traceonly");
        let rec = trace::recorder();
        rec.set_enabled(true);
        let trace_id = trace::new_trace_id();
        {
            let _root = trace::start_trace(trace_id);
            let _span = Span::on("span.traceonly", &h);
        }
        assert_eq!(h.count(), 0, "disabled histogram stays untouched");
        assert!(
            rec.snapshot().iter().any(|e| e.trace_id == trace_id),
            "the trace event still landed"
        );
    }
}

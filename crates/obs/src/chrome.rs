//! Chrome trace-event (Perfetto / `chrome://tracing`) export.
//!
//! Emits the JSON object format — `{"traceEvents": [...]}` — using
//! complete (`"ph": "X"`) events: one per recorded span, with
//! microsecond `ts`/`dur` (the format's convention), the recorder's
//! thread tag as `tid`, and the span's trace/span/parent ids plus its
//! structured fields under `args`. Load the file in `chrome://tracing`
//! or <https://ui.perfetto.dev> to see a full auction round as a
//! per-thread flame chart: the round span on the request thread, one
//! pivot lane per worker, journal appends/fsyncs interleaved.
//!
//! The export is built from plain serializable structs, so the output
//! round-trips through the same in-tree serde shims that frame the wire
//! protocol — no hand-escaped JSON.

use crate::trace::{TraceEventWire, TraceWire};
use serde::{Deserialize, Serialize};

/// `args` payload of one exported event: identity for cross-referencing
/// plus the span's fields rendered as strings.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChromeArgs {
    pub trace_id: u64,
    pub span_id: u64,
    pub parent_id: u64,
    pub fields: Vec<(String, String)>,
}

/// One Chrome trace-event record (complete-event flavour).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    pub name: String,
    pub cat: String,
    pub ph: String,
    /// Start, microseconds since the process trace epoch.
    pub ts: f64,
    /// Duration, microseconds.
    pub dur: f64,
    pub pid: u64,
    pub tid: u64,
    pub args: ChromeArgs,
}

/// The top-level export object.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[allow(non_snake_case)]
pub struct ChromeTrace {
    pub traceEvents: Vec<ChromeEvent>,
    pub displayTimeUnit: String,
}

fn to_chrome_event(event: &TraceEventWire) -> ChromeEvent {
    // Category = the name's leading component (`auction.pivot` →
    // `auction`), which chrome://tracing can filter on.
    let cat = event.name.split('.').next().unwrap_or("span").to_string();
    ChromeEvent {
        name: event.name.clone(),
        cat,
        ph: "X".into(),
        ts: event.start_ns as f64 / 1e3,
        dur: event.dur_ns as f64 / 1e3,
        pid: 1,
        tid: event.thread,
        args: ChromeArgs {
            trace_id: event.trace_id,
            span_id: event.span_id,
            parent_id: event.parent_id,
            fields: event.fields.clone(),
        },
    }
}

/// Build the export object for a set of scraped traces.
pub fn chrome_trace(traces: &[TraceWire]) -> ChromeTrace {
    ChromeTrace {
        traceEvents: traces.iter().flat_map(|t| t.events.iter().map(to_chrome_event)).collect(),
        displayTimeUnit: "ms".into(),
    }
}

/// The export as a JSON string ready for `chrome://tracing`.
pub fn chrome_trace_json(traces: &[TraceWire]) -> String {
    serde_json::to_string(&chrome_trace(traces)).expect("chrome trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> TraceWire {
        TraceWire {
            trace_id: 42,
            events: vec![TraceEventWire {
                trace_id: 42,
                span_id: 2,
                parent_id: 1,
                name: "auction.pivot".into(),
                start_ns: 1_500,
                dur_ns: 2_000_000,
                thread: 3,
                fields: vec![("bp".into(), "7".into())],
            }],
        }
    }

    #[test]
    fn export_is_valid_json_with_complete_events() {
        let json = chrome_trace_json(&[trace()]);
        let back: ChromeTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.traceEvents.len(), 1);
        let event = &back.traceEvents[0];
        assert_eq!(event.ph, "X");
        assert_eq!(event.name, "auction.pivot");
        assert_eq!(event.cat, "auction");
        assert_eq!(event.ts, 1.5);
        assert_eq!(event.dur, 2_000.0);
        assert_eq!(event.tid, 3);
        assert_eq!(event.args.trace_id, 42);
        assert_eq!(event.args.fields, vec![("bp".to_string(), "7".to_string())]);
    }
}

//! In-tree observability for the Public Option for the Core.
//!
//! Zero external dependencies (the serde/serde_json shims are in-tree):
//! a process-global [`MetricsRegistry`] of atomic counters, gauges, and
//! log-bucket latency histograms; RAII [`Span`]s that time a region into
//! the histogram named by the span; structured events fanned out to
//! pluggable [`Sink`]s; and a JSON snapshot exporter that the control
//! plane serves as its `Request::Metrics` scrape. On top of the metrics
//! layer sits causal tracing ([`trace`], [`ring`], [`chrome`]): spans
//! link into per-request trees inside a bounded flight recorder, served
//! as the `Request::Trace` scrape and exportable as Chrome trace-event
//! JSON.
//!
//! # Design rules
//!
//! * **Recording never locks.** Instrument handles are shared atomic
//!   cells; the registry lock is only taken when a *name* is resolved,
//!   and the [`counter!`] / [`histogram!`] / [`span!`] macros cache the
//!   resolved handle in a per-call-site static. The parallel Clarke-pivot
//!   path therefore pays a few relaxed atomic ops per record and nothing
//!   else — bounded by the `pivot_parallel` bench.
//! * **One global registry.** Library crates record into
//!   [`global()`]; it can be flipped into no-op mode with
//!   [`MetricsRegistry::set_enabled`]`(false)`. Isolated registries
//!   ([`MetricsRegistry::new`]) exist for tests.
//! * **Names are dotted paths**, `<crate>.<subsystem>.<what>`:
//!   `flow.cache.hit`, `auction.round.parallel`, `ctrl.frames.read`.
//!   Histograms record nanoseconds unless the name says otherwise.
//!
//! # Example
//!
//! ```
//! use poc_obs::{counter, span};
//!
//! fn handle_one() {
//!     let _round = span!("demo.work", kind = "example");
//!     counter!("demo.handled").inc();
//!     // ... the span records its wall time when `_round` drops ...
//! }
//!
//! handle_one();
//! let snap = poc_obs::global().snapshot();
//! assert_eq!(snap.counter("demo.handled"), Some(1));
//! assert_eq!(snap.histogram("demo.work").unwrap().count, 1);
//! ```

pub mod chrome;
pub mod histogram;
pub mod registry;
pub mod ring;
pub mod sink;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use ring::FlightRecorder;
pub use sink::{Event, FieldValue, Sink, StderrSink};
pub use snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsSnapshot};
pub use span::Span;
pub use trace::{TraceCtx, TraceEvent, TraceEventWire, TraceWire};

use std::sync::OnceLock;

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-global registry every library crate records into.
/// Initialized enabled, with no sinks, on first use.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Install the stderr text sink on the global registry (idempotent in
/// effect for examples: call once at startup).
pub fn log_to_stderr() {
    global().add_sink(std::sync::Arc::new(StderrSink));
}

/// Resolve a counter from the global registry, caching the handle in a
/// per-call-site static: the registry lock is taken at most once per
/// call site for the life of the process.
///
/// ```
/// poc_obs::counter!("doc.example.hits").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __POC_OBS_COUNTER: ::std::sync::OnceLock<$crate::Counter> =
            ::std::sync::OnceLock::new();
        __POC_OBS_COUNTER.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Resolve a gauge from the global registry (per-call-site cached, like
/// [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static __POC_OBS_GAUGE: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        __POC_OBS_GAUGE.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// Resolve a histogram from the global registry (per-call-site cached,
/// like [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __POC_OBS_HISTOGRAM: ::std::sync::OnceLock<$crate::Histogram> =
            ::std::sync::OnceLock::new();
        __POC_OBS_HISTOGRAM.get_or_init(|| $crate::global().histogram($name))
    }};
}

/// Enter an RAII timing span recording into the histogram of the same
/// name; optional `key = value` fields ride along on the `span.close`
/// event when span events are enabled.
///
/// ```
/// let pivot = 3u32;
/// let _span = poc_obs::span!("doc.example.pivot", bp = pivot);
/// // ... timed work; records into histogram "doc.example.pivot" on drop
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::on($name, $crate::histogram!($name))
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::Span::with_fields(
            $name,
            $crate::histogram!($name),
            vec![$((stringify!($key), $crate::FieldValue::from($value))),+],
        )
    };
}

/// Emit a structured event to every sink on the global registry. With no
/// sinks installed this costs one relaxed atomic load.
///
/// ```
/// poc_obs::event!("doc.example.done", items = 3usize, ok = true);
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::global().emit(
            $name,
            &[$((stringify!($key), $crate::FieldValue::from($value))),*],
        )
    };
}

#[cfg(test)]
mod tests {
    use crate::sink::{Event, Sink};
    use std::sync::{Arc, Mutex};

    #[derive(Default)]
    struct CaptureSink(Mutex<Vec<String>>);

    impl Sink for CaptureSink {
        fn record(&self, event: &Event<'_>) {
            let fields: Vec<String> =
                event.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            self.0.lock().unwrap().push(format!("{} [{}]", event.name, fields.join(", ")));
        }
    }

    #[test]
    fn macros_share_one_global_instrument() {
        // Two call sites, same name → same cell.
        counter!("lib.macro.count").add(2);
        counter!("lib.macro.count").inc();
        assert_eq!(crate::global().counter("lib.macro.count").get(), 3);

        gauge!("lib.macro.gauge").set(4.5);
        assert_eq!(crate::global().gauge("lib.macro.gauge").get(), 4.5);

        {
            let _span = span!("lib.macro.span", step = 1u32);
        }
        assert!(histogram!("lib.macro.span").count() >= 1);
    }

    #[test]
    fn events_reach_installed_sinks() {
        let sink = Arc::new(CaptureSink::default());
        crate::global().add_sink(sink.clone());
        event!("lib.test.event", n = 7u32, label = "x");
        let lines = sink.0.lock().unwrap().clone();
        assert!(lines.iter().any(|l| l == "lib.test.event [n=7, label=x]"), "captured: {lines:?}");
    }
}

//! Bounded, drop-oldest flight recorder for trace events.
//!
//! The recorder is a fixed-capacity ring of [`TraceEvent`] slots. A
//! writer claims a slot with one `fetch_add` on the ring head (the
//! claim itself is lock-free and wait-free), then parks the event in
//! the claimed slot under that slot's private mutex. Slot mutexes are
//! effectively uncontended: two writers only meet on the same slot once
//! the ring has lapped itself, and even then the critical section is a
//! single `Option` swap. There is no allocation on the record path
//! beyond the fields the span already owns — the ring never grows.
//!
//! When the ring laps, the newest event evicts the oldest (drop-oldest):
//! the flight-recorder contract is "the most recent history survives",
//! which is what post-hoc debugging of a slow round wants. Every evicted
//! event increments both the recorder-local [`FlightRecorder::dropped`]
//! count and the global `obs.trace.dropped` counter.
//!
//! Like the metrics registry, a disabled recorder costs one relaxed
//! atomic load per would-be event; the process-global recorder starts
//! disabled.

use crate::trace::TraceEvent;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Default slot count of the process-global recorder (see
/// [`crate::trace::recorder`]); override at startup with the
/// `POC_TRACE_CAPACITY` environment variable. At roughly 150 bytes per
/// slot this bounds the recorder near 2.5 MiB.
pub const DEFAULT_CAPACITY: usize = 16 * 1024;

/// One ring slot: the claim ticket that last wrote it plus the event.
/// `ticket` disambiguates racing writers that lapped into the same slot
/// — the higher ticket (the newer event) must win for drop-oldest to
/// hold even under that race.
struct Slot {
    cell: Mutex<Option<(u64, TraceEvent)>>,
}

/// A bounded drop-oldest ring of [`TraceEvent`]s.
pub struct FlightRecorder {
    enabled: AtomicBool,
    /// Total events ever claimed; `head % capacity` is the next slot.
    head: AtomicU64,
    /// Events evicted (or lost to a lap race) since construction.
    dropped: AtomicU64,
    slots: Box<[Slot]>,
}

impl FlightRecorder {
    /// A recorder with `capacity` slots, initially enabled. Isolated
    /// recorders (tests, the wraparound property) are built this way;
    /// production code records into [`crate::trace::recorder`].
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder needs at least one slot");
        let slots = (0..capacity).map(|_| Slot { cell: Mutex::new(None) }).collect();
        Self {
            enabled: AtomicBool::new(true),
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots,
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Flip recording on or off. Off, [`FlightRecorder::record`] is one
    /// relaxed load and a branch — the no-op discipline `Span` uses.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Park one event, evicting the oldest if the ring has lapped.
    pub fn record(&self, event: TraceEvent) {
        if !self.is_enabled() {
            return;
        }
        let ticket = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let mut cell = slot.cell.lock().expect("slot mutex poisoned");
        match &*cell {
            // A racing writer a full lap ahead already parked a *newer*
            // event here; keeping it (and dropping ours) preserves
            // drop-oldest.
            Some((resident, _)) if *resident > ticket => drop(cell),
            Some(_) => {
                *cell = Some((ticket, event));
                drop(cell);
            }
            None => {
                *cell = Some((ticket, event));
                return;
            }
        }
        self.dropped.fetch_add(1, Ordering::Relaxed);
        crate::counter!("obs.trace.dropped").inc();
    }

    /// Events evicted so far (the recorder-local view of the global
    /// `obs.trace.dropped` counter).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out the surviving events, oldest first. The ring keeps
    /// recording while the copy runs; each slot is locked only for its
    /// own clone.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut seen: Vec<(u64, TraceEvent)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            if let Some((ticket, event)) = &*slot.cell.lock().expect("slot mutex poisoned") {
                seen.push((*ticket, event.clone()));
            }
        }
        seen.sort_by_key(|(ticket, _)| *ticket);
        seen.into_iter().map(|(_, event)| event).collect()
    }

    /// Empty the ring and zero the local dropped count (tests and the
    /// `poc trace --clear` style workflows; the global counter is
    /// monotone and untouched).
    pub fn clear(&self) {
        for slot in self.slots.iter() {
            *slot.cell.lock().expect("slot mutex poisoned") = None;
        }
        self.dropped.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(n: u64) -> TraceEvent {
        TraceEvent {
            trace_id: 1,
            span_id: n,
            parent_id: 0,
            name: "ring.test",
            start_ns: n,
            dur_ns: 1,
            thread: 0,
            fields: Vec::new(),
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_evictions() {
        let ring = FlightRecorder::with_capacity(8);
        for n in 0..20 {
            ring.record(event(n));
        }
        assert_eq!(ring.dropped(), 12);
        let survivors: Vec<u64> = ring.snapshot().iter().map(|e| e.span_id).collect();
        assert_eq!(survivors, (12..20).collect::<Vec<u64>>(), "drop-oldest keeps the tail");
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let ring = FlightRecorder::with_capacity(4);
        ring.set_enabled(false);
        ring.record(event(0));
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn clear_resets_contents_and_local_drop_count() {
        let ring = FlightRecorder::with_capacity(2);
        for n in 0..5 {
            ring.record(event(n));
        }
        assert!(ring.dropped() > 0);
        ring.clear();
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn concurrent_writers_never_lose_the_ring_invariants() {
        let ring = std::sync::Arc::new(FlightRecorder::with_capacity(64));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let ring = std::sync::Arc::clone(&ring);
                scope.spawn(move || {
                    for n in 0..1000 {
                        ring.record(event(t * 1000 + n));
                    }
                });
            }
        });
        let events = ring.snapshot();
        assert_eq!(events.len(), 64, "a full ring holds exactly its capacity");
        assert_eq!(ring.dropped(), 4000 - 64);
    }
}

//! The metrics registry and its instrument handles.
//!
//! A [`MetricsRegistry`] maps dotted instrument names to shared atomic
//! cells. Resolving a name ([`MetricsRegistry::counter`] /
//! [`MetricsRegistry::gauge`] / [`MetricsRegistry::histogram`]) takes the
//! registry lock once and returns a cheap cloneable handle; *recording*
//! through a handle is purely relaxed atomics, so handles can be used
//! from the auction's parallel pivot threads without introducing any
//! lock. The [`crate::counter!`] / [`crate::histogram!`] /
//! [`crate::span!`] macros cache the handle in a per-call-site static, so
//! steady-state instrumentation never touches the registry lock at all.
//!
//! The whole registry can be switched into no-op mode
//! ([`MetricsRegistry::set_enabled`]): every handle observes the shared
//! flag and recording collapses to one relaxed load and a branch. The
//! `pivot_parallel` bench compares enabled vs no-op mode to bound the
//! instrumentation overhead.

use crate::histogram::HistogramCells;
use crate::sink::{Event, FieldValue, Sink};
use crate::snapshot::{CounterSnapshot, GaugeSnapshot, MetricsSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Monotone event counter. Clone freely; clones share the same cell.
#[derive(Clone, Debug)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (use to batch per-iteration counts into one atomic op).
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (stored as `f64` bits).
#[derive(Clone, Debug)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Add `delta` (lock-free compare-exchange loop).
    pub fn add(&self, delta: f64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut current = self.cell.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.cell.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.cell.load(Ordering::Relaxed))
    }
}

/// Log-bucket latency histogram handle (values in nanoseconds by
/// convention; see [`mod@crate::histogram`] for bucket semantics).
#[derive(Clone, Debug)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    cells: Arc<HistogramCells>,
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cells.record(value);
        }
    }

    /// Record a wall-clock duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Whether recording is currently active (shared registry flag).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.cells.count()
    }
}

/// One registered instrument.
enum Instrument {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCells>),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

/// Named instruments plus the event sinks. See the module docs for the
/// locking discipline; in short, the registry lock is a resolution-time
/// cost only — never a recording-time one.
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    span_events: AtomicBool,
    instruments: Mutex<BTreeMap<String, Instrument>>,
    sinks: RwLock<Vec<Arc<dyn Sink>>>,
    /// Mirrors `!sinks.is_empty()` so the no-sink fast path of
    /// [`MetricsRegistry::emit`] is one relaxed load.
    has_sinks: AtomicBool,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An enabled registry with no sinks.
    pub fn new() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(true)),
            span_events: AtomicBool::new(false),
            instruments: Mutex::new(BTreeMap::new()),
            sinks: RwLock::new(Vec::new()),
            has_sinks: AtomicBool::new(false),
        }
    }

    /// A no-op registry: handles resolve normally but record nothing
    /// until [`MetricsRegistry::set_enabled`]`(true)`.
    pub fn disabled() -> Self {
        let r = Self::new();
        r.enabled.store(false, Ordering::Relaxed);
        r
    }

    /// Toggle recording for every handle resolved from this registry.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Emit a `span.close` event to the sinks whenever an instrumented
    /// span ends (off by default; spans always feed their histogram).
    pub fn set_span_events(&self, on: bool) {
        self.span_events.store(on, Ordering::Relaxed);
    }

    pub fn span_events_enabled(&self) -> bool {
        self.span_events.load(Ordering::Relaxed)
    }

    /// Resolve (registering on first use) the counter `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind —
    /// a programming error the obs unit tests are meant to catch early.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.instruments.lock().expect("registry poisoned");
        let cell = match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Arc::new(AtomicU64::new(0))))
        {
            Instrument::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        };
        Counter { enabled: Arc::clone(&self.enabled), cell }
    }

    /// Resolve (registering on first use) the gauge `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.instruments.lock().expect("registry poisoned");
        let cell = match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
        {
            Instrument::Gauge(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        };
        Gauge { enabled: Arc::clone(&self.enabled), cell }
    }

    /// Resolve (registering on first use) the histogram `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.instruments.lock().expect("registry poisoned");
        let cells = match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Arc::new(HistogramCells::new())))
        {
            Instrument::Histogram(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        };
        Histogram { enabled: Arc::clone(&self.enabled), cells }
    }

    /// Install an event sink.
    pub fn add_sink(&self, sink: Arc<dyn Sink>) {
        let mut sinks = self.sinks.write().expect("sink list poisoned");
        sinks.push(sink);
        self.has_sinks.store(true, Ordering::Relaxed);
    }

    /// Remove every sink.
    pub fn clear_sinks(&self) {
        let mut sinks = self.sinks.write().expect("sink list poisoned");
        sinks.clear();
        self.has_sinks.store(false, Ordering::Relaxed);
    }

    /// Dispatch an event to every sink. With no sinks installed this is
    /// one relaxed load.
    pub fn emit(&self, name: &str, fields: &[(&'static str, FieldValue)]) {
        if !self.has_sinks.load(Ordering::Relaxed) {
            return;
        }
        let event = Event { name, fields };
        for sink in self.sinks.read().expect("sink list poisoned").iter() {
            sink.record(&event);
        }
    }

    /// Zero every registered instrument (names stay registered and every
    /// outstanding handle stays valid). Used between benchmark runs.
    pub fn reset(&self) {
        let map = self.instruments.lock().expect("registry poisoned");
        for instrument in map.values() {
            match instrument {
                Instrument::Counter(c) => c.store(0, Ordering::Relaxed),
                Instrument::Gauge(g) => g.store(0f64.to_bits(), Ordering::Relaxed),
                Instrument::Histogram(h) => h.reset(),
            }
        }
    }

    /// Point-in-time snapshot of every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.instruments.lock().expect("registry poisoned");
        let mut snap = MetricsSnapshot::default();
        for (name, instrument) in map.iter() {
            match instrument {
                Instrument::Counter(c) => snap
                    .counters
                    .push(CounterSnapshot { name: name.clone(), value: c.load(Ordering::Relaxed) }),
                Instrument::Gauge(g) => snap.gauges.push(GaugeSnapshot {
                    name: name.clone(),
                    value: f64::from_bits(g.load(Ordering::Relaxed)),
                }),
                Instrument::Histogram(h) => snap.histograms.push(h.snapshot(name)),
            }
        }
        snap
    }

    /// The snapshot rendered as JSON (the scrape format).
    pub fn snapshot_json(&self) -> String {
        serde_json::to_string(&self.snapshot()).expect("snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = MetricsRegistry::new();
        let c = r.counter("test.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // A second resolution shares the same cell.
        assert_eq!(r.counter("test.count").get(), 5);

        let g = r.gauge("test.gauge");
        g.set(2.5);
        g.add(-1.0);
        assert_eq!(g.get(), 1.5);

        let snap = r.snapshot();
        assert_eq!(snap.counter("test.count"), Some(5));
        assert_eq!(snap.gauge("test.gauge"), Some(1.5));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricsRegistry::disabled();
        let c = r.counter("noop.count");
        let h = r.histogram("noop.hist");
        c.inc();
        h.record(10);
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        // Re-enabling makes the same handles live.
        r.set_enabled(true);
        c.inc();
        h.record(10);
        assert_eq!(c.get(), 1);
        assert_eq!(h.count(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_conflict_panics() {
        let r = MetricsRegistry::new();
        r.counter("conflict.metric");
        r.histogram("conflict.metric");
    }

    #[test]
    fn snapshot_is_sorted_and_json_parses() {
        let r = MetricsRegistry::new();
        r.counter("z.last").inc();
        r.counter("a.first").inc();
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a.first", "z.last"]);
        let back: crate::MetricsSnapshot = serde_json::from_str(&r.snapshot_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn multithread_counter_increments_lose_nothing() {
        // Satellite stress test: N threads x M increments on one counter
        // (plus a histogram recording alongside) must lose no update.
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 20_000;
        let r = MetricsRegistry::new();
        let c = r.counter("stress.count");
        let h = r.histogram("stress.hist");
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.record(t as u64 * PER_THREAD + i);
                    }
                });
            }
        });
        let expected = THREADS as u64 * PER_THREAD;
        assert_eq!(c.get(), expected);
        let snap = r.snapshot();
        assert_eq!(snap.counter("stress.count"), Some(expected));
        assert_eq!(snap.histogram("stress.hist").unwrap().count, expected);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = MetricsRegistry::new();
        let c = r.counter("reset.count");
        let h = r.histogram("reset.hist");
        c.add(3);
        h.record(100);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(r.snapshot().counter("reset.count"), Some(1));
    }
}

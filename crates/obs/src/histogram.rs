//! Fixed-bucket log-scale histogram with lock-free recording.
//!
//! One bucket per power of two of the recorded value (nanoseconds by
//! convention): bucket 0 holds `[0, 2)`, bucket `i ≥ 1` holds
//! `[2^i, 2^(i+1))`, up to bucket 63 for everything at or above `2^63`.
//! Recording is a handful of relaxed atomic operations — no lock, so a
//! histogram handle can be shared freely across the auction's parallel
//! pivot threads. Quantiles are estimated from the bucket counts at
//! snapshot time: a quantile resolves to its bucket's inclusive upper
//! edge, clamped into the observed `[min, max]` range (which makes the
//! one-sample snapshot exact).

use crate::snapshot::HistogramSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets (`u64` value range).
pub const N_BUCKETS: usize = 64;

/// Bucket index for a recorded value: `0` for `{0, 1}`, otherwise
/// `floor(log2(value))`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < 2 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

/// Inclusive lower edge of bucket `i`.
pub fn bucket_lower_edge(i: usize) -> u64 {
    assert!(i < N_BUCKETS, "bucket out of range");
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Inclusive upper edge of bucket `i` (the largest value it can hold).
pub fn bucket_upper_edge(i: usize) -> u64 {
    assert!(i < N_BUCKETS, "bucket out of range");
    if i == 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// Shared histogram cells. All operations are relaxed atomics; totals are
/// exact under concurrency, quantiles are bucket-resolution estimates.
#[derive(Debug)]
pub struct HistogramCells {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCells {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation (lock-free).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Zero every cell (used between benchmark configurations).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Point-in-time snapshot with quantile estimates. `name` is copied
    /// into the snapshot so it is self-describing.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return HistogramSnapshot {
                name: name.to_string(),
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p90: 0,
                p99: 0,
            };
        }
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let q = |fraction: f64| -> u64 {
            // Rank of the requested quantile, 1-based, within the bucket
            // counts we summed above (immune to concurrent recording).
            let rank = ((fraction * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper_edge(i).clamp(min, max);
                }
            }
            max
        };
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: q(0.50),
            p90: q(0.90),
            p99: q(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        // Values landing exactly on an edge go to the bucket whose lower
        // edge they are.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        for i in 1..63 {
            let edge = 1u64 << i;
            assert_eq!(bucket_index(edge), i, "2^{i} starts bucket {i}");
            assert_eq!(bucket_index(edge - 1), i - 1, "2^{i}-1 ends bucket {}", i - 1);
            assert_eq!(bucket_lower_edge(i), edge);
            assert_eq!(bucket_upper_edge(i - 1), edge - 1);
        }
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_upper_edge(63), u64::MAX);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let h = HistogramCells::new();
        let s = h.snapshot("empty");
        assert_eq!(s.count, 0);
        assert_eq!((s.min, s.max, s.p50, s.p90, s.p99), (0, 0, 0, 0, 0));
    }

    #[test]
    fn one_sample_snapshot_is_exact() {
        let h = HistogramCells::new();
        h.record(777);
        let s = h.snapshot("one");
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 777);
        // min == max == the sample, and clamping makes every quantile exact.
        assert_eq!((s.min, s.max), (777, 777));
        assert_eq!((s.p50, s.p90, s.p99), (777, 777, 777));
    }

    #[test]
    fn quantiles_track_bucket_mass() {
        let h = HistogramCells::new();
        // 90 fast observations (bucket of 100) and 10 slow (bucket of 10_000).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        let s = h.snapshot("mix");
        assert_eq!(s.count, 100);
        // p50 lands in the fast bucket, p99 in the slow one.
        assert!(s.p50 < 256, "p50 = {}", s.p50);
        assert!(s.p99 >= 8192, "p99 = {}", s.p99);
        assert!(s.p90 <= s.p99);
        assert_eq!(s.max, 10_000);
        assert_eq!(s.min, 100);
    }
}

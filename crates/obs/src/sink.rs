//! Structured events and pluggable sinks.
//!
//! An [`Event`] is a name plus a flat list of typed fields. Events are
//! emitted with the [`crate::event!`] macro (or
//! [`crate::MetricsRegistry::emit`]) and fan out to every [`Sink`]
//! installed on the registry. The in-tree [`StderrSink`] renders one text
//! line per event; richer sinks (files, sockets) plug in through the same
//! trait.

use std::io::Write;
use std::sync::OnceLock;
use std::time::Instant;

/// A typed event field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.4}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! from_impls {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $cast)
            }
        }
    )*};
}

from_impls! {
    u64 => U64 as u64, u32 => U64 as u64, u16 => U64 as u64, usize => U64 as u64,
    i64 => I64 as i64, i32 => I64 as i64,
    f64 => F64 as f64, f32 => F64 as f64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured event, borrowed for the duration of the dispatch.
#[derive(Debug)]
pub struct Event<'a> {
    /// Dotted event name, e.g. `auction.round.done`.
    pub name: &'a str,
    /// `(key, value)` pairs in emission order.
    pub fields: &'a [(&'static str, FieldValue)],
}

/// Receives every event emitted through a registry.
pub trait Sink: Send + Sync {
    fn record(&self, event: &Event<'_>);
}

/// Seconds since the first event the process emitted (a cheap monotonic
/// timestamp that needs no wall-clock dependency).
fn uptime_secs() -> f64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// Text sink: one `+<uptime>s name key=value ...` line per event on
/// stderr, keeping stdout free for an example's primary data output.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn record(&self, event: &Event<'_>) {
        let mut line = format!("+{:9.3}s {}", uptime_secs(), event.name);
        for (key, value) in event.fields {
            line.push_str(&format!(" {key}={value}"));
        }
        line.push('\n');
        // One write_all per event keeps concurrent emitters line-atomic.
        let _ = std::io::stderr().write_all(line.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Sink capturing formatted events for assertions.
    #[derive(Default)]
    pub struct VecSink(pub Mutex<Vec<String>>);

    impl Sink for VecSink {
        fn record(&self, event: &Event<'_>) {
            let fields: Vec<String> =
                event.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            self.0.lock().unwrap().push(format!("{} {}", event.name, fields.join(" ")));
        }
    }

    #[test]
    fn field_value_conversions() {
        assert_eq!(FieldValue::from(3u32), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-3i32), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(1.5f64), FieldValue::F64(1.5));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
    }

    #[test]
    fn vec_sink_formats_fields_in_order() {
        let sink = VecSink::default();
        sink.record(&Event {
            name: "test.event",
            fields: &[("a", FieldValue::U64(1)), ("b", FieldValue::Str("two".into()))],
        });
        assert_eq!(sink.0.lock().unwrap().as_slice(), ["test.event a=1 b=two"]);
    }
}

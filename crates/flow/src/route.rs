//! Greedy multi-commodity routing with flow splitting.
//!
//! The feasibility question "can this link set carry the traffic matrix?"
//! is a multi-commodity flow problem. Exact MCF is an LP; at auction scale
//! (thousands of candidate-set evaluations) we instead use the standard
//! greedy heuristic: route demands largest-first along the shortest
//! residual-feasible path, splitting a demand across several paths when no
//! single path has enough headroom. The heuristic is *conservative* — a
//! `Routing` it returns is always genuinely feasible (capacities respected);
//! it may only fail on instances an LP could still pack.

use crate::graph::{CapacityGraph, Dir};
use crate::linkset::LinkSet;
use poc_topology::{LinkId, PocTopology, RouterId};
use poc_traffic::TrafficMatrix;

/// One routed demand: possibly split over several paths.
#[derive(Clone, Debug)]
pub struct FlowRoute {
    pub src: RouterId,
    pub dst: RouterId,
    pub demand_gbps: f64,
    /// (links in order, Gbit/s carried on that path).
    pub paths: Vec<(Vec<LinkId>, f64)>,
}

/// A complete feasible routing of a traffic matrix over an active link set.
#[derive(Clone, Debug, Default)]
pub struct Routing {
    pub flows: Vec<FlowRoute>,
    /// Directed load per link (indexed by link id): a→b and b→a.
    pub load_fwd: Vec<f64>,
    pub load_rev: Vec<f64>,
}

impl Routing {
    /// The *primary* path (largest share) of the flow `src → dst`, if the
    /// flow exists and was routed.
    pub fn primary_path(&self, src: RouterId, dst: RouterId) -> Option<&[LinkId]> {
        self.flows
            .iter()
            .find(|f| f.src == src && f.dst == dst)?
            .paths
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(p, _)| p.as_slice())
    }

    /// All links carrying non-zero load.
    pub fn used_links(&self, universe: usize) -> LinkSet {
        let mut s = LinkSet::empty(universe);
        for (i, (&f, &r)) in self.load_fwd.iter().zip(&self.load_rev).enumerate() {
            if f > 0.0 || r > 0.0 {
                s.insert(LinkId::from_index(i));
            }
        }
        s
    }

    /// Maximum directional utilization over links in `active`, given their
    /// capacities in `topo` (1.0 = some link full).
    pub fn max_utilization(&self, topo: &PocTopology) -> f64 {
        let mut max = 0.0f64;
        for (i, (&f, &r)) in self.load_fwd.iter().zip(&self.load_rev).enumerate() {
            let cap = topo.links[i].capacity_gbps;
            if cap > 0.0 {
                max = max.max(f / cap).max(r / cap);
            }
        }
        max
    }

    /// Fraction of flows that needed more than one path.
    pub fn split_fraction(&self) -> f64 {
        if self.flows.is_empty() {
            return 0.0;
        }
        self.flows.iter().filter(|f| f.paths.len() > 1).count() as f64 / self.flows.len() as f64
    }
}

/// Why a matrix could not be routed.
#[derive(Clone, Debug, PartialEq)]
pub enum RouteError {
    /// No residual-feasible path (even split) for this demand.
    Unroutable { src: RouterId, dst: RouterId, remaining_gbps: f64 },
    /// The active set does not even connect the endpoints.
    Disconnected { src: RouterId, dst: RouterId },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Unroutable { src, dst, remaining_gbps } => {
                write!(f, "no residual capacity for {remaining_gbps:.2} Gbps of {src}->{dst}")
            }
            RouteError::Disconnected { src, dst } => {
                write!(f, "{src} and {dst} are disconnected in the active set")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// Maximum number of splits for one demand before giving up.
pub const MAX_SPLITS: usize = 32;

/// Distance multiplier applied to external-ISP virtual links on the
/// retry pass: plain distance-shortest routing can be lured onto the
/// (few, shared) virtual links and saturate them, failing instances that
/// are feasible when the virtual fallback is used sparingly. The greedy
/// router therefore tries plain distances first and, on failure, retries
/// with virtual links de-preferred.
pub const VIRTUAL_RETRY_PENALTY: f64 = 8.0;

/// Route `tm` over `active ⊆ links(topo)`. Demands are processed
/// largest-first; each is placed on the distance-shortest path whose
/// residual fits it, or split across up to [`MAX_SPLITS`] such paths.
/// On failure, one retry de-prefers virtual links (see
/// [`VIRTUAL_RETRY_PENALTY`]); the first error is reported if both fail.
pub fn route_tm(
    topo: &PocTopology,
    active: &LinkSet,
    tm: &TrafficMatrix,
) -> Result<Routing, RouteError> {
    // Trace granularity: one span per full TM routing pass (the
    // `place_flow` loop), not per placed flow — a span per Dijkstra
    // would dominate the ring without adding attribution.
    let _span = poc_obs::span!("flow.route_tm");
    let mut g = CapacityGraph::new(topo, active);
    match route_tm_on(&mut g, tm, |_, _| true, 1.0) {
        Ok(r) => Ok(r),
        Err(first) => {
            let mut g = CapacityGraph::new(topo, active);
            route_tm_on(&mut g, tm, |_, _| true, VIRTUAL_RETRY_PENALTY).map_err(|_| first)
        }
    }
}

/// As [`route_tm`], but with a per-flow link veto: `allowed(flow_index,
/// link)` returning false excludes a link for that flow (used by the
/// all-pairs-backup constraint to keep each flow off its primary path).
/// `flow_index` is the index into the demand ordering (largest first).
pub fn route_tm_with_veto(
    topo: &PocTopology,
    active: &LinkSet,
    tm: &TrafficMatrix,
    allowed: impl Fn(usize, LinkId) -> bool,
) -> Result<Routing, RouteError> {
    let mut g = CapacityGraph::new(topo, active);
    match route_tm_on(&mut g, tm, &allowed, 1.0) {
        Ok(r) => Ok(r),
        Err(first) => {
            let mut g = CapacityGraph::new(topo, active);
            route_tm_on(&mut g, tm, &allowed, VIRTUAL_RETRY_PENALTY).map_err(|_| first)
        }
    }
}

/// The demand ordering every router in this crate processes flows in:
/// largest-first (big demands are hardest to place). The warm oracle's
/// partial re-route must follow the same ordering to stay behaviorally
/// aligned with the from-scratch router.
pub(crate) fn sorted_demands(tm: &TrafficMatrix) -> Vec<(RouterId, RouterId, f64)> {
    let mut demands: Vec<(RouterId, RouterId, f64)> = tm.iter_demands().collect();
    demands.sort_by(|a, b| b.2.total_cmp(&a.2));
    demands
}

fn route_tm_on(
    g: &mut CapacityGraph<'_>,
    tm: &TrafficMatrix,
    allowed: impl Fn(usize, LinkId) -> bool,
    virtual_penalty: f64,
) -> Result<Routing, RouteError> {
    let topo = g.topo();
    let demands = sorted_demands(tm);

    let mut routing = Routing {
        flows: Vec::with_capacity(demands.len()),
        load_fwd: vec![0.0; topo.n_links()],
        load_rev: vec![0.0; topo.n_links()],
    };

    for (fi, (src, dst, demand)) in demands.into_iter().enumerate() {
        let flow = place_flow(g, &mut routing, fi, src, dst, demand, &allowed, virtual_penalty)?;
        routing.flows.push(flow);
    }
    Ok(routing)
}

/// Place one `src → dst` demand on `g`: consume residuals, record the
/// per-link loads in `routing`, and return the resulting [`FlowRoute`]
/// (not yet pushed into `routing.flows`). Shared by the full-matrix
/// router above and the warm oracle's partial re-route — the path choice,
/// split policy, and error reporting must stay identical between the two.
#[allow(clippy::too_many_arguments)]
pub(crate) fn place_flow(
    g: &mut CapacityGraph<'_>,
    routing: &mut Routing,
    fi: usize,
    src: RouterId,
    dst: RouterId,
    demand: f64,
    allowed: &impl Fn(usize, LinkId) -> bool,
    virtual_penalty: f64,
) -> Result<FlowRoute, RouteError> {
    let topo = g.topo();
    let metric = |l: LinkId| {
        let link = topo.link(l);
        link.distance_km * if link.owner.is_virtual() { virtual_penalty } else { 1.0 }
    };
    let mut remaining = demand;
    let mut paths: Vec<(Vec<LinkId>, f64)> = Vec::new();
    let mut splits = 0;
    while remaining > 1e-9 {
        // Shortest path with residual >= remaining; if none, accept the
        // best path with any residual and split.
        let want = remaining;
        let path = g.shortest_path(
            src,
            dst,
            |l, _| metric(l),
            |l, dir| allowed(fi, l) && g.residual(l, dir) >= want - 1e-9,
        );
        let (path, amount) = match path {
            Some(p) => (p, remaining),
            None => {
                // Split: find the max-residual (widest) usable path.
                let p = g.shortest_path(
                    src,
                    dst,
                    |l, _| metric(l),
                    |l, dir| allowed(fi, l) && g.residual(l, dir) > 1e-9,
                );
                let Some(p) = p else {
                    return Err(if paths.is_empty() && !has_any_path(g, src, dst) {
                        RouteError::Disconnected { src, dst }
                    } else {
                        RouteError::Unroutable { src, dst, remaining_gbps: remaining }
                    });
                };
                let dirs = g.path_dirs(src, &p);
                let bottleneck = p
                    .iter()
                    .zip(&dirs)
                    .map(|(&l, &d)| g.residual(l, d))
                    .fold(f64::INFINITY, f64::min);
                (p, remaining.min(bottleneck))
            }
        };
        if amount <= 1e-9 {
            return Err(RouteError::Unroutable { src, dst, remaining_gbps: remaining });
        }
        let dirs = g.path_dirs(src, &path);
        for (&l, &d) in path.iter().zip(&dirs) {
            g.consume(l, d, amount);
            match d {
                Dir::Fwd => routing.load_fwd[l.index()] += amount,
                Dir::Rev => routing.load_rev[l.index()] += amount,
            }
        }
        remaining -= amount;
        paths.push((path, amount));
        splits += 1;
        if splits > MAX_SPLITS && remaining > 1e-9 {
            return Err(RouteError::Unroutable { src, dst, remaining_gbps: remaining });
        }
    }
    Ok(FlowRoute { src, dst, demand_gbps: demand, paths })
}

fn has_any_path(g: &CapacityGraph<'_>, src: RouterId, dst: RouterId) -> bool {
    g.shortest_path(src, dst, |_, _| 1.0, |_, _| true).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::builder::two_bp_square;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    #[test]
    fn routes_simple_demand_on_shortest_path() {
        let t = two_bp_square();
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 10.0);
        let routing = route_tm(&t, &LinkSet::full(t.n_links()), &tm).unwrap();
        assert_eq!(routing.flows.len(), 1);
        let p = routing.primary_path(r(0), r(1)).unwrap();
        assert_eq!(p.len(), 1, "direct r0-r1 link is shortest");
        assert!(t.link(p[0]).connects(r(0), r(1)));
    }

    #[test]
    fn splits_when_no_single_path_fits() {
        // r0-r1 direct capacity 100; demand 150 forces a split onto the
        // r0-r2-r1 detour.
        let t = two_bp_square();
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 150.0);
        let routing = route_tm(&t, &LinkSet::full(t.n_links()), &tm).unwrap();
        let flow = &routing.flows[0];
        assert!(flow.paths.len() >= 2, "expected a split, got {:?}", flow.paths);
        let total: f64 = flow.paths.iter().map(|(_, g)| g).sum();
        assert!((total - 150.0).abs() < 1e-6);
        assert!(routing.split_fraction() > 0.0);
    }

    #[test]
    fn respects_capacity_no_overcommit() {
        let t = two_bp_square();
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 80.0);
        tm.set(r(0), r(2), 80.0);
        tm.set(r(1), r(2), 80.0);
        let routing = route_tm(&t, &LinkSet::full(t.n_links()), &tm).unwrap();
        for (i, l) in t.links.iter().enumerate() {
            assert!(routing.load_fwd[i] <= l.capacity_gbps + 1e-6);
            assert!(routing.load_rev[i] <= l.capacity_gbps + 1e-6);
        }
    }

    #[test]
    fn fails_on_infeasible_load() {
        // Total capacity toward r3 is 40+40+40 = 120 (BP1 links); ask 200.
        let t = two_bp_square();
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(3), 200.0);
        let err = route_tm(&t, &LinkSet::full(t.n_links()), &tm).unwrap_err();
        assert!(matches!(err, RouteError::Unroutable { .. }), "{err:?}");
    }

    #[test]
    fn fails_disconnected() {
        let t = two_bp_square();
        // Only BP0 links: r3 unreachable.
        let bp0 = LinkSet::from_links(t.n_links(), t.links_of_bp(poc_topology::BpId(0)));
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(3), 1.0);
        let err = route_tm(&t, &bp0, &tm).unwrap_err();
        assert_eq!(err, RouteError::Disconnected { src: r(0), dst: r(3) });
    }

    #[test]
    fn veto_forces_detour() {
        let t = two_bp_square();
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 10.0);
        let all = LinkSet::full(t.n_links());
        let direct = route_tm(&t, &all, &tm).unwrap().primary_path(r(0), r(1)).unwrap()[0];
        let routing = route_tm_with_veto(&t, &all, &tm, move |_, l| l != direct).unwrap();
        let p = routing.primary_path(r(0), r(1)).unwrap();
        assert!(!p.contains(&direct));
        assert!(p.len() >= 2);
    }

    #[test]
    fn full_duplex_directions_independent() {
        // Symmetric demands should both fit on the same direct link.
        let t = two_bp_square();
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 90.0);
        tm.set(r(1), r(0), 90.0);
        let routing = route_tm(&t, &LinkSet::full(t.n_links()), &tm).unwrap();
        assert_eq!(routing.flows.len(), 2);
        for f in &routing.flows {
            assert_eq!(f.paths.len(), 1, "no split needed full-duplex");
        }
    }

    #[test]
    fn used_links_and_utilization() {
        let t = two_bp_square();
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 50.0);
        let routing = route_tm(&t, &LinkSet::full(t.n_links()), &tm).unwrap();
        let used = routing.used_links(t.n_links());
        assert_eq!(used.len(), 1);
        assert!((routing.max_utilization(&t) - 0.5).abs() < 1e-9);
    }
}

//! Failure-scenario checking for the auction's resilience constraints.
//!
//! The paper's Constraint #2 requires the selected links to carry the
//! traffic matrix "assuming that any single path between a pair of routers
//! has failed", and Constraint #3 "assuming that a path between each pair
//! of routers has failed". We make these precise as follows (DESIGN.md §4):
//!
//! * A *path failure* for pair `(p, q)` means the pair's **primary path**
//!   in the base routing becomes unavailable to it.
//! * **Constraint #2** — for every pair, considered one at a time: with all
//!   other flows keeping their base-routing placements, the pair's own
//!   demand can be re-routed while avoiding every link of its primary path.
//!   Backup capacity may be shared across scenarios (failures are not
//!   simultaneous).
//! * **Constraint #3** — every pair can be placed on a backup avoiding its
//!   own primary path *simultaneously* (backup capacity is not shared).
//!   This is strictly more demanding than #2.
//!
//! A third, link-level analysis — [`absorb_link_failure`] — models a
//! physical fibre cut: every flow crossing a failed link is displaced and
//! must be re-routed in the residual capacity. It is used by the failure
//! drills in the simulator, not by the auction constraints.

use crate::graph::CapacityGraph;
use crate::linkset::LinkSet;
use crate::route::{route_tm, route_tm_with_veto, FlowRoute, RouteError, Routing};
use poc_topology::{LinkId, PocTopology, RouterId};
use poc_traffic::TrafficMatrix;
use std::collections::HashSet;

/// Outcome of a resilience check.
#[derive(Clone, Debug, PartialEq)]
pub enum ResilienceResult {
    /// All checked scenarios survive.
    Survives,
    /// The first failing scenario: the pair whose primary-path failure
    /// cannot be absorbed, and why.
    Fails { pair: (RouterId, RouterId), reason: FailReason },
}

impl ResilienceResult {
    pub fn survives(&self) -> bool {
        matches!(self, ResilienceResult::Survives)
    }
}

/// Why a failure scenario could not be absorbed. Typed so callers (the
/// transition planner in particular) can branch on the cause instead of
/// parsing messages; [`std::fmt::Display`] renders the exact strings the
/// stringly-typed predecessor produced.
#[derive(Clone, Debug, PartialEq)]
pub enum FailReason {
    /// Part of the displaced demand has no path at all on the residual
    /// capacities (under the scenario's veto set).
    NoBackupRoute { pair: (RouterId, RouterId), remaining_gbps: f64 },
    /// A backup path exists but its bottleneck residual is zero.
    ZeroBackupResidual { pair: (RouterId, RouterId) },
    /// The demand would need more than the per-flow split budget of
    /// backup paths.
    SplitBudgetExceeded { pair: (RouterId, RouterId) },
    /// Constraint #3: a pair has no connectivity avoiding its primary.
    NoBackupConnectivity,
    /// Constraint #3: backup connectivity exists but the simultaneous
    /// backup demands do not fit.
    BackupUnroutable { remaining_gbps: f64 },
}

impl FailReason {
    /// Whether the failure is a capacity shortfall (more capacity between
    /// the pair could fix it) as opposed to a structural one (no route at
    /// any capacity). The transition planner uses this to decide between
    /// provisioning more headroom and giving up on an ordering.
    pub fn is_capacity_shortfall(&self) -> bool {
        matches!(
            self,
            FailReason::ZeroBackupResidual { .. }
                | FailReason::SplitBudgetExceeded { .. }
                | FailReason::BackupUnroutable { .. }
        )
    }
}

impl std::fmt::Display for FailReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailReason::NoBackupRoute { pair: (src, dst), remaining_gbps } => {
                write!(f, "{remaining_gbps:.2} Gbps of {src}->{dst} has no backup route")
            }
            FailReason::ZeroBackupResidual { pair: (src, dst) } => {
                write!(f, "zero backup residual for {src}->{dst}")
            }
            FailReason::SplitBudgetExceeded { pair: (src, dst) } => {
                write!(f, "{src}->{dst} exceeded backup split budget")
            }
            FailReason::NoBackupConnectivity => write!(f, "no backup connectivity"),
            FailReason::BackupUnroutable { remaining_gbps } => {
                write!(f, "{remaining_gbps:.2} Gbps of backup demand unroutable")
            }
        }
    }
}

/// Maximum paths a re-routed demand may be split across.
const MAX_REROUTE_SPLITS: usize = 64;

/// Constraint #2 check: for each flow (every `sample_every`-th, stride 1 =
/// exhaustive), release the flow's own load, then try to re-route its full
/// demand while avoiding its primary path, in the presence of everyone
/// else's base loads. Restores state between scenarios.
pub fn survives_single_path_failures(
    topo: &PocTopology,
    active: &LinkSet,
    tm: &TrafficMatrix,
    base: &Routing,
    sample_every: usize,
) -> ResilienceResult {
    match failing_single_path_scenarios(topo, active, tm, base, sample_every, 1).pop() {
        None => ResilienceResult::Survives,
        Some((pair, reason)) => ResilienceResult::Fails { pair, reason },
    }
}

/// As [`survives_single_path_failures`], but collects up to `max_failures`
/// failing scenarios instead of stopping at the first. Used by the
/// auction's selector to repair many scenarios per verification round.
pub fn failing_single_path_scenarios(
    topo: &PocTopology,
    active: &LinkSet,
    _tm: &TrafficMatrix,
    base: &Routing,
    sample_every: usize,
    max_failures: usize,
) -> Vec<((RouterId, RouterId), FailReason)> {
    assert!(sample_every >= 1, "sample stride must be >= 1");
    let mut failures = Vec::new();
    // One graph with all base loads applied; scenarios edit it locally.
    let mut g = CapacityGraph::new(topo, active);
    for flow in &base.flows {
        for (path, gbps) in &flow.paths {
            let dirs = g.path_dirs(flow.src, path);
            for (&l, &d) in path.iter().zip(&dirs) {
                g.consume(l, d, *gbps);
            }
        }
    }
    for (i, flow) in base.flows.iter().enumerate() {
        if i % sample_every != 0 {
            continue;
        }
        let Some(primary) = primary_of(flow) else { continue };
        let veto: HashSet<LinkId> = primary.iter().copied().collect();
        // Release this flow's entire load (all its paths fail with the
        // primary corridor, conservatively none of its placements survive).
        for (path, gbps) in &flow.paths {
            let dirs = g.path_dirs(flow.src, path);
            for (&l, &d) in path.iter().zip(&dirs) {
                g.release(l, d, *gbps);
            }
        }
        let rerouted = reroute_demand(&mut g, topo, flow.src, flow.dst, flow.demand_gbps, &veto);
        // Undo scenario edits: release what the reroute consumed, re-apply
        // the base placement.
        if let Ok(paths) = &rerouted {
            for (path, gbps) in paths {
                let dirs = g.path_dirs(flow.src, path);
                for (&l, &d) in path.iter().zip(&dirs) {
                    g.release(l, d, *gbps);
                }
            }
        }
        for (path, gbps) in &flow.paths {
            let dirs = g.path_dirs(flow.src, path);
            for (&l, &d) in path.iter().zip(&dirs) {
                g.consume(l, d, *gbps);
            }
        }
        if let Err(reason) = rerouted {
            failures.push(((flow.src, flow.dst), reason));
            if failures.len() >= max_failures {
                break;
            }
        }
    }
    failures
}

/// Constraint #3 check: route every flow off its own primary path, all at
/// once.
pub fn survives_all_pairs_backup(
    topo: &PocTopology,
    active: &LinkSet,
    tm: &TrafficMatrix,
    base: &Routing,
) -> ResilienceResult {
    // Vetoes must be addressed by demand ordering (largest first), the same
    // ordering route_tm_with_veto uses internally.
    let mut demands: Vec<(RouterId, RouterId, f64)> = tm.iter_demands().collect();
    demands.sort_by(|a, b| b.2.total_cmp(&a.2));
    let vetoes: Vec<HashSet<LinkId>> = demands
        .iter()
        .map(|&(src, dst, _)| {
            base.primary_path(src, dst).map(|p| p.iter().copied().collect()).unwrap_or_default()
        })
        .collect();
    match route_tm_with_veto(topo, active, tm, |fi, l| !vetoes[fi].contains(&l)) {
        Ok(_) => ResilienceResult::Survives,
        Err(RouteError::Disconnected { src, dst }) => {
            ResilienceResult::Fails { pair: (src, dst), reason: FailReason::NoBackupConnectivity }
        }
        Err(RouteError::Unroutable { src, dst, remaining_gbps }) => ResilienceResult::Fails {
            pair: (src, dst),
            reason: FailReason::BackupUnroutable { remaining_gbps },
        },
    }
}

/// Try to place `demand` from `src` to `dst` avoiding `veto` links, over
/// the residual capacities of `g`. On success returns the consumed paths
/// (state in `g` is left consumed); on failure `g` is unchanged.
fn reroute_demand(
    g: &mut CapacityGraph<'_>,
    topo: &PocTopology,
    src: RouterId,
    dst: RouterId,
    demand: f64,
    veto: &HashSet<LinkId>,
) -> Result<Vec<(Vec<LinkId>, f64)>, FailReason> {
    let mut remaining = demand;
    let mut placed: Vec<(Vec<LinkId>, f64)> = Vec::new();
    let mut splits = 0;
    while remaining > 1e-9 {
        let want = remaining;
        let path = g
            .shortest_path(
                src,
                dst,
                |l, _| topo.link(l).distance_km,
                |l, dir| !veto.contains(&l) && g.residual(l, dir) >= want - 1e-9,
            )
            .or_else(|| {
                g.shortest_path(
                    src,
                    dst,
                    |l, _| topo.link(l).distance_km,
                    |l, dir| !veto.contains(&l) && g.residual(l, dir) > 1e-9,
                )
            });
        let Some(path) = path else {
            undo(g, src, &placed);
            return Err(FailReason::NoBackupRoute { pair: (src, dst), remaining_gbps: remaining });
        };
        let dirs = g.path_dirs(src, &path);
        let bottleneck =
            path.iter().zip(&dirs).map(|(&l, &d)| g.residual(l, d)).fold(f64::INFINITY, f64::min);
        let amount = remaining.min(bottleneck);
        if amount <= 1e-9 {
            undo(g, src, &placed);
            return Err(FailReason::ZeroBackupResidual { pair: (src, dst) });
        }
        for (&l, &d) in path.iter().zip(&dirs) {
            g.consume(l, d, amount);
        }
        remaining -= amount;
        placed.push((path, amount));
        splits += 1;
        if splits > MAX_REROUTE_SPLITS && remaining > 1e-9 {
            undo(g, src, &placed);
            return Err(FailReason::SplitBudgetExceeded { pair: (src, dst) });
        }
    }
    Ok(placed)
}

fn undo(g: &mut CapacityGraph<'_>, src: RouterId, placed: &[(Vec<LinkId>, f64)]) {
    for (path, gbps) in placed {
        let dirs = g.path_dirs(src, path);
        for (&l, &d) in path.iter().zip(&dirs) {
            g.release(l, d, *gbps);
        }
    }
}

/// Physical fibre-cut analysis (used by the simulator's failure drills):
/// flows of `base` that traverse any link in `failed` are displaced and
/// re-routed over the residual capacity left by the surviving flows, with
/// the failed links unusable. `Ok(())` if all displaced traffic fits.
pub fn absorb_link_failure(
    topo: &PocTopology,
    active: &LinkSet,
    base: &Routing,
    failed: &HashSet<LinkId>,
) -> Result<(), FailReason> {
    let mut surviving = active.clone();
    for &l in failed {
        surviving.remove(l);
    }
    let mut g = CapacityGraph::new(topo, &surviving);
    let mut displaced: Vec<(RouterId, RouterId, f64)> = Vec::new();
    for flow in &base.flows {
        for (path, gbps) in &flow.paths {
            if path.iter().any(|l| failed.contains(l)) {
                displaced.push((flow.src, flow.dst, *gbps));
            } else {
                let dirs = g.path_dirs(flow.src, path);
                for (&l, &d) in path.iter().zip(&dirs) {
                    g.consume(l, d, *gbps);
                }
            }
        }
    }
    displaced.sort_by(|a, b| b.2.total_cmp(&a.2));
    for (src, dst, gbps) in displaced {
        reroute_demand(&mut g, topo, src, dst, gbps, &HashSet::new())?;
    }
    Ok(())
}

fn primary_of(flow: &FlowRoute) -> Option<&[LinkId]> {
    flow.paths.iter().max_by(|a, b| a.1.total_cmp(&b.1)).map(|(p, _)| p.as_slice())
}

/// Convenience wrapper running the base routing then the Constraint #2
/// check.
pub fn check_resilience_c2(
    topo: &PocTopology,
    active: &LinkSet,
    tm: &TrafficMatrix,
    sample_every: usize,
) -> Result<ResilienceResult, RouteError> {
    let base = route_tm(topo, active, tm)?;
    Ok(survives_single_path_failures(topo, active, tm, &base, sample_every))
}

/// Convenience wrapper for Constraint #3.
pub fn check_resilience_c3(
    topo: &PocTopology,
    active: &LinkSet,
    tm: &TrafficMatrix,
) -> Result<ResilienceResult, RouteError> {
    let base = route_tm(topo, active, tm)?;
    Ok(survives_all_pairs_backup(topo, active, tm, &base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::builder::two_bp_square;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    #[test]
    fn redundant_topology_survives_c2() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 20.0);
        tm.set(r(2), r(3), 10.0);
        let res = check_resilience_c2(&t, &all, &tm, 1).unwrap();
        assert!(res.survives(), "{res:?}");
    }

    #[test]
    fn spanning_tree_fails_c2() {
        // Keep only a tree: links 0 (r0-r1), 1 (r1-r2), 5 (r1-r3). No pair
        // has a backup path.
        let t = two_bp_square();
        let tree = LinkSet::from_links(
            t.n_links(),
            [poc_topology::LinkId(0), poc_topology::LinkId(1), poc_topology::LinkId(5)],
        );
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 5.0);
        let res = check_resilience_c2(&t, &tree, &tm, 1).unwrap();
        assert!(!res.survives());
    }

    #[test]
    fn c2_scenario_state_is_restored_between_pairs() {
        // Two heavy demands that individually have backups but whose
        // backups share capacity: C2 must still pass because failures are
        // considered one at a time.
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let mut tm = TrafficMatrix::zero(t.n_routers());
        // Both primary paths are direct links; both backups go via r2 and
        // would not fit simultaneously at 90G each (links are 100G), but
        // one-at-a-time they fit.
        tm.set(r(0), r(1), 90.0);
        let res = check_resilience_c2(&t, &all, &tm, 1).unwrap();
        assert!(res.survives(), "{res:?}");
    }

    #[test]
    fn c3_requires_disjoint_capacity() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 10.0);
        tm.set(r(0), r(2), 10.0);
        let res = check_resilience_c3(&t, &all, &tm).unwrap();
        assert!(res.survives(), "{res:?}");
    }

    #[test]
    fn c3_fails_without_backup_paths() {
        let t = two_bp_square();
        let tree = LinkSet::from_links(
            t.n_links(),
            [poc_topology::LinkId(0), poc_topology::LinkId(1), poc_topology::LinkId(5)],
        );
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 5.0);
        let res = check_resilience_c3(&t, &tree, &tm).unwrap();
        assert!(!res.survives());
    }

    #[test]
    fn c2_failure_reports_offending_pair() {
        let t = two_bp_square();
        let tree = LinkSet::from_links(
            t.n_links(),
            [poc_topology::LinkId(0), poc_topology::LinkId(1), poc_topology::LinkId(5)],
        );
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 5.0);
        match check_resilience_c2(&t, &tree, &tm, 1).unwrap() {
            ResilienceResult::Fails { pair, .. } => assert_eq!(pair, (r(0), r(1))),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn c3_stricter_than_c2_under_shared_backup_capacity() {
        // Demands r0→r1 and r1→r0 at 60G: primaries are the direct link
        // (independent directions); backups both need the r0-r2-r1 corridor
        // in opposite directions — full duplex, so both fit. Raise to a
        // level where C2 passes but simultaneous backups via splitting are
        // constrained: use r0→r1 and r2→r1 at 95G. Backup of r0→r1 avoids
        // link 0 → goes r0-r2-r1 (needs 95 on l2,l1). Backup of r2→r1
        // avoids l1 → goes r2-r0-r1 (needs 95 on l2 reverse, l0). One at a
        // time each fits; verify C2 passes (C3 may or may not, depending on
        // split routing — this test pins the C2 behaviour only).
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 60.0);
        tm.set(r(2), r(1), 60.0);
        let res = check_resilience_c2(&t, &all, &tm, 1).unwrap();
        assert!(res.survives(), "{res:?}");
    }

    #[test]
    fn absorb_link_failure_reroutes_displaced_flows() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 50.0);
        let base = route_tm(&t, &all, &tm).unwrap();
        let primary: HashSet<LinkId> =
            base.primary_path(r(0), r(1)).unwrap().iter().copied().collect();
        assert!(absorb_link_failure(&t, &all, &base, &primary).is_ok());
        // Failing every link touching r1 strands the flow.
        let all_r1: HashSet<LinkId> =
            t.links.iter().filter(|l| l.a == r(1) || l.b == r(1)).map(|l| l.id).collect();
        assert!(absorb_link_failure(&t, &all, &base, &all_r1).is_err());
    }

    #[test]
    fn fail_reason_display_preserves_legacy_messages() {
        // The reason became a typed enum; the rendered strings are the
        // exact messages the stringly predecessor produced (callers that
        // log or snapshot them must not see a diff).
        let pair = (r(0), r(3));
        for (reason, want) in [
            (
                FailReason::NoBackupRoute { pair, remaining_gbps: 12.5 },
                "12.50 Gbps of r0->r3 has no backup route",
            ),
            (FailReason::ZeroBackupResidual { pair }, "zero backup residual for r0->r3"),
            (FailReason::SplitBudgetExceeded { pair }, "r0->r3 exceeded backup split budget"),
            (FailReason::NoBackupConnectivity, "no backup connectivity"),
            (
                FailReason::BackupUnroutable { remaining_gbps: 3.25 },
                "3.25 Gbps of backup demand unroutable",
            ),
        ] {
            assert_eq!(reason.to_string(), want);
        }
        assert!(FailReason::BackupUnroutable { remaining_gbps: 1.0 }.is_capacity_shortfall());
        assert!(!FailReason::NoBackupConnectivity.is_capacity_shortfall());
    }

    #[test]
    fn sampling_stride_skips_scenarios() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(r(0), r(1), 10.0);
        tm.set(r(2), r(3), 10.0);
        let base = route_tm(&t, &all, &tm).unwrap();
        // stride 1000 → only the first (largest) flow's failure is checked.
        let res = survives_single_path_failures(&t, &all, &tm, &base, 1000);
        assert!(res.survives());
    }
}

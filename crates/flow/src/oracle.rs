//! The acceptability oracle `A(OL)` used by the bandwidth auction.
//!
//! An element of `A(OL)` is a link subset that carries the traffic matrix
//! under the configured [`Constraint`]. The oracle also exposes the routing
//! it found, which the auction's greedy selection reuses.

use crate::failure::{
    survives_all_pairs_backup, survives_single_path_failures, ResilienceResult,
};
use crate::linkset::LinkSet;
use crate::route::{route_tm, RouteError, Routing};
use poc_topology::{PocTopology, RouterId};
use poc_traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};

/// Why a candidate set was rejected (used by the auction's selector to
/// augment the set in a targeted way).
#[derive(Clone, Debug, PartialEq)]
pub enum Rejection {
    /// The base traffic matrix itself could not be routed.
    BaseRoute(RouteError),
    /// Base routing fits but a resilience scenario fails for this pair.
    Resilience { pair: (RouterId, RouterId), reason: String },
}

/// The paper's three constraint levels (Figure 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Constraint {
    /// #1 — the links handle the offered load.
    BaseLoad,
    /// #2 — and survive any single path failure. The stride controls
    /// deterministic scenario sampling (1 = exhaustive).
    SinglePathFailure { sample_every: usize },
    /// #3 — and can place every pair on a backup avoiding its primary path,
    /// all simultaneously.
    AllPairsBackup,
}

impl Constraint {
    /// The constraint's paper label ("#1", "#2", "#3").
    pub fn label(self) -> &'static str {
        match self {
            Constraint::BaseLoad => "#1",
            Constraint::SinglePathFailure { .. } => "#2",
            Constraint::AllPairsBackup => "#3",
        }
    }

    /// The three paper constraints with `sample_every` for #2.
    pub fn paper_suite(sample_every: usize) -> [Constraint; 3] {
        [
            Constraint::BaseLoad,
            Constraint::SinglePathFailure { sample_every },
            Constraint::AllPairsBackup,
        ]
    }
}

/// Oracle binding a topology, a traffic matrix, and a constraint level.
pub struct FeasibilityOracle<'a> {
    topo: &'a PocTopology,
    tm: &'a TrafficMatrix,
    constraint: Constraint,
}

impl<'a> FeasibilityOracle<'a> {
    pub fn new(topo: &'a PocTopology, tm: &'a TrafficMatrix, constraint: Constraint) -> Self {
        assert_eq!(
            tm.n_routers(),
            topo.n_routers(),
            "traffic matrix and topology disagree on router count"
        );
        Self { topo, tm, constraint }
    }

    pub fn constraint(&self) -> Constraint {
        self.constraint
    }

    pub fn topo(&self) -> &'a PocTopology {
        self.topo
    }

    pub fn tm(&self) -> &'a TrafficMatrix {
        self.tm
    }

    /// Whether `links ∈ A(OL)`: the subset carries the matrix under the
    /// constraint.
    pub fn acceptable(&self, links: &LinkSet) -> bool {
        self.evaluate(links).is_ok()
    }

    /// As [`Self::acceptable`], but returns the base routing on success.
    pub fn route(&self, links: &LinkSet) -> Option<Routing> {
        self.evaluate(links).ok()
    }

    /// Up to `max` failing resilience scenarios for `links` (empty when the
    /// set is acceptable). For [`Constraint::AllPairsBackup`] the
    /// simultaneous-routing check inherently stops at its first failure, so
    /// at most one scenario is returned. A base-routing failure is reported
    /// as a single pseudo-scenario on the offending pair.
    pub fn failing_scenarios(
        &self,
        links: &LinkSet,
        max: usize,
    ) -> Vec<((RouterId, RouterId), String)> {
        let base = match route_tm(self.topo, links, self.tm) {
            Ok(b) => b,
            Err(RouteError::Disconnected { src, dst }) => {
                return vec![((src, dst), "disconnected".into())]
            }
            Err(RouteError::Unroutable { src, dst, remaining_gbps }) => {
                return vec![(
                    (src, dst),
                    format!("{remaining_gbps:.2} Gbps unroutable at base load"),
                )]
            }
        };
        match self.constraint {
            Constraint::BaseLoad => Vec::new(),
            Constraint::SinglePathFailure { sample_every } => {
                crate::failure::failing_single_path_scenarios(
                    self.topo,
                    links,
                    self.tm,
                    &base,
                    sample_every,
                    max,
                )
            }
            Constraint::AllPairsBackup => {
                match survives_all_pairs_backup(self.topo, links, self.tm, &base) {
                    ResilienceResult::Survives => Vec::new(),
                    ResilienceResult::Fails { pair, reason } => vec![(pair, reason)],
                }
            }
        }
    }

    /// Full evaluation: the base routing on success, or the reason the set
    /// was rejected.
    pub fn evaluate(&self, links: &LinkSet) -> Result<Routing, Rejection> {
        let base = route_tm(self.topo, links, self.tm).map_err(Rejection::BaseRoute)?;
        let res = match self.constraint {
            Constraint::BaseLoad => ResilienceResult::Survives,
            Constraint::SinglePathFailure { sample_every } => {
                survives_single_path_failures(self.topo, links, self.tm, &base, sample_every)
            }
            Constraint::AllPairsBackup => {
                survives_all_pairs_backup(self.topo, links, self.tm, &base)
            }
        };
        match res {
            ResilienceResult::Survives => Ok(base),
            ResilienceResult::Fails { pair, reason } => {
                Err(Rejection::Resilience { pair, reason })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::builder::two_bp_square;
    use poc_topology::{LinkId, RouterId};

    fn tm_for(t: &PocTopology) -> TrafficMatrix {
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(RouterId(0), RouterId(1), 10.0);
        tm.set(RouterId(2), RouterId(3), 10.0);
        tm
    }

    #[test]
    fn constraints_are_ordered_by_stringency_on_fixture() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let full = LinkSet::full(t.n_links());
        let tree =
            LinkSet::from_links(t.n_links(), [LinkId(0), LinkId(1), LinkId(5)]);

        let o1 = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        let o2 = FeasibilityOracle::new(
            &t,
            &tm,
            Constraint::SinglePathFailure { sample_every: 1 },
        );
        let o3 = FeasibilityOracle::new(&t, &tm, Constraint::AllPairsBackup);

        // Full mesh passes everything.
        assert!(o1.acceptable(&full) && o2.acceptable(&full) && o3.acceptable(&full));
        // Tree passes #1 only.
        assert!(o1.acceptable(&tree));
        assert!(!o2.acceptable(&tree));
        assert!(!o3.acceptable(&tree));
    }

    #[test]
    fn route_returns_base_routing() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let full = LinkSet::full(t.n_links());
        let o = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        let routing = o.route(&full).unwrap();
        assert_eq!(routing.flows.len(), 2);
    }

    #[test]
    fn empty_set_unacceptable() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let o = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        assert!(!o.acceptable(&LinkSet::empty(t.n_links())));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Constraint::BaseLoad.label(), "#1");
        assert_eq!(Constraint::SinglePathFailure { sample_every: 1 }.label(), "#2");
        assert_eq!(Constraint::AllPairsBackup.label(), "#3");
        let suite = Constraint::paper_suite(4);
        assert_eq!(suite.len(), 3);
        assert_eq!(suite[1], Constraint::SinglePathFailure { sample_every: 4 });
    }
}

//! The acceptability oracle `A(OL)` used by the bandwidth auction.
//!
//! An element of `A(OL)` is a link subset that carries the traffic matrix
//! under the configured [`Constraint`]. The oracle also exposes the routing
//! it found, which the auction's greedy selection reuses.

use crate::failure::{
    survives_all_pairs_backup, survives_single_path_failures, FailReason, ResilienceResult,
};
use crate::linkset::LinkSet;
use crate::route::{route_tm, RouteError, Routing};
use poc_topology::{PocTopology, RouterId};
use poc_traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};

/// Why a candidate set was rejected (used by the auction's selector to
/// augment the set in a targeted way).
#[derive(Clone, Debug, PartialEq)]
pub enum Rejection {
    /// The base traffic matrix itself could not be routed.
    BaseRoute(RouteError),
    /// Base routing fits but a resilience scenario fails for this pair.
    /// The typed [`FailReason`] lets callers (the transition planner)
    /// branch on the cause; its `Display` renders the legacy message.
    Resilience { pair: (RouterId, RouterId), reason: FailReason },
}

/// The paper's three constraint levels (Figure 2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Constraint {
    /// #1 — the links handle the offered load.
    BaseLoad,
    /// #2 — and survive any single path failure. The stride controls
    /// deterministic scenario sampling (1 = exhaustive).
    SinglePathFailure { sample_every: usize },
    /// #3 — and can place every pair on a backup avoiding its primary path,
    /// all simultaneously.
    AllPairsBackup,
}

impl Constraint {
    /// The constraint's paper label ("#1", "#2", "#3").
    pub fn label(self) -> &'static str {
        match self {
            Constraint::BaseLoad => "#1",
            Constraint::SinglePathFailure { .. } => "#2",
            Constraint::AllPairsBackup => "#3",
        }
    }

    /// The three paper constraints with `sample_every` for #2.
    pub fn paper_suite(sample_every: usize) -> [Constraint; 3] {
        [
            Constraint::BaseLoad,
            Constraint::SinglePathFailure { sample_every },
            Constraint::AllPairsBackup,
        ]
    }
}

/// A cheap fingerprint of a whole oracle instance: the topology's
/// structural fingerprint extended with the traffic matrix and the
/// constraint level. Two oracles agree on every acceptability verdict iff
/// they agree on this value (up to hash collisions), which is what lets
/// [`FeasibilityCache`] refuse cross-instance reuse instead of silently
/// serving stale verdicts.
pub fn instance_fingerprint(topo: &PocTopology, tm: &TrafficMatrix, constraint: Constraint) -> u64 {
    let mut h = poc_topology::Fnv1a::new();
    h.mix(topo.fingerprint());
    h.mix(tm.n_routers() as u64);
    for (src, dst, demand) in tm.iter_demands() {
        h.mix(src.0 as u64);
        h.mix(dst.0 as u64);
        h.mix(demand.to_bits());
    }
    match constraint {
        Constraint::BaseLoad => h.mix(1),
        Constraint::SinglePathFailure { sample_every } => {
            h.mix(2);
            h.mix(sample_every as u64);
        }
        Constraint::AllPairsBackup => h.mix(3),
    }
    h.finish()
}

/// A [`FeasibilityCache`] was offered to an oracle over a different
/// `(topology, traffic matrix, constraint)` instance than the one it is
/// bound to. Reusing it would silently serve verdicts computed for
/// another instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheMismatch {
    /// Fingerprint the cache is bound to.
    pub bound: u64,
    /// Fingerprint of the instance that tried to attach.
    pub offered: u64,
}

impl std::fmt::Display for CacheMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "feasibility cache bound to instance {:#018x} offered to instance {:#018x}",
            self.bound, self.offered
        )
    }
}

impl std::error::Error for CacheMismatch {}

/// Shared memo of acceptability verdicts, keyed by the candidate
/// [`LinkSet`].
///
/// A verdict is a pure function of `(topo, tm, constraint, links)`, so a
/// cache is only valid for oracles over the same instance. The cache
/// *enforces* that contract: it binds to the [`instance_fingerprint`] of
/// the first instance that attaches (or the one given to
/// [`FeasibilityCache::for_instance`]), and
/// [`FeasibilityOracle::with_cache`] returns a typed [`CacheMismatch`] —
/// and bumps the `flow.cache.mismatch` counter — when a different
/// instance tries to reuse it. The intended use is one cache per auction
/// round, shared by the round's per-BP Clarke-pivot re-selections (which
/// probe heavily overlapping link sets, sequentially or from parallel
/// threads). Thread-safe: reads take a shared lock, inserts an exclusive
/// one; the oracle computation itself runs outside any lock, so
/// concurrent probes of distinct sets never serialize on each other.
///
/// Every lookup is bridged into the global metrics registry as the
/// `flow.cache.hit` / `flow.cache.miss` counters (aggregated across all
/// cache instances in the process); read those from a
/// [`poc_obs::MetricsSnapshot`].
pub struct FeasibilityCache {
    verdicts: parking_lot::RwLock<std::collections::HashMap<LinkSet, bool>>,
    /// Fingerprint of the instance this cache serves; `None` until the
    /// first oracle attaches.
    binding: parking_lot::Mutex<Option<u64>>,
    /// Bridged process-wide counters (lock-free handles into the global
    /// registry, resolved once per cache).
    obs_hits: poc_obs::Counter,
    obs_misses: poc_obs::Counter,
}

impl Default for FeasibilityCache {
    fn default() -> Self {
        Self {
            verdicts: Default::default(),
            binding: parking_lot::Mutex::new(None),
            obs_hits: poc_obs::counter!("flow.cache.hit").clone(),
            obs_misses: poc_obs::counter!("flow.cache.miss").clone(),
        }
    }
}

impl FeasibilityCache {
    /// An unbound cache: it binds to the first instance that attaches via
    /// [`FeasibilityOracle::with_cache`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache pre-bound to `(topo, tm, constraint)`; attaching an oracle
    /// over any other instance is a [`CacheMismatch`].
    pub fn for_instance(topo: &PocTopology, tm: &TrafficMatrix, constraint: Constraint) -> Self {
        let cache = Self::new();
        *cache.binding.lock() = Some(instance_fingerprint(topo, tm, constraint));
        cache
    }

    /// The instance fingerprint this cache is bound to, if any.
    pub fn bound_to(&self) -> Option<u64> {
        *self.binding.lock()
    }

    /// Bind to `fingerprint`, or verify an existing binding. A mismatch is
    /// recorded on the `flow.cache.mismatch` counter.
    fn attach(&self, fingerprint: u64) -> Result<(), CacheMismatch> {
        let mut binding = self.binding.lock();
        match *binding {
            None => {
                *binding = Some(fingerprint);
                Ok(())
            }
            Some(bound) if bound == fingerprint => Ok(()),
            Some(bound) => {
                poc_obs::counter!("flow.cache.mismatch").inc();
                Err(CacheMismatch { bound, offered: fingerprint })
            }
        }
    }

    /// Cached verdict for `links`, or `None` when it has not been computed.
    pub fn lookup(&self, links: &LinkSet) -> Option<bool> {
        let got = self.verdicts.read().get(links).copied();
        match got {
            Some(_) => self.obs_hits.inc(),
            None => self.obs_misses.inc(),
        };
        got
    }

    /// Record a verdict. Idempotent: concurrent computations of the same
    /// key insert the same value.
    pub fn record(&self, links: &LinkSet, verdict: bool) {
        self.verdicts.write().insert(links.clone(), verdict);
    }

    /// Number of distinct link sets memoized.
    pub fn len(&self) -> usize {
        self.verdicts.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.verdicts.read().is_empty()
    }
}

/// The interface the auction's selectors program against: an acceptability
/// oracle `A(OL)` over one `(topology, traffic matrix, constraint)`
/// instance. [`FeasibilityOracle`] is the from-scratch implementation;
/// [`crate::WarmOracle`] layers incremental re-routing on top of it for
/// the auction's Clarke pivots.
///
/// `Sync` is a supertrait because the auction probes oracles from parallel
/// pivot threads.
pub trait AcceptabilityOracle: Sync {
    fn topo(&self) -> &PocTopology;

    fn tm(&self) -> &TrafficMatrix;

    fn constraint(&self) -> Constraint;

    /// Whether `links ∈ A(OL)`: the subset carries the matrix under the
    /// constraint.
    fn acceptable(&self, links: &LinkSet) -> bool;

    /// Full evaluation: the base routing on success, or the reason the set
    /// was rejected.
    fn evaluate(&self, links: &LinkSet) -> Result<Routing, Rejection>;

    /// Up to `max` failing resilience scenarios for `links` (empty when the
    /// set is acceptable).
    fn failing_scenarios(&self, links: &LinkSet, max: usize)
        -> Vec<((RouterId, RouterId), String)>;

    /// As [`Self::acceptable`], but returns the base routing on success.
    fn route(&self, links: &LinkSet) -> Option<Routing> {
        self.evaluate(links).ok()
    }

    /// A known-feasible routing the caller may warm-start from (the last
    /// accepted routing of a [`crate::WarmOracle`]), or `None` for
    /// stateless oracles. Any routing returned here is a genuine
    /// feasibility witness over *some* link set of this instance's traffic
    /// matrix; callers must still re-validate its paths against their own
    /// candidate set before reusing them.
    fn witness(&self) -> Option<Routing> {
        None
    }
}

/// Oracle binding a topology, a traffic matrix, and a constraint level.
pub struct FeasibilityOracle<'a> {
    topo: &'a PocTopology,
    tm: &'a TrafficMatrix,
    constraint: Constraint,
    cache: Option<&'a FeasibilityCache>,
}

impl<'a> FeasibilityOracle<'a> {
    pub fn new(topo: &'a PocTopology, tm: &'a TrafficMatrix, constraint: Constraint) -> Self {
        assert_eq!(
            tm.n_routers(),
            topo.n_routers(),
            "traffic matrix and topology disagree on router count"
        );
        Self { topo, tm, constraint, cache: None }
    }

    /// As [`Self::new`], with acceptability verdicts memoized in `cache`.
    /// Binds the cache to this `(topo, tm, constraint)` instance (or
    /// verifies an existing binding); a cache already bound to a different
    /// instance is rejected with [`CacheMismatch`] instead of silently
    /// serving its stale verdicts.
    pub fn with_cache(
        topo: &'a PocTopology,
        tm: &'a TrafficMatrix,
        constraint: Constraint,
        cache: &'a FeasibilityCache,
    ) -> Result<Self, CacheMismatch> {
        cache.attach(instance_fingerprint(topo, tm, constraint))?;
        Ok(Self { cache: Some(cache), ..Self::new(topo, tm, constraint) })
    }

    pub fn constraint(&self) -> Constraint {
        self.constraint
    }

    pub fn topo(&self) -> &'a PocTopology {
        self.topo
    }

    pub fn tm(&self) -> &'a TrafficMatrix {
        self.tm
    }

    /// Whether `links ∈ A(OL)`: the subset carries the matrix under the
    /// constraint. Memoized when the oracle was built
    /// [`Self::with_cache`]. Every call counts toward the
    /// `flow.oracle.check` metric.
    pub fn acceptable(&self, links: &LinkSet) -> bool {
        poc_obs::counter!("flow.oracle.check").inc();
        if let Some(cache) = self.cache {
            if let Some(verdict) = cache.lookup(links) {
                return verdict;
            }
            let verdict = self.evaluate(links).is_ok();
            cache.record(links, verdict);
            verdict
        } else {
            self.evaluate(links).is_ok()
        }
    }

    /// As [`Self::acceptable`], but returns the base routing on success.
    pub fn route(&self, links: &LinkSet) -> Option<Routing> {
        self.evaluate(links).ok()
    }

    /// Up to `max` failing resilience scenarios for `links` (empty when the
    /// set is acceptable). For [`Constraint::AllPairsBackup`] the
    /// simultaneous-routing check inherently stops at its first failure, so
    /// at most one scenario is returned. A base-routing failure is reported
    /// as a single pseudo-scenario on the offending pair.
    pub fn failing_scenarios(
        &self,
        links: &LinkSet,
        max: usize,
    ) -> Vec<((RouterId, RouterId), String)> {
        let base = match route_tm(self.topo, links, self.tm) {
            Ok(b) => b,
            Err(RouteError::Disconnected { src, dst }) => {
                return vec![((src, dst), "disconnected".into())]
            }
            Err(RouteError::Unroutable { src, dst, remaining_gbps }) => {
                return vec![(
                    (src, dst),
                    format!("{remaining_gbps:.2} Gbps unroutable at base load"),
                )]
            }
        };
        match self.constraint {
            Constraint::BaseLoad => Vec::new(),
            Constraint::SinglePathFailure { sample_every } => {
                crate::failure::failing_single_path_scenarios(
                    self.topo,
                    links,
                    self.tm,
                    &base,
                    sample_every,
                    max,
                )
                .into_iter()
                .map(|(pair, reason)| (pair, reason.to_string()))
                .collect()
            }
            Constraint::AllPairsBackup => {
                match survives_all_pairs_backup(self.topo, links, self.tm, &base) {
                    ResilienceResult::Survives => Vec::new(),
                    ResilienceResult::Fails { pair, reason } => vec![(pair, reason.to_string())],
                }
            }
        }
    }

    /// Full evaluation: the base routing on success, or the reason the set
    /// was rejected.
    pub fn evaluate(&self, links: &LinkSet) -> Result<Routing, Rejection> {
        let _span = poc_obs::span!("flow.oracle.evaluate");
        let base = route_tm(self.topo, links, self.tm).map_err(Rejection::BaseRoute)?;
        let res = match self.constraint {
            Constraint::BaseLoad => ResilienceResult::Survives,
            Constraint::SinglePathFailure { sample_every } => {
                survives_single_path_failures(self.topo, links, self.tm, &base, sample_every)
            }
            Constraint::AllPairsBackup => {
                survives_all_pairs_backup(self.topo, links, self.tm, &base)
            }
        };
        match res {
            ResilienceResult::Survives => Ok(base),
            ResilienceResult::Fails { pair, reason } => Err(Rejection::Resilience { pair, reason }),
        }
    }
}

impl AcceptabilityOracle for FeasibilityOracle<'_> {
    fn topo(&self) -> &PocTopology {
        FeasibilityOracle::topo(self)
    }

    fn tm(&self) -> &TrafficMatrix {
        FeasibilityOracle::tm(self)
    }

    fn constraint(&self) -> Constraint {
        FeasibilityOracle::constraint(self)
    }

    fn acceptable(&self, links: &LinkSet) -> bool {
        FeasibilityOracle::acceptable(self, links)
    }

    fn evaluate(&self, links: &LinkSet) -> Result<Routing, Rejection> {
        FeasibilityOracle::evaluate(self, links)
    }

    fn failing_scenarios(
        &self,
        links: &LinkSet,
        max: usize,
    ) -> Vec<((RouterId, RouterId), String)> {
        FeasibilityOracle::failing_scenarios(self, links, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::builder::two_bp_square;
    use poc_topology::{LinkId, RouterId};

    fn tm_for(t: &PocTopology) -> TrafficMatrix {
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(RouterId(0), RouterId(1), 10.0);
        tm.set(RouterId(2), RouterId(3), 10.0);
        tm
    }

    #[test]
    fn constraints_are_ordered_by_stringency_on_fixture() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let full = LinkSet::full(t.n_links());
        let tree = LinkSet::from_links(t.n_links(), [LinkId(0), LinkId(1), LinkId(5)]);

        let o1 = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        let o2 = FeasibilityOracle::new(&t, &tm, Constraint::SinglePathFailure { sample_every: 1 });
        let o3 = FeasibilityOracle::new(&t, &tm, Constraint::AllPairsBackup);

        // Full mesh passes everything.
        assert!(o1.acceptable(&full) && o2.acceptable(&full) && o3.acceptable(&full));
        // Tree passes #1 only.
        assert!(o1.acceptable(&tree));
        assert!(!o2.acceptable(&tree));
        assert!(!o3.acceptable(&tree));
    }

    #[test]
    fn route_returns_base_routing() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let full = LinkSet::full(t.n_links());
        let o = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        let routing = o.route(&full).unwrap();
        assert_eq!(routing.flows.len(), 2);
    }

    #[test]
    fn empty_set_unacceptable() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let o = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        assert!(!o.acceptable(&LinkSet::empty(t.n_links())));
    }

    /// Candidate subsets exercising hits and misses: the full set, a
    /// spanning-ish tree, singletons, and the empty set.
    fn probe_sets(t: &PocTopology) -> Vec<LinkSet> {
        let n = t.n_links();
        let mut sets = vec![
            LinkSet::full(n),
            LinkSet::from_links(n, [LinkId(0), LinkId(1), LinkId(5)]),
            LinkSet::empty(n),
        ];
        for l in 0..n {
            sets.push(LinkSet::from_links(n, [LinkId::from_index(l)]));
        }
        sets
    }

    #[test]
    fn cached_oracle_matches_uncached_verdicts() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        for c in Constraint::paper_suite(1) {
            let plain = FeasibilityOracle::new(&t, &tm, c);
            let cache = FeasibilityCache::new();
            let cached = FeasibilityOracle::with_cache(&t, &tm, c, &cache).unwrap();
            // The registry counters aggregate across every cache in the
            // process (tests run concurrently), so measure deltas and
            // assert ≥ this cache's contribution.
            let before = poc_obs::global().snapshot();
            // Two passes: the second must be served from the cache.
            for _ in 0..2 {
                for s in probe_sets(&t) {
                    assert_eq!(
                        cached.acceptable(&s),
                        plain.acceptable(&s),
                        "verdict mismatch under {} for {s:?}",
                        c.label()
                    );
                }
            }
            let after = poc_obs::global().snapshot();
            let delta =
                |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
            let n_sets = probe_sets(&t).len() as u64;
            assert_eq!(cache.len() as u64, n_sets);
            assert!(delta("flow.cache.miss") >= n_sets, "first pass misses every set");
            assert!(delta("flow.cache.hit") >= n_sets, "second pass hits every set");
        }
    }

    #[test]
    fn cache_stats_bridge_into_global_registry() {
        // The bridged counters aggregate across every cache in the
        // process (tests run concurrently), so assert on the delta being
        // at least this cache's contribution.
        let t = two_bp_square();
        let tm = tm_for(&t);
        let before = poc_obs::global().snapshot();
        let cache = FeasibilityCache::new();
        let oracle = FeasibilityOracle::with_cache(&t, &tm, Constraint::BaseLoad, &cache).unwrap();
        let full = LinkSet::full(t.n_links());
        for _ in 0..3 {
            oracle.acceptable(&full);
        }
        let after = poc_obs::global().snapshot();
        let delta =
            |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
        assert!(delta("flow.cache.miss") >= 1, "first probe misses");
        assert!(delta("flow.cache.hit") >= 2, "repeat probes hit");
        assert!(delta("flow.oracle.check") >= 3, "every acceptable() call counted");
    }

    #[test]
    fn cache_rejects_cross_instance_reuse() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let cache = FeasibilityCache::new();
        assert_eq!(cache.bound_to(), None, "fresh cache is unbound");
        let _bound = FeasibilityOracle::with_cache(&t, &tm, Constraint::BaseLoad, &cache).unwrap();
        let fp = instance_fingerprint(&t, &tm, Constraint::BaseLoad);
        assert_eq!(cache.bound_to(), Some(fp), "first attach binds the cache");

        // Same instance re-attaches fine (the round's per-pivot oracles).
        assert!(FeasibilityOracle::with_cache(&t, &tm, Constraint::BaseLoad, &cache).is_ok());

        let before = poc_obs::global().snapshot();
        // Different constraint: different verdict function, must be refused.
        let err = match FeasibilityOracle::with_cache(&t, &tm, Constraint::AllPairsBackup, &cache) {
            Err(e) => e,
            Ok(_) => panic!("cross-constraint reuse must be refused"),
        };
        assert_eq!(err.bound, fp);
        assert_ne!(err.offered, fp);
        // Different traffic matrix: also refused.
        let mut tm2 = tm_for(&t);
        tm2.set(RouterId(0), RouterId(1), 999.0);
        assert!(FeasibilityOracle::with_cache(&t, &tm2, Constraint::BaseLoad, &cache).is_err());
        let after = poc_obs::global().snapshot();
        let delta = after.counter("flow.cache.mismatch").unwrap_or(0)
            - before.counter("flow.cache.mismatch").unwrap_or(0);
        assert!(delta >= 2, "mismatches are recorded on flow.cache.mismatch");

        // The binding (and the memoized verdicts) survive a rejection.
        assert_eq!(cache.bound_to(), Some(fp));

        // A pre-bound cache refuses a foreign instance outright.
        let pre = FeasibilityCache::for_instance(&t, &tm, Constraint::AllPairsBackup);
        assert!(FeasibilityOracle::with_cache(&t, &tm, Constraint::BaseLoad, &pre).is_err());
        assert!(FeasibilityOracle::with_cache(&t, &tm, Constraint::AllPairsBackup, &pre).is_ok());
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let cache = FeasibilityCache::new();
        let sets = probe_sets(&t);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let o = FeasibilityOracle::with_cache(&t, &tm, Constraint::BaseLoad, &cache)
                        .unwrap();
                    for s in &sets {
                        o.acceptable(s);
                    }
                });
            }
        });
        let plain = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        for s in &sets {
            assert_eq!(cache.lookup(s), Some(plain.acceptable(s)));
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Constraint::BaseLoad.label(), "#1");
        assert_eq!(Constraint::SinglePathFailure { sample_every: 1 }.label(), "#2");
        assert_eq!(Constraint::AllPairsBackup.label(), "#3");
        let suite = Constraint::paper_suite(4);
        assert_eq!(suite.len(), 3);
        assert_eq!(suite[1], Constraint::SinglePathFailure { sample_every: 4 });
    }
}

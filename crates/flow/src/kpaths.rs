//! K-shortest loopless paths (Yen's algorithm) and path-diversity
//! utilities.
//!
//! The auction's resilience constraints reason about "a path between a
//! pair of routers" — these helpers expose the path structure directly:
//! ranked alternatives between a pair, and the link-disjointness degree
//! that determines how many independent failures a pair can ride out.

use crate::graph::CapacityGraph;
use crate::linkset::LinkSet;
use poc_topology::{LinkId, PocTopology, RouterId};
use std::collections::HashSet;

/// A ranked path: links in order plus its total metric (km).
#[derive(Clone, Debug, PartialEq)]
pub struct RankedPath {
    pub links: Vec<LinkId>,
    pub km: f64,
}

fn path_km(topo: &PocTopology, links: &[LinkId]) -> f64 {
    links.iter().map(|&l| topo.link(l).distance_km).sum()
}

/// The routers visited by `links` starting from `src`, inclusive.
fn path_nodes(topo: &PocTopology, src: RouterId, links: &[LinkId]) -> Vec<RouterId> {
    let mut nodes = vec![src];
    let mut at = src;
    for &l in links {
        at = topo.link(l).other_end(at).expect("path not incident");
        nodes.push(at);
    }
    nodes
}

/// Yen's algorithm: up to `k` loopless shortest paths (by km) from `src`
/// to `dst` over `active`. Paths are returned in non-decreasing km order;
/// fewer than `k` are returned when the graph runs out of alternatives.
pub fn k_shortest_paths(
    topo: &PocTopology,
    active: &LinkSet,
    src: RouterId,
    dst: RouterId,
    k: usize,
) -> Vec<RankedPath> {
    assert!(k >= 1, "need k >= 1");
    assert!(src != dst, "k-shortest paths need distinct endpoints");
    let g = CapacityGraph::new(topo, active);
    let shortest = g.shortest_path(src, dst, |l, _| topo.link(l).distance_km, |_, _| true);
    let Some(first) = shortest else { return Vec::new() };
    let mut found = vec![RankedPath { km: path_km(topo, &first), links: first }];
    let mut candidates: Vec<RankedPath> = Vec::new();

    while found.len() < k {
        let prev = found.last().expect("non-empty").links.clone();
        let prev_nodes = path_nodes(topo, src, &prev);
        // Spur from every node of the previous path.
        for i in 0..prev.len() {
            let spur_node = prev_nodes[i];
            let root = &prev[..i];
            // Links banned at the spur: the (i+1)-prefix-sharing paths'
            // next links.
            let mut banned_links: HashSet<LinkId> = HashSet::new();
            for p in found.iter().map(|p| &p.links).chain(candidates.iter().map(|c| &c.links)) {
                if p.len() > i && p[..i] == *root {
                    banned_links.insert(p[i]);
                }
            }
            // Nodes of the root (except the spur node) are banned to keep
            // paths loopless.
            let banned_nodes: HashSet<RouterId> = prev_nodes[..i].iter().copied().collect();
            let spur = g.shortest_path(
                spur_node,
                dst,
                |l, _| topo.link(l).distance_km,
                |l, dir| {
                    if banned_links.contains(&l) {
                        return false;
                    }
                    // Entering a banned node would close a loop with the
                    // root. Determine the node this traversal enters.
                    let link = topo.link(l);
                    let entering = match dir {
                        crate::graph::Dir::Fwd => link.b,
                        crate::graph::Dir::Rev => link.a,
                    };
                    !banned_nodes.contains(&entering)
                },
            );
            if let Some(spur_links) = spur {
                let mut total = root.to_vec();
                total.extend(spur_links);
                let candidate = RankedPath { km: path_km(topo, &total), links: total };
                if !found.iter().any(|p| p.links == candidate.links)
                    && !candidates.iter().any(|p| p.links == candidate.links)
                {
                    candidates.push(candidate);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pop the cheapest candidate (ties: lexicographic links for
        // determinism).
        candidates.sort_by(|a, b| a.km.total_cmp(&b.km).then(a.links.cmp(&b.links)));
        found.push(candidates.remove(0));
    }
    found
}

/// Number of pairwise link-disjoint paths among the `k` shortest — a
/// pair's failure-independence degree. Greedy: take paths in rank order,
/// keep those sharing no link with already-kept ones.
pub fn disjoint_degree(paths: &[RankedPath]) -> usize {
    let mut used: HashSet<LinkId> = HashSet::new();
    let mut kept = 0;
    for p in paths {
        if p.links.iter().all(|l| !used.contains(l)) {
            used.extend(p.links.iter().copied());
            kept += 1;
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::builder::two_bp_square;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    #[test]
    fn first_path_matches_dijkstra() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let paths = k_shortest_paths(&t, &all, r(0), r(1), 1);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].links.len(), 1, "direct link is shortest");
        assert!((paths[0].km - 1300.0).abs() < 1e-9);
    }

    #[test]
    fn paths_ranked_and_loopless() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let paths = k_shortest_paths(&t, &all, r(0), r(1), 5);
        assert!(paths.len() >= 3, "square offers several r0→r1 routes: {paths:?}");
        for w in paths.windows(2) {
            assert!(w[0].km <= w[1].km + 1e-9, "not ranked: {paths:?}");
        }
        for p in &paths {
            // Looplessness: no repeated node.
            let nodes = path_nodes(&t, r(0), &p.links);
            let mut sorted = nodes.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), nodes.len(), "loop in {p:?}");
            // Distinct paths.
        }
        let mut link_seqs: Vec<_> = paths.iter().map(|p| p.links.clone()).collect();
        link_seqs.dedup();
        assert_eq!(link_seqs.len(), paths.len(), "duplicate paths");
    }

    #[test]
    fn second_path_avoids_first() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let paths = k_shortest_paths(&t, &all, r(0), r(3), 2);
        assert_eq!(paths.len(), 2);
        // Second path must differ from the direct link.
        assert_ne!(paths[0].links, paths[1].links);
        assert!(paths[1].km >= paths[0].km);
    }

    #[test]
    fn k_larger_than_path_count_returns_all() {
        let t = two_bp_square();
        // Restrict to a tree: exactly one path per pair.
        let tree = LinkSet::from_links(t.n_links(), [LinkId(0), LinkId(1), LinkId(5)]);
        let paths = k_shortest_paths(&t, &tree, r(0), r(2), 10);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn disconnected_returns_empty() {
        let t = two_bp_square();
        let none = LinkSet::empty(t.n_links());
        assert!(k_shortest_paths(&t, &none, r(0), r(1), 3).is_empty());
    }

    #[test]
    fn disjoint_degree_counts_independent_routes() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let paths = k_shortest_paths(&t, &all, r(0), r(1), 6);
        let deg = disjoint_degree(&paths);
        // r0→r1: direct, via r2, via r3 — three link-disjoint routes.
        assert_eq!(deg, 3, "{paths:?}");
        // Tree topology: degree 1.
        let tree = LinkSet::from_links(t.n_links(), [LinkId(0), LinkId(1), LinkId(5)]);
        let tp = k_shortest_paths(&t, &tree, r(0), r(2), 6);
        assert_eq!(disjoint_degree(&tp), 1);
    }
}

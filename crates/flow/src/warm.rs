//! Incremental ("warm-started") acceptability oracle for Clarke pivots.
//!
//! The auction's per-BP pivot re-selections probe link sets that differ
//! from the round's accepted set by one BP's links — and from each other
//! by one link at a time inside the greedy selector's prune loop. A
//! from-scratch [`FeasibilityOracle`] re-routes the *entire* traffic
//! matrix for every probe. [`WarmOracle`] instead keeps the last accepted
//! routing as a *witness* and, for each new candidate set, reuses every
//! flow whose paths survived the change, re-routing only the invalidated
//! flows on the witness's residual capacities.
//!
//! ## Verdict semantics
//!
//! The greedy router is a conservative, order-dependent heuristic, so a
//! warm re-route is not guaranteed to reproduce the cold router's packing
//! bit-for-bit. The warm oracle is therefore *layered* on the cold one:
//!
//! - **Warm accept** is final: the warm routing is a genuine feasibility
//!   witness (capacities respected, all demands placed, resilience checked
//!   on the warm base), so accepting on it is sound.
//! - **Warm failure is never a rejection**: if the warm re-route fails, the
//!   delta exceeds [`WarmConfig::max_invalid_frac`], or the warm base
//!   fails its resilience check, the oracle falls back to a full
//!   from-scratch evaluation and returns *its* verdict.
//!
//! Consequently `warm-accepts ⊇ cold-accepts`: the only possible
//! divergence from [`FeasibilityOracle`] is a warm accept on a set the
//! cold heuristic fails to pack — i.e. the warm oracle is (weakly) more
//! complete with respect to true feasibility, never less sound.
//!
//! ## Determinism and pivot parallelism
//!
//! Warm verdicts depend on the witness chain, i.e. on the probe history,
//! so a `WarmOracle` must be *private to one pivot*: the auction seeds one
//! oracle per pivot from the round's initial accepted routing, and the
//! selector drives it sequentially. Because every pivot starts from the
//! same seed and replays a deterministic probe sequence, sequential and
//! parallel pivot modes stay bit-identical. For the same reason the warm
//! oracle never reads or writes the round-shared [`FeasibilityCache`]
//! (whose entries must be pure functions of the instance); it memoizes its
//! own verdicts privately.
//!
//! [`FeasibilityCache`]: crate::FeasibilityCache

use crate::failure::{survives_all_pairs_backup, survives_single_path_failures, ResilienceResult};
use crate::graph::{CapacityGraph, Dir};
use crate::linkset::LinkSet;
use crate::oracle::{AcceptabilityOracle, Constraint, FeasibilityOracle, Rejection};
use crate::route::{place_flow, FlowRoute, Routing};
use poc_topology::{PocTopology, RouterId};
use poc_traffic::TrafficMatrix;
use std::collections::HashMap;

/// Tuning for the warm start's fallback policy.
#[derive(Clone, Copy, Debug)]
pub struct WarmConfig {
    /// Fall back to a from-scratch evaluation when more than this fraction
    /// of the witness's flows is invalidated by the candidate set: with
    /// little left to reuse, a warm attempt only adds overhead before the
    /// inevitable full re-route.
    pub max_invalid_frac: f64,
}

impl Default for WarmConfig {
    fn default() -> Self {
        // A pivot removes one BP's links (a few percent of a paper-scale
        // instance), so genuine pivot probes invalidate a small fraction;
        // at half the flows invalidated, warm reuse stops paying for
        // itself.
        Self { max_invalid_frac: 0.5 }
    }
}

/// What the warm path did for one probe (exposed for tests and metrics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WarmOutcome {
    /// Verdict produced from the reused witness routing.
    Warm { reused: usize, rerouted: usize },
    /// Fell back to a from-scratch evaluation.
    Cold,
}

/// An [`AcceptabilityOracle`] that warm-starts each probe from the last
/// accepted routing. See the module docs for semantics; see
/// [`WarmOracle::seed`] for how the auction primes it.
pub struct WarmOracle<'a> {
    inner: FeasibilityOracle<'a>,
    cfg: WarmConfig,
    /// Last accepted routing (the warm-start witness).
    witness: parking_lot::Mutex<Option<Routing>>,
    /// Private verdict memo. Not the shared [`crate::FeasibilityCache`]:
    /// warm verdicts are witness-chain-dependent and must not leak into a
    /// cache whose entries are assumed pure.
    memo: parking_lot::Mutex<HashMap<LinkSet, bool>>,
}

impl<'a> WarmOracle<'a> {
    pub fn new(topo: &'a PocTopology, tm: &'a TrafficMatrix, constraint: Constraint) -> Self {
        Self::with_config(topo, tm, constraint, WarmConfig::default())
    }

    pub fn with_config(
        topo: &'a PocTopology,
        tm: &'a TrafficMatrix,
        constraint: Constraint,
        cfg: WarmConfig,
    ) -> Self {
        Self {
            inner: FeasibilityOracle::new(topo, tm, constraint),
            cfg,
            witness: parking_lot::Mutex::new(None),
            memo: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// Prime the witness with a known-feasible routing (typically the
    /// round's initial accepted routing). Unseeded oracles simply answer
    /// their first probe cold and warm-start from its result.
    pub fn seed(&self, routing: Routing) {
        *self.witness.lock() = Some(routing);
    }

    /// Whether a witness routing is currently held.
    pub fn is_seeded(&self) -> bool {
        self.witness.lock().is_some()
    }

    /// Evaluate `links`, reporting whether the warm path or the cold
    /// fallback produced the verdict. This is the primitive behind the
    /// trait's `evaluate`; tests and benches use it to observe reuse.
    pub fn evaluate_traced(&self, links: &LinkSet) -> (Result<Routing, Rejection>, WarmOutcome) {
        let _span = poc_obs::span!("flow.warm.evaluate");
        let witness = self.witness.lock().clone();
        if let Some(prev) = witness {
            if let Some((routing, reused, rerouted)) = self.try_warm(links, &prev) {
                poc_obs::counter!("flow.warm.reused_flows").add(reused as u64);
                poc_obs::counter!("flow.warm.rerouted_flows").add(rerouted as u64);
                *self.witness.lock() = Some(routing.clone());
                return (Ok(routing), WarmOutcome::Warm { reused, rerouted });
            }
        }
        poc_obs::counter!("flow.warm.fallbacks").inc();
        let res = self.inner.evaluate(links);
        if let Ok(routing) = &res {
            *self.witness.lock() = Some(routing.clone());
        }
        (res, WarmOutcome::Cold)
    }

    /// Attempt a warm evaluation of `links` against witness `prev`:
    /// `Some((routing, reused, rerouted))` only when the re-route succeeds
    /// *and* the warm base passes the constraint's resilience check. Any
    /// failure returns `None` and the caller falls back to cold.
    fn try_warm(&self, links: &LinkSet, prev: &Routing) -> Option<(Routing, usize, usize)> {
        let topo = self.inner.topo();
        let n_flows = prev.flows.len();

        // Partition the witness's flows: a flow survives iff every link of
        // every path it uses is still active in the candidate set. This
        // works for arbitrary candidate sets, not just subsets of the
        // witness's set — links the witness never used are irrelevant.
        let mut survivors: Vec<&FlowRoute> = Vec::with_capacity(n_flows);
        let mut invalidated: Vec<&FlowRoute> = Vec::new();
        for flow in &prev.flows {
            let alive = flow.paths.iter().all(|(path, _)| path.iter().all(|&l| links.contains(l)));
            if alive {
                survivors.push(flow);
            } else {
                invalidated.push(flow);
            }
        }
        if n_flows > 0 && invalidated.len() as f64 > self.cfg.max_invalid_frac * n_flows as f64 {
            return None;
        }

        // Rebuild residuals with the survivors' loads pre-consumed. The
        // survivors were simultaneously feasible in the witness, so this
        // can never over-commit.
        let mut g = CapacityGraph::new(topo, links);
        let mut routing = Routing {
            flows: Vec::with_capacity(n_flows),
            load_fwd: vec![0.0; topo.n_links()],
            load_rev: vec![0.0; topo.n_links()],
        };
        for flow in &survivors {
            for (path, amount) in &flow.paths {
                let dirs = g.path_dirs(flow.src, path);
                for (&l, &d) in path.iter().zip(&dirs) {
                    g.consume(l, d, *amount);
                    match d {
                        Dir::Fwd => routing.load_fwd[l.index()] += *amount,
                        Dir::Rev => routing.load_rev[l.index()] += *amount,
                    }
                }
            }
        }

        // Re-route the invalidated flows on the residual capacities, in
        // witness order (which descends from the router's largest-first
        // ordering), with the same per-flow placement the full router
        // uses. Any placement failure aborts the warm attempt.
        let (reused, rerouted) = (survivors.len(), invalidated.len());
        let mut placed: Vec<FlowRoute> = Vec::with_capacity(rerouted);
        for (fi, flow) in invalidated.into_iter().enumerate() {
            match place_flow(
                &mut g,
                &mut routing,
                fi,
                flow.src,
                flow.dst,
                flow.demand_gbps,
                &|_, _| true,
                1.0,
            ) {
                Ok(f) => placed.push(f),
                Err(_) => return None,
            }
        }
        routing.flows.extend(survivors.into_iter().cloned());
        routing.flows.extend(placed);

        // The warm base must still satisfy the constraint; resilience
        // failures are not final (the cold pass may find a base routing
        // whose scenarios all survive), so they also abort to fallback.
        let ok = match self.inner.constraint() {
            Constraint::BaseLoad => true,
            Constraint::SinglePathFailure { sample_every } => {
                survives_single_path_failures(topo, links, self.inner.tm(), &routing, sample_every)
                    .survives()
            }
            Constraint::AllPairsBackup => {
                matches!(
                    survives_all_pairs_backup(topo, links, self.inner.tm(), &routing),
                    ResilienceResult::Survives
                )
            }
        };
        ok.then_some((routing, reused, rerouted))
    }
}

impl AcceptabilityOracle for WarmOracle<'_> {
    fn topo(&self) -> &PocTopology {
        self.inner.topo()
    }

    fn tm(&self) -> &TrafficMatrix {
        self.inner.tm()
    }

    fn constraint(&self) -> Constraint {
        self.inner.constraint()
    }

    fn acceptable(&self, links: &LinkSet) -> bool {
        poc_obs::counter!("flow.oracle.check").inc();
        if let Some(v) = self.memo.lock().get(links) {
            return *v;
        }
        let verdict = self.evaluate_traced(links).0.is_ok();
        self.memo.lock().insert(links.clone(), verdict);
        verdict
    }

    fn evaluate(&self, links: &LinkSet) -> Result<Routing, Rejection> {
        self.evaluate_traced(links).0
    }

    /// A warm accept is a proof that no scenario fails, so the expensive
    /// cold scan (which re-routes the full matrix) only runs for sets the
    /// warm path cannot vouch for. Rejections still delegate to the cold
    /// oracle, keeping the explanations consistent with the verdicts
    /// (warm failures fall back, so warm rejects exactly when cold does).
    fn failing_scenarios(
        &self,
        links: &LinkSet,
        max: usize,
    ) -> Vec<((RouterId, RouterId), String)> {
        if self.memo.lock().get(links) == Some(&true) {
            return Vec::new();
        }
        let witness = self.witness.lock().clone();
        if let Some(prev) = witness {
            if let Some((routing, reused, rerouted)) = self.try_warm(links, &prev) {
                poc_obs::counter!("flow.warm.reused_flows").add(reused as u64);
                poc_obs::counter!("flow.warm.rerouted_flows").add(rerouted as u64);
                *self.witness.lock() = Some(routing);
                self.memo.lock().insert(links.clone(), true);
                return Vec::new();
            }
        }
        self.inner.failing_scenarios(links, max)
    }

    /// The current warm witness: selectors use it to warm-start their own
    /// routing phase (reusing surviving flows, re-routing only the
    /// invalidated ones) instead of re-routing the whole matrix.
    fn witness(&self) -> Option<Routing> {
        self.witness.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::builder::two_bp_square;
    use poc_topology::{BpId, LinkId};

    fn tm_for(t: &PocTopology) -> TrafficMatrix {
        let mut tm = TrafficMatrix::zero(t.n_routers());
        tm.set(RouterId(0), RouterId(1), 10.0);
        tm.set(RouterId(2), RouterId(3), 10.0);
        tm
    }

    #[test]
    fn unseeded_first_probe_goes_cold_then_warm() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let o = WarmOracle::new(&t, &tm, Constraint::BaseLoad);
        assert!(!o.is_seeded());
        let full = LinkSet::full(t.n_links());
        let (res, outcome) = o.evaluate_traced(&full);
        assert!(res.is_ok());
        assert_eq!(outcome, WarmOutcome::Cold, "no witness yet");
        assert!(o.is_seeded());
        // Identical set again: everything survives, nothing re-routed.
        let (res, outcome) = o.evaluate_traced(&full);
        assert!(res.is_ok());
        assert_eq!(outcome, WarmOutcome::Warm { reused: 2, rerouted: 0 });
    }

    #[test]
    fn removing_an_unused_bp_reuses_every_flow() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let full = LinkSet::full(t.n_links());
        let o = WarmOracle::new(&t, &tm, Constraint::BaseLoad);
        let seed = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad).route(&full).unwrap();
        // Find a BP whose links carry nothing in the seed routing.
        let used = seed.used_links(t.n_links());
        let unused_bp = t
            .bps
            .iter()
            .map(|b| b.id)
            .find(|&b| t.links_of_bp(b).iter().all(|&l| !used.contains(l)));
        o.seed(seed);
        if let Some(bp) = unused_bp {
            let mut cand = full.clone();
            for l in t.links_of_bp(bp) {
                cand.remove(l);
            }
            let (res, outcome) = o.evaluate_traced(&cand);
            assert!(res.is_ok());
            assert_eq!(outcome, WarmOutcome::Warm { reused: 2, rerouted: 0 });
        }
    }

    #[test]
    fn invalidated_flow_is_rerouted_and_verdict_matches_cold() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let full = LinkSet::full(t.n_links());
        let cold = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad);
        let seed = cold.route(&full).unwrap();
        // Remove the direct link the r0→r1 flow rides: that flow must be
        // re-routed onto a detour, the other reused.
        let direct = seed.primary_path(RouterId(0), RouterId(1)).unwrap()[0];
        let mut cand = full.clone();
        cand.remove(direct);

        let o = WarmOracle::new(&t, &tm, Constraint::BaseLoad);
        o.seed(seed);
        let (res, outcome) = o.evaluate_traced(&cand);
        let warm_routing = res.unwrap();
        assert_eq!(outcome, WarmOutcome::Warm { reused: 1, rerouted: 1 });
        assert!(cold.acceptable(&cand), "cold agrees the set is acceptable");

        // The warm routing is a genuine witness: demands covered, loads
        // within capacity, and only active links used.
        assert_eq!(warm_routing.flows.len(), 2);
        for f in &warm_routing.flows {
            let total: f64 = f.paths.iter().map(|(_, g)| g).sum();
            assert!((total - f.demand_gbps).abs() < 1e-6);
            for (path, _) in &f.paths {
                assert!(path.iter().all(|&l| cand.contains(l)));
            }
        }
        for (i, l) in t.links.iter().enumerate() {
            assert!(warm_routing.load_fwd[i] <= l.capacity_gbps + 1e-6);
            assert!(warm_routing.load_rev[i] <= l.capacity_gbps + 1e-6);
        }
    }

    #[test]
    fn warm_reject_always_confirmed_by_cold() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let o = WarmOracle::new(&t, &tm, Constraint::BaseLoad);
        let full = LinkSet::full(t.n_links());
        o.seed(FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad).route(&full).unwrap());
        // Only BP0's links: r2→r3 has no capacity at all, cold rejects too.
        let bp0 = LinkSet::from_links(t.n_links(), t.links_of_bp(BpId(0)));
        let (res, _) = o.evaluate_traced(&bp0);
        assert!(res.is_err());
        assert!(!FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad).acceptable(&bp0));
    }

    #[test]
    fn delta_guard_forces_fallback() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let full = LinkSet::full(t.n_links());
        let seed = FeasibilityOracle::new(&t, &tm, Constraint::BaseLoad).route(&full).unwrap();
        // Every flow invalidated (empty candidate intersects no witness
        // path) → 100% invalid > any sane threshold → cold fallback.
        let o = WarmOracle::with_config(
            &t,
            &tm,
            Constraint::BaseLoad,
            WarmConfig { max_invalid_frac: 0.4 },
        );
        o.seed(seed.clone());
        // Drop every link the witness uses.
        let mut cand = full.clone();
        for l in seed.used_links(t.n_links()).iter() {
            cand.remove(l);
        }
        let (_, outcome) = o.evaluate_traced(&cand);
        assert_eq!(outcome, WarmOutcome::Cold, "delta guard must trip");
    }

    #[test]
    fn warm_verdicts_match_cold_across_constraints_on_pivot_sequence() {
        let t = two_bp_square();
        let tm = tm_for(&t);
        let full = LinkSet::full(t.n_links());
        for c in Constraint::paper_suite(1) {
            let cold = FeasibilityOracle::new(&t, &tm, c);
            let warm = WarmOracle::new(&t, &tm, c);
            if let Some(seed) = cold.route(&full) {
                warm.seed(seed);
            }
            // Pivot-shaped probes: drop each BP's links, then each single
            // link, from the full set.
            let mut probes = vec![full.clone()];
            for bp in t.bps.iter().map(|b| b.id) {
                let mut s = full.clone();
                for l in t.links_of_bp(bp) {
                    s.remove(l);
                }
                probes.push(s);
            }
            for l in 0..t.n_links() {
                let mut s = full.clone();
                s.remove(LinkId::from_index(l));
                probes.push(s);
            }
            for p in &probes {
                let wv = warm.acceptable(p);
                let cv = cold.acceptable(p);
                if wv != cv {
                    // Only legal divergence: warm accepts with a genuine
                    // witness where the cold heuristic failed to pack.
                    assert!(wv && !cv, "warm may only be more complete ({})", c.label());
                    let routing = warm.evaluate(p).unwrap();
                    for f in &routing.flows {
                        let total: f64 = f.paths.iter().map(|(_, g)| g).sum();
                        assert!((total - f.demand_gbps).abs() < 1e-6);
                    }
                }
            }
        }
    }
}

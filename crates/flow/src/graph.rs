//! Capacity-aware view of a topology restricted to an active link subset.
//!
//! Links are undirected and full-duplex: each direction of a link has the
//! link's full capacity. Loads are therefore tracked per direction
//! (`fwd` = a→b in stored endpoint order, `rev` = b→a).

use crate::linkset::LinkSet;
use poc_topology::{LinkId, PocTopology, RouterId};

/// Direction of traversal of an undirected link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dir {
    /// From stored endpoint `a` to `b`.
    Fwd,
    /// From stored endpoint `b` to `a`.
    Rev,
}

/// A routing substrate over the subset `active` of a topology's links,
/// with mutable per-direction residual capacities.
pub struct CapacityGraph<'t> {
    topo: &'t PocTopology,
    /// adjacency: for each router, (link, neighbor) for active links.
    adj: Vec<Vec<(LinkId, RouterId)>>,
    residual_fwd: Vec<f64>,
    residual_rev: Vec<f64>,
    active: LinkSet,
}

impl<'t> CapacityGraph<'t> {
    /// Build the graph over `active ⊆ links(topo)` with full residuals.
    pub fn new(topo: &'t PocTopology, active: &LinkSet) -> Self {
        assert_eq!(active.universe(), topo.n_links(), "link-set universe must match the topology");
        let mut adj = vec![Vec::new(); topo.n_routers()];
        let mut residual_fwd = vec![0.0; topo.n_links()];
        let mut residual_rev = vec![0.0; topo.n_links()];
        for l in active.iter() {
            let link = topo.link(l);
            adj[link.a.index()].push((l, link.b));
            adj[link.b.index()].push((l, link.a));
            residual_fwd[l.index()] = link.capacity_gbps;
            residual_rev[l.index()] = link.capacity_gbps;
        }
        Self { topo, adj, residual_fwd, residual_rev, active: active.clone() }
    }

    pub fn topo(&self) -> &'t PocTopology {
        self.topo
    }

    pub fn active(&self) -> &LinkSet {
        &self.active
    }

    /// Active neighbors of `r` as (link, other endpoint).
    #[inline]
    pub fn neighbors(&self, r: RouterId) -> &[(LinkId, RouterId)] {
        &self.adj[r.index()]
    }

    /// Direction of traversing `link` out of router `from`.
    #[inline]
    pub fn dir_from(&self, link: LinkId, from: RouterId) -> Dir {
        if self.topo.link(link).a == from {
            Dir::Fwd
        } else {
            debug_assert_eq!(self.topo.link(link).b, from);
            Dir::Rev
        }
    }

    /// Residual capacity of `link` in direction `dir`, Gbit/s.
    #[inline]
    pub fn residual(&self, link: LinkId, dir: Dir) -> f64 {
        match dir {
            Dir::Fwd => self.residual_fwd[link.index()],
            Dir::Rev => self.residual_rev[link.index()],
        }
    }

    /// Consume `gbps` of residual along `link` in `dir`.
    ///
    /// # Panics
    /// Panics (debug) if this would drive the residual more than epsilon
    /// negative — the router must never over-commit. Release builds do not
    /// panic; they record the violation on the `flow.graph.overcommit`
    /// counter instead, so a logic error in a routing pass shows up in
    /// metrics rather than crashing or passing silently.
    pub fn consume(&mut self, link: LinkId, dir: Dir, gbps: f64) {
        let r = match dir {
            Dir::Fwd => &mut self.residual_fwd[link.index()],
            Dir::Rev => &mut self.residual_rev[link.index()],
        };
        *r -= gbps;
        if *r < -1e-6 {
            poc_obs::counter!("flow.graph.overcommit").inc();
            debug_assert!(*r >= -1e-6, "over-committed {link} by {}", -*r);
        }
    }

    /// Return `gbps` of residual along `link` in `dir` (used when undoing a
    /// tentative routing).
    pub fn release(&mut self, link: LinkId, dir: Dir, gbps: f64) {
        match dir {
            Dir::Fwd => self.residual_fwd[link.index()] += gbps,
            Dir::Rev => self.residual_rev[link.index()] += gbps,
        }
    }

    /// Load on `link` in `dir` (capacity − residual).
    pub fn load(&self, link: LinkId, dir: Dir) -> f64 {
        self.topo.link(link).capacity_gbps - self.residual(link, dir)
    }

    /// Whether every router can reach every other over active links
    /// (ignoring capacity).
    pub fn is_connected(&self) -> bool {
        let n = self.topo.n_routers();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![RouterId::from_index(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(r) = stack.pop() {
            for &(_, nb) in self.neighbors(r) {
                if !seen[nb.index()] {
                    seen[nb.index()] = true;
                    count += 1;
                    stack.push(nb);
                }
            }
        }
        count == n
    }

    /// Shortest path from `src` to `dst` by `weight`, visiting only edges
    /// for which `usable` returns true for the traversal direction.
    /// Returns the links of the path in order, or `None`.
    pub fn shortest_path(
        &self,
        src: RouterId,
        dst: RouterId,
        mut weight: impl FnMut(LinkId, Dir) -> f64,
        mut usable: impl FnMut(LinkId, Dir) -> bool,
    ) -> Option<Vec<LinkId>> {
        let n = self.topo.n_routers();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev: Vec<Option<(LinkId, RouterId)>> = vec![None; n];
        let mut heap = std::collections::BinaryHeap::new();
        dist[src.index()] = 0.0;
        heap.push(MinItem { cost: 0.0, node: src });
        while let Some(MinItem { cost, node }) = heap.pop() {
            if cost > dist[node.index()] + 1e-12 {
                continue;
            }
            if node == dst {
                break;
            }
            for &(l, nb) in self.neighbors(node) {
                let dir = self.dir_from(l, node);
                if !usable(l, dir) {
                    continue;
                }
                let w = weight(l, dir);
                debug_assert!(w >= 0.0, "negative edge weight on {l}");
                let nc = cost + w;
                if nc < dist[nb.index()] - 1e-12 {
                    dist[nb.index()] = nc;
                    prev[nb.index()] = Some((l, node));
                    heap.push(MinItem { cost: nc, node: nb });
                }
            }
        }
        if dist[dst.index()].is_infinite() {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = dst;
        while cur != src {
            let (l, p) = prev[cur.index()].expect("broken predecessor chain");
            path.push(l);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// The directions in which `path` traverses its links, starting at `src`.
    pub fn path_dirs(&self, src: RouterId, path: &[LinkId]) -> Vec<Dir> {
        let mut dirs = Vec::with_capacity(path.len());
        let mut at = src;
        for &l in path {
            let dir = self.dir_from(l, at);
            dirs.push(dir);
            at = self.topo.link(l).other_end(at).expect("path not incident to current router");
        }
        dirs
    }
}

struct MinItem {
    cost: f64,
    node: RouterId,
}
impl PartialEq for MinItem {
    fn eq(&self, other: &Self) -> bool {
        self.cost == other.cost
    }
}
impl Eq for MinItem {}
impl Ord for MinItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.cost.total_cmp(&self.cost)
    }
}
impl PartialOrd for MinItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::builder::two_bp_square;

    #[test]
    fn builds_adjacency_for_active_subset() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let g = CapacityGraph::new(&t, &all);
        assert!(g.is_connected());
        // r0 has links to r1, r2, r3.
        assert_eq!(g.neighbors(RouterId(0)).len(), 3);

        // Deactivate BP1's links: r3 becomes isolated.
        let bp0_only = LinkSet::from_links(t.n_links(), t.links_of_bp(poc_topology::BpId(0)));
        let g2 = CapacityGraph::new(&t, &bp0_only);
        assert!(!g2.is_connected());
        assert!(g2.neighbors(RouterId(3)).is_empty());
    }

    #[test]
    fn shortest_path_by_distance() {
        let t = two_bp_square();
        let g = CapacityGraph::new(&t, &LinkSet::full(t.n_links()));
        let w = |l: LinkId, _| t.link(l).distance_km;
        let path = g.shortest_path(RouterId(0), RouterId(3), w, |_, _| true).expect("connected");
        // Direct r0-r3 is 1830km; r0-r2-r3 is 910+950=1860; direct wins.
        assert_eq!(path.len(), 1);
        assert!(t.link(path[0]).connects(RouterId(0), RouterId(3)));
    }

    #[test]
    fn shortest_path_respects_usability_filter() {
        let t = two_bp_square();
        let g = CapacityGraph::new(&t, &LinkSet::full(t.n_links()));
        let direct = g
            .shortest_path(RouterId(0), RouterId(3), |l, _| t.link(l).distance_km, |_, _| true)
            .unwrap()[0];
        // Forbid the direct link: must take a 2-hop detour.
        let path = g
            .shortest_path(
                RouterId(0),
                RouterId(3),
                |l, _| t.link(l).distance_km,
                |l, _| l != direct,
            )
            .expect("detour exists");
        assert_eq!(path.len(), 2);
        assert!(!path.contains(&direct));
    }

    #[test]
    fn residual_accounting() {
        let t = two_bp_square();
        let mut g = CapacityGraph::new(&t, &LinkSet::full(t.n_links()));
        let l = LinkId(0);
        let cap = t.link(l).capacity_gbps;
        assert_eq!(g.residual(l, Dir::Fwd), cap);
        g.consume(l, Dir::Fwd, 30.0);
        assert_eq!(g.residual(l, Dir::Fwd), cap - 30.0);
        assert_eq!(g.residual(l, Dir::Rev), cap, "directions are independent");
        assert_eq!(g.load(l, Dir::Fwd), 30.0);
        g.release(l, Dir::Fwd, 30.0);
        assert_eq!(g.residual(l, Dir::Fwd), cap);
    }

    #[test]
    fn path_dirs_follow_traversal() {
        let t = two_bp_square();
        let g = CapacityGraph::new(&t, &LinkSet::full(t.n_links()));
        let path = g
            .shortest_path(RouterId(3), RouterId(0), |l, _| t.link(l).distance_km, |_, _| true)
            .unwrap();
        let dirs = g.path_dirs(RouterId(3), &path);
        assert_eq!(dirs.len(), path.len());
        // First hop leaves r3; stored endpoints are ordered a<b so r3 is `b`
        // on all its links → traversal starts Rev.
        assert_eq!(dirs[0], Dir::Rev);
    }

    #[test]
    fn no_path_returns_none() {
        let t = two_bp_square();
        let none = LinkSet::empty(t.n_links());
        let g = CapacityGraph::new(&t, &none);
        assert!(g.shortest_path(RouterId(0), RouterId(1), |_, _| 1.0, |_, _| true).is_none());
    }
}

//! Dinic max-flow over an active link set.
//!
//! Used as an *exact* single-commodity oracle: it upper-bounds what any
//! routing can achieve between one router pair, which makes it the test
//! oracle for the greedy router and the basis of the ablation comparing
//! feasibility oracles (DESIGN.md §4).

use crate::linkset::LinkSet;
use poc_topology::{PocTopology, RouterId};

/// Typed error for max-flow queries. The library must not panic on bad
/// caller input (ids can cross crate and process boundaries via the
/// control plane), so out-of-range routers are reported, not asserted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowError {
    /// A queried router id is not a node of this graph.
    RouterOutOfRange { router: RouterId, n_routers: usize },
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::RouterOutOfRange { router, n_routers } => {
                write!(f, "router {router} outside graph of {n_routers} routers")
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// Internal directed-edge representation: every undirected full-duplex link
/// becomes two independent directed arcs, each with the link's capacity
/// (plus the usual residual reverse arcs).
struct Arc {
    to: usize,
    cap: f64,
    /// Index of the reverse arc in `arcs`.
    rev: usize,
}

/// Dinic max-flow solver.
pub struct MaxFlow {
    n: usize,
    adj: Vec<Vec<usize>>,
    arcs: Vec<Arc>,
}

impl MaxFlow {
    /// Build the flow network over `active ⊆ links(topo)`.
    pub fn new(topo: &PocTopology, active: &LinkSet) -> Self {
        let n = topo.n_routers();
        let mut mf = Self { n, adj: vec![Vec::new(); n], arcs: Vec::new() };
        for l in active.iter() {
            let link = topo.link(l);
            // Full-duplex: independent capacity in each direction.
            mf.add_arc(link.a.index(), link.b.index(), link.capacity_gbps);
            mf.add_arc(link.b.index(), link.a.index(), link.capacity_gbps);
        }
        mf
    }

    fn add_arc(&mut self, from: usize, to: usize, cap: f64) {
        let a = self.arcs.len();
        self.arcs.push(Arc { to, cap, rev: a + 1 });
        self.arcs.push(Arc { to: from, cap: 0.0, rev: a });
        self.adj[from].push(a);
        self.adj[to].push(a + 1);
    }

    /// Maximum flow from `src` to `dst`, Gbit/s, or
    /// [`FlowError::RouterOutOfRange`] when either endpoint is not a node
    /// of this graph. Consumes the residual state, so build a fresh solver
    /// per query.
    ///
    /// Metrics: each call bumps `flow.maxflow.runs`, and the number of
    /// augmenting paths found is batched into `flow.maxflow.augment`
    /// (one atomic add per run, not per path).
    pub fn max_flow(&mut self, src: RouterId, dst: RouterId) -> Result<f64, FlowError> {
        let _span = poc_obs::span!("flow.maxflow.run");
        poc_obs::counter!("flow.maxflow.runs").inc();
        let (s, t) = (src.index(), dst.index());
        for router in [src, dst] {
            if router.index() >= self.n {
                return Err(FlowError::RouterOutOfRange { router, n_routers: self.n });
            }
        }
        if s == t {
            return Ok(0.0);
        }
        let mut flow = 0.0;
        let mut augmenting_paths: u64 = 0;
        loop {
            let level = self.bfs_levels(s);
            if level[t].is_none() {
                break;
            }
            let mut it = vec![0usize; self.n];
            loop {
                let pushed = self.dfs(s, t, f64::INFINITY, &level, &mut it);
                if pushed <= 1e-12 {
                    break;
                }
                augmenting_paths += 1;
                flow += pushed;
            }
        }
        poc_obs::counter!("flow.maxflow.augment").add(augmenting_paths);
        Ok(flow)
    }

    fn bfs_levels(&self, s: usize) -> Vec<Option<u32>> {
        let mut level = vec![None; self.n];
        level[s] = Some(0);
        let mut q = std::collections::VecDeque::from([s]);
        while let Some(u) = q.pop_front() {
            for &ai in &self.adj[u] {
                let a = &self.arcs[ai];
                if a.cap > 1e-12 && level[a.to].is_none() {
                    level[a.to] = Some(level[u].unwrap() + 1);
                    q.push_back(a.to);
                }
            }
        }
        level
    }

    fn dfs(
        &mut self,
        u: usize,
        t: usize,
        pushed: f64,
        level: &[Option<u32>],
        it: &mut [usize],
    ) -> f64 {
        if u == t {
            return pushed;
        }
        while it[u] < self.adj[u].len() {
            let ai = self.adj[u][it[u]];
            let (to, cap) = (self.arcs[ai].to, self.arcs[ai].cap);
            let ok = cap > 1e-12
                && matches!((level[u], level[to]), (Some(lu), Some(lt)) if lt == lu + 1);
            if ok {
                let d = self.dfs(to, t, pushed.min(cap), level, it);
                if d > 1e-12 {
                    self.arcs[ai].cap -= d;
                    let rev = self.arcs[ai].rev;
                    self.arcs[rev].cap += d;
                    return d;
                }
            }
            it[u] += 1;
        }
        0.0
    }
}

/// Convenience: max flow between one pair over `active`.
pub fn max_flow_between(
    topo: &PocTopology,
    active: &LinkSet,
    src: RouterId,
    dst: RouterId,
) -> Result<f64, FlowError> {
    MaxFlow::new(topo, active).max_flow(src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use poc_topology::builder::two_bp_square;

    fn r(i: u32) -> RouterId {
        RouterId(i)
    }

    #[test]
    fn single_link_flow_is_capacity() {
        let t = two_bp_square();
        // Restrict to just the r0-r1 direct link (link 0, 100G).
        let one = LinkSet::from_links(t.n_links(), [poc_topology::LinkId(0)]);
        assert!((max_flow_between(&t, &one, r(0), r(1)).unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_paths_add_up() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        // r0→r1: direct 100 + via r2 min(100,100)=100 + via r3 min(40,40)=40.
        let f = max_flow_between(&t, &all, r(0), r(1)).unwrap();
        assert!((f - 240.0).abs() < 1e-6, "got {f}");
    }

    #[test]
    fn disconnected_pair_has_zero_flow() {
        let t = two_bp_square();
        let bp0 = LinkSet::from_links(t.n_links(), t.links_of_bp(poc_topology::BpId(0)));
        assert_eq!(max_flow_between(&t, &bp0, r(0), r(3)), Ok(0.0));
    }

    #[test]
    fn flow_bounded_by_cut_toward_r3() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        // All r3 adjacency is BP1's three 40G links: cut = 120.
        let f = max_flow_between(&t, &all, r(0), r(3)).unwrap();
        assert!((f - 120.0).abs() < 1e-6, "got {f}");
    }

    #[test]
    fn self_flow_is_zero() {
        let t = two_bp_square();
        assert_eq!(max_flow_between(&t, &LinkSet::full(t.n_links()), r(2), r(2)), Ok(0.0));
    }

    #[test]
    fn out_of_range_router_is_typed_error_not_panic() {
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        let n = t.n_routers();
        assert_eq!(
            max_flow_between(&t, &all, r(99), r(0)),
            Err(FlowError::RouterOutOfRange { router: r(99), n_routers: n })
        );
        assert_eq!(
            max_flow_between(&t, &all, r(0), r(99)),
            Err(FlowError::RouterOutOfRange { router: r(99), n_routers: n })
        );
        let msg = FlowError::RouterOutOfRange { router: r(99), n_routers: n }.to_string();
        assert!(msg.contains("outside graph"), "{msg}");
    }

    #[test]
    fn greedy_router_never_beats_maxflow() {
        // Cross-check oracle: any demand the greedy router places between a
        // pair must be ≤ the pair's max flow.
        use crate::route::route_tm;
        use poc_traffic::TrafficMatrix;
        let t = two_bp_square();
        let all = LinkSet::full(t.n_links());
        for demand in [50.0, 120.0, 240.0] {
            let mut tm = TrafficMatrix::zero(t.n_routers());
            tm.set(r(0), r(1), demand);
            let routed = route_tm(&t, &all, &tm).is_ok();
            let mf = max_flow_between(&t, &all, r(0), r(1)).unwrap();
            if routed {
                assert!(demand <= mf + 1e-6, "greedy packed {demand} > maxflow {mf}");
            }
        }
    }
}

//! Routing and feasibility substrate for the POC.
//!
//! The bandwidth auction (paper §3.3) needs an *acceptability oracle*: given
//! a set of offered links `OL`, decide whether a candidate subset can
//! (i) carry the POC's upper-bound traffic matrix and (ii) meet additional
//! constraints such as surviving path failures. The paper evaluates three
//! constraint levels (Figure 2):
//!
//! * **Constraint #1** — the links handle the offered load;
//! * **Constraint #2** — they still do assuming any single path between a
//!   pair of routers has failed;
//! * **Constraint #3** — they do assuming a path between *each* pair of
//!   routers has failed.
//!
//! This crate implements the machinery: a bitset [`LinkSet`] over offered
//! links, a capacity-aware [`graph::CapacityGraph`], a greedy
//! multi-commodity router with flow splitting ([`route`]), Dinic max-flow
//! ([`maxflow`]) as an exact single-commodity oracle, failure-scenario
//! checking ([`failure`]), the top-level [`oracle::FeasibilityOracle`],
//! and its incremental counterpart [`warm::WarmOracle`] that warm-starts
//! the auction's Clarke-pivot probes from the previous accepted routing.

pub mod failure;
pub mod graph;
pub mod kpaths;
pub mod linkset;
pub mod maxflow;
pub mod oracle;
pub mod route;
pub mod warm;

pub use failure::{absorb_link_failure, FailReason, ResilienceResult};
pub use graph::CapacityGraph;
pub use kpaths::{disjoint_degree, k_shortest_paths, RankedPath};
pub use linkset::LinkSet;
pub use maxflow::FlowError;
pub use oracle::{
    instance_fingerprint, AcceptabilityOracle, CacheMismatch, Constraint, FeasibilityCache,
    FeasibilityOracle, Rejection,
};
pub use route::{route_tm, RouteError, Routing};
pub use warm::{WarmConfig, WarmOracle, WarmOutcome};

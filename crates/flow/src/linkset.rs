//! A compact bitset over the offered-link universe.
//!
//! The auction manipulates many subsets of up to ~5000 links (candidate
//! solutions, per-BP withdrawals `OL − L_α`, failure scenarios), so subsets
//! are represented as `u64` bitsets rather than hash sets.

use poc_topology::LinkId;
use serde::{Deserialize, Serialize};

/// A subset of the links `0..universe`.
///
/// ```
/// use poc_flow::LinkSet;
/// use poc_topology::LinkId;
///
/// let mut sl = LinkSet::empty(8);
/// sl.insert(LinkId(2));
/// sl.insert(LinkId(5));
/// assert_eq!(sl.len(), 2);
/// assert!(sl.is_subset_of(&LinkSet::full(8)));
/// let withdrawn = LinkSet::full(8).difference(&sl);
/// assert_eq!(withdrawn.len(), 6);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct LinkSet {
    universe: usize,
    bits: Vec<u64>,
}

impl LinkSet {
    /// The empty subset of a universe with `universe` links.
    pub fn empty(universe: usize) -> Self {
        Self { universe, bits: vec![0; universe.div_ceil(64)] }
    }

    /// The full subset.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::empty(universe);
        for i in 0..universe {
            s.insert(LinkId::from_index(i));
        }
        s
    }

    /// Build from an iterator of link ids.
    pub fn from_links(universe: usize, links: impl IntoIterator<Item = LinkId>) -> Self {
        let mut s = Self::empty(universe);
        for l in links {
            s.insert(l);
        }
        s
    }

    pub fn universe(&self) -> usize {
        self.universe
    }

    #[inline]
    pub fn contains(&self, l: LinkId) -> bool {
        let i = l.index();
        debug_assert!(i < self.universe, "link {l} outside universe {}", self.universe);
        self.bits[i / 64] >> (i % 64) & 1 == 1
    }

    #[inline]
    pub fn insert(&mut self, l: LinkId) {
        let i = l.index();
        assert!(i < self.universe, "link {l} outside universe {}", self.universe);
        self.bits[i / 64] |= 1u64 << (i % 64);
    }

    #[inline]
    pub fn remove(&mut self, l: LinkId) {
        let i = l.index();
        assert!(i < self.universe, "link {l} outside universe {}", self.universe);
        self.bits[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of links in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&w| w == 0)
    }

    /// Iterate members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.bits.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(LinkId::from_index(wi * 64 + b))
                }
            })
        })
    }

    /// `self \ other`. Panics on mismatched universes.
    pub fn difference(&self, other: &LinkSet) -> LinkSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let bits = self.bits.iter().zip(&other.bits).map(|(a, b)| a & !b).collect();
        LinkSet { universe: self.universe, bits }
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &LinkSet) -> LinkSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let bits = self.bits.iter().zip(&other.bits).map(|(a, b)| a | b).collect();
        LinkSet { universe: self.universe, bits }
    }

    /// `self ∩ other`.
    pub fn intersection(&self, other: &LinkSet) -> LinkSet {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let bits = self.bits.iter().zip(&other.bits).map(|(a, b)| a & b).collect();
        LinkSet { universe: self.universe, bits }
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &LinkSet) -> bool {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & !b == 0)
    }

    /// Remove all of `other`'s members from `self` in place.
    pub fn subtract(&mut self, other: &LinkSet) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a &= !b;
        }
    }
}

impl FromIterator<LinkId> for LinkSet {
    /// Collect links into a set whose universe is one past the largest id.
    /// Mostly for tests; prefer [`LinkSet::from_links`] with an explicit
    /// universe in production code.
    fn from_iter<T: IntoIterator<Item = LinkId>>(iter: T) -> Self {
        let links: Vec<LinkId> = iter.into_iter().collect();
        let universe = links.iter().map(|l| l.index() + 1).max().unwrap_or(0);
        Self::from_links(universe, links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LinkId {
        LinkId(i)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = LinkSet::empty(130);
        assert!(!s.contains(l(0)));
        s.insert(l(0));
        s.insert(l(64));
        s.insert(l(129));
        assert!(s.contains(l(0)) && s.contains(l(64)) && s.contains(l(129)));
        assert_eq!(s.len(), 3);
        s.remove(l(64));
        assert!(!s.contains(l(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_and_empty() {
        let f = LinkSet::full(100);
        assert_eq!(f.len(), 100);
        assert!(!f.is_empty());
        assert!(LinkSet::empty(100).is_empty());
    }

    #[test]
    fn iter_ascending() {
        let s = LinkSet::from_links(200, [l(100), l(3), l(64), l(199)]);
        let v: Vec<u32> = s.iter().map(|x| x.0).collect();
        assert_eq!(v, vec![3, 64, 100, 199]);
    }

    #[test]
    fn set_algebra() {
        let a = LinkSet::from_links(10, [l(1), l(2), l(3)]);
        let b = LinkSet::from_links(10, [l(3), l(4)]);
        assert_eq!(a.difference(&b), LinkSet::from_links(10, [l(1), l(2)]));
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.intersection(&b), LinkSet::from_links(10, [l(3)]));
        assert!(LinkSet::from_links(10, [l(1)]).is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        let mut c = a.clone();
        c.subtract(&b);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_universes_panic() {
        let a = LinkSet::empty(10);
        let b = LinkSet::empty(11);
        let _ = a.union(&b);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_insert_panics() {
        LinkSet::empty(10).insert(l(10));
    }
}

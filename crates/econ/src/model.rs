//! The full §4 economy: S CSPs × L LMPs under three fee regimes.
//!
//! This module assembles the primitives (demand curves, pricing, fees,
//! welfare) into the paper's comparison: network neutrality (NN) vs the
//! unregulated regime with unilateral fees vs with Nash-bargained fees,
//! reporting per-CSP prices, fees, welfare, and the incumbent-advantage
//! metrics of §4.5.

use crate::demand::{Demand, Exponential, Linear, Logistic, ParetoTail};
use crate::fees::{average_rc, bargaining_equilibrium, monopoly_price, nbs_fee, unilateral_fee};
use crate::welfare::{consumer_surplus, social_welfare};
use serde::{Deserialize, Serialize};

/// A serializable, clonable demand curve (enum dispatch over the families).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum DemandCurve {
    Exponential(Exponential),
    ParetoTail(ParetoTail),
    Logistic(Logistic),
    Linear(Linear),
}

impl Demand for DemandCurve {
    fn d(&self, p: f64) -> f64 {
        match self {
            DemandCurve::Exponential(x) => x.d(p),
            DemandCurve::ParetoTail(x) => x.d(p),
            DemandCurve::Logistic(x) => x.d(p),
            DemandCurve::Linear(x) => x.d(p),
        }
    }

    fn horizon(&self, eps: f64) -> f64 {
        match self {
            DemandCurve::Exponential(x) => x.horizon(eps),
            DemandCurve::ParetoTail(x) => x.horizon(eps),
            DemandCurve::Logistic(x) => x.horizon(eps),
            DemandCurve::Linear(x) => x.horizon(eps),
        }
    }
}

/// Whether an entity is an established incumbent or a new entrant — the
/// distinction §4.5's churn rates key on.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum CspKind {
    Incumbent,
    Entrant,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum LmpKind {
    Incumbent,
    Entrant,
}

/// One content/service provider.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CspSpec {
    pub name: String,
    pub demand: DemandCurve,
    pub kind: CspKind,
}

/// One last-mile provider.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LmpSpec {
    pub name: String,
    /// Mass of customers (the unit mass is split across LMPs).
    pub n_customers: f64,
    /// Monthly access charge `c_l`.
    pub access_price: f64,
    pub kind: LmpKind,
}

/// The fee regime under comparison.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Regime {
    /// Network neutrality: termination fees prohibited.
    NetworkNeutrality,
    /// Unregulated, LMPs set fees unilaterally (§4.4).
    UnilateralFees,
    /// Unregulated, fees from Nash bargaining (§4.5).
    BargainedFees,
}

impl Regime {
    pub fn label(self) -> &'static str {
        match self {
            Regime::NetworkNeutrality => "NN",
            Regime::UnilateralFees => "UR-unilateral",
            Regime::BargainedFees => "UR-bargaining",
        }
    }
}

/// Per-CSP outcome under a regime.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CspOutcome {
    pub csp: String,
    /// Average termination fee paid per customer (0 under NN).
    pub fee: f64,
    /// Posted price `p_s`.
    pub price: f64,
    /// Social welfare from this CSP (per unit consumer mass).
    pub social_welfare: f64,
    /// Consumer surplus.
    pub consumer_surplus: f64,
    /// CSP revenue per customer mass, net of fees: `(p − t)·D(p)`.
    pub csp_net_revenue: f64,
    /// LMP fee revenue from this CSP: `t·D(p)`.
    pub lmp_fee_revenue: f64,
}

/// A full regime evaluation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RegimeReport {
    pub regime: Regime,
    pub per_csp: Vec<CspOutcome>,
}

impl RegimeReport {
    pub fn total_welfare(&self) -> f64 {
        self.per_csp.iter().map(|c| c.social_welfare).sum()
    }

    pub fn total_consumer_surplus(&self) -> f64 {
        self.per_csp.iter().map(|c| c.consumer_surplus).sum()
    }

    pub fn total_fees(&self) -> f64 {
        self.per_csp.iter().map(|c| c.lmp_fee_revenue).sum()
    }

    /// Share of social welfare retained by consumers (§4.6's social- vs
    /// consumer-welfare distinction: "vigorous competition ... tends to
    /// drive most of the value into consumer welfare").
    pub fn consumer_share(&self) -> f64 {
        let w = self.total_welfare();
        if w <= 0.0 {
            0.0
        } else {
            self.total_consumer_surplus() / w
        }
    }
}

/// The economy: CSPs, LMPs, and the churn matrix `r[s][l]` — the fraction
/// of LMP `l`'s customers lost if CSP `s` becomes unavailable there.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Economy {
    pub csps: Vec<CspSpec>,
    pub lmps: Vec<LmpSpec>,
    /// `churn[s][l] = r_l^s ∈ [0, 1]`.
    pub churn: Vec<Vec<f64>>,
}

impl Economy {
    /// Validates dimensions and ranges.
    pub fn new(csps: Vec<CspSpec>, lmps: Vec<LmpSpec>, churn: Vec<Vec<f64>>) -> Self {
        assert!(!csps.is_empty() && !lmps.is_empty(), "need at least one CSP and LMP");
        assert_eq!(churn.len(), csps.len(), "churn rows must match CSPs");
        for row in &churn {
            assert_eq!(row.len(), lmps.len(), "churn columns must match LMPs");
            for &r in row {
                assert!((0.0..=1.0).contains(&r), "churn rates must be in [0,1]");
            }
        }
        for l in &lmps {
            assert!(l.n_customers > 0.0 && l.access_price >= 0.0, "invalid LMP {}", l.name);
        }
        Self { csps, lmps, churn }
    }

    /// A representative economy: two incumbent and two entrant CSPs with
    /// assorted demand curves; one incumbent and two entrant LMPs.
    /// Churn reflects §4.5's presumptions: `r` is higher for popular
    /// (incumbent) CSPs and lower at well-established LMPs.
    pub fn example() -> Self {
        let csps = vec![
            CspSpec {
                name: "VideoCo (incumbent)".into(),
                demand: DemandCurve::Exponential(Exponential::new(0.06)),
                kind: CspKind::Incumbent,
            },
            CspSpec {
                name: "SearchCo (incumbent)".into(),
                demand: DemandCurve::ParetoTail(ParetoTail::new(9.0, 2.4)),
                kind: CspKind::Incumbent,
            },
            CspSpec {
                name: "NewStream (entrant)".into(),
                demand: DemandCurve::Exponential(Exponential::new(0.12)),
                kind: CspKind::Entrant,
            },
            CspSpec {
                name: "NicheApp (entrant)".into(),
                demand: DemandCurve::Logistic(Logistic::new(12.0, 3.0)),
                kind: CspKind::Entrant,
            },
        ];
        let lmps = vec![
            LmpSpec {
                name: "BigCable (incumbent)".into(),
                n_customers: 0.6,
                access_price: 60.0,
                kind: LmpKind::Incumbent,
            },
            LmpSpec {
                name: "FiberStart (entrant)".into(),
                n_customers: 0.25,
                access_price: 50.0,
                kind: LmpKind::Entrant,
            },
            LmpSpec {
                name: "MuniNet (entrant)".into(),
                n_customers: 0.15,
                access_price: 40.0,
                kind: LmpKind::Entrant,
            },
        ];
        // Churn: popular CSPs trigger more churn; incumbent LMPs suffer
        // less of it.
        let churn = vec![
            vec![0.10, 0.30, 0.35], // VideoCo
            vec![0.08, 0.25, 0.30], // SearchCo
            vec![0.02, 0.08, 0.10], // NewStream
            vec![0.01, 0.05, 0.06], // NicheApp
        ];
        Self::new(csps, lmps, churn)
    }

    /// Evaluate one regime.
    pub fn evaluate(&self, regime: Regime) -> RegimeReport {
        let per_csp = self
            .csps
            .iter()
            .enumerate()
            .map(|(s, csp)| {
                let d = &csp.demand;
                let (fee, price) = match regime {
                    Regime::NetworkNeutrality => (0.0, monopoly_price(d, 0.0)),
                    Regime::UnilateralFees => unilateral_fee(d),
                    Regime::BargainedFees => {
                        let avg = average_rc(
                            &self
                                .lmps
                                .iter()
                                .enumerate()
                                .map(|(l, lmp)| {
                                    (lmp.n_customers, self.churn[s][l], lmp.access_price)
                                })
                                .collect::<Vec<_>>(),
                        );
                        let out = bargaining_equilibrium(d, avg);
                        (out.fee, out.price)
                    }
                };
                let dem = d.d(price);
                CspOutcome {
                    csp: csp.name.clone(),
                    fee,
                    price,
                    social_welfare: social_welfare(d, price),
                    consumer_surplus: consumer_surplus(d, price),
                    csp_net_revenue: (price - fee) * dem,
                    lmp_fee_revenue: fee * dem,
                }
            })
            .collect();
        RegimeReport { regime, per_csp }
    }

    /// Evaluate all three regimes (the E-W1 experiment).
    pub fn compare_regimes(&self) -> [RegimeReport; 3] {
        [
            self.evaluate(Regime::NetworkNeutrality),
            self.evaluate(Regime::UnilateralFees),
            self.evaluate(Regime::BargainedFees),
        ]
    }

    /// §4.5 incumbent-advantage view (E-B1): for CSP `s`, the per-LMP
    /// NBS fee `t_l = (p − r_l^s c_l)/2` at the CSP's NN price. Returns
    /// `(lmp name, churn, fee)` per LMP.
    pub fn per_lmp_nbs_fees(&self, s: usize) -> Vec<(String, f64, f64)> {
        assert!(s < self.csps.len(), "CSP index out of range");
        let p = monopoly_price(&self.csps[s].demand, 0.0);
        self.lmps
            .iter()
            .enumerate()
            .map(|(l, lmp)| {
                let r = self.churn[s][l];
                (lmp.name.clone(), r, nbs_fee(p, r, lmp.access_price))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_economy_validates() {
        let e = Economy::example();
        assert_eq!(e.csps.len(), 4);
        assert_eq!(e.lmps.len(), 3);
    }

    #[test]
    fn welfare_ordering_nn_geq_bargaining_geq_unilateral() {
        // The paper's central welfare claim (E-W1 shape).
        let e = Economy::example();
        let [nn, uni, nbs] = e.compare_regimes();
        assert!(
            nn.total_welfare() >= nbs.total_welfare() - 1e-9,
            "NN {} < NBS {}",
            nn.total_welfare(),
            nbs.total_welfare()
        );
        assert!(
            nbs.total_welfare() >= uni.total_welfare() - 1e-9,
            "NBS {} < unilateral {}",
            nbs.total_welfare(),
            uni.total_welfare()
        );
        // And strictly: fees are positive in this economy.
        assert!(nn.total_welfare() > uni.total_welfare());
    }

    #[test]
    fn fees_zero_under_nn_positive_otherwise() {
        let e = Economy::example();
        let [nn, uni, nbs] = e.compare_regimes();
        assert_eq!(nn.total_fees(), 0.0);
        assert!(uni.total_fees() > 0.0);
        assert!(nbs.total_fees() > 0.0);
    }

    #[test]
    fn prices_rise_with_fees() {
        // Lemma 1 manifesting at the economy level.
        let e = Economy::example();
        let [nn, uni, nbs] = e.compare_regimes();
        for ((a, b), c) in nn.per_csp.iter().zip(&uni.per_csp).zip(&nbs.per_csp) {
            assert!(
                b.price > a.price - 1e-9,
                "{}: unilateral {} vs NN {}",
                a.csp,
                b.price,
                a.price
            );
            assert!(c.price >= a.price - 1e-9);
            assert!(b.price >= c.price - 1e-6, "unilateral should not undercut bargained");
        }
    }

    #[test]
    fn incumbent_lmp_extracts_higher_fee() {
        // r is lowest at the incumbent LMP ⇒ its NBS fee is highest.
        let e = Economy::example();
        for s in 0..e.csps.len() {
            let fees = e.per_lmp_nbs_fees(s);
            let incumbent_fee = fees[0].2;
            for f in &fees[1..] {
                assert!(
                    incumbent_fee >= f.2 - 1e-9,
                    "CSP {s}: incumbent fee {incumbent_fee} < {}",
                    f.2
                );
            }
        }
    }

    #[test]
    fn incumbent_csp_pays_less_per_popularity() {
        // For the same LMP, the high-churn (incumbent) CSP pays a lower
        // fee than the low-churn entrant with a comparable price level.
        let e = Economy::example();
        // Compare VideoCo (churn 0.30 at FiberStart) vs NewStream (0.08):
        // fee difference driven by r·c given prices.
        let video = e.per_lmp_nbs_fees(0);
        let newcsp = e.per_lmp_nbs_fees(2);
        // Normalize out the price difference: t = (p − rc)/2 ⇒ p/2 − t =
        // rc/2 must be larger for the incumbent CSP.
        let video_rc = video[1].1 * e.lmps[1].access_price;
        let new_rc = newcsp[1].1 * e.lmps[1].access_price;
        assert!(video_rc > new_rc, "incumbent CSP must wield a bigger churn threat");
    }

    #[test]
    fn consumer_share_highest_under_nn() {
        // §4.6: NN keeps the largest share of welfare with consumers.
        let e = Economy::example();
        let [nn, uni, nbs] = e.compare_regimes();
        assert!(nn.consumer_share() > uni.consumer_share());
        assert!(nn.consumer_share() >= nbs.consumer_share() - 1e-9);
        assert!((0.0..=1.0).contains(&nn.consumer_share()));
    }

    #[test]
    fn consumer_surplus_highest_under_nn() {
        let e = Economy::example();
        let [nn, uni, nbs] = e.compare_regimes();
        assert!(nn.total_consumer_surplus() > uni.total_consumer_surplus());
        assert!(nn.total_consumer_surplus() > nbs.total_consumer_surplus() - 1e-9);
    }

    #[test]
    #[should_panic(expected = "churn rows")]
    fn dimension_mismatch_rejected() {
        let e = Economy::example();
        Economy::new(e.csps.clone(), e.lmps.clone(), vec![vec![0.1; 3]; 2]);
    }
}

//! Market entry and innovation (§2.3, §4.5's competitive-advantage
//! argument made quantitative).
//!
//! The paper's case for neutrality is ultimately about *future* welfare:
//! termination fees "would hinder innovation (by favoring incumbents)".
//! This module turns that into an entry model: a prospective CSP pays a
//! fixed entry cost `K` and earns the per-customer-mass operating profit
//! `(p − t)·D(p)` of its service. It enters iff profit covers `K`. Under
//! NN, `t = 0`; under the unregulated regime the entrant faces its
//! Nash-bargained fee — which is *higher* for entrants (they wield a
//! smaller churn threat `⟨rc⟩`). The gap between the largest entry cost
//! viable under NN and under UR is the **entry-deterrence band**: exactly
//! the innovations the fee regime forecloses.

use crate::demand::Demand;
use crate::fees::{bargaining_equilibrium, monopoly_price, unilateral_fee};
use crate::model::Regime;
use serde::{Deserialize, Serialize};

/// One entry evaluation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EntryOutcome {
    pub regime: Regime,
    /// Termination fee the entrant would face.
    pub fee: f64,
    /// Its profit-maximizing price given the fee.
    pub price: f64,
    /// Operating profit per unit customer mass, before entry cost.
    pub operating_profit: f64,
    /// `operating_profit − entry_cost`.
    pub net_profit: f64,
    pub enters: bool,
}

/// Evaluate the entry decision for a CSP with `demand`, fixed `entry_cost`
/// (per unit customer mass), and churn threat `avg_rc` (`⟨rc⟩`, only used
/// in the bargaining regime).
pub fn entry_decision(
    demand: &dyn Demand,
    entry_cost: f64,
    avg_rc: f64,
    regime: Regime,
) -> EntryOutcome {
    assert!(entry_cost >= 0.0 && entry_cost.is_finite(), "invalid entry cost");
    let (fee, price) = match regime {
        Regime::NetworkNeutrality => (0.0, monopoly_price(demand, 0.0)),
        Regime::UnilateralFees => unilateral_fee(demand),
        Regime::BargainedFees => {
            let out = bargaining_equilibrium(demand, avg_rc);
            (out.fee, out.price)
        }
    };
    let operating_profit = (price - fee) * demand.d(price);
    let net_profit = operating_profit - entry_cost;
    EntryOutcome { regime, fee, price, operating_profit, net_profit, enters: net_profit > 0.0 }
}

/// The largest entry cost at which entry is still viable under `regime`
/// (the operating profit itself).
pub fn max_viable_entry_cost(demand: &dyn Demand, avg_rc: f64, regime: Regime) -> f64 {
    entry_decision(demand, 0.0, avg_rc, regime).operating_profit
}

/// The entry-deterrence band `(K_ur, K_nn]`: entry costs viable under NN
/// but foreclosed by the unregulated (bargained-fee) regime. Empty when
/// the fee is zero (e.g. overwhelming churn threat).
pub fn deterrence_band(demand: &dyn Demand, avg_rc: f64) -> (f64, f64) {
    let k_ur = max_viable_entry_cost(demand, avg_rc, Regime::BargainedFees);
    let k_nn = max_viable_entry_cost(demand, avg_rc, Regime::NetworkNeutrality);
    (k_ur, k_nn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::Exponential;

    #[test]
    fn nn_profit_is_full_monopoly_profit() {
        // Exponential λ: p* = 1/λ, profit = (1/λ)·e^{−1}.
        let d = Exponential::new(0.1);
        let out = entry_decision(&d, 0.0, 0.0, Regime::NetworkNeutrality);
        assert!((out.operating_profit - 10.0 * (-1.0f64).exp()).abs() < 1e-4);
        assert_eq!(out.fee, 0.0);
        assert!(out.enters);
    }

    #[test]
    fn fees_shrink_viability() {
        let d = Exponential::new(0.1);
        let k_nn = max_viable_entry_cost(&d, 0.0, Regime::NetworkNeutrality);
        let k_nbs = max_viable_entry_cost(&d, 1.0, Regime::BargainedFees);
        let k_uni = max_viable_entry_cost(&d, 0.0, Regime::UnilateralFees);
        assert!(k_nn > k_nbs, "bargained fees must shrink viability: {k_nn} vs {k_nbs}");
        assert!(k_nbs > k_uni, "unilateral fees are the worst case: {k_nbs} vs {k_uni}");
    }

    #[test]
    fn incumbent_churn_threat_widens_viability() {
        // A bigger churn threat (higher ⟨rc⟩) lowers the bargained fee, so
        // the incumbent-like CSP tolerates higher entry costs.
        let d = Exponential::new(0.1);
        let entrant = max_viable_entry_cost(&d, 0.5, Regime::BargainedFees);
        let incumbent = max_viable_entry_cost(&d, 6.0, Regime::BargainedFees);
        assert!(
            incumbent > entrant,
            "incumbent viability {incumbent} must exceed entrant {entrant}"
        );
    }

    #[test]
    fn deterrence_band_well_ordered_and_strict() {
        let d = Exponential::new(0.15);
        let (k_ur, k_nn) = deterrence_band(&d, 0.5);
        assert!(k_ur < k_nn, "band must be non-empty with positive fees");
        // An entry cost inside the band: enters under NN, not under UR.
        let k = (k_ur + k_nn) / 2.0;
        assert!(entry_decision(&d, k, 0.5, Regime::NetworkNeutrality).enters);
        assert!(!entry_decision(&d, k, 0.5, Regime::BargainedFees).enters);
    }

    #[test]
    fn overwhelming_churn_threat_collapses_band() {
        // ⟨rc⟩ so large the bargained fee floors at 0 → UR ≡ NN.
        let d = Exponential::new(0.1);
        let (k_ur, k_nn) = deterrence_band(&d, 1e3);
        assert!((k_ur - k_nn).abs() < 1e-6);
    }

    #[test]
    fn marginal_entrant_does_not_enter_at_exact_cost() {
        let d = Exponential::new(0.1);
        let k = max_viable_entry_cost(&d, 0.0, Regime::NetworkNeutrality);
        let out = entry_decision(&d, k, 0.0, Regime::NetworkNeutrality);
        assert!(!out.enters, "profit must strictly exceed the entry cost");
    }
}

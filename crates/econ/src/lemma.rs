//! Numerical verification of Lemma 1 (experiment E-L1).
//!
//! Lemma 1: if `D` is strictly positive with continuous first and second
//! derivatives, strictly decreasing, strictly convex, and asymptotically
//! vanishing, then the CSP's best-response price `p*(t)` is strictly
//! increasing in the termination fee `t`. [`price_response_curve`] sweeps
//! `t` and [`is_strictly_increasing`] checks the conclusion; together they
//! regenerate the lemma as an executable experiment.

use crate::demand::Demand;
use crate::fees::monopoly_price;

/// Sample `(t, p*(t))` over `n` evenly spaced fees in `[0, t_max]`.
pub fn price_response_curve(demand: &dyn Demand, t_max: f64, n: usize) -> Vec<(f64, f64)> {
    assert!(t_max > 0.0 && n >= 2, "need a positive sweep with >= 2 samples");
    (0..n)
        .map(|i| {
            let t = t_max * i as f64 / (n - 1) as f64;
            (t, monopoly_price(demand, t))
        })
        .collect()
}

/// Whether successive prices strictly increase (tolerating solver noise of
/// `tol` in the flat direction).
pub fn is_strictly_increasing(curve: &[(f64, f64)], tol: f64) -> bool {
    curve.windows(2).all(|w| w[1].1 > w[0].1 - tol && w[1].1 >= w[0].1 - tol)
        && curve.last().map(|l| l.1).unwrap_or(0.0) > curve.first().map(|f| f.1).unwrap_or(0.0)
}

/// Spot-check the lemma's hypotheses at a set of prices: positive,
/// decreasing (D' < 0), convex (D'' > 0). Returns the first violated
/// hypothesis, if any. Intended for diagnostics, not proofs.
pub fn check_hypotheses(demand: &dyn Demand, prices: &[f64]) -> Option<String> {
    for &p in prices {
        let d = demand.d(p);
        if d <= 0.0 {
            return Some(format!("D({p}) = {d} not strictly positive"));
        }
        let dp = demand.d_prime(p);
        if dp >= 0.0 {
            return Some(format!("D'({p}) = {dp} not strictly negative"));
        }
        let h = (p.abs() * 1e-4).max(1e-5);
        let d2 = (demand.d(p + h) - 2.0 * demand.d(p) + demand.d(p - h)) / (h * h);
        if d2 <= 0.0 {
            return Some(format!("D''({p}) = {d2} not strictly positive"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{Exponential, Linear, Logistic, ParetoTail};

    #[test]
    fn lemma_holds_for_exponential() {
        let d = Exponential::new(0.15);
        let curve = price_response_curve(&d, 20.0, 41);
        assert!(is_strictly_increasing(&curve, 1e-6));
        // Slope is exactly 1 for the exponential: p*(t) = t + 1/λ.
        let slope = (curve[40].1 - curve[0].1) / 20.0;
        assert!((slope - 1.0).abs() < 1e-4, "slope {slope}");
    }

    #[test]
    fn lemma_holds_for_pareto() {
        let d = ParetoTail::new(5.0, 2.0);
        let curve = price_response_curve(&d, 10.0, 21);
        assert!(is_strictly_increasing(&curve, 1e-6));
        // Slope k/(k−1) = 2 for k = 2.
        let slope = (curve[20].1 - curve[0].1) / 10.0;
        assert!((slope - 2.0).abs() < 1e-3, "slope {slope}");
    }

    #[test]
    fn lemma_conclusion_even_for_linear() {
        // Linear demand violates the hypotheses yet p*(t) = (b+t)/2 still
        // increases — sufficiency, not necessity.
        let d = Linear::new(40.0);
        let curve = price_response_curve(&d, 30.0, 31);
        assert!(is_strictly_increasing(&curve, 1e-6));
    }

    #[test]
    fn lemma_holds_for_logistic_sweep() {
        let d = Logistic::new(20.0, 4.0);
        let curve = price_response_curve(&d, 15.0, 31);
        assert!(is_strictly_increasing(&curve, 1e-6));
    }

    #[test]
    fn hypotheses_pass_for_exponential_fail_for_linear() {
        let exp = Exponential::new(0.1);
        assert_eq!(check_hypotheses(&exp, &[1.0, 5.0, 20.0]), None);
        let lin = Linear::new(40.0);
        let violation = check_hypotheses(&lin, &[10.0, 45.0]);
        assert!(violation.is_some(), "linear demand must violate a hypothesis");
    }
}

//! Quality degradation as an implicit termination fee (§4.1).
//!
//! The paper restricts its formal analysis to explicit fees but notes the
//! conclusions "intuitively (but not quantitatively) apply to traffic
//! discrimination in that imposing poor QoS on incoming traffic reduces
//! the value of that traffic to users, so it can be seen as a form of
//! termination fee". This module makes that mapping quantitative.
//!
//! Model: degraded quality `q ∈ (0, 1]` scales every consumer's value:
//! a consumer with willingness-to-pay `v` gets utility `q·v − p`, so the
//! demand curve becomes `D_q(p) = D(p/q)`. Consequences (closed form):
//! the CSP's optimal price scales to `q·p*`, and both its profit and
//! social welfare scale by exactly `q`. [`equivalent_fee`] then inverts
//! the §4.4 profit function to find the explicit termination fee that
//! would hurt the CSP just as much — the "implicit fee" of throttling.

use crate::demand::Demand;
use crate::fees::monopoly_price;

/// The CSP's optimal posted price when delivered quality is `q`:
/// `q · p*(0)`.
pub fn degraded_price(demand: &dyn Demand, q: f64) -> f64 {
    assert!(q > 0.0 && q <= 1.0, "quality must be in (0,1]");
    q * monopoly_price(demand, 0.0)
}

/// The CSP's maximal revenue per unit customer mass at quality `q`:
/// `q · p*·D(p*)`.
pub fn degraded_profit(demand: &dyn Demand, q: f64) -> f64 {
    assert!(q > 0.0 && q <= 1.0, "quality must be in (0,1]");
    let p = monopoly_price(demand, 0.0);
    q * p * demand.d(p)
}

/// Social welfare (total utility) at quality `q`: `q · SW(p*)` — the same
/// buyers purchase (the price scales with their scaled values), each
/// deriving `q` of their undegraded utility.
pub fn degraded_welfare(demand: &dyn Demand, q: f64) -> f64 {
    assert!(q > 0.0 && q <= 1.0, "quality must be in (0,1]");
    q * crate::welfare::social_welfare(demand, monopoly_price(demand, 0.0))
}

/// The explicit termination fee with the same profit impact on the CSP as
/// delivering quality `q`: solves `(p*(t) − t)·D(p*(t)) = q·Π₀` by
/// bisection (the fee-profit map is continuous and decreasing). Returns
/// 0 for `q = 1`.
pub fn equivalent_fee(demand: &dyn Demand, q: f64) -> f64 {
    assert!(q > 0.0 && q <= 1.0, "quality must be in (0,1]");
    let target = degraded_profit(demand, q);
    let profit_at = |t: f64| {
        let p = monopoly_price(demand, t);
        (p - t) * demand.d(p)
    };
    if (profit_at(0.0) - target).abs() < 1e-12 {
        return 0.0;
    }
    // Bracket: profit decreases in t and tends to 0.
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    while profit_at(hi) > target && hi < 1e9 {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = (lo + hi) / 2.0;
        if profit_at(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 * (1.0 + hi) {
            break;
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{Exponential, ParetoTail};
    use crate::welfare::social_welfare;

    #[test]
    fn full_quality_is_no_fee() {
        let d = Exponential::new(0.1);
        assert_eq!(equivalent_fee(&d, 1.0), 0.0);
        assert!((degraded_price(&d, 1.0) - 10.0).abs() < 1e-4);
    }

    #[test]
    fn profit_and_welfare_scale_linearly_in_quality() {
        let d = Exponential::new(0.1);
        let p0 = degraded_profit(&d, 1.0);
        let w0 = degraded_welfare(&d, 1.0);
        for q in [0.25, 0.5, 0.8] {
            assert!((degraded_profit(&d, q) - q * p0).abs() < 1e-9);
            assert!((degraded_welfare(&d, q) - q * w0).abs() < 1e-9);
        }
        // Matches the welfare module at q = 1.
        assert!((w0 - social_welfare(&d, 10.0)).abs() < 1e-4);
    }

    #[test]
    fn equivalent_fee_monotone_decreasing_in_quality() {
        let d = Exponential::new(0.1);
        let mut prev = f64::INFINITY;
        for q in [0.3, 0.5, 0.7, 0.9, 1.0] {
            let t = equivalent_fee(&d, q);
            assert!(t < prev, "fee must fall as quality improves");
            assert!(t >= 0.0);
            prev = t;
        }
    }

    #[test]
    fn equivalent_fee_reproduces_degraded_profit() {
        let d = ParetoTail::new(6.0, 2.5);
        for q in [0.4, 0.6, 0.85] {
            let t = equivalent_fee(&d, q);
            let p = monopoly_price(&d, t);
            let profit_with_fee = (p - t) * d.d(p);
            let target = degraded_profit(&d, q);
            assert!(
                (profit_with_fee - target).abs() < 1e-6 * target,
                "q={q}: fee-profit {profit_with_fee} vs target {target}"
            );
        }
    }

    #[test]
    fn exponential_closed_form_fee() {
        // Π(t) = (1/λ)e^{−λ(t+1/λ)} ⇒ Π(t)/Π(0) = e^{−λt} = q ⇒
        // t_eq = −ln(q)/λ.
        let d = Exponential::new(0.2);
        for q in [0.5f64, 0.8] {
            let want = -q.ln() / 0.2;
            let got = equivalent_fee(&d, q);
            assert!((got - want).abs() < 1e-4, "q={q}: got {got} want {want}");
        }
    }
}

//! The paper's economic model of network neutrality (§4).
//!
//! A unit mass of consumers buys from `S` independent CSPs through `L`
//! LMPs. Each CSP `s` has a willingness-to-pay distribution `F_s` inducing
//! a demand curve `D_s(p) = 1 − F_s(p)`. Three regimes are compared:
//!
//! * **NN** (network neutrality): no termination fees; each CSP posts the
//!   monopoly price `p*_s = argmax p·D_s(p)`.
//! * **UR-unilateral**: each LMP unilaterally sets the revenue-maximizing
//!   termination fee `t*_s = argmax t·D_s(p_s(t))`, the CSP responds with
//!   `p_s(t) = argmax (p−t)·D_s(p)` — "double marginalization".
//! * **UR-bargaining**: fees from the Nash bargaining solution,
//!   `t_s = (p_s − r_l^s c_l)/2`, renegotiated to the fixed point
//!   `t* = (p_s(t*) − ⟨rc⟩_s)/2`.
//!
//! The paper's analytic results, which the experiment suite regenerates:
//! Lemma 1 (`p_s(t)` strictly increasing under smooth convex vanishing
//! demand), social welfare strictly decreasing in fees (so
//! `W_NN ≥ W_NBS ≥ W_unilateral`), and the incumbent advantage — fees
//! decrease in the churn rate `r_l^s`, so large LMPs (low churn loss)
//! extract more and large CSPs (high churn threat) pay less.

pub mod demand;
pub mod entry;
pub mod fees;
pub mod lemma;
pub mod model;
pub mod qos;
pub mod welfare;

pub use demand::{Demand, Exponential, Linear, Logistic, ParetoTail};
pub use entry::{deterrence_band, entry_decision, EntryOutcome};
pub use fees::{bargaining_equilibrium, nbs_fee, unilateral_fee, BargainingOutcome};
pub use model::{CspKind, Economy, LmpKind, Regime, RegimeReport};
pub use qos::{degraded_welfare, equivalent_fee};
pub use welfare::{consumer_surplus, social_welfare};

//! Demand-curve families `D(p) = 1 − F(p)`.
//!
//! Lemma 1's hypotheses: `D` strictly positive, twice continuously
//! differentiable, strictly decreasing, strictly convex, and vanishing as
//! `p → ∞`. [`Exponential`] and [`ParetoTail`] satisfy all of them with
//! closed-form monopoly prices (used as test oracles); [`Logistic`] is
//! convex only above its midpoint (hypotheses hold on the relevant region);
//! [`Linear`] deliberately violates them (it hits zero) and serves as the
//! edge-case family in tests.

use serde::{Deserialize, Serialize};

/// A demand curve. `d(p)` must be in `[0, 1]`, non-increasing.
pub trait Demand {
    /// Fraction of consumers with willingness-to-pay ≥ `p`.
    fn d(&self, p: f64) -> f64;

    /// `D'(p)`; default central difference.
    fn d_prime(&self, p: f64) -> f64 {
        let h = (p.abs() * 1e-6).max(1e-8);
        (self.d(p + h) - self.d(p - h)) / (2.0 * h)
    }

    /// A price beyond which demand is negligible (`D(p) < eps`); used as
    /// the search/integration horizon. Default: doubling search from 1.
    fn horizon(&self, eps: f64) -> f64 {
        let mut hi = 1.0;
        while self.d(hi) > eps && hi < 1e12 {
            hi *= 2.0;
        }
        hi
    }
}

/// `D(p) = e^{−λp}`. Monopoly price `p*(t) = t + 1/λ`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Exponential {
    pub lambda: f64,
}

impl Exponential {
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda.is_finite(), "lambda must be positive");
        Self { lambda }
    }
}

impl Demand for Exponential {
    fn d(&self, p: f64) -> f64 {
        if p <= 0.0 {
            1.0
        } else {
            (-self.lambda * p).exp()
        }
    }

    fn d_prime(&self, p: f64) -> f64 {
        if p <= 0.0 {
            0.0
        } else {
            -self.lambda * (-self.lambda * p).exp()
        }
    }
}

/// `D(p) = (1 + p/σ)^{−k}`, `k > 1`. Monopoly price
/// `p*(t) = (σ + k·t)/(k − 1)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ParetoTail {
    pub sigma: f64,
    pub k: f64,
}

impl ParetoTail {
    pub fn new(sigma: f64, k: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
        assert!(k > 1.0 && k.is_finite(), "k must exceed 1 for finite welfare");
        Self { sigma, k }
    }
}

impl Demand for ParetoTail {
    fn d(&self, p: f64) -> f64 {
        if p <= 0.0 {
            1.0
        } else {
            (1.0 + p / self.sigma).powf(-self.k)
        }
    }

    fn d_prime(&self, p: f64) -> f64 {
        if p <= 0.0 {
            0.0
        } else {
            -(self.k / self.sigma) * (1.0 + p / self.sigma).powf(-self.k - 1.0)
        }
    }
}

/// `D(p) = 1 / (1 + e^{(p−μ)/s})` (logistic tail; mass concentrated near
/// the midpoint `μ`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Logistic {
    pub mu: f64,
    pub s: f64,
}

impl Logistic {
    pub fn new(mu: f64, s: f64) -> Self {
        assert!(mu > 0.0 && s > 0.0, "mu and s must be positive");
        Self { mu, s }
    }
}

impl Demand for Logistic {
    fn d(&self, p: f64) -> f64 {
        if p <= 0.0 {
            // Normalize so D(0) = 1 exactly (truncated at zero).
            1.0
        } else {
            let base = 1.0 / (1.0 + ((p - self.mu) / self.s).exp());
            let at_zero = 1.0 / (1.0 + (-self.mu / self.s).exp());
            base / at_zero
        }
    }
}

/// `D(p) = max(0, 1 − p/b)`: hits zero at `b`, violating Lemma 1's
/// positivity/convexity hypotheses. Monopoly price `p*(t) = (b + t)/2`
/// (still increasing in `t` — the lemma's conditions are sufficient, not
/// necessary).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    pub b: f64,
}

impl Linear {
    pub fn new(b: f64) -> Self {
        assert!(b > 0.0 && b.is_finite(), "choke price must be positive");
        Self { b }
    }
}

impl Demand for Linear {
    fn d(&self, p: f64) -> f64 {
        (1.0 - p / self.b).clamp(0.0, 1.0)
    }

    fn horizon(&self, _eps: f64) -> f64 {
        self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_shape() {
        let d = Exponential::new(0.1);
        assert_eq!(d.d(0.0), 1.0);
        assert!(d.d(10.0) < d.d(5.0));
        assert!((d.d(10.0) - (-1.0f64).exp()).abs() < 1e-12);
        // Derivative matches closed form.
        assert!((d.d_prime(10.0) + 0.1 * (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn pareto_shape_and_derivative() {
        let d = ParetoTail::new(5.0, 2.0);
        assert_eq!(d.d(0.0), 1.0);
        assert!((d.d(5.0) - 0.25).abs() < 1e-12);
        // Numeric default derivative close to analytic.
        let numeric = {
            let h = 1e-6;
            (d.d(5.0 + h) - d.d(5.0 - h)) / (2.0 * h)
        };
        assert!((d.d_prime(5.0) - numeric).abs() < 1e-6);
    }

    #[test]
    fn logistic_normalized_at_zero() {
        let d = Logistic::new(20.0, 5.0);
        assert_eq!(d.d(0.0), 1.0);
        assert!(d.d(0.001) <= 1.0 + 1e-12);
        assert!(d.d(20.0) < d.d(10.0));
    }

    #[test]
    fn linear_hits_zero_at_choke() {
        let d = Linear::new(40.0);
        assert_eq!(d.d(40.0), 0.0);
        assert_eq!(d.d(60.0), 0.0);
        assert_eq!(d.d(20.0), 0.5);
        assert_eq!(d.horizon(1e-9), 40.0);
    }

    #[test]
    fn horizons_cover_negligible_demand() {
        for d in [Exponential::new(0.05), Exponential::new(1.0)] {
            let h = d.horizon(1e-9);
            assert!(d.d(h) <= 1e-9);
        }
        let p = ParetoTail::new(10.0, 3.0);
        assert!(p.d(p.horizon(1e-9)) <= 1e-9);
    }

    #[test]
    fn all_families_monotone_decreasing() {
        let curves: Vec<Box<dyn Demand>> = vec![
            Box::new(Exponential::new(0.2)),
            Box::new(ParetoTail::new(8.0, 2.5)),
            Box::new(Logistic::new(15.0, 4.0)),
            Box::new(Linear::new(30.0)),
        ];
        for c in &curves {
            let mut prev = c.d(0.0);
            for i in 1..100 {
                let p = i as f64 * 0.5;
                let cur = c.d(p);
                assert!(cur <= prev + 1e-12, "demand increased at {p}");
                prev = cur;
            }
        }
    }
}

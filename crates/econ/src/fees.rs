//! Pricing and termination-fee mechanics (§4.3–4.5).
//!
//! * Monopoly pricing `p*(t) = argmax (p − t)·D(p)` (Equation 1);
//! * unilateral fee setting `t* = argmax t·D(p*(t))` (double
//!   marginalization, §4.4);
//! * Nash-bargaining fees `t = (p − r·c)/2` and the §4.5 renegotiation
//!   fixed point `t* = (p*(t*) − ⟨rc⟩)/2`.

use crate::demand::Demand;

/// Golden-section maximizer for a unimodal `f` on `[lo, hi]`.
fn golden_max(mut lo: f64, mut hi: f64, f: impl Fn(f64) -> f64) -> f64 {
    assert!(lo <= hi, "empty bracket");
    const PHI: f64 = 0.618_033_988_749_894_9;
    let mut x1 = hi - PHI * (hi - lo);
    let mut x2 = lo + PHI * (hi - lo);
    let mut f1 = f(x1);
    let mut f2 = f(x2);
    for _ in 0..200 {
        if hi - lo < 1e-10 * (1.0 + hi.abs()) {
            break;
        }
        if f1 < f2 {
            lo = x1;
            x1 = x2;
            f1 = f2;
            x2 = lo + PHI * (hi - lo);
            f2 = f(x2);
        } else {
            hi = x2;
            x2 = x1;
            f2 = f1;
            x1 = hi - PHI * (hi - lo);
            f1 = f(x1);
        }
    }
    (lo + hi) / 2.0
}

/// The CSP's revenue-maximizing posted price given a per-customer
/// termination fee `t`: `p*(t) = argmax_{p ≥ t} (p − t)·D(p)`.
pub fn monopoly_price(demand: &dyn Demand, t: f64) -> f64 {
    assert!(t >= 0.0 && t.is_finite(), "fee must be non-negative");
    let hi = demand.horizon(1e-12).max(t + 1.0);
    golden_max(t, hi, |p| (p - t) * demand.d(p))
}

/// The LMP's unilaterally revenue-maximizing termination fee:
/// `t* = argmax_t t·D(p*(t))` (§4.4). Returns `(t*, p*(t*))`.
pub fn unilateral_fee(demand: &dyn Demand) -> (f64, f64) {
    let hi = demand.horizon(1e-12);
    let t = golden_max(0.0, hi, |t| t * demand.d(monopoly_price(demand, t)));
    (t, monopoly_price(demand, t))
}

/// The Nash-bargaining termination fee for one (CSP, LMP) pair (§4.5):
/// `t = (p − r·c)/2`, where `p` is the CSP's price, `r` the fraction of the
/// LMP's customers lost on disagreement, and `c` the LMP's access charge.
/// Negative values (the LMP pays the CSP) are preserved — the paper notes
/// the fee "can be negative".
///
/// ```
/// use poc_econ::nbs_fee;
/// // An incumbent LMP (little churn to fear) extracts more than an
/// // entrant facing the same CSP:
/// assert!(nbs_fee(20.0, 0.05, 50.0) > nbs_fee(20.0, 0.30, 50.0));
/// ```
pub fn nbs_fee(p: f64, r: f64, c: f64) -> f64 {
    assert!((0.0..=1.0).contains(&r), "churn rate must be in [0,1]");
    assert!(p >= 0.0 && c >= 0.0, "price and access charge must be non-negative");
    (p - r * c) / 2.0
}

/// Outcome of the §4.5 renegotiation process.
#[derive(Clone, Debug, PartialEq)]
pub struct BargainingOutcome {
    /// Fixed-point average fee `t*` (clamped at 0 if bargaining would pay
    /// the CSP and the analysis restricts to non-negative fees).
    pub fee: f64,
    /// The CSP's equilibrium price `p*(t*)`.
    pub price: f64,
    /// Iterations until convergence.
    pub iterations: usize,
    /// Whether the iteration converged within tolerance.
    pub converged: bool,
}

/// Iterate `t_{k+1} = (p*(t_k) − ⟨rc⟩)/2` to the renegotiation fixed point
/// (§4.5 third model). `avg_rc` is the customer-weighted average of
/// `r_l^s · c_l` across LMPs. Fees are floored at zero, matching the
/// paper's "we assume we are in the regime where the termination fees are
/// positive".
pub fn bargaining_equilibrium(demand: &dyn Demand, avg_rc: f64) -> BargainingOutcome {
    assert!(avg_rc >= 0.0 && avg_rc.is_finite(), "average r*c must be non-negative");
    let mut t = 0.0f64;
    let mut iterations = 0;
    let mut converged = false;
    for i in 1..=500 {
        iterations = i;
        let p = monopoly_price(demand, t);
        let next = ((p - avg_rc) / 2.0).max(0.0);
        // Tolerance sized to the golden-section maximizer's own precision
        // (~1e-8 in the argmax): tighter and solver noise prevents the
        // fixed point from ever registering.
        if (next - t).abs() < 1e-7 * (1.0 + t.abs()) {
            t = next;
            converged = true;
            break;
        }
        t = next;
    }
    BargainingOutcome { fee: t, price: monopoly_price(demand, t), iterations, converged }
}

/// Customer-weighted average of `r_l^s · c_l` over LMPs (§4.5 second
/// model): `⟨rc⟩_s = Σ_l n_l r_l^s c_l / Σ_l n_l`.
pub fn average_rc(lmps: &[(f64, f64, f64)]) -> f64 {
    // (n_l, r_l^s, c_l)
    let total_n: f64 = lmps.iter().map(|(n, _, _)| n).sum();
    assert!(total_n > 0.0, "need at least one LMP with customers");
    lmps.iter().map(|(n, r, c)| n * r * c).sum::<f64>() / total_n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{Exponential, Linear, ParetoTail};

    #[test]
    fn exponential_monopoly_price_closed_form() {
        // p*(t) = t + 1/λ.
        let d = Exponential::new(0.1);
        for t in [0.0, 2.0, 7.5] {
            let p = monopoly_price(&d, t);
            assert!((p - (t + 10.0)).abs() < 1e-4, "t={t}: p={p}");
        }
    }

    #[test]
    fn pareto_monopoly_price_closed_form() {
        // p*(t) = (σ + k t)/(k − 1).
        let d = ParetoTail::new(5.0, 2.0);
        for t in [0.0, 1.0, 4.0] {
            let p = monopoly_price(&d, t);
            let want = (5.0 + 2.0 * t) / 1.0;
            assert!((p - want).abs() < 1e-3, "t={t}: p={p} want {want}");
        }
    }

    #[test]
    fn linear_monopoly_price_closed_form() {
        // p*(t) = (b + t)/2.
        let d = Linear::new(40.0);
        for t in [0.0, 10.0, 30.0] {
            let p = monopoly_price(&d, t);
            assert!((p - (40.0 + t) / 2.0).abs() < 1e-5, "t={t}: p={p}");
        }
    }

    #[test]
    fn exponential_unilateral_fee_closed_form() {
        // t* = 1/λ.
        let d = Exponential::new(0.25);
        let (t, p) = unilateral_fee(&d);
        assert!((t - 4.0).abs() < 1e-3, "t={t}");
        assert!((p - 8.0).abs() < 1e-3, "p={p}");
    }

    #[test]
    fn nbs_fee_formula() {
        assert_eq!(nbs_fee(10.0, 0.0, 5.0), 5.0);
        assert_eq!(nbs_fee(10.0, 0.5, 10.0), 2.5);
        // Negative when the LMP's disagreement loss dominates.
        assert_eq!(nbs_fee(4.0, 1.0, 10.0), -3.0);
    }

    #[test]
    fn nbs_fee_decreasing_in_churn() {
        // The paper's incumbent-advantage driver: fee falls as r grows.
        let mut prev = f64::INFINITY;
        for r in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
            let t = nbs_fee(20.0, r, 15.0);
            assert!(t < prev);
            prev = t;
        }
    }

    #[test]
    fn bargaining_fixed_point_exponential() {
        // t = (p(t) − a)/2 with p(t) = t + 1/λ ⇒ t* = (1/λ − a) (solve
        // t = (t + 1/λ − a)/2 ⇒ t = 1/λ − a).
        let d = Exponential::new(0.1);
        let out = bargaining_equilibrium(&d, 4.0);
        assert!(out.converged, "{out:?}");
        assert!((out.fee - 6.0).abs() < 1e-4, "fee={}", out.fee);
        assert!((out.price - 16.0).abs() < 1e-3);
    }

    #[test]
    fn bargaining_fee_floored_at_zero() {
        // Huge ⟨rc⟩: bargaining would pay the CSP; the model floors at 0,
        // recovering the NN outcome.
        let d = Exponential::new(0.1);
        let out = bargaining_equilibrium(&d, 1e3);
        assert!(out.converged);
        assert_eq!(out.fee, 0.0);
        assert!((out.price - 10.0).abs() < 1e-4);
    }

    #[test]
    fn bargaining_fee_below_unilateral() {
        // With any churn threat the bargained fee undercuts the unilateral
        // one.
        let d = Exponential::new(0.2);
        let (t_uni, _) = unilateral_fee(&d);
        let out = bargaining_equilibrium(&d, 2.0);
        assert!(out.fee < t_uni, "bargained {} vs unilateral {t_uni}", out.fee);
    }

    #[test]
    fn average_rc_weighted() {
        // Two LMPs: 3 customers with rc = 0.1*10, 1 customer with rc = 0.5*20.
        let avg = average_rc(&[(3.0, 0.1, 10.0), (1.0, 0.5, 20.0)]);
        assert!((avg - (3.0 * 1.0 + 1.0 * 10.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "churn rate")]
    fn nbs_rejects_bad_churn() {
        nbs_fee(10.0, 1.5, 1.0);
    }
}

//! Welfare integrals (§4.3, §4.6).
//!
//! Social welfare at posted price `p` (total utility, payments ignored):
//!
//! ```text
//! SW(p) = ∫_p^∞ v dF(v) = p·D(p) + ∫_p^∞ D(v) dv
//! ```
//!
//! Consumer surplus (utility net of payments): `CS(p) = ∫_p^∞ D(v) dv`.
//! Both are computed by adaptive Simpson quadrature up to the demand
//! horizon; exponential/Pareto closed forms serve as test oracles.

use crate::demand::Demand;

/// Adaptive Simpson on `[a, b]`.
fn simpson(f: &dyn Fn(f64) -> f64, a: f64, b: f64, eps: f64, depth: usize) -> f64 {
    fn quad(f: &dyn Fn(f64) -> f64, a: f64, b: f64) -> f64 {
        let m = (a + b) / 2.0;
        (b - a) / 6.0 * (f(a) + 4.0 * f(m) + f(b))
    }
    fn rec(f: &dyn Fn(f64) -> f64, a: f64, b: f64, whole: f64, eps: f64, depth: usize) -> f64 {
        let m = (a + b) / 2.0;
        let left = quad(f, a, m);
        let right = quad(f, m, b);
        if depth == 0 || (left + right - whole).abs() <= 15.0 * eps {
            left + right + (left + right - whole) / 15.0
        } else {
            rec(f, a, m, left, eps / 2.0, depth - 1) + rec(f, m, b, right, eps / 2.0, depth - 1)
        }
    }
    rec(f, a, b, quad(f, a, b), eps, depth)
}

/// Consumer surplus `∫_p^∞ D(v) dv`.
pub fn consumer_surplus(demand: &dyn Demand, p: f64) -> f64 {
    assert!(p >= 0.0 && p.is_finite(), "price must be non-negative");
    let hi = demand.horizon(1e-12).max(p);
    if hi <= p {
        return 0.0;
    }
    let f = |v: f64| demand.d(v);
    simpson(&f, p, hi, 1e-10, 40).max(0.0)
}

/// Social welfare `SW(p) = p·D(p) + ∫_p^∞ D(v) dv` — the total utility
/// consumers derive from the service at posted price `p`.
pub fn social_welfare(demand: &dyn Demand, p: f64) -> f64 {
    p * demand.d(p) + consumer_surplus(demand, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::{Exponential, Linear, ParetoTail};
    use crate::fees::monopoly_price;

    #[test]
    fn exponential_closed_forms() {
        // CS(p) = e^{−λp}/λ; SW(p) = (p + 1/λ)e^{−λp}.
        let d = Exponential::new(0.1);
        for p in [0.0, 5.0, 12.0] {
            let cs = consumer_surplus(&d, p);
            let sw = social_welfare(&d, p);
            let want_cs = (-0.1 * p).exp() / 0.1;
            let want_sw = (p + 10.0) * (-0.1 * p).exp();
            assert!((cs - want_cs).abs() < 1e-6, "p={p}: cs={cs} want {want_cs}");
            assert!((sw - want_sw).abs() < 1e-6, "p={p}: sw={sw} want {want_sw}");
        }
    }

    #[test]
    fn pareto_closed_form() {
        // CS(p) = σ/(k−1) · (1+p/σ)^{1−k}.
        let d = ParetoTail::new(5.0, 3.0);
        for p in [0.0, 2.0, 10.0] {
            let cs = consumer_surplus(&d, p);
            let want = 5.0 / 2.0 * (1.0f64 + p / 5.0).powf(-2.0);
            assert!((cs - want).abs() < 1e-6, "p={p}: cs={cs} want {want}");
        }
    }

    #[test]
    fn linear_triangle() {
        // CS(p) = (b − p)²/(2b) for p ≤ b.
        let d = Linear::new(40.0);
        let cs = consumer_surplus(&d, 10.0);
        assert!((cs - 30.0 * 30.0 / 80.0).abs() < 1e-6);
        assert_eq!(consumer_surplus(&d, 40.0), 0.0);
    }

    #[test]
    fn welfare_decreasing_in_price() {
        // The monotonicity the paper's welfare argument rests on.
        let curves: Vec<Box<dyn Demand>> = vec![
            Box::new(Exponential::new(0.08)),
            Box::new(ParetoTail::new(6.0, 2.2)),
            Box::new(Linear::new(50.0)),
        ];
        for d in &curves {
            let mut prev = f64::INFINITY;
            for i in 0..30 {
                let p = i as f64;
                let sw = social_welfare(d.as_ref(), p);
                assert!(sw <= prev + 1e-9, "welfare rose at p={p}");
                prev = sw;
            }
        }
    }

    #[test]
    fn welfare_at_monopoly_price_below_free() {
        let d = Exponential::new(0.1);
        let p_star = monopoly_price(&d, 0.0);
        assert!(social_welfare(&d, p_star) < social_welfare(&d, 0.0));
    }
}

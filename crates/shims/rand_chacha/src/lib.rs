//! Offline `rand_chacha` shim: a real ChaCha8 keystream generator behind
//! the in-tree rand shim's traits. Statistically strong and deterministic
//! per seed; the stream differs from the real crate's (key scheduling from
//! the u64 seed is shim-specific), which is fine — the workspace depends
//! only on seeded determinism.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds.
#[derive(Clone)]
pub struct ChaCha8Rng {
    /// Key (8 words) retained for block regeneration.
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    /// Next unconsumed word in `block`; 16 = exhausted.
    word: usize,
}

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha8_block(key: &[u32; 8], counter: u64) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = 0;
    state[15] = 0;
    let initial = state;
    for _ in 0..4 {
        // Two rounds per iteration: column round + diagonal round.
        quarter(&mut state, 0, 4, 8, 12);
        quarter(&mut state, 1, 5, 9, 13);
        quarter(&mut state, 2, 6, 10, 14);
        quarter(&mut state, 3, 7, 11, 15);
        quarter(&mut state, 0, 5, 10, 15);
        quarter(&mut state, 1, 6, 11, 12);
        quarter(&mut state, 2, 7, 8, 13);
        quarter(&mut state, 3, 4, 9, 14);
    }
    for (s, i) in state.iter_mut().zip(initial) {
        *s = s.wrapping_add(i);
    }
    state
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // Expand the seed into the 256-bit key with SplitMix64.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            if pair.len() > 1 {
                pair[1] = (w >> 32) as u32;
            }
        }
        ChaCha8Rng { key, counter: 0, block: [0; 16], word: 16 }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.word >= 15 {
            self.block = chacha8_block(&self.key, self.counter);
            self.counter += 1;
            self.word = 0;
        }
        let lo = self.block[self.word] as u64;
        let hi = self.block[self.word + 1] as u64;
        self.word += 2;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn usable_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            seen.insert(rng.gen_range(0..1000u32));
        }
        assert!(seen.len() > 30, "stream looks degenerate: {seen:?}");
    }
}

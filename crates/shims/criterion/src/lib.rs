//! Offline `criterion` shim.
//!
//! Implements the API subset the bench crate uses — `Criterion` with
//! `sample_size`/`measurement_time` builders, `bench_function`,
//! `bench_with_input` + `BenchmarkId`, `Bencher::iter`, `black_box`, and
//! the `criterion_group!` macro — over a plain wall-clock timing loop.
//! No statistical model, no HTML reports, no CLI filtering; each
//! benchmark calibrates an iteration count, collects `sample_size`
//! samples within the `measurement_time` budget, and prints
//! median/mean/min per-iteration times.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver and configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_secs(3) }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// CLI args are ignored by the shim; kept for source compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Real criterion prints an aggregate report here; the shim prints
    /// per-benchmark lines eagerly, so this is a no-op.
    pub fn final_summary(&self) {}

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b =
            Bencher { sample_size: self.sample_size, budget: self.measurement_time, stats: None };
        f(&mut b);
        report(id, b.stats);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b =
            Bencher { sample_size: self.sample_size, budget: self.measurement_time, stats: None };
        f(&mut b, input);
        report(&id.label, b.stats);
        self
    }
}

/// Identifies a parameterised benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }
}

/// Timing statistics over the collected samples, in ns per iteration.
struct Stats {
    median: f64,
    mean: f64,
    min: f64,
    samples: usize,
    iters_per_sample: u64,
}

/// Hands the routine to the timing loop.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    stats: Option<Stats>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let time = |n: u64, routine: &mut R| -> Duration {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            start.elapsed()
        };

        // Calibrate: grow the batch until one batch takes >= 1 ms, so the
        // per-iteration estimate is not dominated by timer resolution.
        let mut iters: u64 = 1;
        let mut elapsed = time(iters, &mut routine);
        while elapsed < Duration::from_millis(1) && iters < (1 << 24) {
            iters *= 2;
            elapsed = time(iters, &mut routine);
        }
        let per_iter = elapsed.as_secs_f64() / iters as f64;

        // Size each sample so that sample_size samples fill the budget.
        let per_sample = self.budget.as_secs_f64() / self.sample_size as f64;
        let sample_iters = ((per_sample / per_iter) as u64).clamp(1, 1 << 28);

        let deadline = Instant::now() + self.budget;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        while samples.len() < self.sample_size {
            let d = time(sample_iters, &mut routine);
            samples.push(d.as_secs_f64() * 1e9 / sample_iters as f64);
            // Honor the time budget, but never report on fewer than 2 samples.
            if Instant::now() >= deadline && samples.len() >= 2 {
                break;
            }
        }

        samples.sort_by(|a, b| a.total_cmp(b));
        let n = samples.len();
        let median =
            if n % 2 == 1 { samples[n / 2] } else { (samples[n / 2 - 1] + samples[n / 2]) / 2.0 };
        let mean = samples.iter().sum::<f64>() / n as f64;
        self.stats = Some(Stats {
            median,
            mean,
            min: samples[0],
            samples: n,
            iters_per_sample: sample_iters,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn report(id: &str, stats: Option<Stats>) {
    match stats {
        Some(s) => println!(
            "{id:<44} median {:>10}  mean {:>10}  min {:>10}  ({} samples x {} iters)",
            fmt_ns(s.median),
            fmt_ns(s.mean),
            fmt_ns(s.min),
            s.samples,
            s.iters_per_sample,
        ),
        None => println!("{id:<44} (no measurement: Bencher::iter never called)"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(20));
        c.bench_function("spin", |b| b.iter(|| (0..100u64).map(black_box).sum::<u64>()));
        c.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
            b.iter(|| n.wrapping_mul(3))
        });
    }

    #[test]
    fn group_macro_compiles() {
        fn target(c: &mut Criterion) {
            c.bench_function("noop", |b| b.iter(|| 1u32));
        }
        criterion_group! {
            name = g;
            config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(5));
            targets = target
        }
        g();
    }
}

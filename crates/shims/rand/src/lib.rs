//! Offline `rand` shim: `RngCore`/`SeedableRng`/`Rng::{gen_range,
//! gen_bool}` with half-open and inclusive ranges over the integer and
//! float types this workspace samples. Deterministic given a seed (the
//! repo's generators all seed explicitly), but the streams differ from
//! the real rand crate's — nothing here depends on rand's exact values,
//! only on seeded determinism.

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types sampleable from a range (the `gen_range` argument).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Uniform f64 in [0, 1) with 53 bits of precision.
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform u64 below `n` via rejection sampling (unbiased).
fn below(rng: &mut dyn RngCore, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - u64::MAX % n;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-domain u64 range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u = unit_f64(rng) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}
float_range_impls!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every RngCore.
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// SplitMix64 — the shim's standard generator.
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10u32);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(0.5..2.0f64);
            assert!((0.5..2.0).contains(&f));
            let i = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}

//! Offline `serde` shim.
//!
//! The real serde crates are unavailable in this build environment (no
//! registry access), so this workspace ships a minimal stand-in exposing
//! exactly the surface the repo uses: the `Serialize`/`Deserialize`
//! traits, `serde::de::DeserializeOwned`, and `#[derive(Serialize,
//! Deserialize)]` (via the sibling `serde_derive` shim). Unlike real
//! serde there is no format abstraction: the traits read and write JSON
//! directly, and the `serde_json` shim is a thin wrapper over them.
//!
//! Conventions match serde's JSON defaults where it is cheap to do so:
//! structs are objects, newtype structs are transparent, unit enum
//! variants are strings, data-carrying variants are single-key objects,
//! unknown object keys are skipped, and `#[serde(default)]` /
//! `#[serde(transparent)]` are honored. Maps serialize as arrays of
//! `[key, value]` pairs (this shim never needs to interoperate with
//! externally produced JSON).

pub mod json;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A value that can write itself as JSON.
pub trait Serialize {
    fn json_write(&self, out: &mut String);
}

/// A value that can parse itself from JSON.
pub trait Deserialize: Sized {
    fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error>;
}

/// Module mirror of `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

/// Module mirror of `serde::de`.
pub mod de {
    pub use crate::Deserialize;

    /// In real serde this is `Deserialize` without borrowed data; the shim
    /// traits never borrow, so it is a blanket alias.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn json_write(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn json_write(&self, out: &mut String) {
                out.push_str(itoa(*self as i128).as_str());
            }
        }
        impl Deserialize for $t {
            fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
                let n = p.integer()?;
                <$t>::try_from(n).map_err(|_| p.error("integer out of range"))
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn itoa(v: i128) -> String {
    v.to_string()
}

impl Serialize for f64 {
    fn json_write(&self, out: &mut String) {
        if self.is_finite() {
            // Rust's shortest round-trip formatting; valid JSON.
            let s = format!("{self}");
            out.push_str(&s);
            // `5` would parse back as an integer fine for f64, no suffix
            // needed: f64::json_read accepts either form.
        } else {
            // Mirror serde_json: non-finite floats become null.
            out.push_str("null");
        }
    }
}

impl Deserialize for f64 {
    fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        if p.try_null() {
            return Ok(f64::NAN);
        }
        p.number()
    }
}

impl Serialize for f32 {
    fn json_write(&self, out: &mut String) {
        (*self as f64).json_write(out);
    }
}

impl Deserialize for f32 {
    fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        Ok(f64::json_read(p)? as f32)
    }
}

impl Serialize for str {
    fn json_write(&self, out: &mut String) {
        json::write_string(self, out);
    }
}

impl Serialize for String {
    fn json_write(&self, out: &mut String) {
        json::write_string(self, out);
    }
}

impl Deserialize for String {
    fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        p.string()
    }
}

impl Serialize for char {
    fn json_write(&self, out: &mut String) {
        json::write_string(&self.to_string(), out);
    }
}

impl Deserialize for char {
    fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        let s = p.string()?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(p.error("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn json_write(&self, out: &mut String) {
        (**self).json_write(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn json_write(&self, out: &mut String) {
        (**self).json_write(out);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        Ok(Box::new(T::json_read(p)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn json_write(&self, out: &mut String) {
        match self {
            Some(v) => v.json_write(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        if p.try_null() {
            Ok(None)
        } else {
            Ok(Some(T::json_read(p)?))
        }
    }
}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    let mut first = true;
    for v in items {
        if !first {
            out.push(',');
        }
        first = false;
        v.json_write(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn json_write(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn json_write(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        let mut out = Vec::new();
        p.seq(|p| {
            out.push(T::json_read(p)?);
            Ok(())
        })?;
        Ok(out)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn json_write(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        let v = Vec::<T>::json_read(p)?;
        if v.len() != N {
            return Err(p.error("array length mismatch"));
        }
        let mut out = [T::default(); N];
        out.copy_from_slice(&v);
        Ok(out)
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn json_write(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.json_write(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
                p.expect(b'[')?;
                let v = ($(
                    {
                        if $n > 0 { p.expect(b',')?; }
                        $t::json_read(p)?
                    },
                )+);
                p.expect(b']')?;
                Ok(v)
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn json_write(&self, out: &mut String) {
        out.push('[');
        let mut first = true;
        for (k, v) in self {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('[');
            k.json_write(out);
            out.push(',');
            v.json_write(out);
            out.push(']');
        }
        out.push(']');
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        let pairs = Vec::<(K, V)>::json_read(p)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn json_write(&self, out: &mut String) {
        out.push('[');
        let mut first = true;
        for v in self {
            if !first {
                out.push(',');
            }
            first = false;
            v.json_write(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        let items = Vec::<T>::json_read(p)?;
        Ok(items.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn json_write(&self, out: &mut String) {
        out.push('[');
        let mut first = true;
        for v in self {
            if !first {
                out.push(',');
            }
            first = false;
            v.json_write(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for std::collections::HashSet<T> {
    fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        let items = Vec::<T>::json_read(p)?;
        Ok(items.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn json_write(&self, out: &mut String) {
        out.push('[');
        let mut first = true;
        for (k, v) in self {
            if !first {
                out.push(',');
            }
            first = false;
            out.push('[');
            k.json_write(out);
            out.push(',');
            v.json_write(out);
            out.push(']');
        }
        out.push(']');
    }
}

impl<K: Deserialize + std::hash::Hash + Eq, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn json_read(p: &mut json::Parser<'_>) -> Result<Self, json::Error> {
        let pairs = Vec::<(K, V)>::json_read(p)?;
        Ok(pairs.into_iter().collect())
    }
}

//! The shim's built-in JSON lexer/parser and string writer.
//!
//! `Parser` is a plain byte cursor with combinators shaped around what the
//! derive macro generates: `expect`, `try_consume`, `string`, `number`,
//! `seq`, and `skip_value` for unknown fields.

/// Parse or serialize failure. Carries the byte offset where parsing gave
/// up, which is enough to debug the small control-plane payloads this
/// workspace exchanges.
#[derive(Debug, Clone)]
pub struct Error {
    pub msg: String,
    pub offset: usize,
}

impl Error {
    pub fn missing_field(name: &str) -> Self {
        Error { msg: format!("missing field `{name}`"), offset: 0 }
    }

    pub fn unknown_variant(name: &str) -> Self {
        Error { msg: format!("unknown variant `{name}`"), offset: 0 }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at offset {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// Escape and quote `s` onto `out`.
pub fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Byte cursor over a JSON document.
pub struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    pub fn error(&self, msg: &str) -> Error {
        Error { msg: msg.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    /// The next non-whitespace byte without consuming it.
    pub fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    /// Consume `c` or error.
    pub fn expect(&mut self, c: u8) -> Result<(), Error> {
        if self.try_consume(c) {
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", c as char)))
        }
    }

    /// Consume `c` if it is next.
    pub fn try_consume(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consume a `null` literal if next.
    pub fn try_null(&mut self) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            true
        } else {
            false
        }
    }

    /// Whether the next value is a string.
    pub fn peek_string(&mut self) -> bool {
        self.peek() == Some(b'"')
    }

    pub fn bool(&mut self) -> Result<bool, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"true") {
            self.pos += 4;
            Ok(true)
        } else if self.bytes[self.pos..].starts_with(b"false") {
            self.pos += 5;
            Ok(false)
        } else {
            Err(self.error("expected bool"))
        }
    }

    /// Parse a quoted string (handles escapes).
    pub fn string(&mut self) -> Result<String, Error> {
        self.skip_ws();
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(self.error("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.error("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&e) = self.bytes.get(self.pos) else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // shim's writer; reject them on read.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.error("invalid code point"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Copy a full UTF-8 sequence.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number_token(&mut self) -> Result<&'a str, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.error("expected number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number bytes"))
    }

    /// Parse any JSON number as f64.
    pub fn number(&mut self) -> Result<f64, Error> {
        let tok = self.number_token()?;
        tok.parse::<f64>().map_err(|_| self.error("malformed number"))
    }

    /// Parse an integer (rejects fractional forms).
    pub fn integer(&mut self) -> Result<i128, Error> {
        let tok = self.number_token()?;
        if let Ok(v) = tok.parse::<i128>() {
            return Ok(v);
        }
        // Accept floats that are exactly integral (e.g. "3.0").
        let f = tok.parse::<f64>().map_err(|_| self.error("malformed number"))?;
        if f.fract() == 0.0 && f.abs() < 9.0e15 {
            Ok(f as i128)
        } else {
            Err(self.error("expected integer"))
        }
    }

    /// Iterate an array: calls `f` once per element.
    pub fn seq(&mut self, mut f: impl FnMut(&mut Self) -> Result<(), Error>) -> Result<(), Error> {
        self.expect(b'[')?;
        if self.try_consume(b']') {
            return Ok(());
        }
        loop {
            f(self)?;
            if self.try_consume(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(());
        }
    }

    /// Skip one complete JSON value (used for unknown object keys).
    pub fn skip_value(&mut self) -> Result<(), Error> {
        match self.peek() {
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b'{') => {
                self.expect(b'{')?;
                if self.try_consume(b'}') {
                    return Ok(());
                }
                loop {
                    self.string()?;
                    self.expect(b':')?;
                    self.skip_value()?;
                    if self.try_consume(b',') {
                        continue;
                    }
                    self.expect(b'}')?;
                    return Ok(());
                }
            }
            Some(b'[') => self.seq(|p| p.skip_value()),
            Some(b't') | Some(b'f') => {
                self.bool()?;
                Ok(())
            }
            Some(b'n') => {
                if self.try_null() {
                    Ok(())
                } else {
                    Err(self.error("expected null"))
                }
            }
            Some(_) => {
                self.number()?;
                Ok(())
            }
            None => Err(self.error("unexpected end of input")),
        }
    }

    /// Error unless only whitespace remains.
    pub fn finish(&mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.error("trailing characters"))
        }
    }
}

impl Deserialize for bool {
    fn json_read(p: &mut Parser<'_>) -> Result<Self, Error> {
        p.bool()
    }
}

use crate::Deserialize;

//! `#[derive(Serialize, Deserialize)]` for the in-tree serde shim.
//!
//! syn/quote are unavailable offline, so the item is parsed directly from
//! the `proc_macro` token stream and code is generated as a source string.
//! Supported shapes (everything this workspace derives on):
//!
//! * structs with named fields (JSON objects; `#[serde(default)]` honored,
//!   unknown keys skipped)
//! * newtype structs (transparent, matching serde)
//! * tuple structs (JSON arrays) and unit structs (null)
//! * non-generic enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, matching serde)
//!
//! Generic parameters, lifetimes, and other serde attributes are
//! unsupported and produce a compile error naming the offender.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated code parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().expect("error parses"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility up to `struct`/`enum`.
    let kind = loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + [...]
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1; // `pub`, etc.
            }
            Some(TokenTree::Group(_)) => {
                i += 1; // `(crate)` after pub
            }
            other => return Err(format!("unexpected token before item keyword: {other:?}")),
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("serde shim derive: generic type `{name}` unsupported"));
        }
    }

    let shape = if kind == "enum" {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, found {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => return Err(format!("expected struct body, found {other:?}")),
        }
    };

    Ok(Item { name, shape })
}

/// Whether a `#[...]` attribute group body is `serde(default)`.
fn attr_is_serde_default(g: &proc_macro::Group) -> bool {
    let mut it = g.stream().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(inner)))
            if id.to_string() == "serde" =>
        {
            inner
                .stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut default = false;
        // Attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if attr_is_serde_default(g) {
                    default = true;
                }
            }
            i += 2;
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field, found {other:?}")),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        i += 1; // the comma (or past the end)
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    commas + 1 - usize::from(trailing_comma)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes.
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        // Skip a discriminant and/or trailing comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let mut b = String::from("out.push('{');\n");
            for (i, f) in fields.iter().enumerate() {
                let comma = if i > 0 { "," } else { "" };
                b.push_str(&format!(
                    "out.push_str(\"{comma}\\\"{0}\\\":\");\n\
                     ::serde::Serialize::json_write(&self.{0}, out);\n",
                    f.name
                ));
            }
            b.push_str("out.push('}');");
            b
        }
        Shape::Tuple(1) => "::serde::Serialize::json_write(&self.0, out);".to_string(),
        Shape::Tuple(n) => {
            let mut b = String::from("out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    b.push_str("out.push(',');\n");
                }
                b.push_str(&format!("::serde::Serialize::json_write(&self.{i}, out);\n"));
            }
            b.push_str("out.push(']');");
            b
        }
        Shape::Unit => "out.push_str(\"null\");".to_string(),
        Shape::Enum(variants) => {
            let mut b = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        b.push_str(&format!("{name}::{vn} => out.push_str(\"\\\"{vn}\\\"\"),\n"));
                    }
                    VariantKind::Tuple(1) => {
                        b.push_str(&format!(
                            "{name}::{vn}(__f0) => {{\n\
                             out.push_str(\"{{\\\"{vn}\\\":\");\n\
                             ::serde::Serialize::json_write(__f0, out);\n\
                             out.push('}}');\n}}\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        b.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             out.push_str(\"{{\\\"{vn}\\\":[\");\n",
                            binders.join(", ")
                        ));
                        for (i, f) in binders.iter().enumerate() {
                            if i > 0 {
                                b.push_str("out.push(',');\n");
                            }
                            b.push_str(&format!("::serde::Serialize::json_write({f}, out);\n"));
                        }
                        b.push_str("out.push_str(\"]}\");\n}\n");
                    }
                    VariantKind::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        b.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             out.push_str(\"{{\\\"{vn}\\\":{{\");\n",
                            binders.join(", ")
                        ));
                        for (i, f) in fields.iter().enumerate() {
                            let comma = if i > 0 { "," } else { "" };
                            b.push_str(&format!(
                                "out.push_str(\"{comma}\\\"{0}\\\":\");\n\
                                 ::serde::Serialize::json_write({0}, out);\n",
                                f.name
                            ));
                        }
                        b.push_str("out.push_str(\"}}\");\n}\n");
                    }
                }
            }
            b.push('}');
            b
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn json_write(&self, out: &mut String) {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

/// Generate the object-parsing block for named fields, leaving the
/// constructed value as the block's tail expression.
fn named_fields_block(ctor: &str, fields: &[Field]) -> String {
    let mut b = String::from("{\n");
    for f in fields {
        b.push_str(&format!("let mut __v_{} = None;\n", f.name));
    }
    b.push_str(
        "p.expect(b'{')?;\n\
         if !p.try_consume(b'}') {\n\
         loop {\n\
         let __k = p.string()?;\n\
         p.expect(b':')?;\n\
         match __k.as_str() {\n",
    );
    for f in fields {
        b.push_str(&format!(
            "\"{0}\" => {{ __v_{0} = Some(::serde::Deserialize::json_read(p)?); }}\n",
            f.name
        ));
    }
    b.push_str(
        "_ => { p.skip_value()?; }\n\
         }\n\
         if p.try_consume(b',') { continue; }\n\
         p.expect(b'}')?;\n\
         break;\n\
         }\n\
         }\n",
    );
    b.push_str(&format!("{ctor} {{\n"));
    for f in fields {
        if f.default {
            b.push_str(&format!(
                "{0}: match __v_{0} {{ Some(__x) => __x, None => ::core::default::Default::default() }},\n",
                f.name
            ));
        } else {
            b.push_str(&format!(
                "{0}: match __v_{0} {{ Some(__x) => __x, None => return Err(::serde::json::Error::missing_field(\"{0}\")) }},\n",
                f.name
            ));
        }
    }
    b.push_str("}\n}");
    b
}

fn tuple_fields_expr(ctor: &str, n: usize) -> String {
    let mut b = String::from("{\np.expect(b'[')?;\n");
    for i in 0..n {
        if i > 0 {
            b.push_str("p.expect(b',')?;\n");
        }
        b.push_str(&format!("let __f{i} = ::serde::Deserialize::json_read(p)?;\n"));
    }
    b.push_str("p.expect(b']')?;\n");
    let binders: Vec<String> = (0..n).map(|i| format!("__f{i}")).collect();
    b.push_str(&format!("{ctor}({})\n}}", binders.join(", ")));
    b
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            format!("Ok({})", named_fields_block(name, fields))
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::json_read(p)?))")
        }
        Shape::Tuple(n) => format!("Ok({})", tuple_fields_expr(name, *n)),
        Shape::Unit => {
            format!("if p.try_null() {{ Ok({name}) }} else {{ Err(p.error(\"expected null\")) }}")
        }
        Shape::Enum(variants) => {
            let mut b = String::from(
                "if p.peek_string() {\n\
                 let __tag = p.string()?;\n\
                 return match __tag.as_str() {\n",
            );
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    b.push_str(&format!("\"{0}\" => Ok({name}::{0}),\n", v.name));
                }
            }
            b.push_str(
                "_ => Err(::serde::json::Error::unknown_variant(&__tag)),\n\
                 };\n\
                 }\n\
                 p.expect(b'{')?;\n\
                 let __tag = p.string()?;\n\
                 p.expect(b':')?;\n\
                 let __v = match __tag.as_str() {\n",
            );
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        b.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             if !p.try_null() {{ return Err(p.error(\"expected null\")); }}\n\
                             {name}::{vn}\n}}\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        b.push_str(&format!(
                            "\"{vn}\" => {name}::{vn}(::serde::Deserialize::json_read(p)?),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        b.push_str(&format!(
                            "\"{vn}\" => {},\n",
                            tuple_fields_expr(&format!("{name}::{vn}"), *n)
                        ));
                    }
                    VariantKind::Named(fields) => {
                        b.push_str(&format!(
                            "\"{vn}\" => {},\n",
                            named_fields_block(&format!("{name}::{vn}"), fields)
                        ));
                    }
                }
            }
            b.push_str(
                "_ => return Err(::serde::json::Error::unknown_variant(&__tag)),\n\
                 };\n\
                 p.expect(b'}')?;\n\
                 Ok(__v)",
            );
            b
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn json_read(p: &mut ::serde::json::Parser<'_>) -> ::core::result::Result<Self, ::serde::json::Error> {{\n{body}\n}}\n}}\n"
    )
}

//! Offline `serde_json` shim: `to_string`/`to_vec`/`from_str`/`from_slice`
//! over the in-tree serde shim, which reads and writes JSON directly.
//! Floats use Rust's shortest round-trip formatting (the behavior the real
//! crate's `float_roundtrip` feature guarantees).

use serde::de::DeserializeOwned;
use serde::Serialize;

pub use serde::json::Error;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.json_write(&mut out);
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = serde::json::Parser::new(s);
    let v = T::json_read(&mut p)?;
    p.finish()?;
    Ok(v)
}

pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s =
        std::str::from_utf8(bytes).map_err(|_| Error { msg: "invalid utf-8".into(), offset: 0 })?;
    from_str(s)
}

#[cfg(test)]
mod tests {
    #[test]
    fn primitives_round_trip() {
        let s = super::to_string(&(1u32, -2i64, 3.5f64, true, "hi\"\\\n".to_string())).unwrap();
        let back: (u32, i64, f64, bool, String) = super::from_str(&s).unwrap();
        assert_eq!(back, (1, -2, 3.5, true, "hi\"\\\n".to_string()));
    }

    #[test]
    fn vec_and_option_round_trip() {
        let v = vec![Some(1.25f64), None, Some(-0.5)];
        let s = super::to_string(&v).unwrap();
        let back: Vec<Option<f64>> = super::from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_shortest_round_trip() {
        for x in [0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, 48.917595338008844] {
            let s = super::to_string(&x).unwrap();
            let back: f64 = super::from_str(&s).unwrap();
            assert_eq!(back, x);
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(super::from_str::<bool>("true x").is_err());
    }
}

//! Offline `proptest` shim.
//!
//! A compact property-testing harness exposing the API subset the facade
//! test-suite uses: the `proptest!` macro, `prop_assert*!`/`prop_assume!`,
//! `Strategy` with `prop_map`, range strategies, tuple strategies,
//! `prop::collection::vec`, `prop::array::uniform6`, and
//! `prop::sample::select`.
//!
//! Differences from real proptest, deliberately accepted:
//! * no shrinking — on failure the harness prints the generated inputs
//!   verbatim and re-raises the panic;
//! * no persistence — `*.proptest-regressions` files are not replayed
//!   (known regressions are pinned as explicit `#[test]`s instead);
//! * cases are generated from a fixed per-test seed (FNV-1a of the test
//!   name), so runs are fully deterministic.

pub mod strategy {
    use rand_chacha::ChaCha8Rng;
    use std::fmt::Debug;

    /// The RNG handed to strategies.
    pub type TestRng = ChaCha8Rng;

    /// A recipe for generating values.
    pub trait Strategy {
        type Value: Debug;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Constant strategy.
    #[derive(Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: Debug + Copy,
        std::ops::Range<T>: rand::SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: Debug + Copy,
        std::ops::RangeInclusive<T>: rand::SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            use rand::Rng;
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategies {
        ($(($($t:ident),+))+) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod prop {
    pub mod collection {
        use crate::strategy::{Strategy, TestRng};
        use rand::Rng;

        pub struct VecStrategy<S> {
            element: S,
            sizes: std::ops::Range<usize>,
        }

        /// Vec of `element` values with a length drawn from `sizes`.
        pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, sizes }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = if self.sizes.is_empty() {
                    self.sizes.start
                } else {
                    rng.gen_range(self.sizes.clone())
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod array {
        use crate::strategy::{Strategy, TestRng};

        pub struct Uniform6<S>(S);

        /// `[S::Value; 6]`, each element drawn independently.
        pub fn uniform6<S: Strategy>(element: S) -> Uniform6<S> {
            Uniform6(element)
        }

        impl<S: Strategy> Strategy for Uniform6<S> {
            type Value = [S::Value; 6];

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                std::array::from_fn(|_| self.0.sample(rng))
            }
        }
    }

    pub mod sample {
        use crate::strategy::{Strategy, TestRng};
        use rand::Rng;
        use std::fmt::Debug;

        pub struct Select<T>(Vec<T>);

        /// Uniformly pick one of the given values.
        pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select(options)
        }

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    /// Per-test execution settings.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    /// Deterministic RNG for a test, seeded from its name (FNV-1a).
    pub fn rng_for(test_name: &str) -> crate::strategy::TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        crate::strategy::TestRng::seed_from_u64(h)
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    let __inputs = format!(
                        concat!("" $(, stringify!($arg), " = {:?}; ")*),
                        $(&$arg),*
                    );
                    let __outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(__e) = __outcome {
                        eprintln!(
                            "proptest {} failed on case {}/{} with inputs: {}",
                            stringify!($name), __case + 1, __cfg.cases, __inputs
                        );
                        ::std::panic::resume_unwind(__e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn ranges_and_tuples(
            a in 0u32..10,
            pair in (1usize..4, 0.0f64..1.0),
        ) {
            prop_assert!(a < 10);
            prop_assert!((1..4).contains(&pair.0));
            prop_assert!((0.0..1.0).contains(&pair.1));
        }
    }

    proptest! {
        #[test]
        fn vec_and_map(
            v in prop::collection::vec(0u32..5, 0..8).prop_map(|v| v.len()),
            pick in prop::sample::select(vec![2u32, 4, 8]),
            arr in prop::array::uniform6(0.5f64..1.5),
        ) {
            prop_assert!(v < 8);
            prop_assert!(pick == 2 || pick == 4 || pick == 8);
            prop_assert_eq!(arr.len(), 6);
            prop_assume!(v > 0);
            prop_assert_ne!(v, 0);
        }
    }
}
